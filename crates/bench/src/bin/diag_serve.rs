//! Load-generates the serve host: replays each shard's day at
//! increasing task-rate multipliers through a fixed-capacity submission
//! queue and records, per rate, the p50/p95 per-window step latency,
//! the cross-batch prediction-cache hit rate, and the shed counts.
//! At the highest rates the per-window bursts exceed the queue and the
//! host sheds — visibly, in the `shed` column — which is exactly the
//! overload behaviour docs/serving.md describes. Writes
//! `results/serve_latency.json`.
//!
//! Environment: `TAMP_SEED` (default 42), `TAMP_SHARDS` (default 2),
//! `TAMP_THREADS` (default = shards), `TAMP_QUEUE_CAP` (default 12),
//! `TAMP_SCALE` (default `tiny`), `TAMP_OUT` (default `results/`).

use std::time::Instant;
use tamp_bench::{out_dir, seed_from_env};
use tamp_meta::meta_training::MetaConfig;
use tamp_obs::Obs;
use tamp_platform::{
    train_predictors, AssignmentAlgo, EngineConfig, LossKind, PredictionAlgo, TrainingConfig,
};
use tamp_serve::{HostConfig, Pacing, ServeHost, Shard, ShardConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

/// Task-rate multipliers applied to the scale's default task count.
const RATES: [usize; 4] = [1, 2, 4, 8];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One aggregated row of the sweep.
struct RateRow {
    rate: usize,
    tasks_per_shard: usize,
    windows: u64,
    p50_ms: f64,
    p95_ms: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    submitted: usize,
    shed: usize,
    completed: usize,
    wall_seconds: f64,
}

fn main() {
    let base_seed = seed_from_env();
    let n_shards = env_usize("TAMP_SHARDS", 2).max(1);
    let threads = env_usize("TAMP_THREADS", n_shards).max(1);
    let queue_cap = env_usize("TAMP_QUEUE_CAP", 12).max(1);
    let scale = match std::env::var("TAMP_SCALE").as_deref() {
        Ok("small") => Scale::small(),
        Ok("paper") => Scale::paper_workload1(),
        _ => Scale::tiny(),
    };

    // Quick offline stage: the sweep measures the serving path, not
    // training quality, so a small model keeps the loadgen snappy while
    // still exercising real rollouts (and hence the prediction cache).
    let training = |seed: u64| TrainingConfig {
        algo: PredictionAlgo::Maml,
        loss: LossKind::Mse,
        hidden: 8,
        seq_in: 5,
        meta: MetaConfig {
            iterations: 4,
            ..MetaConfig::default()
        },
        adapt_steps: 2,
        seed,
        ..TrainingConfig::default()
    };

    let mut rows = Vec::new();
    for rate in RATES {
        let n_tasks = scale.n_tasks * rate;
        let mut shards = Vec::new();
        for i in 0..n_shards {
            let seed = base_seed + i as u64;
            let shard_scale = Scale { n_tasks, ..scale };
            let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, shard_scale, seed).build();
            eprintln!(
                "rate x{rate} shard{i}: {} workers, {} tasks — training...",
                workload.workers.len(),
                workload.tasks.len()
            );
            let predictors = train_predictors(&workload, &training(seed));
            let cfg = ShardConfig {
                algo: AssignmentAlgo::Ppi,
                engine: EngineConfig {
                    seq_in: 5,
                    seed,
                    prediction_cache: true,
                    ..EngineConfig::default()
                },
                faults: None,
                queue_capacity: queue_cap,
            };
            shards.push(
                Shard::new(format!("shard{i}"), workload, Some(predictors), cfg)
                    .expect("shard construction"),
            );
        }

        let host = ServeHost::new(
            shards,
            HostConfig {
                threads,
                pacing: Pacing::FullSpeed,
            },
        );
        let t0 = Instant::now();
        let report = host.run(&Obs::null());
        let wall = t0.elapsed().as_secs_f64();

        let (mut hits, mut misses) = (0u64, 0u64);
        let (mut submitted, mut shed, mut completed) = (0usize, 0usize, 0usize);
        let mut p50s = Vec::new();
        let mut p95 = 0.0f64;
        for s in &report.shards {
            hits += s.cache.hits;
            misses += s.cache.misses;
            submitted += s.counts.submitted_tasks + s.counts.submitted_reports;
            shed += s.counts.shed();
            completed += s.metrics.completed;
            p50s.push(s.batch_p50_ms);
            p95 = p95.max(s.batch_p95_ms);
        }
        let p50 = p50s.iter().sum::<f64>() / p50s.len() as f64;
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        eprintln!(
            "rate x{rate}: {} windows, p50 {p50:.3} ms, p95 {p95:.3} ms, \
             hit rate {hit_rate:.3}, shed {shed}, wall {wall:.2}s",
            report.windows
        );
        rows.push(RateRow {
            rate,
            tasks_per_shard: n_tasks,
            windows: report.windows,
            p50_ms: p50,
            p95_ms: p95,
            hits,
            misses,
            hit_rate,
            submitted,
            shed,
            completed,
            wall_seconds: wall,
        });
    }

    // Hand-formatted JSON, like the other diag bins: the measurement
    // record must hold real numbers even where serde_json is stubbed.
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        body.push_str(&format!(
            "    {{ \"rate\": {}, \"tasks_per_shard\": {}, \"windows\": {}, \
             \"batch_p50_ms\": {:.6}, \"batch_p95_ms\": {:.6}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
             \"submitted\": {}, \"shed\": {}, \"completed\": {}, \
             \"wall_seconds\": {:.4} }}{sep}\n",
            r.rate,
            r.tasks_per_shard,
            r.windows,
            r.p50_ms,
            r.p95_ms,
            r.hits,
            r.misses,
            r.hit_rate,
            r.submitted,
            r.shed,
            r.completed,
            r.wall_seconds,
        ));
    }
    let json = format!(
        "{{\n  \"name\": \"serve_latency\",\n  \"shards\": {n_shards},\n  \
         \"threads\": {threads},\n  \"queue_capacity\": {queue_cap},\n  \
         \"n_workers\": {},\n  \"rates\": [\n{body}  ]\n}}\n",
        scale.n_workers
    );
    let path = out_dir().join("serve_latency.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, json).expect("write serve_latency.json");
    println!("wrote {}", path.display());
}

//! # tamp-sim
//!
//! Synthetic mobility and spatial-task workloads standing in for the
//! paper's datasets (Section IV-A, Table II), which are not shippable:
//! Porto taxi trajectories + Didi pick-up orders (workload 1) and Gowalla
//! check-ins + Foursquare venues (workload 2).
//!
//! The generators preserve the two properties the paper's method actually
//! exploits:
//!
//! 1. **Heterogeneous, clusterable mobility.** Workers are drawn from
//!    latent [`archetype`]s (commuter, courier loop, roamer, localized)
//!    with per-worker anchors and noise. The game-theoretic clustering of
//!    `tamp-meta` is expected to (approximately) recover these latent
//!    groups — exactly the structure MAML alone cannot exploit.
//! 2. **A task distribution distinct from (workload 1) or aligned with
//!    (workload 2) the worker distribution.** The paper observes that
//!    alignment shrinks worker-cost differences between algorithms
//!    (Appendix C); [`task_gen`] reproduces both regimes from one knob.
//!
//! Everything is deterministic given a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod poi_gen;
pub mod routine_gen;
pub mod task_gen;
pub mod workload;

pub use archetype::ArchetypeKind;
pub use workload::{Scale, SimWorker, Workload, WorkloadConfig, WorkloadKind};

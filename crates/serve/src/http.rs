//! A zero-dependency metrics exporter: a tiny blocking HTTP listener
//! serving the cumulative [`TelemetrySnapshot`] and the sliding-window
//! [`LiveView`] of a running serve host.
//!
//! Two endpoints:
//!
//! * `GET /metrics` — Prometheus-style text ([`tamp_obs::prom::render`]).
//! * `GET /metrics.json` — `{"cumulative": …, "live": …}` through the
//!   obs crate's own JSON codec (`live` is `null` without a windowed
//!   registry); what `tamp metrics --addr` renders as a fleet table.
//!
//! The listener is deliberately minimal — std's `TcpListener`, HTTP/1.0
//! responses with `Content-Length` and `Connection: close`, one request
//! per connection — because its only clients are scrapers, the `tamp
//! metrics` one-shot, and tests. Bind to port 0 for an ephemeral port
//! ([`MetricsServer::local_addr`] reports what was chosen).
//!
//! The accept loop runs on one background thread, polling with a
//! non-blocking listener so [`MetricsServer::shutdown`] (and `Drop`)
//! can stop it without a self-connect.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tamp_obs::prom;
use tamp_obs::{LiveView, TelemetrySnapshot};

/// How the exporter reads the current metrics: a shared closure
/// returning the cumulative snapshot plus the live windowed view (if
/// any). Called once per request, on the exporter thread.
pub type MetricsSource = Arc<dyn Fn() -> (TelemetrySnapshot, Option<LiveView>) + Send + Sync>;

/// The exporter (see the module docs). Shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and
    /// starts serving `source` on a background thread.
    pub fn bind(addr: &str, source: MetricsSource) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("tamp-metrics".into())
            .spawn(move || accept_loop(&listener, &source, &thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the exporter thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, source: &MetricsSource, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serving metrics never takes the host down; a broken
                // scraper connection is its problem.
                let _ = handle_connection(stream, source);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, source: &MetricsSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(1000)))?;
    stream.set_write_timeout(Some(Duration::from_millis(1000)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head; the exporter never reads
    // bodies (GET only) and bounds the head at 16 KiB.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = respond(method, path, source);
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn respond(
    method: &str,
    path: &str,
    source: &MetricsSource,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        );
    }
    match path {
        "/metrics" => {
            let (snapshot, live) = source();
            (
                "200 OK",
                "text/plain; version=0.0.4",
                prom::render(&snapshot, live.as_ref()),
            )
        }
        "/metrics.json" => {
            let (snapshot, live) = source();
            let live_json = live.map_or_else(|| "null".to_string(), |v| v.to_json());
            (
                "200 OK",
                "application/json",
                format!(
                    "{{\"cumulative\":{},\"live\":{}}}",
                    snapshot.to_json(),
                    live_json
                ),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "try /metrics or /metrics.json\n".to_string(),
        ),
    }
}

/// A one-shot HTTP GET against an exporter (the client side of
/// [`MetricsServer`], used by `tamp metrics` and the integration
/// tests). Returns the response body; non-2xx statuses are errors.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no response head"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line.split_whitespace().nth(1).unwrap_or("");
    if !status.starts_with('2') {
        return Err(std::io::Error::other(format!("{status_line} for {path}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_obs::{MetricsRegistry, WindowedRegistry};

    fn test_source() -> MetricsSource {
        let reg = MetricsRegistry::new();
        reg.count("serve.shed", 7);
        reg.observe("serve.step.latency_ms", 1.25);
        let live = WindowedRegistry::new(4);
        live.count("shard0", "serve.shed", 7);
        live.observe("shard0", "serve.step.latency_ms", 1.25);
        live.advance();
        Arc::new(move || (reg.snapshot(), Some(live.view(4))))
    }

    #[test]
    fn serves_prometheus_text_and_json() {
        let server = MetricsServer::bind("127.0.0.1:0", test_source()).unwrap();
        let addr = server.local_addr().to_string();

        let text = http_get(&addr, "/metrics").unwrap();
        let samples = prom::parse_text(&text).unwrap();
        let shed = samples
            .iter()
            .find(|s| s.name == "tamp_serve_shed_total")
            .unwrap();
        assert_eq!(shed.value, 7.0);
        assert!(
            samples
                .iter()
                .any(|s| s.name == "tamp_window_serve_shed_total"
                    && s.label("scope") == Some("fleet"))
        );

        let json = http_get(&addr, "/metrics.json").unwrap();
        let doc = tamp_obs::json::parse(&json).unwrap();
        let cumulative = doc.get("cumulative").unwrap();
        assert_eq!(
            cumulative.get("counters").and_then(|c| c.get("serve.shed")),
            Some(&tamp_obs::json::JsonValue::Num(7.0))
        );
        let live = LiveView::from_json_value(doc.get("live").unwrap()).unwrap();
        assert_eq!(live.fleet.counters["serve.shed"], 7);
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let server = MetricsServer::bind("127.0.0.1:0", test_source()).unwrap();
        let addr = server.local_addr().to_string();
        assert!(http_get(&addr, "/nope").is_err());
    }

    #[test]
    fn shutdown_joins_the_exporter_thread() {
        let mut server = MetricsServer::bind("127.0.0.1:0", test_source()).unwrap();
        let addr = server.local_addr().to_string();
        assert!(http_get(&addr, "/metrics").is_ok());
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }
}

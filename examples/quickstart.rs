//! Quickstart: the whole TAMP pipeline in ~40 lines.
//!
//! Builds a small synthetic city, trains the paper's GTTAML mobility
//! predictor with the task-assignment-oriented loss, runs the PPI
//! assignment algorithm over a simulated day, and prints the paper's
//! four quality metrics next to the upper/lower bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tamp::platform::{
    run_assignment, train_predictors, AssignmentAlgo, EngineConfig, TrainingConfig,
};
use tamp::sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    // 1. A porto-like city: workers with latent mobility archetypes,
    //    tasks from downtown hotspots, everything seeded.
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 42).build();
    println!(
        "city: {} workers, {} tasks over {:.0} minutes",
        workload.workers.len(),
        workload.tasks.len(),
        workload.horizon.as_f64()
    );

    // 2. Offline stage: game-theoretic clustering + meta-learning
    //    (GTTAML) with the Eq. 6–7 weighted loss.
    let training = TrainingConfig {
        seed: 42,
        ..TrainingConfig::default()
    };
    let predictors = train_predictors(&workload, &training);
    println!(
        "trained {} per-worker models in {:.1}s ({} leaf clusters); \
         validation RMSE {:.3} cells, MR {:.3}",
        predictors.models.len(),
        predictors.train_seconds,
        predictors.n_clusters,
        predictors.overall.rmse_cells,
        predictors.overall.mr,
    );

    // 3. Online stage: batch assignment with PPI vs the bounds.
    let engine = EngineConfig::default();
    for (name, algo, preds) in [
        ("UB ", AssignmentAlgo::Ub, None),
        ("PPI", AssignmentAlgo::Ppi, Some(&predictors)),
        ("LB ", AssignmentAlgo::Lb, None),
    ] {
        let m = run_assignment(&workload, preds, algo, &engine);
        println!(
            "{name}: completion {:.3}, rejection {:.3}, worker cost {:.2} km, runtime {:.3}s",
            m.completion_ratio(),
            m.rejection_ratio(),
            m.avg_worker_cost_km(),
            m.algo_seconds,
        );
    }
}

//! # tamp-bench
//!
//! The benchmark harness: one binary per paper table/figure (see
//! DESIGN.md's per-experiment index) plus criterion micro-benches for the
//! workspace's hot paths.
//!
//! Every experiment binary reads three environment variables:
//!
//! * `TAMP_SCALE` — `tiny` | `small` (default) | `paper`. `paper`
//!   matches Table II/III sizing (442 workers, 3000 tasks) and takes
//!   hours; `small` reproduces every trend in minutes.
//! * `TAMP_SEED` — master seed (default 42).
//! * `TAMP_OUT` — output directory for JSON rows (default `results/`).
//!
//! Run e.g. `cargo run -p tamp-bench --release --bin exp_table4`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod svg;

use std::path::PathBuf;
use tamp_meta::meta_training::MetaConfig;
use tamp_platform::experiments::report::{f1, f4, print_markdown_table};
use tamp_platform::experiments::{AblationRow, AssignmentRow, RobustnessRow, SeqRow};
use tamp_platform::{EngineConfig, TrainingConfig};
use tamp_sim::Scale;

/// Reads the experiment scale from `TAMP_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("TAMP_SCALE").as_deref() {
        Ok("tiny") => Scale::tiny(),
        Ok("paper") => Scale::paper_workload1(),
        _ => Scale::small(),
    }
}

/// Reads the master seed from `TAMP_SEED` (default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("TAMP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Output directory for JSON rows.
pub fn out_dir() -> PathBuf {
    PathBuf::from(std::env::var("TAMP_OUT").unwrap_or_else(|_| "results".into()))
}

/// The default offline-stage configuration used by the experiments.
///
/// Laptop-scale: hidden 16, 10 meta iterations. The paper column of
/// Table III (bold values) sets `seq_in = 5`, `seq_out = 1`, γ = 0.2.
pub fn default_training(seed: u64) -> TrainingConfig {
    TrainingConfig {
        seq_in: 5,
        seq_out: 1,
        hidden: 16,
        meta: MetaConfig {
            iterations: 40,
            ..MetaConfig::default()
        },
        adapt_steps: 8,
        seed,
        ..TrainingConfig::default()
    }
}

/// The default online-stage configuration (2-minute batches, a = 0.4 km,
/// ε = 8, 6-unit rollout, matching `seq_in`).
pub fn default_engine(seed: u64) -> EngineConfig {
    EngineConfig {
        seq_in: 5,
        seed,
        ..EngineConfig::default()
    }
}

/// Task-count sweep points proportional to the scale's default (the
/// paper's 1K–5K on 3K default becomes 1/3×..5/3× of `scale.n_tasks`).
pub fn task_sweep_points(scale: &Scale) -> Vec<usize> {
    (1..=5).map(|i| (scale.n_tasks * i) / 3).collect()
}

/// Prints Table IV/VI-style rows.
pub fn print_ablation(rows: &[AblationRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cluster_algorithm.clone(),
                r.factors.join("+"),
                f4(r.rmse),
                f4(r.mae),
                f4(r.mr),
                f1(r.tt_seconds),
                r.n_clusters.to_string(),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "cluster algo",
            "factors",
            "RMSE",
            "MAE",
            "MR",
            "TT (s)",
            "#clusters",
        ],
        &table,
    );
}

/// Prints Table V/VII-style rows.
pub fn print_seq(rows: &[SeqRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.swept.clone(),
                r.value.to_string(),
                r.algorithm.clone(),
                f4(r.rmse),
                f4(r.mae),
                f4(r.mr),
                f1(r.tt_seconds),
            ]
        })
        .collect();
    print_markdown_table(
        &["swept", "value", "algorithm", "RMSE", "MAE", "MR", "TT (s)"],
        &table,
    );
}

/// Prints Fig. 6–11-style rows.
pub fn print_assignment(rows: &[AssignmentRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.param.clone(),
                format!("{}", r.x),
                r.algorithm.clone(),
                f4(r.completion),
                f4(r.rejection),
                f4(r.cost_km),
                format!("{:.3}", r.runtime_s),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "param",
            "x",
            "algorithm",
            "completion",
            "rejection",
            "cost (km)",
            "runtime (s)",
        ],
        &table,
    );
}

/// Prints robustness-sweep rows (fault injection).
pub fn print_robustness(rows: &[RobustnessRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.report_loss * 100.0),
                format!("{:.0}%", r.prediction_failure * 100.0),
                r.algorithm.clone(),
                f4(r.completion),
                f4(r.rejection),
                f4(r.cost_km),
                r.dropped_reports.to_string(),
                r.fallback_views.to_string(),
                r.quarantined_models.to_string(),
                r.invalid_pairs.to_string(),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "report loss",
            "pred. failure",
            "algorithm",
            "completion",
            "rejection",
            "cost (km)",
            "dropped",
            "fallbacks",
            "quarantined",
            "invalid",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_sweep_points_scale_proportionally() {
        let pts = task_sweep_points(&Scale {
            n_workers: 442,
            train_days: 9,
            units_per_day: 48,
            n_tasks: 3000,
            n_historical_tasks: 50_000,
        });
        assert_eq!(pts, vec![1000, 2000, 3000, 4000, 5000]);
    }

    #[test]
    fn env_defaults() {
        // Without env vars set, defaults hold.
        std::env::remove_var("TAMP_SEED");
        assert_eq!(seed_from_env(), 42);
        let t = default_training(1);
        assert_eq!(t.seq_in, 5);
        assert_eq!(t.seq_out, 1);
        let e = default_engine(1);
        assert_eq!(e.seq_in, 5);
    }
}

//! Declarative service-level objectives over windowed metrics.
//!
//! An [`SloSpec`] names a metric, how to reduce it (a quantile of a
//! windowed histogram, or a per-window rate of a counter), a threshold,
//! the trailing evaluation window, and the allowed *burn rate* — the
//! fraction of evaluations that may violate the threshold before the
//! objective as a whole is breached. Specs parse from a small file in
//! either JSON or a minimal TOML subset ([`SloSet::parse`] sniffs the
//! format), so one committed file drives:
//!
//! * live evaluation inside `ServeHost` each sealed window (violations
//!   become `slo.violation.<name>` counters and report rows),
//! * offline `tamp slo-check` over recorded window logs, metrics
//!   snapshots, traces, and `diag_serve` sweeps,
//! * the ci.sh latency gate.
//!
//! The TOML subset: `[[slo]]` section headers, `key = value` lines with
//! string/number/boolean values, `#` comments. Nothing else — enough
//! for spec files while keeping the crate dependency-free.

use crate::json::{obj, parse, JsonValue};
use crate::window::WindowedRegistry;

/// How a spec reduces its metric over the evaluation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// A quantile (e.g. 0.99) of a windowed histogram.
    Quantile(f64),
    /// Counter total per window, averaged over the evaluation window.
    Rate,
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (becomes the `slo.violation.<name>` counter).
    pub name: String,
    /// Windowed metric name (histogram for quantile specs, counter for
    /// rate specs) — e.g. `serve.step.latency_ms`.
    pub metric: String,
    /// The reduction.
    pub kind: SloKind,
    /// Threshold: an evaluation violates when the reduced value exceeds
    /// this.
    pub max: f64,
    /// Trailing sealed windows each evaluation merges (≥ 1).
    pub window: usize,
    /// Allowed fraction of violating evaluations in `[0, 1]`; the
    /// objective is *breached* once the observed fraction exceeds this.
    pub max_burn_rate: f64,
    /// Optional trace span whose duration realises the metric — lets
    /// `slo-check --trace` evaluate the same objective from a JSONL
    /// trace (span `dur_us` / 1000 when the metric ends in `_ms`).
    pub trace_span: Option<String>,
}

impl SloSpec {
    fn from_fields(fields: &JsonValue, ordinal: usize) -> Result<Self, String> {
        let ctx = |m: &str| format!("slo #{ordinal}: {m}");
        let name = fields
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing name"))?
            .to_string();
        let metric = fields
            .get("metric")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing metric"))?
            .to_string();
        let quantile = fields.get("quantile").and_then(JsonValue::as_num);
        let rate = matches!(fields.get("rate"), Some(JsonValue::Bool(true)));
        let kind = match (quantile, rate) {
            (Some(q), false) => {
                if !(0.0..1.0).contains(&q) || q <= 0.0 {
                    return Err(ctx(&format!("quantile {q} outside (0, 1)")));
                }
                SloKind::Quantile(q)
            }
            (None, true) => SloKind::Rate,
            (Some(_), true) => return Err(ctx("both quantile and rate set")),
            (None, false) => return Err(ctx("needs quantile = q or rate = true")),
        };
        let max = fields
            .get("max")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| ctx("missing max"))?;
        if !max.is_finite() {
            return Err(ctx("max must be finite"));
        }
        let window = fields
            .get("window")
            .map(|v| v.as_u64().ok_or_else(|| ctx("window not a u64")))
            .transpose()?
            .unwrap_or(1)
            .max(1) as usize;
        let max_burn_rate = fields
            .get("max_burn_rate")
            .map(|v| v.as_num().ok_or_else(|| ctx("max_burn_rate not a number")))
            .transpose()?
            .unwrap_or(0.0);
        if !(0.0..=1.0).contains(&max_burn_rate) {
            return Err(ctx("max_burn_rate outside [0, 1]"));
        }
        let trace_span = fields
            .get("trace_span")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        Ok(SloSpec {
            name,
            metric,
            kind,
            max,
            window,
            max_burn_rate,
            trace_span,
        })
    }

    fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("metric", JsonValue::Str(self.metric.clone())),
            ("max", JsonValue::Num(self.max)),
            ("window", JsonValue::Num(self.window as f64)),
            ("max_burn_rate", JsonValue::Num(self.max_burn_rate)),
        ];
        match self.kind {
            SloKind::Quantile(q) => fields.push(("quantile", JsonValue::Num(q))),
            SloKind::Rate => fields.push(("rate", JsonValue::Bool(true))),
        }
        if let Some(s) = &self.trace_span {
            fields.push(("trace_span", JsonValue::Str(s.clone())));
        }
        obj(fields)
    }
}

/// A parsed spec file: the list of objectives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSet {
    /// The objectives, in file order.
    pub slos: Vec<SloSpec>,
}

impl SloSet {
    /// Parses a spec file in JSON (`{"slo": [...]}` or a bare array) or
    /// the minimal TOML subset (`[[slo]]` sections). The format is
    /// sniffed from the first non-whitespace character.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim_start().chars().next() {
            None => Err("empty SLO spec".into()),
            Some('{') | Some('[') if !text.trim_start().starts_with("[[") => Self::from_json(text),
            _ => Self::from_toml(text),
        }
    }

    /// Largest evaluation window any spec asks for (1 when empty) — the
    /// retention a [`WindowedRegistry`] needs to serve every spec.
    pub fn max_window(&self) -> usize {
        self.slos.iter().map(|s| s.window).max().unwrap_or(1)
    }

    fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let items = match (&v, v.get("slo")) {
            (_, Some(JsonValue::Arr(items))) => items.as_slice(),
            (JsonValue::Arr(items), _) => items.as_slice(),
            _ => return Err("expected {\"slo\": [...]} or a JSON array".into()),
        };
        let slos = items
            .iter()
            .enumerate()
            .map(|(i, f)| SloSpec::from_fields(f, i))
            .collect::<Result<Vec<_>, _>>()?;
        if slos.is_empty() {
            return Err("SLO spec declares no objectives".into());
        }
        Ok(SloSet { slos })
    }

    fn from_toml(text: &str) -> Result<Self, String> {
        let mut sections: Vec<std::collections::BTreeMap<String, JsonValue>> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                // Strip comments, but not '#' inside a quoted value.
                Some(h) if raw[..h].matches('"').count() % 2 == 0 => &raw[..h],
                _ => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[slo]]" {
                sections.push(Default::default());
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: only [[slo]] sections", lineno + 1));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("line {}: expected key = value", lineno + 1))?;
            let section = sections
                .last_mut()
                .ok_or(format!("line {}: key before any [[slo]]", lineno + 1))?;
            let value = value.trim();
            let parsed = if let Some(stripped) = value.strip_prefix('"') {
                let inner = stripped
                    .strip_suffix('"')
                    .ok_or(format!("line {}: unterminated string", lineno + 1))?;
                JsonValue::Str(inner.to_string())
            } else if value == "true" {
                JsonValue::Bool(true)
            } else if value == "false" {
                JsonValue::Bool(false)
            } else {
                JsonValue::Num(
                    value
                        .parse::<f64>()
                        .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?,
                )
            };
            section.insert(key.trim().to_string(), parsed);
        }
        if sections.is_empty() {
            return Err("SLO spec declares no [[slo]] sections".into());
        }
        let slos = sections
            .into_iter()
            .enumerate()
            .map(|(i, m)| SloSpec::from_fields(&JsonValue::Obj(m), i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SloSet { slos })
    }

    /// Serialises the set as JSON (`{"slo": [...]}`); parseable by
    /// [`SloSet::parse`].
    pub fn to_json(&self) -> String {
        obj([(
            "slo",
            JsonValue::Arr(self.slos.iter().map(SloSpec::to_json_value).collect()),
        )])
        .to_json()
    }
}

/// One violating evaluation (a single window crossing the threshold —
/// not yet a breach unless the burn rate exceeds the spec's allowance).
#[derive(Debug, Clone, PartialEq)]
pub struct SloViolation {
    /// The violated objective's name.
    pub name: String,
    /// The reduced metric value for this evaluation.
    pub value: f64,
    /// The spec threshold it exceeded.
    pub max: f64,
    /// The window index that completed this evaluation.
    pub window: u64,
}

/// Cumulative per-objective evaluation state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloState {
    /// Evaluations performed (windows where the metric was present).
    pub evaluated: u64,
    /// Evaluations that crossed the threshold.
    pub violations: u64,
    /// Most recent reduced value.
    pub last: f64,
    /// Worst reduced value seen.
    pub worst: f64,
}

/// Final per-objective verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// Objective name.
    pub name: String,
    /// Metric the objective reduces.
    pub metric: String,
    /// Threshold.
    pub max: f64,
    /// Evaluations performed.
    pub evaluated: u64,
    /// Evaluations that violated.
    pub violations: u64,
    /// `violations / evaluated` (0 when never evaluated).
    pub burn_rate: f64,
    /// The spec's allowed burn rate.
    pub max_burn_rate: f64,
    /// True when the burn rate exceeds the allowance.
    pub breached: bool,
    /// Most recent reduced value.
    pub last: f64,
    /// Worst reduced value seen.
    pub worst: f64,
}

/// Evaluates a [`SloSet`] against a [`WindowedRegistry`], once per
/// sealed window.
#[derive(Debug)]
pub struct SloEngine {
    set: SloSet,
    state: Vec<SloState>,
}

impl SloEngine {
    /// An engine with zeroed state.
    pub fn new(set: SloSet) -> Self {
        let n = set.slos.len();
        Self {
            set,
            state: vec![SloState::default(); n],
        }
    }

    /// The specs being evaluated.
    pub fn specs(&self) -> &[SloSpec] {
        &self.set.slos
    }

    /// Evaluates every spec against the registry's trailing windows.
    /// Call once per [`WindowedRegistry::advance`], after the seal.
    /// Returns this round's violations (possibly empty).
    pub fn evaluate(&mut self, reg: &WindowedRegistry) -> Vec<SloViolation> {
        let window = match reg.windows_sealed().checked_sub(1) {
            Some(w) => w,
            None => return Vec::new(), // nothing sealed yet
        };
        let mut out = Vec::new();
        for (spec, state) in self.set.slos.iter().zip(self.state.iter_mut()) {
            let fleet = reg.fleet_tail(spec.window);
            let value = match spec.kind {
                SloKind::Quantile(q) => match fleet.histograms.get(&spec.metric) {
                    Some(h) if h.count() > 0 => h.quantile(q),
                    // No observations in the horizon → nothing to judge.
                    _ => continue,
                },
                SloKind::Rate => {
                    let total = fleet.counters.get(&spec.metric).copied().unwrap_or(0);
                    let horizon = reg.retained().min(spec.window).max(1);
                    total as f64 / horizon as f64
                }
            };
            state.evaluated += 1;
            state.last = value;
            state.worst = if state.evaluated == 1 {
                value
            } else {
                state.worst.max(value)
            };
            if value > spec.max {
                state.violations += 1;
                out.push(SloViolation {
                    name: spec.name.clone(),
                    value,
                    max: spec.max,
                    window,
                });
            }
        }
        out
    }

    /// Per-objective cumulative state, parallel to [`SloEngine::specs`].
    pub fn states(&self) -> &[SloState] {
        &self.state
    }

    /// Final verdicts.
    pub fn outcomes(&self) -> Vec<SloOutcome> {
        self.set
            .slos
            .iter()
            .zip(self.state.iter())
            .map(|(spec, st)| {
                let burn_rate = if st.evaluated == 0 {
                    0.0
                } else {
                    st.violations as f64 / st.evaluated as f64
                };
                SloOutcome {
                    name: spec.name.clone(),
                    metric: spec.metric.clone(),
                    max: spec.max,
                    evaluated: st.evaluated,
                    violations: st.violations,
                    burn_rate,
                    max_burn_rate: spec.max_burn_rate,
                    breached: st.evaluated > 0 && burn_rate > spec.max_burn_rate,
                    last: st.last,
                    worst: st.worst,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML_SPEC: &str = r#"
# Serving-path objectives.
[[slo]]
name = "step-p99"                 # becomes slo.violation.step-p99
metric = "serve.step.latency_ms"
quantile = 0.99
max = 25.0
window = 8
max_burn_rate = 0.05
trace_span = "serve.batch"

[[slo]]
name = "shed-rate"
metric = "serve.shed"
rate = true
max = 200.0
"#;

    #[test]
    fn toml_subset_parses_and_json_round_trips() {
        let set = SloSet::parse(TOML_SPEC).unwrap();
        assert_eq!(set.slos.len(), 2);
        let p99 = &set.slos[0];
        assert_eq!(p99.name, "step-p99");
        assert_eq!(p99.kind, SloKind::Quantile(0.99));
        assert_eq!(p99.window, 8);
        assert_eq!(p99.max_burn_rate, 0.05);
        assert_eq!(p99.trace_span.as_deref(), Some("serve.batch"));
        let shed = &set.slos[1];
        assert_eq!(shed.kind, SloKind::Rate);
        assert_eq!(shed.window, 1); // default
        assert_eq!(shed.max_burn_rate, 0.0); // default: any violation breaches
        assert_eq!(set.max_window(), 8);

        let back = SloSet::parse(&set.to_json()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(SloSet::parse("").is_err());
        assert!(SloSet::parse("just words").is_err());
        assert!(SloSet::parse("[[slo]]\nname = \"x\"").is_err()); // no metric
        assert!(
            SloSet::parse("[[slo]]\nname = \"x\"\nmetric = \"m\"\nmax = 1.0\nquantile = 1.5")
                .is_err()
        );
        assert!(SloSet::parse(
            "[[slo]]\nname = \"x\"\nmetric = \"m\"\nmax = 1.0\nquantile = 0.5\nrate = true"
        )
        .is_err());
        assert!(SloSet::parse("metric = \"m\"").is_err()); // key before section
        assert!(SloSet::parse("{\"slo\": []}").is_err());
    }

    fn quantile_spec(max: f64, window: usize, burn: f64) -> SloSet {
        SloSet {
            slos: vec![SloSpec {
                name: "lat".into(),
                metric: "h".into(),
                kind: SloKind::Quantile(0.99),
                max,
                window,
                max_burn_rate: burn,
                trace_span: None,
            }],
        }
    }

    #[test]
    fn engine_counts_violations_and_burn_rate() {
        let reg = WindowedRegistry::new(8);
        let mut eng = SloEngine::new(quantile_spec(10.0, 1, 0.4));
        // 2 violating windows out of 5.
        for (i, v) in [1.0, 50.0, 2.0, 99.0, 3.0].iter().enumerate() {
            reg.observe("s", "h", *v);
            reg.advance();
            let violations = eng.evaluate(&reg);
            assert_eq!(violations.len(), usize::from(*v > 10.0), "window {i}");
        }
        let out = &eng.outcomes()[0];
        assert_eq!(out.evaluated, 5);
        assert_eq!(out.violations, 2);
        assert!((out.burn_rate - 0.4).abs() < 1e-12);
        assert!(!out.breached, "burn 0.4 allowed at max_burn_rate 0.4");
        assert_eq!(out.worst, 99.0);

        // Tighter allowance breaches.
        let mut strict = SloEngine::new(quantile_spec(10.0, 1, 0.1));
        let reg2 = WindowedRegistry::new(8);
        for v in [1.0, 50.0, 2.0, 99.0, 3.0] {
            reg2.observe("s", "h", v);
            reg2.advance();
            strict.evaluate(&reg2);
        }
        assert!(strict.outcomes()[0].breached);
    }

    #[test]
    fn quantile_specs_skip_empty_horizons() {
        let reg = WindowedRegistry::new(4);
        let mut eng = SloEngine::new(quantile_spec(10.0, 1, 0.0));
        reg.advance(); // empty window: no histogram at all
        assert!(eng.evaluate(&reg).is_empty());
        assert_eq!(eng.outcomes()[0].evaluated, 0);
        assert!(!eng.outcomes()[0].breached);
    }

    #[test]
    fn rate_specs_average_over_the_horizon() {
        let set = SloSet {
            slos: vec![SloSpec {
                name: "shed".into(),
                metric: "c".into(),
                kind: SloKind::Rate,
                max: 5.0,
                window: 2,
                max_burn_rate: 0.0,
                trace_span: None,
            }],
        };
        let reg = WindowedRegistry::new(4);
        let mut eng = SloEngine::new(set);
        reg.count("s", "c", 4);
        reg.advance();
        // One window: rate 4 ≤ 5.
        assert!(eng.evaluate(&reg).is_empty());
        reg.count("s", "c", 8);
        reg.advance();
        // Two windows: (4+8)/2 = 6 > 5 → violation.
        let v = eng.evaluate(&reg);
        assert_eq!(v.len(), 1);
        assert!((v[0].value - 6.0).abs() < 1e-12);
        assert!(eng.outcomes()[0].breached);
    }

    #[test]
    fn multi_window_quantile_merges_the_tail() {
        let reg = WindowedRegistry::new(8);
        let mut eng = SloEngine::new(quantile_spec(10.0, 4, 1.0));
        // A single slow window pollutes the p99 of the next 4 horizons.
        reg.observe("s", "h", 100.0);
        reg.advance();
        eng.evaluate(&reg);
        for _ in 0..3 {
            for _ in 0..10 {
                reg.observe("s", "h", 1.0);
            }
            reg.advance();
            eng.evaluate(&reg);
        }
        let st = eng.states()[0];
        assert_eq!(st.evaluated, 4);
        assert_eq!(st.violations, 4, "p99 over the merged tail stays high");
    }
}

//! Task-Adaptive Meta-Learning over the learning-task tree (Algorithm 2).
//!
//! Leaves run Meta-Training (Algorithm 3) on their clusters; interior
//! nodes recurse over their children, average the returned losses, and
//! update their own `θ` with the averaged meta information.
//!
//! **First-order realisation of line 6** (`θ ← θ − α∇L_avg`): with
//! first-order meta-gradients, the gradient of the average child loss at
//! the parent's `θ` is approximated by the average of the children's
//! parameter displacements, i.e. a Reptile-style interpolation
//! `θ ← θ + blend · mean(θ_child − θ)`. Each child started from the
//! parent's `θ` (Algorithm 1 line 15), so the displacement is exactly the
//! accumulated meta-update direction of that subtree. The substitution is
//! recorded in DESIGN.md.

use crate::learning_task::LearningTask;
use crate::meta_training::{meta_train_observed, resolve_threads, MetaConfig};
use crate::tree::{LearningTaskTree, NodeId};
use rand::Rng;
use tamp_core::rng::rng_for;
use tamp_nn::{Loss, Seq2Seq};
use tamp_obs::Obs;

/// Configuration of the TAML recursion.
#[derive(Debug, Clone, Copy)]
pub struct TamlConfig {
    /// Meta-training hyper-parameters for leaves.
    pub meta: MetaConfig,
    /// Interpolation factor of the interior-node update (the first-order
    /// stand-in for `α` in Algorithm 2 line 6).
    pub parent_blend: f64,
}

impl Default for TamlConfig {
    fn default() -> Self {
        Self {
            meta: MetaConfig::default(),
            parent_blend: 0.5,
        }
    }
}

/// Runs Algorithm 2 over the whole tree, training every node's `θ` in
/// place. Returns the tree-average query loss `L^avg`.
pub fn taml_train(
    tree: &mut LearningTaskTree,
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &TamlConfig,
    rng: &mut impl Rng,
) -> f64 {
    taml_train_observed(tree, tasks, template, loss, cfg, rng, &Obs::null())
}

/// [`taml_train`] with telemetry: one `meta.taml.node` span per tree
/// node (idx = node id; leaf spans nest inside their ancestors', exactly
/// mirroring the recursion) and a `meta.taml.node_loss` gauge per node
/// with the query loss that node contributed.
///
/// With `cfg.meta.threads > 1`, sibling subtrees of an interior node are
/// trained on parallel scoped threads. Each child subtree draws a
/// reproducible seed from the parent's RNG stream (serially, in child
/// order), so node parameters and losses are identical for every thread
/// count. Worker threads run without telemetry; each parallel child's
/// `meta.taml.node_loss` gauge is re-emitted from the calling thread in
/// child order after the join (descendant-level spans/gauges are
/// suppressed under parallel siblings — see docs/telemetry.md).
pub fn taml_train_observed(
    tree: &mut LearningTaskTree,
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &TamlConfig,
    rng: &mut impl Rng,
    obs: &Obs,
) -> f64 {
    taml_node(tree, tree.root(), tasks, template, loss, cfg, rng, obs)
}

#[allow(clippy::too_many_arguments)]
fn taml_node(
    tree: &mut LearningTaskTree,
    node: NodeId,
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &TamlConfig,
    rng: &mut impl Rng,
    obs: &Obs,
) -> f64 {
    let node_span = obs.span_idx("meta.taml.node", node as u64);
    let children = tree.node(node).children.clone();
    if children.is_empty() {
        // Leaf: Meta-Training on this cluster (Algorithm 2 lines 1–2).
        let members = tree.node(node).members.clone();
        let refs: Vec<&LearningTask> = members.iter().map(|&m| &tasks[m]).collect();
        let mut theta = tree.node(node).theta.clone();
        let avg = meta_train_observed(&mut theta, &refs, template, loss, &cfg.meta, rng, obs);
        tree.node_mut(node).theta = theta;
        obs.gauge_idx("meta.taml.node_loss", avg, Some(node as u64));
        drop(node_span);
        return avg;
    }

    // Interior: recurse, average losses (lines 3–5). Each child subtree
    // gets its own seed drawn serially from the parent stream in child
    // order — the recursion's results are then independent of sibling
    // execution order, so siblings can run on parallel threads without
    // changing a single bit of the output.
    let child_seeds: Vec<u64> = children.iter().map(|_| rng.gen::<u64>()).collect();
    let n_threads = resolve_threads(cfg.meta.threads);
    let mut total = 0.0;
    if n_threads <= 1 || children.len() < 2 {
        for (&c, &seed) in children.iter().zip(&child_seeds) {
            let mut crng = rng_for(seed, 0);
            total += taml_node(tree, c, tasks, template, loss, cfg, &mut crng, obs);
        }
    } else {
        total = taml_children_parallel(
            tree,
            &children,
            &child_seeds,
            tasks,
            template,
            loss,
            cfg,
            obs,
        );
    }
    let avg = total / children.len() as f64;
    obs.gauge_idx("meta.taml.node_loss", avg, Some(node as u64));

    // Line 6, first-order: move θ toward the mean child displacement.
    let parent_theta = tree.node(node).theta.clone();
    let mut mean_delta = vec![0.0; parent_theta.len()];
    for &c in &children {
        let ct = &tree.node(c).theta;
        for (d, (cv, pv)) in mean_delta.iter_mut().zip(ct.iter().zip(&parent_theta)) {
            *d += cv - pv;
        }
    }
    let inv = cfg.parent_blend / children.len() as f64;
    let mut new_theta = parent_theta;
    for (p, d) in new_theta.iter_mut().zip(&mean_delta) {
        *p += inv * d;
    }
    tree.node_mut(node).theta = new_theta;
    avg
}

/// Trains the sibling subtrees under one interior node on parallel
/// scoped threads. Each worker recurses over a clone of the tree with
/// its child's private RNG and no telemetry; after the join, every
/// subtree's updated `θ`s are merged back and the per-child
/// `meta.taml.node_loss` gauges are emitted — both in child order.
/// Returns the sum of the children's losses (added in child order).
#[allow(clippy::too_many_arguments)]
fn taml_children_parallel(
    tree: &mut LearningTaskTree,
    children: &[NodeId],
    child_seeds: &[u64],
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &TamlConfig,
    obs: &Obs,
) -> f64 {
    let mut results: Vec<(f64, LearningTaskTree)> = Vec::with_capacity(children.len());
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (&c, &seed) in children.iter().zip(child_seeds) {
            let tree_ref = &*tree;
            handles.push(scope.spawn(move |_| {
                let mut sub = tree_ref.clone();
                let mut crng = rng_for(seed, 0);
                let avg = taml_node(
                    &mut sub,
                    c,
                    tasks,
                    template,
                    loss,
                    cfg,
                    &mut crng,
                    &Obs::null(),
                );
                (avg, sub)
            }));
        }
        for h in handles {
            results.push(h.join().expect("taml child panicked"));
        }
    })
    .expect("crossbeam scope");

    let mut total = 0.0;
    for (&c, (avg, sub)) in children.iter().zip(results.iter_mut()) {
        for id in collect_subtree(sub, c) {
            tree.node_mut(id).theta = std::mem::take(&mut sub.node_mut(id).theta);
        }
        obs.gauge_idx("meta.taml.node_loss", *avg, Some(c as u64));
        total += *avg;
    }
    total
}

/// Node ids of the subtree rooted at `node` (depth-first, parents before
/// children).
fn collect_subtree(tree: &LearningTaskTree, node: NodeId) -> Vec<NodeId> {
    let mut out = vec![node];
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        for &c in &tree.node(n).children {
            out.push(c);
            stack.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtmc::{build_tree, GtmcConfig};
    use crate::meta_training::query_loss;
    use crate::similarity::SimMatrix;
    use tamp_core::rng::rng_for;
    use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
    use tamp_nn::{MseLoss, Seq2SeqConfig};

    /// Two families of workers: eastbound (ids 0–2) and northbound
    /// (ids 3–5) — a block structure for the tree.
    fn family_tasks() -> Vec<LearningTask> {
        (0..6u64)
            .map(|id| {
                let (dx, dy) = if id < 3 { (0.5, 0.0) } else { (0.0, 0.4) };
                let days: Vec<Routine> = (0..2)
                    .map(|d| {
                        Routine::from_sampled(
                            (0..16).map(|i| {
                                Point::new(
                                    1.0 + id as f64 + i as f64 * dx,
                                    1.0 + id as f64 * 0.5 + i as f64 * dy,
                                )
                            }),
                            Minutes::new(d as f64 * 1440.0),
                            Minutes::new(10.0),
                        )
                    })
                    .collect();
                let mut rng = rng_for(id, 4);
                LearningTask::from_history(
                    WorkerId(id),
                    &days,
                    vec![],
                    &Grid::PAPER,
                    2,
                    1,
                    0.7,
                    false,
                    &mut rng,
                )
            })
            .collect()
    }

    fn block_sim() -> SimMatrix {
        SimMatrix::from_fn(6, |i, j| if (i < 3) == (j < 3) { 0.9 } else { 0.05 })
    }

    #[test]
    fn taml_trains_every_node_and_reduces_loss() {
        let tasks = family_tasks();
        let mut rng = rng_for(1, 5);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(8), &mut rng);
        let cfg = GtmcConfig {
            k: 2,
            thresholds: vec![0.95],
            min_split: 2,
            seed: 3,
            ..GtmcConfig::default()
        };
        let mut tree = build_tree(6, &[block_sim()], &cfg, template.params());
        assert!(tree.len() >= 3, "expected a split tree");

        let refs: Vec<&LearningTask> = tasks.iter().collect();
        let before = query_loss(&template.params(), &refs, &template, &MseLoss);

        let tcfg = TamlConfig {
            meta: MetaConfig {
                iterations: 20,
                alpha: 0.03,
                beta: 0.05,
                ..MetaConfig::default()
            },
            parent_blend: 0.5,
        };
        let avg = taml_train(&mut tree, &tasks, &template, &MseLoss, &tcfg, &mut rng);
        assert!(avg.is_finite());

        // Every leaf θ moved away from the init and improves its cluster.
        for l in tree.leaves() {
            let node = tree.node(l);
            assert_ne!(node.theta, template.params(), "leaf {l} untrained");
            let members: Vec<&LearningTask> = node.members.iter().map(|&m| &tasks[m]).collect();
            let after = query_loss(&node.theta, &members, &template, &MseLoss);
            assert!(
                after < before,
                "leaf {l} loss {after} not below initial {before}"
            );
        }
        // The root θ also moved (interior update).
        assert_ne!(tree.node(tree.root()).theta, template.params());
    }

    #[test]
    fn taml_is_invariant_to_thread_count() {
        let tasks = family_tasks();
        let mut seed_rng = rng_for(7, 5);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut seed_rng);
        let cfg = GtmcConfig {
            k: 2,
            thresholds: vec![0.95],
            min_split: 2,
            seed: 3,
            ..GtmcConfig::default()
        };
        let base_tree = build_tree(6, &[block_sim()], &cfg, template.params());
        assert!(base_tree.len() >= 3, "expected a split tree");

        let run = |threads: usize| {
            let mut tree = base_tree.clone();
            let tcfg = TamlConfig {
                meta: MetaConfig {
                    iterations: 4,
                    adapt_steps: 2,
                    threads,
                    ..MetaConfig::default()
                },
                parent_blend: 0.5,
            };
            let mut rng = rng_for(11, 5);
            let avg = taml_train(&mut tree, &tasks, &template, &MseLoss, &tcfg, &mut rng);
            (avg, tree)
        };

        let (avg1, tree1) = run(1);
        for threads in [2usize, 4] {
            let (avg_n, tree_n) = run(threads);
            assert_eq!(avg_n, avg1, "loss drifted at threads={threads}");
            for id in 0..tree1.len() {
                assert_eq!(
                    tree_n.node(id).theta,
                    tree1.node(id).theta,
                    "node {id} theta drifted at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn single_node_tree_degenerates_to_meta_training() {
        let tasks = family_tasks();
        let mut rng = rng_for(2, 5);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let mut tree =
            crate::tree::LearningTaskTree::with_root((0..tasks.len()).collect(), template.params());
        let tcfg = TamlConfig::default();
        let avg = taml_train(&mut tree, &tasks, &template, &MseLoss, &tcfg, &mut rng);
        assert!(avg > 0.0);
        assert_ne!(tree.node(0).theta, template.params());
    }

    #[test]
    fn zero_blend_keeps_interior_theta() {
        let tasks = family_tasks();
        let mut rng = rng_for(3, 5);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let cfg = GtmcConfig {
            k: 2,
            thresholds: vec![0.95],
            min_split: 2,
            seed: 4,
            ..GtmcConfig::default()
        };
        let mut tree = build_tree(6, &[block_sim()], &cfg, template.params());
        let tcfg = TamlConfig {
            parent_blend: 0.0,
            ..TamlConfig::default()
        };
        taml_train(&mut tree, &tasks, &template, &MseLoss, &tcfg, &mut rng);
        assert_eq!(tree.node(tree.root()).theta, template.params());
    }
}

//! An LSTM cell with exact backpropagation through time.
//!
//! Gate layout follows the classic formulation (Graves 2012, the paper's
//! reference \[28\]):
//!
//! ```text
//! i = σ(W_i·[x; h] + b_i)      input gate
//! f = σ(W_f·[x; h] + b_f)      forget gate
//! g = tanh(W_g·[x; h] + b_g)   candidate
//! o = σ(W_o·[x; h] + b_o)      output gate
//! c' = f ⊙ c + i ⊙ g
//! h' = o ⊙ tanh(c')
//! ```
//!
//! The four gates are stored in one `(4H) × (I+H)` matrix (row blocks in
//! `i, f, g, o` order) plus a `4H` bias, which keeps the parameter
//! flattening used by the meta-learner trivial.

use crate::matrix::{matvec_colmajor_into, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

#[inline]
pub(crate) fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// The recurrent state `(h, c)` of an LSTM.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Vec<f64>,
    /// Cell vector.
    pub c: Vec<f64>,
}

impl LstmState {
    /// The all-zero initial state.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Everything the backward pass needs from one forward step.
#[derive(Debug, Clone)]
pub struct StepCache {
    /// Concatenated `[x; h_prev]`.
    pub z: Vec<f64>,
    /// Activated gates, each of length `H`.
    pub i: Vec<f64>,
    /// Forget gate.
    pub f: Vec<f64>,
    /// Candidate.
    pub g: Vec<f64>,
    /// Output gate.
    pub o: Vec<f64>,
    /// Cell state entering the step.
    pub c_prev: Vec<f64>,
    /// Cell state leaving the step.
    pub c: Vec<f64>,
    /// `tanh(c)` as computed by the forward step — the backward pass
    /// reuses it instead of re-evaluating the transcendental.
    pub tanh_c: Vec<f64>,
}

impl StepCache {
    /// An empty cache whose buffers grow on first use (workspace slot).
    pub fn empty() -> Self {
        Self {
            z: Vec::new(),
            i: Vec::new(),
            f: Vec::new(),
            g: Vec::new(),
            o: Vec::new(),
            c_prev: Vec::new(),
            c: Vec::new(),
            tanh_c: Vec::new(),
        }
    }
}

/// An LSTM cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmCell {
    input_dim: usize,
    hidden: usize,
    /// `(4H) × (I+H)` gate weights, row blocks `i, f, g, o`.
    pub w: Matrix,
    /// `4H` gate biases.
    pub b: Vec<f64>,
}

/// Gradients of an [`LstmCell`], same shapes as the parameters.
#[derive(Debug, Clone)]
pub struct LstmGrad {
    /// Gradient of `w`.
    pub dw: Matrix,
    /// Gradient of `b`.
    pub db: Vec<f64>,
}

impl LstmGrad {
    /// Zero gradients for a cell of the given shape.
    pub fn zeros(cell: &LstmCell) -> Self {
        Self {
            dw: Matrix::zeros(cell.w.rows(), cell.w.cols()),
            db: vec![0.0; cell.b.len()],
        }
    }
}

impl LstmCell {
    /// A new cell with Xavier weights and the forget-gate bias set to 1
    /// (the standard trick that keeps early gradients alive).
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let w = Matrix::xavier(4 * hidden, input_dim + hidden, rng);
        let mut b = vec![0.0; 4 * hidden];
        for bias in b.iter_mut().skip(hidden).take(hidden) {
            *bias = 1.0; // forget-gate block
        }
        Self {
            input_dim,
            hidden,
            w,
            b,
        }
    }

    /// Input dimension `I`.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimension `H`.
    #[inline]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// One forward step. Returns the new state and the cache needed by
    /// [`LstmCell::backward_step`].
    pub fn forward_step(&self, x: &[f64], state: &LstmState) -> (LstmState, StepCache) {
        let mut next = LstmState::zeros(self.hidden);
        let mut cache = StepCache::empty();
        let mut a = Vec::new();
        self.forward_step_ws(
            x,
            &state.h,
            &state.c,
            &mut next.h,
            &mut next.c,
            &mut cache,
            &mut a,
            &[],
        );
        (next, cache)
    }

    /// [`LstmCell::forward_step`] writing into caller-owned buffers: the
    /// next state goes to `h_out`/`c_out`, the step cache is rebuilt in
    /// place, and `a` is scratch for the fused `4H` gate pre-activation.
    /// Every buffer is resized as needed, so repeated calls allocate
    /// nothing once the buffers have grown. Arithmetic (one fused gate
    /// GEMM, then bias add) is bit-identical to the allocating version.
    ///
    /// `wt` is an optional column-major copy of `w` (from
    /// [`Matrix::transpose_into`]); pass it when the same weights are
    /// reused across many steps so the gate GEMM runs through the
    /// vectorisable [`matvec_colmajor_into`] — results are bit-identical
    /// either way. Pass `&[]` to use the row-major weights directly.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_step_ws(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
        h_out: &mut Vec<f64>,
        c_out: &mut Vec<f64>,
        cache: &mut StepCache,
        a: &mut Vec<f64>,
        wt: &[f64],
    ) {
        assert_eq!(x.len(), self.input_dim, "lstm input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden, "lstm state dim mismatch");
        let h = self.hidden;
        cache.z.clear();
        cache.z.extend_from_slice(x);
        cache.z.extend_from_slice(h_prev);

        a.resize(4 * h, 0.0);
        if wt.is_empty() {
            self.w.matvec_into(&cache.z, a);
        } else {
            matvec_colmajor_into(wt, 4 * h, self.input_dim + h, &cache.z, a);
        }
        for (av, bv) in a.iter_mut().zip(&self.b) {
            *av += bv;
        }

        cache.i.resize(h, 0.0);
        cache.f.resize(h, 0.0);
        cache.g.resize(h, 0.0);
        cache.o.resize(h, 0.0);
        for k in 0..h {
            cache.i[k] = sigmoid(a[k]);
            cache.f[k] = sigmoid(a[h + k]);
            cache.g[k] = a[2 * h + k].tanh();
            cache.o[k] = sigmoid(a[3 * h + k]);
        }

        c_out.resize(h, 0.0);
        h_out.resize(h, 0.0);
        cache.tanh_c.resize(h, 0.0);
        for k in 0..h {
            c_out[k] = cache.f[k] * c_prev[k] + cache.i[k] * cache.g[k];
            cache.tanh_c[k] = c_out[k].tanh();
            h_out[k] = cache.o[k] * cache.tanh_c[k];
        }

        cache.c_prev.clear();
        cache.c_prev.extend_from_slice(c_prev);
        cache.c.clear();
        cache.c.extend_from_slice(c_out);
    }

    /// One backward step of BPTT.
    ///
    /// `dh` is the gradient flowing into this step's hidden output (sum of
    /// the head gradient and the recurrent gradient from step `t+1`);
    /// `dc_next` the gradient into this step's cell output. Accumulates
    /// into `grad` and returns `(dx, dh_prev, dc_prev)`.
    pub fn backward_step(
        &self,
        cache: &StepCache,
        dh: &[f64],
        dc_next: &[f64],
        grad: &mut LstmGrad,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut da = Vec::new();
        let mut dz = Vec::new();
        let mut dh_prev = Vec::new();
        let mut dc_prev = Vec::new();
        self.backward_step_ws(
            cache,
            dh,
            dc_next,
            grad,
            &mut da,
            &mut dz,
            &mut dh_prev,
            &mut dc_prev,
        );
        let dx = dz[..self.input_dim].to_vec();
        (dx, dh_prev, dc_prev)
    }

    /// [`LstmCell::backward_step`] with caller-owned scratch: `da` holds
    /// the fused `4H` gate pre-activation gradient, `dz` the `I+H` input
    /// gradient (`dz[..I]` is `dx` if the caller wants it), and
    /// `dh_prev`/`dc_prev` the recurrent gradients. Buffers are resized in
    /// place; repeated calls allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_step_ws(
        &self,
        cache: &StepCache,
        dh: &[f64],
        dc_next: &[f64],
        grad: &mut LstmGrad,
        da: &mut Vec<f64>,
        dz: &mut Vec<f64>,
        dh_prev: &mut Vec<f64>,
        dc_prev: &mut Vec<f64>,
    ) {
        let h = self.hidden;
        assert_eq!(dh.len(), h);
        assert_eq!(dc_next.len(), h);

        da.resize(4 * h, 0.0);
        dc_prev.resize(h, 0.0);
        for k in 0..h {
            let tanh_c = cache.tanh_c[k];
            let do_ = dh[k] * tanh_c;
            let dc = dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c) + dc_next[k];
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];

            da[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            da[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            da[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            da[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }

        grad.dw.add_outer(1.0, da, &cache.z);
        for (gb, d) in grad.db.iter_mut().zip(da.iter()) {
            *gb += d;
        }

        dz.resize(self.input_dim + h, 0.0);
        self.w.matvec_t_into(da, dz);
        dh_prev.clear();
        dh_prev.extend_from_slice(&dz[self.input_dim..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = rng_for(1, 0);
        let cell = LstmCell::new(2, 4, &mut rng);
        let state = LstmState::zeros(4);
        let (next, cache) = cell.forward_step(&[0.3, -0.1], &state);
        assert_eq!(next.h.len(), 4);
        assert_eq!(next.c.len(), 4);
        assert_eq!(cache.z.len(), 6);
        // h = o·tanh(c) ∈ (−1, 1).
        assert!(next.h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = rng_for(2, 0);
        let cell = LstmCell::new(3, 5, &mut rng);
        assert!(cell.b[..5].iter().all(|&b| b == 0.0));
        assert!(cell.b[5..10].iter().all(|&b| b == 1.0));
        assert!(cell.b[10..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn zero_input_zero_state_gives_deterministic_output() {
        let mut rng = rng_for(3, 0);
        let cell = LstmCell::new(2, 3, &mut rng);
        let s = LstmState::zeros(3);
        let (a, _) = cell.forward_step(&[0.0, 0.0], &s);
        let (b, _) = cell.forward_step(&[0.0, 0.0], &s);
        assert_eq!(a, b);
    }

    /// Finite-difference gradient check of a single step: perturb every
    /// parameter and compare against the analytic gradient of a scalar
    /// objective `sum(h') + sum(c')`.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = rng_for(4, 0);
        let cell = LstmCell::new(2, 3, &mut rng);
        let state = LstmState {
            h: vec![0.1, -0.2, 0.05],
            c: vec![0.3, 0.0, -0.4],
        };
        let x = [0.7, -0.3];

        let objective = |cell: &LstmCell| -> f64 {
            let (s, _) = cell.forward_step(&x, &state);
            s.h.iter().sum::<f64>() + s.c.iter().sum::<f64>()
        };

        // Analytic gradient: dL/dh' = 1, dL/dc' = 1.
        let (_, cache) = cell.forward_step(&x, &state);
        let mut grad = LstmGrad::zeros(&cell);
        let ones = vec![1.0; 3];
        cell.backward_step(&cache, &ones, &ones, &mut grad);

        let eps = 1e-6;
        // Check a spread of weight entries.
        for &(r, c) in &[(0usize, 0usize), (3, 2), (6, 4), (11, 1), (5, 3)] {
            let mut plus = cell.clone();
            plus.w.set(r, c, plus.w.get(r, c) + eps);
            let mut minus = cell.clone();
            minus.w.set(r, c, minus.w.get(r, c) - eps);
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            let an = grad.dw.get(r, c);
            assert!((fd - an).abs() < 1e-6, "w[{r},{c}]: fd={fd}, analytic={an}");
        }
        // And the biases.
        for k in 0..12 {
            let mut plus = cell.clone();
            plus.b[k] += eps;
            let mut minus = cell.clone();
            minus.b[k] -= eps;
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            assert!(
                (fd - grad.db[k]).abs() < 1e-6,
                "b[{k}]: fd={fd}, analytic={}",
                grad.db[k]
            );
        }
    }

    /// The fused `[4H × (I+H)]` gate GEMM must agree with a naive unfused
    /// reference (four separate per-gate H×(I+H) matrix–vector products)
    /// on both the forward activations and the backward gradients, to
    /// ≤ 1e-10 (they are in fact bit-identical: each output row's
    /// accumulation chain is the same).
    #[test]
    fn fused_gates_match_unfused_reference() {
        let mut rng = rng_for(6, 0);
        let cell = LstmCell::new(3, 5, &mut rng);
        let (id, h) = (3usize, 5usize);
        let state = LstmState {
            h: vec![0.12, -0.34, 0.56, -0.08, 0.21],
            c: vec![-0.4, 0.3, 0.0, 0.25, -0.15],
        };
        let x = [0.6, -0.2, 0.45];

        // ---- unfused forward: one matvec per gate block ----
        let gate_rows = |block: usize| -> Matrix {
            Matrix::from_fn(h, id + h, |r, c| cell.w.get(block * h + r, c))
        };
        let (wi, wf, wg, wo) = (gate_rows(0), gate_rows(1), gate_rows(2), gate_rows(3));
        let mut z = x.to_vec();
        z.extend_from_slice(&state.h);
        let ai = wi.matvec(&z);
        let af = wf.matvec(&z);
        let ag = wg.matvec(&z);
        let ao = wo.matvec(&z);
        let mut h_ref = vec![0.0; h];
        let mut c_ref = vec![0.0; h];
        let mut gates_ref = (vec![0.0; h], vec![0.0; h], vec![0.0; h], vec![0.0; h]);
        for k in 0..h {
            let i = sigmoid(ai[k] + cell.b[k]);
            let f = sigmoid(af[k] + cell.b[h + k]);
            let g = (ag[k] + cell.b[2 * h + k]).tanh();
            let o = sigmoid(ao[k] + cell.b[3 * h + k]);
            c_ref[k] = f * state.c[k] + i * g;
            h_ref[k] = o * c_ref[k].tanh();
            gates_ref.0[k] = i;
            gates_ref.1[k] = f;
            gates_ref.2[k] = g;
            gates_ref.3[k] = o;
        }

        let (next, cache) = cell.forward_step(&x, &state);
        for k in 0..h {
            assert!((next.h[k] - h_ref[k]).abs() <= 1e-10, "h[{k}]");
            assert!((next.c[k] - c_ref[k]).abs() <= 1e-10, "c[{k}]");
            assert!((cache.i[k] - gates_ref.0[k]).abs() <= 1e-10);
            assert!((cache.f[k] - gates_ref.1[k]).abs() <= 1e-10);
            assert!((cache.g[k] - gates_ref.2[k]).abs() <= 1e-10);
            assert!((cache.o[k] - gates_ref.3[k]).abs() <= 1e-10);
        }

        // ---- unfused backward: per-gate outer products + transposed
        //      per-gate matvecs, against the fused backward_step ----
        let dh: Vec<f64> = (0..h).map(|k| 0.3 - 0.1 * k as f64).collect();
        let dc_next: Vec<f64> = (0..h).map(|k| -0.2 + 0.07 * k as f64).collect();
        let mut grad = LstmGrad::zeros(&cell);
        let (dx, dh_prev, dc_prev) = cell.backward_step(&cache, &dh, &dc_next, &mut grad);

        let mut da = vec![0.0; 4 * h];
        let mut dc_prev_ref = vec![0.0; h];
        for k in 0..h {
            let tanh_c = cache.c[k].tanh();
            let do_ = dh[k] * tanh_c;
            let dc = dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c) + dc_next[k];
            dc_prev_ref[k] = dc * cache.f[k];
            da[k] = dc * cache.g[k] * cache.i[k] * (1.0 - cache.i[k]);
            da[h + k] = dc * cache.c_prev[k] * cache.f[k] * (1.0 - cache.f[k]);
            da[2 * h + k] = dc * cache.i[k] * (1.0 - cache.g[k] * cache.g[k]);
            da[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }
        let mut dz_ref = vec![0.0; id + h];
        for (block, w) in [&wi, &wf, &wg, &wo].iter().enumerate() {
            let part = w.matvec_t(&da[block * h..(block + 1) * h]);
            for (acc, v) in dz_ref.iter_mut().zip(&part) {
                *acc += v;
            }
        }
        for k in 0..id {
            assert!((dx[k] - dz_ref[k]).abs() <= 1e-10, "dx[{k}]");
        }
        for k in 0..h {
            assert!((dh_prev[k] - dz_ref[id + k]).abs() <= 1e-10, "dh_prev[{k}]");
            assert!((dc_prev[k] - dc_prev_ref[k]).abs() <= 1e-10, "dc_prev[{k}]");
        }
        for (r, &dar) in da.iter().enumerate() {
            for c in 0..id + h {
                let unfused = dar * cache.z[c];
                assert!((grad.dw.get(r, c) - unfused).abs() <= 1e-10, "dw[{r},{c}]");
            }
            assert!((grad.db[r] - dar).abs() <= 1e-10, "db[{r}]");
        }
    }

    /// Workspace-based steps with dirty reused buffers must reproduce the
    /// fresh-allocation path exactly.
    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        let mut rng = rng_for(7, 0);
        let cell = LstmCell::new(2, 4, &mut rng);
        let s0 = LstmState::zeros(4);
        let inputs = [[0.4, -0.3], [0.1, 0.9], [-0.7, 0.2]];

        // Fresh-allocation reference over the sequence.
        let mut state = s0.clone();
        let mut ref_caches = Vec::new();
        for x in &inputs {
            let (next, cache) = cell.forward_step(x, &state);
            ref_caches.push(cache);
            state = next;
        }
        let ref_final = state;

        // Workspace path: one set of buffers reused across the sequence
        // (pre-dirtied with junk values).
        let mut cache = StepCache::empty();
        cache.z = vec![9.9; 17];
        let mut a = vec![7.7; 3];
        // Drive the workspace path through the column-major GEMM so this
        // test also pins its bit-equality to the allocating reference.
        let mut wt = Vec::new();
        cell.w.transpose_into(&mut wt);
        let (mut h, mut c) = (s0.h.clone(), s0.c.clone());
        let (mut h_out, mut c_out) = (vec![1.0; 9], vec![2.0; 1]);
        for (t, x) in inputs.iter().enumerate() {
            cell.forward_step_ws(x, &h, &c, &mut h_out, &mut c_out, &mut cache, &mut a, &wt);
            assert_eq!(cache.z, ref_caches[t].z, "step {t} cache.z");
            assert_eq!(cache.i, ref_caches[t].i, "step {t} cache.i");
            assert_eq!(cache.c, ref_caches[t].c, "step {t} cache.c");
            std::mem::swap(&mut h, &mut h_out);
            std::mem::swap(&mut c, &mut c_out);
        }
        assert_eq!(h, ref_final.h);
        assert_eq!(c, ref_final.c);

        // Backward with dirty scratch matches the allocating backward.
        let ones = vec![1.0; 4];
        let mut grad_ref = LstmGrad::zeros(&cell);
        let (_, dhp_ref, dcp_ref) = cell.backward_step(&ref_caches[2], &ones, &ones, &mut grad_ref);
        let mut grad_ws = LstmGrad::zeros(&cell);
        let (mut da, mut dz) = (vec![3.0; 2], vec![4.0; 40]);
        let (mut dhp, mut dcp) = (vec![5.0; 7], vec![6.0; 3]);
        cell.backward_step_ws(
            &ref_caches[2],
            &ones,
            &ones,
            &mut grad_ws,
            &mut da,
            &mut dz,
            &mut dhp,
            &mut dcp,
        );
        assert_eq!(dhp, dhp_ref);
        assert_eq!(dcp, dcp_ref);
        assert_eq!(grad_ws.dw, grad_ref.dw);
        assert_eq!(grad_ws.db, grad_ref.db);
    }

    /// The input/state gradients must match finite differences too.
    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = rng_for(5, 0);
        let cell = LstmCell::new(2, 3, &mut rng);
        let state = LstmState {
            h: vec![0.05, -0.15, 0.2],
            c: vec![-0.1, 0.25, 0.0],
        };
        let x = [0.4, 0.9];

        let objective = |x: &[f64], state: &LstmState| -> f64 {
            let (s, _) = cell.forward_step(x, state);
            s.h.iter().sum::<f64>() + s.c.iter().sum::<f64>()
        };

        let (_, cache) = cell.forward_step(&x, &state);
        let mut grad = LstmGrad::zeros(&cell);
        let ones = vec![1.0; 3];
        let (dx, dh_prev, dc_prev) = cell.backward_step(&cache, &ones, &ones, &mut grad);

        let eps = 1e-6;
        for k in 0..2 {
            let mut xp = x;
            xp[k] += eps;
            let mut xm = x;
            xm[k] -= eps;
            let fd = (objective(&xp, &state) - objective(&xm, &state)) / (2.0 * eps);
            assert!((fd - dx[k]).abs() < 1e-6, "dx[{k}]");
        }
        for k in 0..3 {
            let mut sp = state.clone();
            sp.h[k] += eps;
            let mut sm = state.clone();
            sm.h[k] -= eps;
            let fd = (objective(&x, &sp) - objective(&x, &sm)) / (2.0 * eps);
            assert!((fd - dh_prev[k]).abs() < 1e-6, "dh_prev[{k}]");

            let mut sp = state.clone();
            sp.c[k] += eps;
            let mut sm = state.clone();
            sm.c[k] -= eps;
            let fd = (objective(&x, &sp) - objective(&x, &sm)) / (2.0 * eps);
            assert!((fd - dc_prev[k]).abs() < 1e-6, "dc_prev[{k}]");
        }
    }
}

//! Regenerates **Fig. 6** of the paper: effect of worker detour d (workload 1).

use tamp_bench::{
    default_engine, default_training, out_dir, print_assignment, scale_from_env, seed_from_env,
};
use tamp_platform::experiments::{detour_sweep, save_json, SweepConfig};
use tamp_sim::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Fig. 6: effect of worker detour d (workload 1, {} workers, seed {seed})",
        scale.n_workers
    );
    let cfg = SweepConfig {
        kind: WorkloadKind::PortoDidi,
        scale,
        seed,
        training: default_training(seed),
        engine: default_engine(seed),
    };
    let rows = detour_sweep(&cfg, &[2.0, 4.0, 6.0, 8.0, 10.0]);
    print_assignment(&rows);
    save_json(
        &out_dir().join("fig6.json"),
        "fig6_detour_sweep_workload1",
        &rows,
    )
    .expect("write rows");
}

//! One engine shard: a city/workload's worth of assignment state behind
//! a bounded submission queue.
//!
//! A shard is the unit of parallelism in the serve host — shards share
//! nothing, so the host can step any subset of them concurrently. Each
//! shard owns its workload, its trained predictors, an incremental
//! [`EngineState`], and the per-worker report logs that stand in for
//! the ground-truth routines the one-shot engine reads directly: the
//! engine only ever sees reports that made it through the queue.

use crate::event::{EventStream, ShardEvent};
use crate::queue::BoundedQueue;
use tamp_core::{EngineError, SpatialTask, TimedPoint};
use tamp_obs::Obs;
use tamp_platform::engine::{AssignmentAlgo, EngineConfig, EngineState, StepCtx};
use tamp_platform::faults::{FaultConfig, FaultPlan};
use tamp_platform::metrics::BatchRecord;
use tamp_platform::predcache::CacheStats;
use tamp_platform::training::TrainedPredictors;
use tamp_sim::Workload;

/// Per-shard serving configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Assignment algorithm the shard runs each window.
    pub algo: AssignmentAlgo,
    /// Engine knobs (batch cadence, PPI parameters, prediction cache…).
    pub engine: EngineConfig,
    /// Optional fault injection (the PR 1 ladder) for resilience drills.
    pub faults: Option<FaultConfig>,
    /// Submission-queue capacity; bursts beyond it are shed (counted,
    /// never silent — see [`crate::queue`]).
    pub queue_capacity: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            algo: AssignmentAlgo::Ppi,
            engine: EngineConfig {
                // Serving is exactly the setting the cross-batch cache
                // exists for; one-shot experiment runs leave it off.
                prediction_cache: true,
                ..EngineConfig::default()
            },
            faults: None,
            queue_capacity: 4096,
        }
    }
}

/// Cumulative submission accounting for one shard, split by event kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SubmissionCounts {
    /// Task events accepted into the queue.
    pub submitted_tasks: usize,
    /// Report events accepted into the queue.
    pub submitted_reports: usize,
    /// Task events refused by a full queue.
    pub shed_tasks: usize,
    /// Report events refused by a full queue.
    pub shed_reports: usize,
}

impl SubmissionCounts {
    /// Everything offered to the queue, accepted or not.
    pub fn offered(&self) -> usize {
        self.submitted_tasks + self.submitted_reports + self.shed_tasks + self.shed_reports
    }

    /// Everything refused by the queue.
    pub fn shed(&self) -> usize {
        self.shed_tasks + self.shed_reports
    }
}

/// One engine shard (see the module docs).
pub struct Shard {
    name: String,
    workload: Workload,
    predictors: Option<TrainedPredictors>,
    cfg: ShardConfig,
    fplan: Option<FaultPlan>,
    state: EngineState,
    queue: BoundedQueue<ShardEvent>,
    stream: EventStream,
    /// Per-worker location reports received so far (the engine's
    /// observation source on the serve path).
    logs: Vec<Vec<TimedPoint>>,
    counts: SubmissionCounts,
    trace: Vec<BatchRecord>,
    step_seconds: Vec<f64>,
}

impl Shard {
    /// Builds a shard around `workload`, validating the engine and
    /// fault configuration exactly like the one-shot entry points.
    pub fn new(
        name: impl Into<String>,
        workload: Workload,
        predictors: Option<TrainedPredictors>,
        cfg: ShardConfig,
    ) -> Result<Self, EngineError> {
        if let Some(fc) = &cfg.faults {
            fc.validate().map_err(EngineError::InvalidEngineConfig)?;
        }
        let state = EngineState::new(&workload, predictors.as_ref(), cfg.algo, &cfg.engine)?;
        let fplan = cfg
            .faults
            .as_ref()
            .filter(|fc| !fc.is_none())
            .map(|fc| FaultPlan::build(&workload, fc));
        let stream = EventStream::from_workload(&workload);
        let queue = BoundedQueue::new(cfg.queue_capacity);
        let logs = vec![Vec::new(); workload.workers.len()];
        Ok(Self {
            name: name.into(),
            workload,
            predictors,
            cfg,
            fplan,
            state,
            queue,
            stream,
            logs,
            counts: SubmissionCounts::default(),
            trace: Vec::new(),
            step_seconds: Vec::new(),
        })
    }

    /// Shard name (for telemetry and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the shard's simulated day is over.
    pub fn done(&self) -> bool {
        self.state.now() >= self.workload.horizon.as_f64()
    }

    /// End of the next batch window, minutes.
    pub fn next_window_end(&self) -> f64 {
        self.state.next_window_end(&self.cfg.engine)
    }

    /// Batch window length, minutes (for pacing).
    pub fn window_min(&self) -> f64 {
        self.cfg.engine.batch_window_min
    }

    /// Feeds the next window's worth of replayed events into the
    /// submission queue, shedding (and counting) what the bound refuses.
    pub fn feed_window(&mut self) {
        let end = self.state.next_window_end(&self.cfg.engine);
        for ev in self.stream.take_until(end) {
            let is_task = matches!(ev, ShardEvent::Task(_));
            match self.queue.try_push(*ev) {
                Ok(()) => {
                    if is_task {
                        self.counts.submitted_tasks += 1;
                    } else {
                        self.counts.submitted_reports += 1;
                    }
                }
                Err(_) => {
                    if is_task {
                        self.counts.shed_tasks += 1;
                    } else {
                        self.counts.shed_reports += 1;
                    }
                }
            }
        }
    }

    /// Drains the queued events belonging to the next window and steps
    /// the engine one batch. Returns the batch record (also kept in the
    /// shard's trace).
    pub fn step_window(&mut self, obs: &Obs) -> BatchRecord {
        let end = self.state.next_window_end(&self.cfg.engine);
        let mut admitted: Vec<SpatialTask> = Vec::new();
        while let Some(ev) = self.queue.pop_if(|ev| ev.time() < end) {
            match ev {
                ShardEvent::Task(task) => admitted.push(task),
                ShardEvent::Report { worker, point } => {
                    if let Some(log) = self.logs.get_mut(worker) {
                        log.push(point);
                    }
                }
            }
        }
        let started = std::time::Instant::now();
        let ctx = StepCtx {
            workload: &self.workload,
            predictors: self.predictors.as_ref(),
            algo: self.cfg.algo,
            cfg: &self.cfg.engine,
            fplan: self.fplan.as_ref(),
            // Under fault injection the received streams are defined by
            // the plan; the report log is the clean-path source.
            reports: Some(&self.logs),
            obs,
        };
        let record = self.state.step_batch(&ctx, &admitted);
        self.step_seconds.push(started.elapsed().as_secs_f64());
        self.trace.push(record);
        record
    }

    /// Cumulative submission accounting.
    pub fn counts(&self) -> SubmissionCounts {
        self.counts
    }

    /// Events still queued (not yet drained into a window).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Replay events not yet offered to the queue.
    pub fn unfed(&self) -> usize {
        self.stream.remaining()
    }

    /// Total events in the shard's replay stream.
    pub fn stream_total(&self) -> usize {
        self.stream.total()
    }

    /// Tasks admitted and still live inside the engine.
    pub fn pending_len(&self) -> usize {
        self.state.pending_len()
    }

    /// Batch windows stepped so far.
    pub fn windows_run(&self) -> u64 {
        self.state.batches_run()
    }

    /// Prediction-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache_stats()
    }

    /// The engine metrics accumulated so far (in-progress view).
    pub fn metrics(&self) -> &tamp_platform::metrics::AssignmentMetrics {
        self.state.metrics()
    }

    /// Per-window wall-clock step latencies, seconds.
    pub fn step_seconds(&self) -> &[f64] {
        &self.step_seconds
    }

    /// Per-window batch records collected so far.
    pub fn trace(&self) -> &[BatchRecord] {
        &self.trace
    }

    /// Consumes the shard, finishing the engine run (flushes `obs`) and
    /// returning the final metrics plus the collected trace.
    pub fn finish(
        self,
        obs: &Obs,
    ) -> (
        tamp_platform::metrics::AssignmentMetrics,
        Vec<BatchRecord>,
        SubmissionCounts,
    ) {
        (self.state.finish(obs), self.trace, self.counts)
    }
}

//! The cross-batch prediction cache is a pure optimisation: with
//! `prediction_cache: true` every run must be **byte-identical** to the
//! uncached run — same assignments, same rejections, same detours, same
//! per-batch trace — across algorithms, seeds, online adaptation, and
//! fault injection. These tests enforce that, plus the cache-counter
//! bookkeeping.

use tamp_meta::meta_training::MetaConfig;
use tamp_platform::engine::{
    run_assignment_traced, run_assignment_with_faults_traced, OnlineAdaptConfig,
};
use tamp_platform::{
    train_predictors, AssignmentAlgo, AssignmentMetrics, BatchRecord, EngineConfig, FaultConfig,
    LossKind, PredictionAlgo, TrainedPredictors, TrainingConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_predictors(w: &Workload, seed: u64) -> TrainedPredictors {
    train_predictors(
        w,
        &TrainingConfig {
            algo: PredictionAlgo::Maml,
            loss: LossKind::Mse,
            hidden: 6,
            seq_in: 3,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            adapt_steps: 2,
            seed,
            ..TrainingConfig::default()
        },
    )
}

fn engine(cache: bool) -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        prediction_cache: cache,
        ..EngineConfig::default()
    }
}

fn mixed_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        report_loss: 0.2,
        report_delay: 0.15,
        max_delay_min: 12.0,
        gps_noise_km: 0.05,
        corrupt_coord: 0.05,
        offline_worker: 0.2,
        offline_window_min: 40.0,
        prediction_failure: 0.2,
        prediction_garbage: 0.05,
        adapt_poison: 0.2,
        shard_crash: 0.0,
        seed,
    }
}

/// The assignment-visible fields of two metrics must match bit for bit
/// (wall-clock timings and cache counters legitimately differ).
fn assert_same_outcome(a: &AssignmentMetrics, b: &AssignmentMetrics, what: &str) {
    assert_eq!(a.tasks_total, b.tasks_total, "{what}: tasks_total");
    assert_eq!(a.assigned_total, b.assigned_total, "{what}: assigned_total");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.rejected, b.rejected, "{what}: rejected");
    assert_eq!(a.tasks_expired, b.tasks_expired, "{what}: tasks_expired");
    assert_eq!(a.invalid_pairs, b.invalid_pairs, "{what}: invalid_pairs");
    assert_eq!(
        a.dropped_reports, b.dropped_reports,
        "{what}: dropped_reports"
    );
    assert_eq!(a.fallback_views, b.fallback_views, "{what}: fallback_views");
    assert_eq!(
        a.quarantined_models, b.quarantined_models,
        "{what}: quarantined_models"
    );
    assert_eq!(
        a.total_detour_km.to_bits(),
        b.total_detour_km.to_bits(),
        "{what}: total_detour_km bits"
    );
}

/// Per-batch traces must match on every assignment-visible field.
fn assert_same_trace(a: &[BatchRecord], b: &[BatchRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: batch count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.t_min.to_bits(), rb.t_min.to_bits(), "{what}[{i}]: t_min");
        assert_eq!(ra.pending, rb.pending, "{what}[{i}]: pending");
        assert_eq!(
            ra.idle_workers, rb.idle_workers,
            "{what}[{i}]: idle_workers"
        );
        assert_eq!(ra.proposed, rb.proposed, "{what}[{i}]: proposed");
        assert_eq!(ra.accepted, rb.accepted, "{what}[{i}]: accepted");
        assert_eq!(ra.rejected, rb.rejected, "{what}[{i}]: rejected");
        assert_eq!(ra.expired, rb.expired, "{what}[{i}]: expired");
        assert_eq!(
            ra.dropped_reports, rb.dropped_reports,
            "{what}[{i}]: dropped_reports"
        );
        assert_eq!(
            ra.fallback_views, rb.fallback_views,
            "{what}[{i}]: fallback_views"
        );
        assert_eq!(
            ra.invalid_pairs, rb.invalid_pairs,
            "{what}[{i}]: invalid_pairs"
        );
        assert_eq!(
            ra.quarantined_models, rb.quarantined_models,
            "{what}[{i}]: quarantined_models"
        );
    }
}

#[test]
fn cached_run_is_byte_identical_across_seeds_and_algos() {
    for seed in [3, 11] {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        for algo in [AssignmentAlgo::Ppi, AssignmentAlgo::Km] {
            let mut cold_trace = Vec::new();
            let mut warm_trace = Vec::new();
            let cold = run_assignment_traced(&w, Some(&p), algo, &engine(false), &mut cold_trace);
            let warm = run_assignment_traced(&w, Some(&p), algo, &engine(true), &mut warm_trace);
            let what = format!("seed {seed} {algo:?}");
            assert_same_outcome(&cold, &warm, &what);
            assert_same_trace(&cold_trace, &warm_trace, &what);
            assert_eq!(
                cold.cache_hits, 0,
                "{what}: cold run must not touch a cache"
            );
            assert!(
                warm.cache_hits > 0,
                "{what}: a full day at 2-min windows over 10-min reports must reuse rollouts"
            );
        }
    }
}

#[test]
fn cache_is_invalidated_by_online_adaptation_and_stays_identical() {
    let seed = 7;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let adapt = Some(OnlineAdaptConfig {
        every_min: 60.0,
        steps: 1,
        lr: 0.01,
    });
    let cold_cfg = EngineConfig {
        online_adapt: adapt,
        ..engine(false)
    };
    let warm_cfg = EngineConfig {
        online_adapt: adapt,
        ..engine(true)
    };
    let mut cold_trace = Vec::new();
    let mut warm_trace = Vec::new();
    let cold = run_assignment_traced(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &cold_cfg,
        &mut cold_trace,
    );
    let warm = run_assignment_traced(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &warm_cfg,
        &mut warm_trace,
    );
    assert_same_outcome(&cold, &warm, "online adapt");
    assert_same_trace(&cold_trace, &warm_trace, "online adapt");
    assert!(
        warm.cache_invalidations > 0,
        "every adaptation round must blanket-invalidate the cache"
    );
    // tiny: 240-minute day, adaptation every 60 → 3 in-day rounds fire.
    let invalidating_batches = warm_trace
        .iter()
        .filter(|r| r.cache_invalidations > 0)
        .count();
    assert!(invalidating_batches >= 2, "expected repeated invalidation");
}

#[test]
fn cache_is_byte_identical_under_fault_injection() {
    for seed in [5, 23] {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        let faults = mixed_faults(seed ^ 0xF0F0);
        let adapt_cfg = |cache| EngineConfig {
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..engine(cache)
        };
        let mut cold_trace = Vec::new();
        let mut warm_trace = Vec::new();
        let cold = run_assignment_with_faults_traced(
            &w,
            Some(&p),
            AssignmentAlgo::Ppi,
            &adapt_cfg(false),
            &faults,
            &mut cold_trace,
        )
        .unwrap();
        let warm = run_assignment_with_faults_traced(
            &w,
            Some(&p),
            AssignmentAlgo::Ppi,
            &adapt_cfg(true),
            &faults,
            &mut warm_trace,
        )
        .unwrap();
        let what = format!("faulted seed {seed}");
        assert_same_outcome(&cold, &warm, &what);
        assert_same_trace(&cold_trace, &warm_trace, &what);
    }
}

#[test]
fn cache_hit_pattern_is_unchanged_by_kernel_backend() {
    // The prediction cache sits *in front of* the rollout kernels: which
    // windows hit, miss, or invalidate is decided by report freshness and
    // model versions, never by how the misses are computed. Swapping the
    // kernel backend or the GEMM batch width must therefore leave the
    // per-batch cache counters untouched — and the scalar backend must
    // additionally stay byte-identical to the serial baseline.
    use tamp_platform::KernelBackend;
    let w = tiny_workload(17);
    let p = quick_predictors(&w, 17);
    let mut traces = Vec::new();
    let mut metrics = Vec::new();
    for (backend, batch) in [
        (KernelBackend::Scalar, 1),
        (KernelBackend::Scalar, 64),
        (KernelBackend::Batched, 64),
    ] {
        let cfg = EngineConfig {
            kernel: backend,
            rollout_batch: batch,
            ..engine(true)
        };
        let mut trace = Vec::new();
        let m = run_assignment_traced(&w, Some(&p), AssignmentAlgo::Ppi, &cfg, &mut trace);
        traces.push(trace);
        metrics.push(m);
    }
    assert!(
        metrics[0].cache_hits > 0,
        "baseline must exercise the cache"
    );
    for (i, (t, m)) in traces.iter().zip(&metrics).enumerate().skip(1) {
        assert_eq!(t.len(), traces[0].len(), "variant {i}: batch count");
        for (bi, (ra, rb)) in traces[0].iter().zip(t).enumerate() {
            assert_eq!(ra.cache_hits, rb.cache_hits, "variant {i}[{bi}]: hits");
            assert_eq!(
                ra.cache_misses, rb.cache_misses,
                "variant {i}[{bi}]: misses"
            );
            assert_eq!(
                ra.cache_invalidations, rb.cache_invalidations,
                "variant {i}[{bi}]: invalidations"
            );
        }
        assert_eq!(m.cache_hits, metrics[0].cache_hits, "variant {i}: hits");
        assert_eq!(
            m.cache_misses, metrics[0].cache_misses,
            "variant {i}: misses"
        );
    }
    assert_same_outcome(&metrics[0], &metrics[1], "scalar batch=64");
    assert_same_trace(&traces[0], &traces[1], "scalar batch=64");
}

#[test]
fn cache_counters_reconcile_with_the_trace() {
    let w = tiny_workload(13);
    let p = quick_predictors(&w, 13);
    let mut trace = Vec::new();
    let m = run_assignment_traced(&w, Some(&p), AssignmentAlgo::Ppi, &engine(true), &mut trace);
    let hits: usize = trace.iter().map(|r| r.cache_hits).sum();
    let misses: usize = trace.iter().map(|r| r.cache_misses).sum();
    let inv: usize = trace.iter().map(|r| r.cache_invalidations).sum();
    assert_eq!(hits, m.cache_hits);
    assert_eq!(misses, m.cache_misses);
    assert_eq!(inv, m.cache_invalidations);
    assert!(misses > 0, "first window can never hit");
}

#[test]
fn expired_tasks_partition_with_completed_and_pending_ones() {
    // Conservation (clean run, no shedding layer): every published task
    // ends the day completed, expired, or still pending at the horizon
    // (a deadline can outlive the day). Driving EngineState directly
    // exposes the pending pool the one-shot wrapper hides.
    use tamp_obs::Obs;
    use tamp_platform::engine::{EngineState, StepCtx};
    let w = tiny_workload(29);
    let p = quick_predictors(&w, 29);
    let cfg = engine(true);
    let obs = Obs::null();
    let mut state = EngineState::new(&w, Some(&p), AssignmentAlgo::Ppi, &cfg).unwrap();
    let ctx = StepCtx {
        workload: &w,
        predictors: Some(&p),
        algo: AssignmentAlgo::Ppi,
        cfg: &cfg,
        fplan: None,
        reports: None,
        degrade: false,
        obs: &obs,
    };
    let mut next = 0usize;
    while state.now() < w.horizon.as_f64() {
        let end = state.next_window_end(&cfg);
        let from = next;
        while next < w.tasks.len() && w.tasks[next].release.as_f64() < end {
            next += 1;
        }
        state.step_batch(&ctx, &w.tasks[from..next]);
    }
    let pending = state.pending_len();
    let m = state.finish(&obs);
    assert_eq!(m.completed + m.tasks_expired + pending, m.tasks_total);
}

//! Property-based tests for the neural substrate.

use proptest::prelude::*;
use rand::Rng;
use tamp_core::rng::rng_for;
use tamp_nn::loss::Pt2;
use tamp_nn::matrix::vecops;
use tamp_nn::{
    predict_batch_into, BatchTape, BatchedRollout, DeltaWeights, KernelBackend, Loss, Matrix,
    MseLoss, Seq2Seq, Seq2SeqConfig, TrainBatch,
};

fn random_walk(seed: u64, stream: u64, len: usize) -> Vec<Pt2> {
    let mut rng = rng_for(seed, stream);
    let mut p: Pt2 = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
    (0..len)
        .map(|_| {
            p = [
                p[0] + rng.gen_range(-0.1..0.1),
                p[1] + rng.gen_range(-0.1..0.1),
            ];
            p
        })
        .collect()
}

fn point_bits(seq: &[Pt2]) -> Vec<(u64, u64)> {
    seq.iter()
        .map(|p| (p[0].to_bits(), p[1].to_bits()))
        .collect()
}

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #[test]
    fn matvec_is_linear(a in finite_vec(12), x in finite_vec(4), y in finite_vec(4), alpha in -3.0..3.0f64) {
        let m = Matrix::from_rows(3, 4, a);
        // M(x + αy) = Mx + αMy
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| xi + alpha * yi).collect();
        let lhs = m.matvec(&combo);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..3 {
            prop_assert!((lhs[i] - (mx[i] + alpha * my[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_t_is_adjoint(a in finite_vec(12), x in finite_vec(4), y in finite_vec(3)) {
        // ⟨Mx, y⟩ = ⟨x, Mᵀy⟩
        let m = Matrix::from_rows(3, 4, a);
        let lhs = vecops::dot(&m.matvec(&x), &y);
        let rhs = vecops::dot(&x, &m.matvec_t(&y));
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn cosine_bounded(a in finite_vec(8), b in finite_vec(8)) {
        let c = vecops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn mse_non_negative_and_zero_at_target(p in -2.0..2.0f64, q in -2.0..2.0f64, n in 1usize..6) {
        let pred: Pt2 = [p, q];
        let (l, _) = MseLoss.step(pred, pred, n);
        prop_assert_eq!(l, 0.0);
        let (l2, _) = MseLoss.step(pred, [q, p], n);
        prop_assert!(l2 >= 0.0);
    }

    #[test]
    fn mse_gradient_descends(px in -1.0..1.0f64, py in -1.0..1.0f64, tx in -1.0..1.0f64, ty in -1.0..1.0f64) {
        // Stepping opposite the gradient must not increase the loss.
        let pred: Pt2 = [px, py];
        let target: Pt2 = [tx, ty];
        let (l, g) = MseLoss.step(pred, target, 1);
        let stepped: Pt2 = [pred[0] - 0.01 * g[0], pred[1] - 0.01 * g[1]];
        let (l2, _) = MseLoss.step(stepped, target, 1);
        prop_assert!(l2 <= l + 1e-12);
    }

    #[test]
    fn seq2seq_params_round_trip(seed in 0u64..500) {
        let mut rng = rng_for(seed, 3);
        let model = Seq2Seq::new(Seq2SeqConfig::lstm(4), &mut rng);
        let p = model.params();
        let mut rng2 = rng_for(seed + 1, 3);
        let mut clone = Seq2Seq::new(Seq2SeqConfig::lstm(4), &mut rng2);
        clone.set_params(&p);
        prop_assert_eq!(clone.params(), p);
    }

    #[test]
    fn seq2seq_outputs_finite(seed in 0u64..200, len_in in 1usize..6, len_out in 1usize..4) {
        let mut rng = rng_for(seed, 4);
        let model = Seq2Seq::new(Seq2SeqConfig::lstm(5), &mut rng);
        let input: Vec<Pt2> = (0..len_in).map(|i| [i as f64 * 0.1, 0.5]).collect();
        let out = model.predict(&input, len_out);
        prop_assert_eq!(out.len(), len_out);
        for p in out {
            prop_assert!(p[0].is_finite() && p[1].is_finite());
        }
    }

    #[test]
    fn batched_rollout_matches_serial_across_fleet_shapes(
        seed in 0u64..48,
        hidden in prop::sample::select(vec![3usize, 5, 8]),
        n_lanes in 1usize..10,
        horizon in 1usize..5,
    ) {
        // Ragged fleet: each lane draws its own prefix length, the
        // planner groups same-length lanes, and both backends must agree
        // with the serial per-worker rollout — scalar bitwise, batched
        // within tolerance.
        let mut rng = rng_for(seed, 11);
        let base = Seq2Seq::new(Seq2SeqConfig::lstm(hidden), &mut rng);
        let seqs: Vec<Vec<Pt2>> = (0..n_lanes)
            .map(|i| random_walk(seed ^ 0xABCD, i as u64, 1 + (seed as usize + i) % 6))
            .collect();
        let mut plan = BatchedRollout::new();
        for (lane, s) in seqs.iter().enumerate() {
            plan.push(lane, 0, s.len());
        }
        prop_assert_eq!(plan.len(), n_lanes);
        let mut tape = BatchTape::new();
        let mut out = Vec::new();
        let mut by_backend: Vec<Vec<Option<Vec<Pt2>>>> = Vec::new();
        for backend in [KernelBackend::Scalar, KernelBackend::Batched] {
            let mut slots: Vec<Option<Vec<Pt2>>> = vec![None; n_lanes];
            plan.for_each_batch(4, |_, lanes| {
                let inputs: Vec<&[Pt2]> = lanes.iter().map(|&l| seqs[l].as_slice()).collect();
                let deltas: Vec<Option<&DeltaWeights>> = vec![None; lanes.len()];
                predict_batch_into(&base, &deltas, &inputs, horizon, backend, &mut tape, &mut out);
                for (&l, o) in lanes.iter().zip(&out) {
                    slots[l] = Some(o.clone());
                }
            });
            by_backend.push(slots);
        }
        for (lane, seq) in seqs.iter().enumerate() {
            let want = base.predict(seq, horizon);
            let scalar = by_backend[0][lane].as_ref().expect("every lane planned");
            prop_assert_eq!(point_bits(scalar), point_bits(&want));
            let batched = by_backend[1][lane].as_ref().expect("every lane planned");
            prop_assert_eq!(batched.len(), want.len());
            for (ps, pv) in want.iter().zip(batched) {
                for k in 0..2 {
                    let rel = (ps[k] - pv[k]).abs() / ps[k].abs().max(1.0);
                    prop_assert!(rel <= 1e-9, "lane {} rel err {}", lane, rel);
                }
            }
        }
    }

    #[test]
    fn delta_materialised_lanes_match_dense_models_bitwise(
        seed in 0u64..64,
        hidden in prop::sample::select(vec![3usize, 6]),
        nudges in 0usize..24,
        horizon in 1usize..5,
    ) {
        // A floor-0 delta fitted from an adapted model must (a) round-trip
        // the dense parameters bitwise and (b) make the scalar batched
        // rollout of (base, delta) byte-identical to predicting on the
        // materialised dense model.
        let mut rng = rng_for(seed, 13);
        let base = Seq2Seq::new(Seq2SeqConfig::lstm(hidden), &mut rng);
        let params = base.params();
        let mut dense = params.clone();
        for _ in 0..nudges {
            let i = rng.gen_range(0..dense.len());
            dense[i] += rng.gen_range(-0.5..0.5);
        }
        let d = DeltaWeights::fit(&params, &dense, 0.0);
        let mut back = params.clone();
        d.patch(&mut back);
        prop_assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dense.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let mut adapted = base.clone();
        adapted.set_params(&dense);
        let seqs = [random_walk(seed, 29, 4), random_walk(seed, 31, 4)];
        let inputs: Vec<&[Pt2]> = seqs.iter().map(|s| s.as_slice()).collect();
        // Mixed group: one delta lane, one pure-base lane.
        let deltas = vec![Some(&d), None];
        let mut tape = BatchTape::new();
        let mut out = Vec::new();
        predict_batch_into(
            &base, &deltas, &inputs, horizon, KernelBackend::Scalar, &mut tape, &mut out,
        );
        prop_assert_eq!(point_bits(&out[0]), point_bits(&adapted.predict(&seqs[0], horizon)));
        prop_assert_eq!(point_bits(&out[1]), point_bits(&base.predict(&seqs[1], horizon)));
    }

    #[test]
    fn gradient_norm_finite(seed in 0u64..100) {
        let mut rng = rng_for(seed, 5);
        let model = Seq2Seq::new(Seq2SeqConfig::lstm(4), &mut rng);
        let batch = TrainBatch::new(vec![(
            vec![[0.2, 0.2], [0.3, 0.3]],
            vec![[0.4, 0.4]],
        )]);
        let (l, g) = model.loss_and_grad(&batch, &MseLoss);
        prop_assert!(l.is_finite());
        prop_assert!(g.iter().all(|v| v.is_finite()));
        prop_assert_eq!(g.len(), model.n_params());
    }
}

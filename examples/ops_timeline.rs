//! Intraday load timeline: how the platform breathes over a day.
//!
//! Runs PPI with per-batch tracing and renders an hourly console
//! timeline of pending tasks, idle workers, and proposal outcomes —
//! the view an operations team watches, and a demonstration of
//! `run_assignment_traced`.
//!
//! ```sh
//! cargo run --release --example ops_timeline
//! ```

use tamp::platform::{
    run_assignment_traced, train_predictors, AssignmentAlgo, BatchRecord, EngineConfig,
    TrainingConfig,
};
use tamp::sim::{Scale, WorkloadConfig, WorkloadKind};

fn bar(value: usize, max: usize, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = (value * width).div_ceil(max.max(1)).min(width);
    "█".repeat(filled)
}

fn main() {
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 77).build();
    let predictors = train_predictors(
        &workload,
        &TrainingConfig {
            seed: 77,
            ..TrainingConfig::default()
        },
    );
    let mut trace: Vec<BatchRecord> = Vec::new();
    let metrics = run_assignment_traced(
        &workload,
        Some(&predictors),
        AssignmentAlgo::Ppi,
        &EngineConfig::default(),
        &mut trace,
    );

    // Aggregate 2-minute batches into 30-minute buckets for display.
    const BUCKET_MIN: f64 = 30.0;
    let mut buckets: Vec<(f64, usize, usize, usize, usize)> = Vec::new();
    for r in &trace {
        let idx = ((r.t_min - 1e-9).max(0.0) / BUCKET_MIN) as usize;
        if buckets.len() <= idx {
            buckets.resize(idx + 1, (0.0, 0, 0, 0, 0));
        }
        let b = &mut buckets[idx];
        b.0 = (idx as f64 + 1.0) * BUCKET_MIN;
        b.1 = b.1.max(r.pending);
        b.2 += r.proposed;
        b.3 += r.accepted;
        b.4 += r.rejected;
    }
    let max_pending = buckets.iter().map(|b| b.1).max().unwrap_or(1);

    println!(
        "day with {} tasks / {} workers — PPI completion {:.3}, rejection {:.3}\n",
        metrics.tasks_total,
        workload.workers.len(),
        metrics.completion_ratio(),
        metrics.rejection_ratio()
    );
    println!("  time | peak pending          | proposed accepted rejected");
    for (t, pending, proposed, accepted, rejected) in &buckets {
        println!(
            " {:>4.0}m | {:<21} | {:>8} {:>8} {:>8}",
            t,
            format!("{} {}", bar(*pending, max_pending, 14), pending),
            proposed,
            accepted,
            rejected
        );
    }
    println!(
        "\ntrace covered {} batches; totals — proposed {}, accepted {}, rejected {}",
        trace.len(),
        metrics.assigned_total,
        metrics.completed,
        metrics.rejected
    );
}

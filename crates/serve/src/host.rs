//! The serve host: owns the shards, paces the window protocol, and
//! reports.
//!
//! Per window the host (1) feeds each live shard's submissions for the
//! upcoming window into its bounded queue — refusals go through the
//! shard's overload policy, always counted — and (2) steps each live
//! shard one batch. With telemetry disabled and `threads > 1`, step (2)
//! runs the shards on a thread pool (shards share nothing); with an
//! enabled [`Obs`] the host steps sequentially so the per-shard
//! `serve.batch` spans and the engine spans nested inside them
//! serialize cleanly into one recorder.
//!
//! With a snapshot directory configured the host also writes every
//! shard's [`ShardSnapshot`] on a fixed window cadence and again on
//! graceful shutdown, which is what makes a serve process crash-safe:
//! restart from the latest snapshots and the continuation is
//! byte-identical to the run that died (see `docs/serving.md`).

use crate::clock::Pacing;
use crate::shard::{Shard, SubmissionCounts, SwapOutcome};
use crate::snapshot::ShardSnapshot;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use tamp_core::EngineError;
use tamp_obs::{Obs, SloEngine, SloOutcome, SloSet, WindowedRegistry};
use tamp_platform::metrics::{AssignmentMetrics, BatchRecord};
use tamp_platform::predcache::CacheStats;
use tamp_platform::training::TrainedPredictors;

/// Host-level configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Worker threads for stepping shards (capped at the shard count;
    /// only used while telemetry is disabled).
    pub threads: usize,
    /// Window pacing (full speed for simulation and load tests).
    pub pacing: Pacing,
    /// Write every shard's snapshot each `n` windows (and on graceful
    /// shutdown). Requires `snapshot_dir`.
    pub snapshot_every: Option<u64>,
    /// Directory snapshots are written into, one
    /// `<shard-name>.snapshot.json` per shard, overwritten in place.
    pub snapshot_dir: Option<PathBuf>,
    /// Sliding-window registry the host feeds per tick (scope = shard
    /// name) and seals per window. Shared as an `Arc` so an exporter
    /// ([`crate::http::MetricsServer`]) can read it mid-run.
    pub live: Option<Arc<WindowedRegistry>>,
    /// Append every sealed [`tamp_obs::WindowSnapshot`] as one JSON
    /// line to this file (requires `live`).
    pub window_log: Option<PathBuf>,
    /// Objectives evaluated against `live` after every seal; violations
    /// become `slo.violation.<name>` counters and the report's
    /// [`ServeReport::slos`] rows (requires `live`).
    pub slo: Option<SloSet>,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            pacing: Pacing::FullSpeed,
            snapshot_every: None,
            snapshot_dir: None,
            live: None,
            window_log: None,
            slo: None,
        }
    }
}

/// End-of-run summary for one shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard name.
    pub name: String,
    /// Batch windows stepped.
    pub windows: u64,
    /// The engine's end-of-run metrics (same struct the one-shot
    /// entry points return, so serve and one-shot runs diff directly).
    pub metrics: AssignmentMetrics,
    /// Queue-side submission accounting.
    pub counts: SubmissionCounts,
    /// Prediction-cache counters.
    pub cache: CacheStats,
    /// Tasks admitted but still live when the run ended.
    pub pending_at_end: usize,
    /// Events still queued when the run ended.
    pub queued_at_end: usize,
    /// Replay events never offered to the queue (shard hit its horizon
    /// first).
    pub unfed: usize,
    /// Total events in the shard's replay stream.
    pub stream_total: usize,
    /// Crash/restore cycles the shard went through.
    #[serde(default)]
    pub crashes: u64,
    /// Median per-window step latency, milliseconds.
    pub batch_p50_ms: f64,
    /// 95th-percentile per-window step latency, milliseconds.
    pub batch_p95_ms: f64,
    /// 99th-percentile per-window step latency, milliseconds.
    #[serde(default)]
    pub batch_p99_ms: f64,
    /// Per-window batch records (the serve-side equivalent of the
    /// one-shot `--trace` output).
    pub trace: Vec<BatchRecord>,
}

impl ShardReport {
    /// Cache hit rate over cacheable rollouts (0 when the cache was
    /// disabled or never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }
}

/// End-of-run summary across all shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Windows the host ticked (max over shards).
    pub windows: u64,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Per-objective SLO verdicts (empty without a configured
    /// [`HostConfig::slo`]).
    #[serde(default)]
    pub slos: Vec<SloReportRow>,
}

/// One objective's end-of-run verdict — the serde mirror of
/// [`tamp_obs::SloOutcome`] (the obs crate is serde-free by design).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloReportRow {
    /// Objective name.
    pub name: String,
    /// Windowed metric the objective reduces.
    pub metric: String,
    /// Threshold.
    pub max: f64,
    /// Evaluations performed.
    pub evaluated: u64,
    /// Evaluations that crossed the threshold.
    pub violations: u64,
    /// `violations / evaluated` (0 when never evaluated).
    pub burn_rate: f64,
    /// The spec's allowed burn rate.
    pub max_burn_rate: f64,
    /// True when the burn rate exceeded the allowance.
    pub breached: bool,
    /// Most recent reduced value.
    pub last: f64,
    /// Worst reduced value seen.
    pub worst: f64,
}

impl From<SloOutcome> for SloReportRow {
    fn from(o: SloOutcome) -> Self {
        Self {
            name: o.name,
            metric: o.metric,
            max: o.max,
            evaluated: o.evaluated,
            violations: o.violations,
            burn_rate: o.burn_rate,
            max_burn_rate: o.max_burn_rate,
            breached: o.breached,
            last: o.last,
            worst: o.worst,
        }
    }
}

/// Per-shard counter totals already emitted to telemetry, so each tick
/// emits only deltas.
#[derive(Debug, Clone, Copy, Default)]
struct Reported {
    submitted: usize,
    shed: usize,
    degraded: usize,
    retried: usize,
    crashes: u64,
}

/// The long-running service host (see the module docs).
pub struct ServeHost {
    shards: Vec<Shard>,
    cfg: HostConfig,
    windows: u64,
    reported: Vec<Reported>,
    slo_engine: Option<SloEngine>,
    window_writer: Option<BufWriter<File>>,
}

impl ServeHost {
    /// A host owning `shards`, stepped per `cfg`.
    pub fn new(shards: Vec<Shard>, cfg: HostConfig) -> Self {
        let reported = vec![Reported::default(); shards.len()];
        let slo_engine = cfg.slo.clone().map(SloEngine::new);
        // Telemetry never fails the run: a window log that won't open
        // is a warning, not an error.
        let window_writer = cfg.window_log.as_ref().and_then(|path| {
            File::create(path)
                .map(BufWriter::new)
                .map_err(|e| eprintln!("warning: window log {}: {e}", path.display()))
                .ok()
        });
        Self {
            shards,
            cfg,
            windows: 0,
            reported,
            slo_engine,
            window_writer,
        }
    }

    /// Per-objective SLO verdicts so far (empty without a spec).
    pub fn slo_outcomes(&self) -> Vec<SloOutcome> {
        self.slo_engine
            .as_ref()
            .map(SloEngine::outcomes)
            .unwrap_or_default()
    }

    /// Whether every shard's day is over.
    pub fn all_done(&self) -> bool {
        self.shards.iter().all(Shard::done)
    }

    /// Read access to the shards (tests and diagnostics).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Snapshot of shard `idx`, if it exists.
    pub fn snapshot_shard(&self, idx: usize) -> Option<ShardSnapshot> {
        self.shards.get(idx).map(Shard::snapshot)
    }

    /// Kills shard `idx` and restores it through the JSON snapshot path
    /// (a crash drill; see [`Shard::crash_restore_in_place`]).
    pub fn crash_restore_shard(&mut self, idx: usize) -> Result<(), EngineError> {
        let shard = self
            .shards
            .get_mut(idx)
            .ok_or_else(|| EngineError::InvalidEngineConfig(format!("no shard {idx}")))?;
        shard.crash_restore_in_place()
    }

    /// Hot-swaps shard `idx`'s predictors between windows (see
    /// [`Shard::swap_predictors`]).
    pub fn swap_predictor(
        &mut self,
        idx: usize,
        predictors: TrainedPredictors,
    ) -> Result<SwapOutcome, EngineError> {
        let shard = self
            .shards
            .get_mut(idx)
            .ok_or_else(|| EngineError::InvalidEngineConfig(format!("no shard {idx}")))?;
        shard.swap_predictors(predictors)
    }

    /// Runs every shard to its horizon and reports.
    pub fn run(mut self, obs: &Obs) -> ServeReport {
        while !self.all_done() {
            self.tick(obs, true);
        }
        self.into_report(obs)
    }

    /// Advances at most `n` windows (feeding and stepping live shards),
    /// stopping early when every shard is done. Returns windows ticked.
    pub fn run_windows(&mut self, n: usize, obs: &Obs) -> usize {
        let mut ticked = 0;
        while ticked < n && !self.all_done() {
            self.tick(obs, true);
            ticked += 1;
        }
        ticked
    }

    /// Graceful shutdown: writes a final snapshot set (when
    /// configured), closes every submission queue, and keeps stepping
    /// windows until every queue is drained and no admitted task is
    /// still live (or the shard hits its horizon), then reports.
    /// Nothing in flight is lost: queued events still reach the engine,
    /// and whatever remains is accounted under `queued_at_end` /
    /// `pending_at_end` / `unfed`.
    pub fn shutdown(mut self, obs: &Obs) -> ServeReport {
        self.write_snapshots();
        for shard in &self.shards {
            shard.close_queue();
        }
        while self
            .shards
            .iter()
            .any(|s| !s.done() && (s.queue_len() > 0 || s.pending_len() > 0))
        {
            self.tick(obs, false);
        }
        // Final state after draining — what a restart would resume from.
        self.write_snapshots();
        self.into_report(obs)
    }

    /// One window: feed (optionally) and step every live shard, emit
    /// per-shard telemetry (cumulative *and* windowed), seal the live
    /// window, then write snapshots if the cadence says so.
    fn tick(&mut self, obs: &Obs, feed: bool) {
        if feed {
            for shard in self.shards.iter_mut().filter(|s| !s.done()) {
                shard.feed_window();
            }
        }
        let stepped: Vec<bool> = self.shards.iter().map(|s| !s.done()).collect();
        let window_min = self
            .shards
            .iter()
            .filter(|s| !s.done())
            .map(Shard::window_min)
            .fold(0.0_f64, f64::max);
        if self.cfg.threads > 1 && !obs.is_enabled() {
            let threads = self.cfg.threads.min(self.shards.len()).max(1);
            let mut live: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| !s.done()).collect();
            let chunk = live.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for group in live.chunks_mut(chunk) {
                    scope.spawn(|| {
                        let null = Obs::null();
                        for shard in group.iter_mut() {
                            shard.step_window(&null);
                        }
                    });
                }
            });
        } else {
            for (shard, _) in self
                .shards
                .iter_mut()
                .zip(&stepped)
                .filter(|(_, &live)| live)
            {
                let window_idx = shard.windows_run();
                let span = obs.span_idx("serve.batch", window_idx);
                shard.step_window(obs);
                drop(span);
            }
        }
        // Emission runs for every stepped shard on both step paths —
        // the windowed registry stays live under parallel stepping,
        // where per-shard obs calls are no-ops anyway.
        for (si, _) in stepped.iter().enumerate().filter(|(_, &live)| live) {
            self.emit_shard(si, obs);
        }
        self.seal_window(obs);
        self.windows += 1;
        if let Some(every) = self.cfg.snapshot_every {
            if every > 0 && self.windows.is_multiple_of(every) {
                self.write_snapshots();
            }
        }
        if let Some(pause) = self.cfg.pacing.window_sleep(window_min) {
            std::thread::sleep(pause);
        }
    }

    /// Emits shard `si`'s post-step telemetry: delta counters and the
    /// step-latency observation into the cumulative registry, plus the
    /// same stream into the windowed registry under the shard's name.
    fn emit_shard(&mut self, si: usize, obs: &Obs) {
        let shard = &self.shards[si];
        let idx = Some(si as u64);
        let (cache_hits, cache_misses, cache_invalidations) = shard
            .trace()
            .last()
            .map(|r| (r.cache_hits, r.cache_misses, r.cache_invalidations))
            .unwrap_or((0, 0, 0));
        let step_ms = shard.step_seconds().last().copied().unwrap_or(0.0) * 1e3;
        let counts = shard.counts();
        let queue_depth = shard.queue_len() as f64;
        let pending = shard.pending_len() as f64;
        let crashes = shard.crashes();
        let rep = &mut self.reported[si];
        let submitted = counts.submitted_tasks + counts.submitted_reports;
        let d_submitted = (submitted - rep.submitted) as u64;
        rep.submitted = submitted;
        let d_shed = (counts.shed() - rep.shed) as u64;
        rep.shed = counts.shed();
        let d_degraded = (counts.degraded() - rep.degraded) as u64;
        rep.degraded = counts.degraded();
        let d_retried = (counts.retried - rep.retried) as u64;
        rep.retried = counts.retried;
        let d_crashes = crashes - rep.crashes;
        rep.crashes = crashes;

        obs.count_idx("serve.submitted", d_submitted, idx);
        obs.count_idx("serve.cache.hit", cache_hits as u64, idx);
        obs.count_idx("serve.cache.miss", cache_misses as u64, idx);
        obs.count_idx("serve.cache.invalidate", cache_invalidations as u64, idx);
        obs.count_idx("serve.shed", d_shed, idx);
        obs.count_idx("serve.overload.degraded", d_degraded, idx);
        obs.count_idx("serve.overload.retried", d_retried, idx);
        obs.count_idx("serve.crash.restore", d_crashes, idx);
        obs.observe("serve.step.latency_ms", step_ms);
        obs.gauge_idx("serve.queue.depth", queue_depth, idx);
        let delta_stats = shard.rollout_store_stats();
        if let Some((delta_bytes, delta_workers)) = delta_stats {
            obs.gauge_idx("serve.delta.bytes", delta_bytes as f64, idx);
            obs.gauge_idx("serve.delta.workers", delta_workers as f64, idx);
        }

        if let Some(live) = &self.cfg.live {
            let scope = shard.name();
            live.count(scope, "serve.submitted", d_submitted);
            live.count(scope, "serve.cache.hit", cache_hits as u64);
            live.count(scope, "serve.cache.miss", cache_misses as u64);
            live.count(scope, "serve.cache.invalidate", cache_invalidations as u64);
            live.count(scope, "serve.shed", d_shed);
            live.count(scope, "serve.overload.degraded", d_degraded);
            live.count(scope, "serve.overload.retried", d_retried);
            live.count(scope, "serve.crash.restore", d_crashes);
            live.observe(scope, "serve.step.latency_ms", step_ms);
            live.gauge(scope, "serve.queue.depth", queue_depth);
            live.gauge(scope, "serve.pending", pending);
            if let Some((delta_bytes, delta_workers)) = delta_stats {
                live.gauge(scope, "serve.delta.bytes", delta_bytes as f64);
                live.gauge(scope, "serve.delta.workers", delta_workers as f64);
            }
        }
    }

    /// Seals the live window (when configured), appends it to the
    /// window log, and runs the SLO engine over the fresh seal;
    /// violations become `slo.violation.<name>` counters.
    fn seal_window(&mut self, obs: &Obs) {
        let Some(live) = &self.cfg.live else {
            return;
        };
        let snap = live.advance();
        if let Some(w) = &mut self.window_writer {
            // Flush per window so a scrape (or a crash) always sees
            // complete lines.
            let ok = writeln!(w, "{}", snap.to_json()).and_then(|()| w.flush());
            if let Err(e) = ok {
                eprintln!("warning: window log write failed: {e}");
                self.window_writer = None;
            }
        }
        if let Some(engine) = &mut self.slo_engine {
            for v in engine.evaluate(live) {
                obs.count(&format!("slo.violation.{}", v.name), 1);
            }
        }
    }

    /// Writes one `<shard-name>.snapshot.json` per shard into the
    /// configured snapshot directory (no-op without one). I/O failures
    /// are reported on stderr, never fatal: serving outlives a full
    /// disk.
    fn write_snapshots(&self) {
        let Some(dir) = &self.cfg.snapshot_dir else {
            return;
        };
        for shard in &self.shards {
            let path = dir.join(format!("{}.snapshot.json", shard.name()));
            if let Err(e) = shard.snapshot().save_json(&path) {
                eprintln!("warning: snapshot of shard {} failed: {e}", shard.name());
            }
        }
    }

    /// Consumes the host into the end-of-run report.
    fn into_report(self, obs: &Obs) -> ServeReport {
        let windows = self.windows;
        let slos = self
            .slo_engine
            .as_ref()
            .map(|e| e.outcomes().into_iter().map(SloReportRow::from).collect())
            .unwrap_or_default();
        let shards = self
            .shards
            .into_iter()
            .map(|shard| {
                let name = shard.name().to_string();
                let shard_windows = shard.windows_run();
                let pending_at_end = shard.pending_len();
                let queued_at_end = shard.queue_len();
                let unfed = shard.unfed();
                let stream_total = shard.stream_total();
                let crashes = shard.crashes();
                let cache = shard.cache_stats();
                let (p50, p95, p99) = percentiles_ms(shard.step_seconds());
                let (metrics, trace, counts) = shard.finish(obs);
                ShardReport {
                    name,
                    windows: shard_windows,
                    metrics,
                    counts,
                    cache,
                    pending_at_end,
                    queued_at_end,
                    unfed,
                    stream_total,
                    crashes,
                    batch_p50_ms: p50,
                    batch_p95_ms: p95,
                    batch_p99_ms: p99,
                    trace,
                }
            })
            .collect();
        ServeReport {
            windows,
            shards,
            slos,
        }
    }
}

/// p50/p95/p99 of a latency sample set, in milliseconds.
fn percentiles_ms(seconds: &[f64]) -> (f64, f64, f64) {
    if seconds.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted: Vec<f64> = seconds.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pick = |q: f64| {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] * 1e3
    };
    (pick(0.50), pick(0.95), pick(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64 / 1e3).collect();
        let (p50, p95, p99) = percentiles_ms(&s);
        assert!((p50 - 50.0).abs() < 1e-9);
        assert!((p95 - 95.0).abs() < 1e-9);
        assert!((p99 - 99.0).abs() < 1e-9);
        assert_eq!(percentiles_ms(&[]), (0.0, 0.0, 0.0));
    }
}

//! Behavioural guarantees of the serve layer:
//!
//! * a serve run over a replayed workload is **byte-identical** to the
//!   one-shot `run_assignment` on the same workload (with and without
//!   the prediction cache, with and without fault injection);
//! * multi-shard hosts keep shards independent, and thread-pool
//!   stepping changes nothing;
//! * a full queue sheds explicitly and the accounting always closes:
//!   `offered == submitted + shed`, and every submitted task ends in
//!   exactly one of completed / expired / pending / queued;
//! * graceful shutdown drains what was admitted and loses nothing
//!   silently.

use tamp_meta::meta_training::MetaConfig;
use tamp_obs::Obs;
use tamp_platform::engine::run_assignment_with_faults_traced;
use tamp_platform::{
    run_assignment_traced, train_predictors, AssignmentAlgo, BatchRecord, EngineConfig,
    FaultConfig, LossKind, PredictionAlgo, TrainedPredictors, TrainingConfig,
};
use tamp_serve::{HostConfig, Pacing, ServeHost, Shard, ShardConfig, ShardReport};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_predictors(w: &Workload, seed: u64) -> TrainedPredictors {
    train_predictors(
        w,
        &TrainingConfig {
            algo: PredictionAlgo::Maml,
            loss: LossKind::Mse,
            hidden: 6,
            seq_in: 3,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            adapt_steps: 2,
            seed,
            ..TrainingConfig::default()
        },
    )
}

fn engine(cache: bool) -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        prediction_cache: cache,
        ..EngineConfig::default()
    }
}

fn shard_cfg(cache: bool, queue_capacity: usize) -> ShardConfig {
    ShardConfig {
        algo: AssignmentAlgo::Ppi,
        engine: engine(cache),
        faults: None,
        queue_capacity,
    }
}

fn mixed_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        report_loss: 0.2,
        report_delay: 0.15,
        max_delay_min: 12.0,
        gps_noise_km: 0.05,
        corrupt_coord: 0.05,
        offline_worker: 0.2,
        offline_window_min: 40.0,
        prediction_failure: 0.2,
        prediction_garbage: 0.05,
        adapt_poison: 0.0,
        seed,
    }
}

fn run_single_shard(w: &Workload, p: &TrainedPredictors, cfg: ShardConfig) -> ShardReport {
    let shard = Shard::new("s0", w.clone(), Some(p.clone()), cfg).unwrap();
    let host = ServeHost::new(vec![shard], HostConfig::default());
    let report = host.run(&Obs::null());
    report.shards.into_iter().next().unwrap()
}

/// Assignment-visible per-batch equality (timings and cache counters
/// legitimately differ between runs).
fn assert_same_trace(a: &[BatchRecord], b: &[BatchRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: batch count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.t_min.to_bits(), rb.t_min.to_bits(), "{what}[{i}]: t_min");
        assert_eq!(ra.pending, rb.pending, "{what}[{i}]: pending");
        assert_eq!(
            ra.idle_workers, rb.idle_workers,
            "{what}[{i}]: idle_workers"
        );
        assert_eq!(ra.proposed, rb.proposed, "{what}[{i}]: proposed");
        assert_eq!(ra.accepted, rb.accepted, "{what}[{i}]: accepted");
        assert_eq!(ra.rejected, rb.rejected, "{what}[{i}]: rejected");
        assert_eq!(ra.expired, rb.expired, "{what}[{i}]: expired");
        assert_eq!(
            ra.invalid_pairs, rb.invalid_pairs,
            "{what}[{i}]: invalid_pairs"
        );
        assert_eq!(
            ra.fallback_views, rb.fallback_views,
            "{what}[{i}]: fallback_views"
        );
        assert_eq!(
            ra.dropped_reports, rb.dropped_reports,
            "{what}[{i}]: dropped_reports"
        );
    }
}

fn assert_task_accounting(r: &ShardReport, what: &str) {
    assert_eq!(
        r.counts.offered() + r.unfed,
        r.stream_total,
        "{what}: offered + unfed must cover the stream"
    );
    // Queued events at end are unsplit by kind; in every scenario the
    // tests construct, a stopped host has drained its queues, so the
    // task-side conservation closes without a queued term.
    assert_eq!(r.queued_at_end, 0, "{what}: queues must be drained");
    assert_eq!(
        r.counts.submitted_tasks,
        r.metrics.completed + r.metrics.tasks_expired + r.pending_at_end,
        "{what}: every submitted task is completed, expired, or pending"
    );
}

#[test]
fn serve_replay_is_byte_identical_to_one_shot() {
    for seed in [3, 11] {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        let mut one_shot_trace = Vec::new();
        let one_shot = run_assignment_traced(
            &w,
            Some(&p),
            AssignmentAlgo::Ppi,
            &engine(false),
            &mut one_shot_trace,
        );
        // Cache ON in serve vs OFF in one-shot: equality proves both the
        // serve protocol and the cache at once.
        let report = run_single_shard(&w, &p, shard_cfg(true, 1 << 16));
        let what = format!("seed {seed}");
        assert_eq!(report.metrics.completed, one_shot.completed, "{what}");
        assert_eq!(report.metrics.rejected, one_shot.rejected, "{what}");
        assert_eq!(
            report.metrics.assigned_total, one_shot.assigned_total,
            "{what}"
        );
        assert_eq!(
            report.metrics.total_detour_km.to_bits(),
            one_shot.total_detour_km.to_bits(),
            "{what}: detour bits"
        );
        assert_same_trace(&report.trace, &one_shot_trace, &what);
        assert_eq!(report.counts.shed(), 0, "{what}: ample queue must not shed");
        assert!(report.cache.hits > 0, "{what}: serving must reuse rollouts");
        assert_task_accounting(&report, &what);
    }
}

#[test]
fn cached_and_cold_serve_runs_are_byte_identical() {
    let seed = 17;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let warm = run_single_shard(&w, &p, shard_cfg(true, 1 << 16));
    let cold = run_single_shard(&w, &p, shard_cfg(false, 1 << 16));
    assert_same_trace(&warm.trace, &cold.trace, "warm vs cold");
    assert_eq!(warm.metrics.completed, cold.metrics.completed);
    assert_eq!(
        warm.metrics.total_detour_km.to_bits(),
        cold.metrics.total_detour_km.to_bits()
    );
    assert!(warm.cache.hits > 0);
    assert_eq!(
        cold.cache.hits + cold.cache.misses,
        0,
        "cache off = untouched"
    );
}

#[test]
fn serve_under_fault_injection_matches_one_shot_faulted_run() {
    let seed = 5;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let faults = mixed_faults(seed ^ 0xBEEF);
    let mut one_shot_trace = Vec::new();
    let one_shot = run_assignment_with_faults_traced(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &engine(false),
        &faults,
        &mut one_shot_trace,
    )
    .unwrap();
    let cfg = ShardConfig {
        faults: Some(faults),
        ..shard_cfg(true, 1 << 16)
    };
    let report = run_single_shard(&w, &p, cfg);
    assert_eq!(report.metrics.completed, one_shot.completed);
    assert_eq!(report.metrics.rejected, one_shot.rejected);
    assert_eq!(report.metrics.fallback_views, one_shot.fallback_views);
    assert_eq!(report.metrics.dropped_reports, one_shot.dropped_reports);
    assert_eq!(
        report.metrics.total_detour_km.to_bits(),
        one_shot.total_detour_km.to_bits()
    );
    assert_same_trace(&report.trace, &one_shot_trace, "faulted serve");
}

#[test]
fn multi_shard_host_keeps_shards_independent_and_parallel_stepping_is_identical() {
    let seeds = [3_u64, 4, 5];
    let mut shards = Vec::new();
    let mut singles = Vec::new();
    for &seed in &seeds {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        singles.push(run_single_shard(&w, &p, shard_cfg(true, 1 << 16)));
        shards.push(Shard::new(format!("s{seed}"), w, Some(p), shard_cfg(true, 1 << 16)).unwrap());
    }
    let host = ServeHost::new(
        shards,
        HostConfig {
            threads: 3,
            pacing: Pacing::FullSpeed,
        },
    );
    let report = host.run(&Obs::null());
    assert_eq!(report.shards.len(), seeds.len());
    for (joint, single) in report.shards.iter().zip(&singles) {
        assert_eq!(joint.metrics.completed, single.metrics.completed);
        assert_eq!(joint.metrics.rejected, single.metrics.rejected);
        assert_eq!(
            joint.metrics.total_detour_km.to_bits(),
            single.metrics.total_detour_km.to_bits()
        );
        assert_same_trace(&joint.trace, &single.trace, &joint.name);
        assert_task_accounting(joint, &joint.name);
    }
}

#[test]
fn full_queue_sheds_explicitly_and_accounting_still_closes() {
    let seed = 9;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    // Far below the first window's burst (all 8 workers' t=0 reports +
    // early tasks), so shedding must fire.
    let report = run_single_shard(&w, &p, shard_cfg(true, 4));
    assert!(report.counts.shed() > 0, "tiny queue must shed");
    assert_task_accounting(&report, "shedding run");
    // Shedding reports degrades inputs but must never corrupt engine
    // accounting.
    let m = &report.metrics;
    assert_eq!(m.completed + m.rejected + m.invalid_pairs, m.assigned_total);
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let seed = 13;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let shard = Shard::new("s0", w.clone(), Some(p.clone()), shard_cfg(true, 1 << 16)).unwrap();
    let mut host = ServeHost::new(vec![shard], HostConfig::default());
    let obs = Obs::null();
    // Mid-morning: feed+step 30 of the 120 windows, then stop accepting.
    let ticked = host.run_windows(30, &obs);
    assert_eq!(ticked, 30);
    let report = host.shutdown(&obs);
    let r = &report.shards[0];
    assert_eq!(r.queued_at_end, 0, "shutdown must drain the queue");
    assert_eq!(r.pending_at_end, 0, "shutdown must resolve admitted tasks");
    assert_eq!(
        r.counts.submitted_tasks,
        r.metrics.completed + r.metrics.tasks_expired,
        "every admitted task resolved by the drain"
    );
    assert!(r.unfed > 0, "stopping early leaves replay events unfed");
    assert_eq!(r.counts.offered() + r.unfed, r.stream_total);
}

#[test]
fn serve_telemetry_emits_cache_and_shed_counters() {
    let seed = 3;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let shard = Shard::new("s0", w, Some(p), shard_cfg(true, 4)).unwrap();
    let host = ServeHost::new(vec![shard], HostConfig::default());
    let (obs, mem) = Obs::in_memory();
    let report = host.run(&obs);
    let snap = obs.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let r = &report.shards[0];
    assert_eq!(get("serve.cache.hit"), r.cache.hits);
    assert_eq!(get("serve.cache.miss"), r.cache.misses);
    assert_eq!(get("serve.cache.invalidate"), r.cache.invalidations);
    assert_eq!(get("serve.shed"), r.counts.shed() as u64);
    let events = mem.events();
    let serve_span = events
        .iter()
        .find(|e| e.name == "serve.batch" && e.span.is_some())
        .expect("serve.batch spans must be recorded");
    let engine_span = events
        .iter()
        .find(|e| e.name == "engine.batch" && e.span.is_some())
        .expect("engine spans must be recorded");
    assert_eq!(
        engine_span.span.unwrap().parent,
        Some(serve_span.span.unwrap().id),
        "the first engine.batch span must nest inside the first serve.batch span"
    );
}

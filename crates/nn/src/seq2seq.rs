//! The LSTM-Encoder-Decoder mobility model.
//!
//! Section III-B ("Discussion"): the paper's meta-learning is
//! model-agnostic but instantiates an encoder–decoder over LSTMs \[27, 28\].
//! The encoder consumes `seq_in` normalised locations; its final state
//! seeds the decoder, which emits `seq_out` locations. During training the
//! decoder is *teacher-forced* (its step input is the previous
//! ground-truth location — the standard seq2seq training regime of Cho et
//! al.); at inference it runs autoregressively on its own outputs.
//!
//! The output head predicts the **displacement** from the decoder's
//! previous location rather than the absolute position (the residual /
//! persistence parameterisation standard in trajectory prediction): an
//! untrained model therefore predicts "stay where you are", and learning
//! concentrates on movement deltas. The residual base is the decoder's
//! step input, which is constant w.r.t. the parameters, so gradients are
//! unchanged.
//!
//! Parameters and gradients are exposed as flat `Vec<f64>`s in a fixed
//! layout so `tamp-meta` can implement MAML-style adapt/meta updates and
//! record the k-step gradient paths that feed `Sim_l` (Eq. 2).

use crate::dense::{Dense, DenseGrad};
use crate::gru::{GruCell, GruGrad, GruStepCache};
use crate::loss::{Loss, Pt2};
use crate::lstm::{LstmCell, LstmGrad, LstmState, StepCache};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which recurrent cell the encoder/decoder use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CellKind {
    /// Long short-term memory (the paper's instantiation, \[28\]).
    #[default]
    Lstm,
    /// Gated recurrent unit (the encoder–decoder reference \[27\]).
    Gru,
}

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Seq2SeqConfig {
    /// Recurrent hidden width for both encoder and decoder.
    pub hidden: usize,
    /// Recurrent cell family.
    pub cell: CellKind,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            cell: CellKind::Lstm,
        }
    }
}

impl Seq2SeqConfig {
    /// An LSTM model of the given width (the common case).
    pub fn lstm(hidden: usize) -> Self {
        Self {
            hidden,
            cell: CellKind::Lstm,
        }
    }

    /// A GRU model of the given width.
    pub fn gru(hidden: usize) -> Self {
        Self {
            hidden,
            cell: CellKind::Gru,
        }
    }
}

/// A recurrent cell of either family, with a unified step interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Cell {
    Lstm(LstmCell),
    Gru(GruCell),
}

/// Unified recurrent state: hidden vector plus the LSTM's cell vector
/// (empty for GRU).
#[derive(Debug, Clone)]
struct CellState {
    h: Vec<f64>,
    c: Vec<f64>,
}

/// Unified step cache.
#[derive(Debug, Clone)]
enum CellCache {
    Lstm(StepCache),
    Gru(GruStepCache),
}

/// Unified gradient accumulator.
enum CellGrad {
    Lstm(LstmGrad),
    Gru(GruGrad),
}

impl Cell {
    fn new(kind: CellKind, input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        match kind {
            CellKind::Lstm => Cell::Lstm(LstmCell::new(input_dim, hidden, rng)),
            CellKind::Gru => Cell::Gru(GruCell::new(input_dim, hidden, rng)),
        }
    }

    fn zero_state(&self, hidden: usize) -> CellState {
        match self {
            Cell::Lstm(_) => CellState {
                h: vec![0.0; hidden],
                c: vec![0.0; hidden],
            },
            Cell::Gru(_) => CellState {
                h: vec![0.0; hidden],
                c: Vec::new(),
            },
        }
    }

    fn n_params(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.n_params(),
            Cell::Gru(c) => c.n_params(),
        }
    }

    fn zero_grad(&self) -> CellGrad {
        match self {
            Cell::Lstm(c) => CellGrad::Lstm(LstmGrad::zeros(c)),
            Cell::Gru(c) => CellGrad::Gru(GruGrad::zeros(c)),
        }
    }

    fn params_into(&self, out: &mut Vec<f64>) {
        match self {
            Cell::Lstm(c) => {
                out.extend_from_slice(c.w.as_slice());
                out.extend_from_slice(&c.b);
            }
            Cell::Gru(c) => {
                out.extend_from_slice(c.w.as_slice());
                out.extend_from_slice(&c.b);
            }
        }
    }

    fn set_params_from(&mut self, flat: &[f64], off: &mut usize) {
        let mut take = |dst: &mut [f64]| {
            dst.copy_from_slice(&flat[*off..*off + dst.len()]);
            *off += dst.len();
        };
        match self {
            Cell::Lstm(c) => {
                take(c.w.as_mut_slice());
                take(&mut c.b);
            }
            Cell::Gru(c) => {
                take(c.w.as_mut_slice());
                take(&mut c.b);
            }
        }
    }

    fn grad_into(grad: &CellGrad, out: &mut Vec<f64>, inv: f64) {
        match grad {
            CellGrad::Lstm(g) => {
                out.extend(g.dw.as_slice().iter().map(|v| v * inv));
                out.extend(g.db.iter().map(|v| v * inv));
            }
            CellGrad::Gru(g) => {
                out.extend(g.dw.as_slice().iter().map(|v| v * inv));
                out.extend(g.db.iter().map(|v| v * inv));
            }
        }
    }

    fn forward_step(&self, x: &[f64], state: &CellState) -> (CellState, CellCache) {
        match self {
            Cell::Lstm(cell) => {
                let (next, cache) = cell.forward_step(
                    x,
                    &LstmState {
                        h: state.h.clone(),
                        c: state.c.clone(),
                    },
                );
                (
                    CellState {
                        h: next.h,
                        c: next.c,
                    },
                    CellCache::Lstm(cache),
                )
            }
            Cell::Gru(cell) => {
                let (h, cache) = cell.forward_step(x, &state.h);
                (CellState { h, c: Vec::new() }, CellCache::Gru(cache))
            }
        }
    }

    /// Backward step: `dh`/`dc` flow in, `(dh_prev, dc_prev)` flow out
    /// (`dc` slots are empty vectors for GRU).
    fn backward_step(
        &self,
        cache: &CellCache,
        dh: &[f64],
        dc: &[f64],
        grad: &mut CellGrad,
    ) -> (Vec<f64>, Vec<f64>) {
        match (self, cache, grad) {
            (Cell::Lstm(cell), CellCache::Lstm(cache), CellGrad::Lstm(grad)) => {
                let (_dx, dh_prev, dc_prev) = cell.backward_step(cache, dh, dc, grad);
                (dh_prev, dc_prev)
            }
            (Cell::Gru(cell), CellCache::Gru(cache), CellGrad::Gru(grad)) => {
                let (_dx, dh_prev) = cell.backward_step(cache, dh, grad);
                (dh_prev, Vec::new())
            }
            _ => unreachable!("cell/cache/grad families always match"),
        }
    }
}

/// One training batch: normalised `(input, target)` sequence pairs
/// (Definition 3's `(rᵢ, yᵢ)` samples).
#[derive(Debug, Clone, Default)]
pub struct TrainBatch {
    /// The `(seq_in, seq_out)` pairs.
    pub pairs: Vec<(Vec<Pt2>, Vec<Pt2>)>,
}

impl TrainBatch {
    /// Builds a batch from pairs.
    pub fn new(pairs: Vec<(Vec<Pt2>, Vec<Pt2>)>) -> Self {
        Self { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The encoder–decoder model. Input and output are 2-D normalised
/// locations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seq2Seq {
    cfg: Seq2SeqConfig,
    encoder: Cell,
    decoder: Cell,
    head: Dense,
}

/// The per-step feature vector fed to the LSTM cells: the location plus
/// its displacement from the previous location. The explicit velocity
/// channel lets the recurrent cells extrapolate constant-speed motion
/// without having to differentiate positions internally.
#[inline]
fn step_features(cur: Pt2, prev: Pt2) -> [f64; 4] {
    [cur[0], cur[1], cur[0] - prev[0], cur[1] - prev[1]]
}

impl Seq2Seq {
    /// Dimensionality of each sequence element (x, y).
    pub const POINT_DIM: usize = 2;
    /// Dimensionality of the internal LSTM step features (x, y, dx, dy).
    pub const FEATURE_DIM: usize = 4;

    /// A freshly initialised model.
    pub fn new(cfg: Seq2SeqConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.hidden > 0, "hidden width must be positive");
        Self {
            cfg,
            encoder: Cell::new(cfg.cell, Self::FEATURE_DIM, cfg.hidden, rng),
            decoder: Cell::new(cfg.cell, Self::FEATURE_DIM, cfg.hidden, rng),
            head: Dense::new(cfg.hidden, Self::POINT_DIM, rng),
        }
    }

    /// The configuration used to build the model.
    pub fn config(&self) -> Seq2SeqConfig {
        self.cfg
    }

    /// Total number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.encoder.n_params() + self.decoder.n_params() + self.head.n_params()
    }

    /// Flattens the parameters in a fixed layout:
    /// `enc.w | enc.b | dec.w | dec.b | head.w | head.b`.
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_params());
        self.encoder.params_into(&mut out);
        self.decoder.params_into(&mut out);
        out.extend_from_slice(self.head.w.as_slice());
        out.extend_from_slice(&self.head.b);
        out
    }

    /// Writes back a flat parameter vector produced by [`Seq2Seq::params`]
    /// (or any vector of the same length).
    pub fn set_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.n_params(), "parameter length mismatch");
        let mut off = 0;
        self.encoder.set_params_from(flat, &mut off);
        self.decoder.set_params_from(flat, &mut off);
        let mut take = |dst: &mut [f64]| {
            dst.copy_from_slice(&flat[off..off + dst.len()]);
            off += dst.len();
        };
        take(self.head.w.as_mut_slice());
        take(&mut self.head.b);
    }

    /// Autoregressive prediction: encodes `input` and rolls the decoder
    /// `seq_out` steps on its own outputs.
    ///
    /// Panics when `input` is empty — the decoder needs a start token (the
    /// last observed location).
    pub fn predict(&self, input: &[Pt2], seq_out: usize) -> Vec<Pt2> {
        assert!(
            !input.is_empty(),
            "prediction needs at least one input point"
        );
        let mut state = self.encoder.zero_state(self.cfg.hidden);
        for (i, x) in input.iter().enumerate() {
            let before = input[i.saturating_sub(1)];
            let (next, _) = self
                .encoder
                .forward_step(&step_features(*x, before), &state);
            state = next;
        }
        let mut outputs = Vec::with_capacity(seq_out);
        let mut prev = *input.last().expect("non-empty");
        let mut before = input[input.len().saturating_sub(2)];
        for _ in 0..seq_out {
            let (next, _) = self
                .decoder
                .forward_step(&step_features(prev, before), &state);
            state = next;
            let y = self.head.forward(&state.h);
            let pt = [prev[0] + y[0], prev[1] + y[1]];
            outputs.push(pt);
            before = prev;
            prev = pt;
        }
        outputs
    }

    /// Mean loss over a batch under teacher forcing, plus the flat
    /// gradient (same layout as [`Seq2Seq::params`]).
    ///
    /// Exact BPTT through the decoder and encoder. The returned loss and
    /// gradient are averaged over the batch.
    pub fn loss_and_grad(&self, batch: &TrainBatch, loss: &dyn Loss) -> (f64, Vec<f64>) {
        assert!(!batch.is_empty(), "empty training batch");
        let h = self.cfg.hidden;
        let mut enc_grad = self.encoder.zero_grad();
        let mut dec_grad = self.decoder.zero_grad();
        let mut head_grad = DenseGrad::zeros(&self.head);
        let mut total_loss = 0.0;

        for (input, target) in &batch.pairs {
            assert!(!input.is_empty() && !target.is_empty(), "degenerate pair");
            // ---- forward ----
            let mut state = self.encoder.zero_state(h);
            let mut enc_caches = Vec::with_capacity(input.len());
            for (i, x) in input.iter().enumerate() {
                let before = input[i.saturating_sub(1)];
                let (next, cache) = self
                    .encoder
                    .forward_step(&step_features(*x, before), &state);
                enc_caches.push(cache);
                state = next;
            }
            let seq_out = target.len();
            let mut dec_caches = Vec::with_capacity(seq_out);
            let mut dec_h = Vec::with_capacity(seq_out);
            let mut preds = Vec::with_capacity(seq_out);
            let mut prev = *input.last().expect("non-empty");
            let mut before = input[input.len().saturating_sub(2)];
            for tgt in target.iter().take(seq_out) {
                let (next, cache) = self
                    .decoder
                    .forward_step(&step_features(prev, before), &state);
                dec_caches.push(cache);
                state = next;
                dec_h.push(state.h.clone());
                let y = self.head.forward(&state.h);
                // Residual head: prediction = previous location + delta.
                preds.push([prev[0] + y[0], prev[1] + y[1]]);
                // Teacher forcing: the next decoder input is ground truth.
                before = prev;
                prev = *tgt;
            }

            // ---- loss ----
            let mut dy = Vec::with_capacity(seq_out);
            for t in 0..seq_out {
                let (l, g) = loss.step(preds[t], target[t], seq_out);
                total_loss += l;
                dy.push(g);
            }

            // ---- backward through decoder ----
            let mut dh = vec![0.0; h];
            let mut dc = match self.decoder {
                Cell::Lstm(_) => vec![0.0; h],
                Cell::Gru(_) => Vec::new(),
            };
            for t in (0..seq_out).rev() {
                let dh_head = self.head.backward(&dec_h[t], &dy[t], &mut head_grad);
                for k in 0..h {
                    dh[k] += dh_head[k];
                }
                let (dh_prev, dc_prev) =
                    self.decoder
                        .backward_step(&dec_caches[t], &dh, &dc, &mut dec_grad);
                dh = dh_prev;
                dc = dc_prev;
            }
            // ---- backward through encoder ----
            for cache in enc_caches.iter().rev() {
                let (dh_prev, dc_prev) = self.encoder.backward_step(cache, &dh, &dc, &mut enc_grad);
                dh = dh_prev;
                dc = dc_prev;
            }
        }

        let inv = 1.0 / batch.len() as f64;
        let mut flat = Vec::with_capacity(self.n_params());
        Cell::grad_into(&enc_grad, &mut flat, inv);
        Cell::grad_into(&dec_grad, &mut flat, inv);
        flat.extend(head_grad.dw.as_slice().iter().map(|g| g * inv));
        flat.extend(head_grad.db.iter().map(|g| g * inv));
        (total_loss * inv, flat)
    }

    /// Mean loss over a batch under teacher forcing, without gradients
    /// (query-set evaluation).
    pub fn loss_only(&self, batch: &TrainBatch, loss: &dyn Loss) -> f64 {
        assert!(!batch.is_empty(), "empty batch");
        let h = self.cfg.hidden;
        let _ = h;
        let mut total = 0.0;
        for (input, target) in &batch.pairs {
            let mut state = self.encoder.zero_state(self.cfg.hidden);
            for (i, x) in input.iter().enumerate() {
                let before = input[i.saturating_sub(1)];
                let (next, _) = self
                    .encoder
                    .forward_step(&step_features(*x, before), &state);
                state = next;
            }
            let mut prev = *input.last().expect("non-empty");
            let mut before = input[input.len().saturating_sub(2)];
            for tgt in target {
                let (next, _) = self
                    .decoder
                    .forward_step(&step_features(prev, before), &state);
                state = next;
                let y = self.head.forward(&state.h);
                let (l, _) = loss.step([prev[0] + y[0], prev[1] + y[1]], *tgt, target.len());
                total += l;
                before = prev;
                prev = *tgt;
            }
        }
        total / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::MseLoss;
    use tamp_core::rng::rng_for;

    fn tiny_model(seed: u64) -> Seq2Seq {
        let mut rng = rng_for(seed, 0);
        Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng)
    }

    fn line_batch() -> TrainBatch {
        // Deterministic straight-line motion: next point continues the line.
        let mut pairs = Vec::new();
        for s in 0..8 {
            let start = s as f64 * 0.01;
            let input: Vec<Pt2> = (0..4).map(|i| [start + i as f64 * 0.05, 0.5]).collect();
            let target: Vec<Pt2> = (4..6).map(|i| [start + i as f64 * 0.05, 0.5]).collect();
            pairs.push((input, target));
        }
        TrainBatch::new(pairs)
    }

    #[test]
    fn params_round_trip() {
        let model = tiny_model(1);
        let p = model.params();
        assert_eq!(p.len(), model.n_params());
        let mut other = tiny_model(2);
        assert_ne!(other.params(), p);
        other.set_params(&p);
        assert_eq!(other.params(), p);
        // Behaviour matches too.
        let input = [[0.1, 0.2], [0.2, 0.3]];
        assert_eq!(model.predict(&input, 3), other.predict(&input, 3));
    }

    #[test]
    fn predict_emits_requested_length() {
        let model = tiny_model(3);
        let out = model.predict(&[[0.5, 0.5]], 4);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let model = tiny_model(4);
        let batch = TrainBatch::new(vec![(
            vec![[0.1, 0.2], [0.15, 0.25], [0.2, 0.3]],
            vec![[0.25, 0.35], [0.3, 0.4]],
        )]);
        let (l0, grad) = model.loss_and_grad(&batch, &MseLoss);
        assert!(l0 > 0.0);

        let p = model.params();
        let eps = 1e-6;
        // Sample a spread of parameter indices across all blocks.
        let n = p.len();
        let idxs = [0, n / 7, n / 3, n / 2, 2 * n / 3, 5 * n / 6, n - 1];
        for &i in &idxs {
            let mut plus = model.clone();
            let mut pp = p.clone();
            pp[i] += eps;
            plus.set_params(&pp);
            let mut minus = model.clone();
            let mut pm = p.clone();
            pm[i] -= eps;
            minus.set_params(&pm);
            let (lp, _) = plus.loss_and_grad(&batch, &MseLoss);
            let (lm, _) = minus.loss_and_grad(&batch, &MseLoss);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-5,
                "param {i}: fd={fd} analytic={}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let mut model = tiny_model(5);
        let batch = line_batch();
        let (initial, _) = model.loss_and_grad(&batch, &MseLoss);
        let mut params = model.params();
        for _ in 0..200 {
            model.set_params(&params);
            let (_, grad) = model.loss_and_grad(&batch, &MseLoss);
            for (p, g) in params.iter_mut().zip(&grad) {
                *p -= 0.5 * g;
            }
        }
        model.set_params(&params);
        let (trained, _) = model.loss_and_grad(&batch, &MseLoss);
        assert!(
            trained < initial * 0.2,
            "training should cut loss by 5x: {initial} → {trained}"
        );
    }

    #[test]
    fn loss_only_matches_loss_and_grad() {
        let model = tiny_model(6);
        let batch = line_batch();
        let (l, _) = model.loss_and_grad(&batch, &MseLoss);
        let l2 = model.loss_only(&batch, &MseLoss);
        assert!((l - l2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty training batch")]
    fn empty_batch_panics() {
        let model = tiny_model(7);
        model.loss_and_grad(&TrainBatch::default(), &MseLoss);
    }
}

//! Cross-crate integration tests: the full TAMP pipeline at tiny scale.

use tamp::meta::meta_training::MetaConfig;
use tamp::platform::engine::run_all_algorithms;
use tamp::platform::{
    run_assignment, train_predictors, AssignmentAlgo, EngineConfig, LossKind, PredictionAlgo,
    TrainingConfig,
};
use tamp::sim::{Scale, WorkloadConfig, WorkloadKind};

fn quick_training(seed: u64, algo: PredictionAlgo, loss: LossKind) -> TrainingConfig {
    TrainingConfig {
        algo,
        loss,
        hidden: 8,
        seq_in: 3,
        seq_out: 1,
        meta: MetaConfig {
            iterations: 3,
            batch_tasks: 3,
            ..MetaConfig::default()
        },
        path_steps: 2,
        adapt_steps: 3,
        seed,
        ..TrainingConfig::default()
    }
}

fn engine() -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        ..EngineConfig::default()
    }
}

#[test]
fn full_pipeline_runs_and_metrics_are_sane() {
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 1001).build();
    let predictors = train_predictors(
        &workload,
        &quick_training(1001, PredictionAlgo::Gttaml, LossKind::TaskOriented),
    );
    assert_eq!(predictors.models.len(), workload.workers.len());
    assert!(predictors.overall.rmse_cells > 0.0);
    assert!((0.0..=1.0).contains(&predictors.overall.mr));

    let m = run_assignment(&workload, Some(&predictors), AssignmentAlgo::Ppi, &engine());
    assert_eq!(m.tasks_total, workload.tasks.len());
    assert_eq!(m.completed + m.rejected, m.assigned_total);
    assert!(m.completion_ratio() <= 1.0);
    assert!(m.avg_worker_cost_km() <= workload.workers[0].worker.detour_limit_km);
}

#[test]
fn pipeline_is_deterministic_in_the_seed() {
    let build = || {
        let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 77).build();
        let p = train_predictors(
            &workload,
            &quick_training(77, PredictionAlgo::Gttaml, LossKind::Mse),
        );
        run_assignment(&workload, Some(&p), AssignmentAlgo::Ppi, &engine())
    };
    let a = build();
    let b = build();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.assigned_total, b.assigned_total);
    assert!((a.total_detour_km - b.total_detour_km).abs() < 1e-9);
}

#[test]
fn ub_bounds_hold_across_the_roster() {
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 55).build();
    let with_loss = train_predictors(
        &workload,
        &quick_training(55, PredictionAlgo::Gttaml, LossKind::TaskOriented),
    );
    let with_mse = train_predictors(
        &workload,
        &quick_training(55, PredictionAlgo::Gttaml, LossKind::Mse),
    );
    let rows = run_all_algorithms(&workload, &with_loss, &with_mse, &engine());
    let get = |name: &str| {
        rows.iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| *m)
            .expect("algorithm row present")
    };
    let ub = get("UB");
    assert_eq!(ub.rejected, 0, "UB never violates real constraints");
    // UB is the completion upper bound of the roster.
    for (name, m) in &rows {
        assert!(
            m.completion_ratio() <= ub.completion_ratio() + 1e-9,
            "{name} beats UB: {} > {}",
            m.completion_ratio(),
            ub.completion_ratio()
        );
    }
    // All plans account consistently.
    for (name, m) in &rows {
        assert_eq!(m.completed + m.rejected, m.assigned_total, "{name}");
    }
}

#[test]
fn workload2_pipeline_also_runs() {
    let workload = WorkloadConfig::new(WorkloadKind::GowallaFoursquare, Scale::tiny(), 90).build();
    let p = train_predictors(
        &workload,
        &quick_training(90, PredictionAlgo::Ctml, LossKind::Mse),
    );
    let m = run_assignment(&workload, Some(&p), AssignmentAlgo::Km, &engine());
    assert_eq!(m.completed + m.rejected, m.assigned_total);
}

#[test]
fn every_prediction_algorithm_feeds_the_engine() {
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 31).build();
    for algo in [
        PredictionAlgo::Maml,
        PredictionAlgo::Ctml,
        PredictionAlgo::GttamlGt,
        PredictionAlgo::Gttaml,
    ] {
        let p = train_predictors(&workload, &quick_training(31, algo, LossKind::Mse));
        let m = run_assignment(&workload, Some(&p), AssignmentAlgo::Ppi, &engine());
        assert!(m.assigned_total > 0, "{algo:?} produced no assignments");
    }
}

//! Cluster quality `Q(G)` (Eq. 4) and player utility (Eq. 5).
//!
//! `Q(G)` is the mean pairwise similarity inside the cluster, `γ` for a
//! singleton and 0 for an empty cluster. A player's utility for joining
//! cluster `G` is the marginal quality `u(Γᵢ, G) = Q(G) − Q(G∖{Γᵢ})`,
//! which makes the clustering game an exact potential game with potential
//! `Σ_G Q(G)` (Theorem 1).

use crate::similarity::SimMatrix;

/// Quality `Q(G)` of a cluster given the factor's similarity matrix.
pub fn cluster_quality(sim: &SimMatrix, members: &[usize], gamma: f64) -> f64 {
    match members.len() {
        0 => 0.0,
        1 => gamma,
        n => {
            let mut sum = 0.0;
            for (idx, &i) in members.iter().enumerate() {
                for &j in &members[idx + 1..] {
                    sum += sim.get(i, j);
                }
            }
            // Eq. 4 sums ordered pairs and divides by |G|(|G|−1); summing
            // unordered pairs and dividing by n(n−1)/2 is identical.
            sum / (n * (n - 1) / 2) as f64
        }
    }
}

/// Utility `u(Γᵢ, G)` of Eq. 5 for a member `i ∈ G`:
/// `Q(G) − Q(G ∖ {i})`.
pub fn member_utility(sim: &SimMatrix, members: &[usize], i: usize, gamma: f64) -> f64 {
    debug_assert!(members.contains(&i), "utility of a non-member");
    let q_with = cluster_quality(sim, members, gamma);
    let without: Vec<usize> = members.iter().copied().filter(|&m| m != i).collect();
    q_with - cluster_quality(sim, &without, gamma)
}

/// Utility of *joining* a cluster that currently excludes `i`:
/// `Q(G ∪ {i}) − Q(G)`.
pub fn join_utility(sim: &SimMatrix, members: &[usize], i: usize, gamma: f64) -> f64 {
    debug_assert!(!members.contains(&i), "join utility of a member");
    let mut with: Vec<usize> = members.to_vec();
    with.push(i);
    cluster_quality(sim, &with, gamma) - cluster_quality(sim, members, gamma)
}

/// The exact potential `F_p = Σ_G Q(G)` of the clustering game
/// (Appendix A-A). Best-response moves never decrease it.
pub fn potential(sim: &SimMatrix, clusters: &[Vec<usize>], gamma: f64) -> f64 {
    clusters
        .iter()
        .map(|g| cluster_quality(sim, g, gamma))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, s: f64) -> SimMatrix {
        SimMatrix::from_fn(n, |_, _| s)
    }

    #[test]
    fn quality_base_cases() {
        let m = uniform(4, 0.6);
        assert_eq!(cluster_quality(&m, &[], 0.2), 0.0);
        assert_eq!(cluster_quality(&m, &[2], 0.2), 0.2);
        assert!((cluster_quality(&m, &[0, 1], 0.2) - 0.6).abs() < 1e-12);
        assert!((cluster_quality(&m, &[0, 1, 2, 3], 0.2) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn quality_mixed_pairs() {
        // sim(0,1)=0.9, everything else 0.1.
        let m = SimMatrix::from_fn(3, |i, j| if i + j == 1 { 0.9 } else { 0.1 });
        let q = cluster_quality(&m, &[0, 1, 2], 0.2);
        assert!((q - (0.9 + 0.1 + 0.1) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilities_are_marginals() {
        let m = SimMatrix::from_fn(3, |i, j| if i + j == 1 { 0.9 } else { 0.1 });
        // For i=2 in {0,1,2}: Q({0,1,2}) − Q({0,1}).
        let u = member_utility(&m, &[0, 1, 2], 2, 0.2);
        assert!((u - ((0.9 + 0.2) / 3.0 - 0.9)).abs() < 1e-12);
        // Joining: Q({0,1,2}) − Q({0,1}) as well.
        let ju = join_utility(&m, &[0, 1], 2, 0.2);
        assert!((u - ju).abs() < 1e-12);
    }

    #[test]
    fn potential_is_sum_of_qualities() {
        let m = uniform(4, 0.5);
        let clusters = vec![vec![0, 1], vec![2], vec![3]];
        let p = potential(&m, &clusters, 0.3);
        assert!((p - (0.5 + 0.3 + 0.3)).abs() < 1e-12);
    }

    /// The exact-potential identity of Theorem 1's proof: moving player i
    /// from cluster A to cluster B changes the potential by exactly the
    /// utility difference.
    #[test]
    fn potential_change_equals_utility_difference() {
        let m = SimMatrix::from_fn(5, |i, j| 0.1 + 0.15 * ((i * j) % 5) as f64);
        let gamma = 0.25;
        let a = vec![0, 1, 4];
        let b = vec![2, 3];
        let i = 4;
        let u_stay = member_utility(&m, &a, i, gamma);
        let u_move = join_utility(&m, &b, i, gamma);

        let before = potential(&m, &[a.clone(), b.clone()], gamma);
        let a_after: Vec<usize> = a.iter().copied().filter(|&x| x != i).collect();
        let mut b_after = b.clone();
        b_after.push(i);
        let after = potential(&m, &[a_after, b_after], gamma);

        assert!(
            ((after - before) - (u_move - u_stay)).abs() < 1e-12,
            "ΔF = {}, Δu = {}",
            after - before,
            u_move - u_stay
        );
    }
}

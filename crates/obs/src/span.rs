//! RAII span timers with parent/child nesting.
//!
//! A [`SpanGuard`] measures the scope it lives in on the monotonic clock
//! and, on drop, emits one `span` event and one histogram observation
//! (`<name>` in microseconds) into its [`Obs`]. Nesting is
//! tracked per thread: a span opened while another is alive on the same
//! thread records that span as its parent. The complete span event is
//! emitted at *end* time, so in a trace children appear before their
//! parents — consumers reconstruct the tree from `id`/`parent`.

use crate::event::{Event, EventKind, SpanData};
use crate::Obs;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Times a scope; see the module docs. Constructed via [`Obs::span`].
#[must_use = "a span guard measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard<'a> {
    /// `None` when observability is disabled — every drop is then free.
    obs: Option<&'a Obs>,
    name: &'static str,
    idx: Option<u64>,
    id: u64,
    parent: Option<u64>,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn disabled() -> Self {
        Self {
            obs: None,
            name: "",
            idx: None,
            id: 0,
            parent: None,
            start: Instant::now(),
        }
    }

    pub(crate) fn open(obs: &'a Obs, name: &'static str, idx: Option<u64>) -> Self {
        let id = obs.next_span_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        Self {
            obs: Some(obs),
            name,
            idx,
            id,
            parent,
            start: Instant::now(),
        }
    }

    /// The span's id (for tests asserting the nesting structure).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(obs) = self.obs else { return };
        let dur = self.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last(), Some(&self.id), "span drop order inverted");
            s.retain(|&x| x != self.id);
        });
        let start_us = obs.micros_since_origin(self.start);
        let dur_us = dur.as_micros().min(u64::MAX as u128) as u64;
        obs.record_span_end(
            Event {
                kind: EventKind::Span,
                name: self.name.to_string(),
                value: 0.0,
                idx: self.idx,
                span: Some(SpanData {
                    id: self.id,
                    parent: self.parent,
                    start_us,
                    dur_us,
                }),
            },
            dur_us,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::event::EventKind;
    use crate::Obs;

    #[test]
    fn spans_nest_and_emit_in_end_order() {
        let (obs, mem) = Obs::in_memory();
        {
            let outer = obs.span("outer");
            let outer_id = outer.id();
            {
                let inner = obs.span_idx("inner", 3);
                assert_ne!(inner.id(), outer_id);
            }
            let _sibling = obs.span("sibling");
        }
        let evs = mem.events();
        assert_eq!(evs.len(), 3);
        // End order: inner, sibling, outer.
        assert_eq!(evs[0].name, "inner");
        assert_eq!(evs[1].name, "sibling");
        assert_eq!(evs[2].name, "outer");
        let outer_id = evs[2].span.unwrap().id;
        assert_eq!(evs[0].span.unwrap().parent, Some(outer_id));
        assert_eq!(evs[1].span.unwrap().parent, Some(outer_id));
        assert_eq!(evs[2].span.unwrap().parent, None);
        assert_eq!(evs[0].idx, Some(3));
        assert!(evs.iter().all(|e| e.kind == EventKind::Span));
    }

    #[test]
    fn spans_feed_a_latency_histogram() {
        let (obs, _mem) = Obs::in_memory();
        for _ in 0..5 {
            let _s = obs.span("work");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.histograms["work"].count, 5);
    }

    #[test]
    fn disabled_obs_spans_are_inert() {
        let obs = Obs::null();
        let s = obs.span("anything");
        assert_eq!(s.id(), 0);
        drop(s);
        assert!(obs.snapshot().histograms.is_empty());
    }

    #[test]
    fn sequential_spans_get_sequential_ids() {
        let (obs, mem) = Obs::in_memory();
        drop(obs.span("a"));
        drop(obs.span("b"));
        let evs = mem.events();
        assert_eq!(evs[0].span.unwrap().id + 1, evs[1].span.unwrap().id);
    }
}

//! Maximum-weight bipartite matching — the "KM algorithm" of the paper
//! (Kuhn \[35\], Munkres \[36\]).
//!
//! Implemented as the O(n³) shortest-augmenting-path Hungarian method on
//! the min-cost formulation with dual potentials. The public entry point
//! [`max_weight_matching`] accepts a sparse edge list over a rectangular
//! bipartite graph and returns a matching that
//!
//! 1. has maximum cardinality over the *allowed* edges, and
//! 2. among those, maximum total weight,
//!
//! which is exactly the behaviour the paper's assignment stages need
//! (assign as many tasks as possible, preferring small detours via
//! `1/minB`-style weights).

/// A weighted edge `left → right` of the bipartite graph. Higher weight is
/// preferred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// Index on the left side (tasks, in the paper's usage).
    pub left: usize,
    /// Index on the right side (workers).
    pub right: usize,
    /// Preference weight; must be finite.
    pub weight: f64,
}

impl WeightedEdge {
    /// Convenience constructor.
    pub fn new(left: usize, right: usize, weight: f64) -> Self {
        Self {
            left,
            right,
            weight,
        }
    }
}

/// Sentinel cost for a forbidden pairing. Any finite edge weight used by
/// callers must be ≪ than this; `debug_assert`ed in the solver.
const FORBIDDEN: f64 = 1.0e9;

/// Solves the min-cost perfect assignment on an `n × m` cost matrix with
/// `n ≤ m` using the potentials/shortest-augmenting-path Hungarian method.
/// Returns `row_of_col[j]` (`usize::MAX` for unmatched columns).
fn solve_min_cost(n: usize, m: usize, cost: &[f64]) -> Vec<usize> {
    debug_assert!(n <= m);
    // 1-indexed arrays, following the classic formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1]; // row matched to column j
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[(i0 - 1) * m + (j - 1)] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_of_col = vec![usize::MAX; m];
    for j in 1..=m {
        if p[j] != 0 {
            row_of_col[j - 1] = p[j] - 1;
        }
    }
    row_of_col
}

/// Maximum-cardinality, maximum-weight matching over a sparse edge list.
///
/// `n_left` and `n_right` bound the vertex indices; absent edges are
/// forbidden. Returns `(left, right)` pairs of the matching (unordered).
///
/// # Examples
///
/// ```
/// use tamp_assign::hungarian::{max_weight_matching, WeightedEdge};
///
/// // Two tasks, two workers; the anti-diagonal pairing is heavier.
/// let edges = [
///     WeightedEdge::new(0, 0, 1.0),
///     WeightedEdge::new(0, 1, 5.0),
///     WeightedEdge::new(1, 0, 5.0),
///     WeightedEdge::new(1, 1, 1.0),
/// ];
/// let mut m = max_weight_matching(2, 2, &edges);
/// m.sort();
/// assert_eq!(m, vec![(0, 1), (1, 0)]);
/// ```
///
/// # Panics
///
/// Panics if an edge index is out of range or a weight is not finite.
pub fn max_weight_matching(
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
) -> Vec<(usize, usize)> {
    if n_left == 0 || n_right == 0 || edges.is_empty() {
        return Vec::new();
    }
    for e in edges {
        assert!(e.left < n_left, "edge.left out of range");
        assert!(e.right < n_right, "edge.right out of range");
        assert!(e.weight.is_finite(), "edge weight must be finite");
        debug_assert!(
            e.weight.abs() < FORBIDDEN / 1e3,
            "edge weight too large vs FORBIDDEN sentinel"
        );
    }

    // Only vertices that actually carry edges need to participate — this
    // keeps the dense matrix small when the graph is sparse.
    let mut left_ids: Vec<usize> = edges.iter().map(|e| e.left).collect();
    left_ids.sort_unstable();
    left_ids.dedup();
    let mut right_ids: Vec<usize> = edges.iter().map(|e| e.right).collect();
    right_ids.sort_unstable();
    right_ids.dedup();

    let ln = left_ids.len();
    let rn = right_ids.len();
    let left_pos = |v: usize| left_ids.binary_search(&v).expect("left id present");
    let right_pos = |v: usize| right_ids.binary_search(&v).expect("right id present");

    // Orient so rows ≤ cols.
    let transpose = ln > rn;
    let (n, m) = if transpose { (rn, ln) } else { (ln, rn) };

    // Min-cost formulation: cost = −weight, forbidden pairs cost FORBIDDEN.
    // Because FORBIDDEN dwarfs any weight, the solver first minimises the
    // number of forbidden pairs used (maximising real cardinality), then
    // maximises total weight.
    let mut cost = vec![FORBIDDEN; n * m];
    for e in edges {
        let (r, c) = if transpose {
            (right_pos(e.right), left_pos(e.left))
        } else {
            (left_pos(e.left), right_pos(e.right))
        };
        let cell = &mut cost[r * m + c];
        // Parallel edges: keep the best (max weight = min cost).
        *cell = cell.min(-e.weight);
    }

    let row_of_col = solve_min_cost(n, m, &cost);
    let mut result = Vec::new();
    for (c, &r) in row_of_col.iter().enumerate() {
        if r == usize::MAX {
            continue;
        }
        if cost[r * m + c] >= FORBIDDEN / 2.0 {
            continue; // matched through a forbidden cell — drop it
        }
        let (l, rr) = if transpose {
            (left_ids[c], right_ids[r])
        } else {
            (left_ids[r], right_ids[c])
        };
        result.push((l, rr));
    }
    result
}

/// Total weight of a matching under an edge list (useful for tests and
/// diagnostics). Pairs without a corresponding edge contribute the best
/// available parallel edge; panics if a pair has no edge at all.
pub fn matching_weight(edges: &[WeightedEdge], matching: &[(usize, usize)]) -> f64 {
    matching
        .iter()
        .map(|&(l, r)| {
            edges
                .iter()
                .filter(|e| e.left == l && e.right == r)
                .map(|e| e.weight)
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .inspect(|w| assert!(w.is_finite(), "matched pair without an edge"))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(matching: &[(usize, usize)]) {
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for &(l, r) in matching {
            assert!(lefts.insert(l), "left {l} matched twice");
            assert!(rights.insert(r), "right {r} matched twice");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(max_weight_matching(0, 5, &[]).is_empty());
        assert!(max_weight_matching(5, 0, &[]).is_empty());
        assert!(max_weight_matching(3, 3, &[]).is_empty());
    }

    #[test]
    fn single_edge() {
        let m = max_weight_matching(2, 2, &[WeightedEdge::new(1, 0, 3.0)]);
        assert_eq!(m, vec![(1, 0)]);
    }

    #[test]
    fn picks_heavier_perfect_matching() {
        // 2×2 complete: diag = 1+1, anti-diag = 5+5.
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(1, 1, 1.0),
            WeightedEdge::new(0, 1, 5.0),
            WeightedEdge::new(1, 0, 5.0),
        ];
        let m = max_weight_matching(2, 2, &edges);
        assert_valid(&m);
        assert_eq!(m.len(), 2);
        assert_eq!(matching_weight(&edges, &m), 10.0);
    }

    #[test]
    fn prefers_cardinality_over_weight() {
        // A greedy weight-first match (0–0 at 100) blocks the second pair;
        // the solver must pick the two-pair matching even though its total
        // weight per-edge is smaller... but here total 100 < 2? No:
        // cardinality dominates because unmatched = forbidden cost. The
        // only way to match both lefts is (0,1) and (1,0).
        let edges = [
            WeightedEdge::new(0, 0, 100.0),
            WeightedEdge::new(0, 1, 1.0),
            WeightedEdge::new(1, 0, 1.0),
        ];
        let m = max_weight_matching(2, 2, &edges);
        assert_valid(&m);
        assert_eq!(m.len(), 2, "both lefts must be matched: {m:?}");
        assert_eq!(matching_weight(&edges, &m), 2.0);
    }

    #[test]
    fn rectangular_more_workers() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(0, 1, 2.0),
            WeightedEdge::new(0, 2, 3.0),
        ];
        let m = max_weight_matching(1, 3, &edges);
        assert_eq!(m, vec![(0, 2)]);
    }

    #[test]
    fn rectangular_more_tasks() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(1, 0, 2.0),
            WeightedEdge::new(2, 0, 3.0),
        ];
        let m = max_weight_matching(3, 1, &edges);
        assert_eq!(m, vec![(2, 0)]);
    }

    #[test]
    fn forbidden_edges_never_matched() {
        // Only (0,0) and (1,1) exist; the solver cannot invent (0,1).
        let edges = [WeightedEdge::new(0, 0, 1.0), WeightedEdge::new(1, 1, 1.0)];
        let m = max_weight_matching(2, 2, &edges);
        assert_valid(&m);
        let set: std::collections::HashSet<_> = m.into_iter().collect();
        assert!(set.contains(&(0, 0)));
        assert!(set.contains(&(1, 1)));
        assert!(!set.contains(&(0, 1)));
        assert!(!set.contains(&(1, 0)));
    }

    #[test]
    fn parallel_edges_keep_best() {
        let edges = [WeightedEdge::new(0, 0, 1.0), WeightedEdge::new(0, 0, 7.0)];
        let m = max_weight_matching(1, 1, &edges);
        assert_eq!(m, vec![(0, 0)]);
        assert_eq!(matching_weight(&edges, &m), 7.0);
    }

    #[test]
    fn sparse_indices_far_apart() {
        // Vertex ids near the bounds; the dense matrix must stay small.
        let edges = [
            WeightedEdge::new(999, 0, 2.0),
            WeightedEdge::new(0, 999, 3.0),
        ];
        let m = max_weight_matching(1000, 1000, &edges);
        assert_valid(&m);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use rand::Rng;
        let mut rng = tamp_core::rng::rng_for(99, 0);
        for trial in 0..200 {
            let n = rng.gen_range(1..=4usize);
            let m = rng.gen_range(1..=4usize);
            let mut edges = Vec::new();
            for l in 0..n {
                for r in 0..m {
                    if rng.gen_bool(0.7) {
                        edges.push(WeightedEdge::new(l, r, rng.gen_range(0.1..10.0)));
                    }
                }
            }
            let got = max_weight_matching(n, m, &edges);
            let got_card = got.len();
            let got_w = if got.is_empty() {
                0.0
            } else {
                matching_weight(&edges, &got)
            };

            // Brute force: enumerate all matchings by recursion.
            fn best(
                edges: &[WeightedEdge],
                idx: usize,
                used_l: &mut Vec<bool>,
                used_r: &mut Vec<bool>,
            ) -> (usize, f64) {
                if idx == edges.len() {
                    return (0, 0.0);
                }
                // Skip edge idx.
                let mut acc = best(edges, idx + 1, used_l, used_r);
                let e = edges[idx];
                if !used_l[e.left] && !used_r[e.right] {
                    used_l[e.left] = true;
                    used_r[e.right] = true;
                    let (c, w) = best(edges, idx + 1, used_l, used_r);
                    used_l[e.left] = false;
                    used_r[e.right] = false;
                    let cand = (c + 1, w + e.weight);
                    // Cardinality first, then weight.
                    if cand.0 > acc.0 || (cand.0 == acc.0 && cand.1 > acc.1) {
                        acc = cand;
                    }
                }
                acc
            }
            let (bc, bw) = best(&edges, 0, &mut vec![false; n], &mut vec![false; m]);
            assert_eq!(got_card, bc, "trial {trial}: cardinality mismatch");
            assert!(
                (got_w - bw).abs() < 1e-6,
                "trial {trial}: weight {got_w} vs brute {bw}"
            );
        }
    }
}

//! Compact binary codec for routines.
//!
//! The platform ships worker trajectories between the simulator, the
//! training pipeline and the experiment drivers. JSON is convenient but
//! ~10× larger than necessary for dense float triples, so routines get a
//! simple length-prefixed little-endian layout built on [`bytes`]:
//!
//! ```text
//! u32 count | count × (f64 x | f64 y | f64 t_minutes)
//! ```

use crate::error::{Result, TampError};
use crate::geometry::Point;
use crate::routine::{Routine, TimedPoint};
use crate::time::Minutes;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encodes a routine into its binary form.
pub fn encode_routine(r: &Routine) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + r.len() * 24);
    buf.put_u32_le(r.len() as u32);
    for p in r.points() {
        buf.put_f64_le(p.loc.x);
        buf.put_f64_le(p.loc.y);
        buf.put_f64_le(p.time.as_f64());
    }
    buf.freeze()
}

/// Decodes a routine previously produced by [`encode_routine`].
pub fn decode_routine(mut buf: impl Buf) -> Result<Routine> {
    if buf.remaining() < 4 {
        return Err(TampError::Codec("missing length prefix".into()));
    }
    let count = buf.get_u32_le() as usize;
    let need = count * 24;
    if buf.remaining() < need {
        return Err(TampError::Codec(format!(
            "expected {need} payload bytes, found {}",
            buf.remaining()
        )));
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        let t = buf.get_f64_le();
        if !(x.is_finite() && y.is_finite() && t.is_finite()) {
            return Err(TampError::Codec("non-finite sample".into()));
        }
        points.push(TimedPoint::new(Point::new(x, y), Minutes::new(t)));
    }
    Ok(Routine::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine() -> Routine {
        Routine::from_sampled(
            (0..10).map(|i| Point::new(i as f64 * 0.3, (i % 3) as f64)),
            Minutes::ZERO,
            Minutes::new(10.0),
        )
    }

    #[test]
    fn round_trip() {
        let r = routine();
        let bytes = encode_routine(&r);
        assert_eq!(bytes.len(), 4 + 10 * 24);
        let back = decode_routine(bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_round_trip() {
        let r = Routine::new();
        let back = decode_routine(encode_routine(&r)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_payload_errors() {
        let bytes = encode_routine(&routine());
        let truncated = bytes.slice(..bytes.len() - 8);
        assert!(matches!(
            decode_routine(truncated),
            Err(TampError::Codec(_))
        ));
    }

    #[test]
    fn missing_prefix_errors() {
        assert!(matches!(
            decode_routine(Bytes::from_static(&[1, 2])),
            Err(TampError::Codec(_))
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_f64_le(f64::NAN);
        buf.put_f64_le(0.0);
        buf.put_f64_le(0.0);
        assert!(matches!(
            decode_routine(buf.freeze()),
            Err(TampError::Codec(_))
        ));
    }
}

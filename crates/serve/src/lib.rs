//! # tamp-serve
//!
//! The long-running, sharded assignment service over the batch engine —
//! the deployment shape the paper's platform implies (tasks and worker
//! reports arrive continuously; PPI runs per 2-minute batch window) but
//! that one-shot `run_assignment` calls cannot express.
//!
//! * [`queue`] — bounded submission queues with explicit, counted load
//!   shedding (backpressure; nothing dropped silently).
//! * [`event`] — the timestamped task/report events and the replay
//!   stream that turns a generated [`tamp_sim::Workload`] into one.
//! * [`shard`] — one city/workload's engine state behind its queue:
//!   feeds windows, drains them into [`tamp_platform::EngineState`]
//!   batches, keeps the per-worker report logs, applies the shard's
//!   [`OverloadPolicy`] to refused submissions, and snapshots/restores
//!   itself for crash safety.
//! * [`snapshot`] — the versioned, self-describing JSON shard snapshot
//!   (engine state + queue/stream/log state) a crashed shard resumes
//!   from, byte-identical to an uninterrupted run.
//! * [`host`] — the service host: window protocol, optional thread-pool
//!   stepping, snapshot cadence, crash drills, predictor hot-swap,
//!   graceful shutdown, per-shard reports with latency percentiles.
//! * [`clock`] — window pacing (accelerated clock for simulation).
//! * [`http`] — the zero-dependency metrics exporter (`serve
//!   --metrics-addr`): Prometheus text and own-codec JSON over a tiny
//!   blocking listener, reading the host's cumulative snapshot and
//!   sliding-window [`tamp_obs::LiveView`] mid-run.
//!
//! The serve path reuses the exact engine the experiments run, so a
//! serve run over a replayed workload is **byte-identical** to the
//! one-shot `run_assignment` on the same workload (enforced by this
//! crate's tests and by the `scripts/ci.sh` smoke diff), with the
//! cross-batch prediction cache ([`tamp_platform::predcache`]) on by
//! default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod host;
pub mod http;
pub mod queue;
pub mod shard;
pub mod snapshot;

pub use clock::Pacing;
pub use event::{EventStream, ShardEvent};
pub use host::{HostConfig, ServeHost, ServeReport, ShardReport, SloReportRow};
pub use http::{http_get, MetricsServer, MetricsSource};
pub use queue::BoundedQueue;
pub use shard::{OverloadPolicy, RetryEntry, Shard, ShardConfig, SubmissionCounts, SwapOutcome};
pub use snapshot::{ShardSnapshot, SHARD_SNAPSHOT_FORMAT, SHARD_SNAPSHOT_VERSION};

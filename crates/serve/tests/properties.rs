//! Property tests of the serve layer's central promise: across random
//! seeds, shard counts, queue capacities, overload policies, fault
//! profiles, and crash/restore schedules, a cached serve run is
//! **byte-identical** to a cold-cache one, and submission accounting
//! always closes exactly.
//!
//! Cases are deliberately few: each one trains predictors and runs two
//! full simulated days per shard.

use proptest::prelude::*;
use tamp_meta::meta_training::MetaConfig;
use tamp_obs::Obs;
use tamp_platform::{
    AssignmentAlgo, EngineConfig, FaultConfig, LossKind, PredictionAlgo, TrainedPredictors,
    TrainingConfig,
};
use tamp_serve::{HostConfig, OverloadPolicy, Pacing, ServeHost, ServeReport, Shard, ShardConfig};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_predictors(w: &Workload, seed: u64) -> TrainedPredictors {
    tamp_platform::train_predictors(
        w,
        &TrainingConfig {
            algo: PredictionAlgo::Maml,
            loss: LossKind::Mse,
            hidden: 6,
            seq_in: 3,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            adapt_steps: 2,
            seed,
            ..TrainingConfig::default()
        },
    )
}

#[derive(Debug, Clone, Copy)]
enum FaultProfile {
    None,
    ReportHeavy,
    Mixed,
}

fn fault_config(profile: FaultProfile, seed: u64) -> Option<FaultConfig> {
    match profile {
        FaultProfile::None => None,
        FaultProfile::ReportHeavy => Some(FaultConfig {
            report_loss: 0.3,
            report_delay: 0.2,
            max_delay_min: 15.0,
            gps_noise_km: 0.08,
            corrupt_coord: 0.1,
            seed,
            ..FaultConfig::none()
        }),
        FaultProfile::Mixed => Some(FaultConfig {
            report_loss: 0.15,
            report_delay: 0.1,
            max_delay_min: 12.0,
            gps_noise_km: 0.05,
            corrupt_coord: 0.05,
            offline_worker: 0.2,
            offline_window_min: 40.0,
            prediction_failure: 0.2,
            prediction_garbage: 0.05,
            adapt_poison: 0.0,
            shard_crash: 0.0,
            seed,
        }),
    }
}

/// Mixes the deterministic kill/restore schedule into a profile (or
/// into an otherwise clean config), so crash recovery is exercised
/// against every fault profile.
fn with_crashes(faults: Option<FaultConfig>, seed: u64) -> Option<FaultConfig> {
    Some(FaultConfig {
        shard_crash: 0.2,
        ..faults.unwrap_or(FaultConfig {
            seed,
            ..FaultConfig::none()
        })
    })
}

fn any_profile() -> impl Strategy<Value = FaultProfile> {
    prop::sample::select(vec![
        FaultProfile::None,
        FaultProfile::ReportHeavy,
        FaultProfile::Mixed,
    ])
}

fn any_policy() -> impl Strategy<Value = OverloadPolicy> {
    prop::sample::select(vec![
        OverloadPolicy::Shed,
        OverloadPolicy::DegradeToFallback,
        OverloadPolicy::Backpressure { retry_limit: 3 },
    ])
}

fn run_host(
    seeds: &[u64],
    cache: bool,
    queue_capacity: usize,
    overload: OverloadPolicy,
    faults: Option<FaultConfig>,
) -> ServeReport {
    let shards: Vec<Shard> = seeds
        .iter()
        .map(|&seed| {
            let w = tiny_workload(seed);
            let p = quick_predictors(&w, seed);
            let cfg = ShardConfig {
                algo: AssignmentAlgo::Ppi,
                engine: EngineConfig {
                    seq_in: 3,
                    prediction_cache: cache,
                    ..EngineConfig::default()
                },
                faults,
                queue_capacity,
                overload,
                perturb_step_sleep_ms: 0.0,
            };
            Shard::new(format!("s{seed}"), w, Some(p), cfg).expect("valid shard")
        })
        .collect();
    let host = ServeHost::new(
        shards,
        HostConfig {
            threads: seeds.len(),
            pacing: Pacing::FullSpeed,
            ..HostConfig::default()
        },
    );
    host.run(&Obs::null())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_serve_is_byte_identical_and_accounting_closes(
        base_seed in 0u64..200,
        n_shards in 1usize..=3,
        profile in any_profile(),
        policy in any_policy(),
        tight_queue in prop::bool::ANY,
        crash in prop::bool::ANY,
    ) {
        let seeds: Vec<u64> = (0..n_shards as u64).map(|i| base_seed + i).collect();
        let mut faults = fault_config(profile, base_seed ^ 0xACE5);
        if crash {
            // Warm and cold share the schedule, so kill/restore cycles
            // must be invisible in every compared byte.
            faults = with_crashes(faults, base_seed ^ 0x51AB);
        }
        let capacity = if tight_queue { 16 } else { 1 << 16 };
        let warm = run_host(&seeds, true, capacity, policy, faults);
        let cold = run_host(&seeds, false, capacity, policy, faults);
        prop_assert_eq!(warm.shards.len(), cold.shards.len());
        for (w, c) in warm.shards.iter().zip(&cold.shards) {
            prop_assert_eq!(w.crashes, c.crashes);
            if crash {
                // p = 0.2 over 120 windows: a crash-free schedule has
                // probability ~3e-12 and would mean the drill is dead.
                prop_assert!(w.crashes > 0);
            }
            // Byte-identical assignment outcome, cache on vs off.
            prop_assert_eq!(w.metrics.completed, c.metrics.completed);
            prop_assert_eq!(w.metrics.rejected, c.metrics.rejected);
            prop_assert_eq!(w.metrics.assigned_total, c.metrics.assigned_total);
            prop_assert_eq!(w.metrics.tasks_expired, c.metrics.tasks_expired);
            prop_assert_eq!(
                w.metrics.total_detour_km.to_bits(),
                c.metrics.total_detour_km.to_bits()
            );
            prop_assert_eq!(w.trace.len(), c.trace.len());
            for (rw, rc) in w.trace.iter().zip(&c.trace) {
                prop_assert_eq!(rw.proposed, rc.proposed);
                prop_assert_eq!(rw.accepted, rc.accepted);
                prop_assert_eq!(rw.rejected, rc.rejected);
                prop_assert_eq!(rw.pending, rc.pending);
                prop_assert_eq!(rw.expired, rc.expired);
            }
            // Identical queues shed identically (shedding is upstream of
            // the cache), and nothing is ever silently dropped.
            prop_assert_eq!(w.counts, c.counts);
            for r in [w, c] {
                prop_assert_eq!(r.counts.offered() + r.unfed, r.stream_total);
                prop_assert_eq!(r.queued_at_end, 0usize);
                prop_assert_eq!(
                    r.counts.submitted_tasks,
                    r.metrics.completed + r.metrics.tasks_expired + r.pending_at_end
                );
                let m = &r.metrics;
                prop_assert_eq!(
                    m.completed + m.rejected + m.invalid_pairs,
                    m.assigned_total
                );
            }
        }
    }
}

//! Prediction-quality metrics (Section IV-A).
//!
//! The paper reports RMSE and MAE in grid-cell units plus the matching
//! rate (Definition 7). Predictions are produced *autoregressively* (the
//! deployment regime), not teacher-forced, so the metrics reflect what
//! the assignment stage will actually consume.

use serde::{Deserialize, Serialize};
use tamp_assign::matching_rate::matching_rate;
use tamp_core::{Grid, Point};
use tamp_nn::{Seq2Seq, TrainBatch};

/// Prediction quality of one model on held-out pairs.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PredictionMetrics {
    /// Root mean squared point error, in grid cells.
    pub rmse_cells: f64,
    /// Mean absolute point error, in grid cells.
    pub mae_cells: f64,
    /// Matching rate (Definition 7) at the configured radius.
    pub mr: f64,
    /// Number of evaluated output points.
    pub n_points: usize,
}

impl PredictionMetrics {
    /// Pointwise accumulate-and-finalise over many workers: weighted by
    /// point counts.
    pub fn merge(metrics: &[PredictionMetrics]) -> PredictionMetrics {
        let total: usize = metrics.iter().map(|m| m.n_points).sum();
        if total == 0 {
            return PredictionMetrics::default();
        }
        let mut sq = 0.0;
        let mut abs = 0.0;
        let mut mr = 0.0;
        for m in metrics {
            let w = m.n_points as f64;
            sq += m.rmse_cells * m.rmse_cells * w;
            abs += m.mae_cells * w;
            mr += m.mr * w;
        }
        let n = total as f64;
        PredictionMetrics {
            rmse_cells: (sq / n).sqrt(),
            mae_cells: abs / n,
            mr: mr / n,
            n_points: total,
        }
    }
}

/// Evaluates a model on held-out `(input, target)` pairs.
///
/// `a_km` is the matching-rate radius. Pairs are in the model's
/// normalised coordinates; errors are converted to kilometre space and
/// reported in grid cells.
pub fn evaluate_model(
    model: &Seq2Seq,
    pairs: &TrainBatch,
    grid: &Grid,
    a_km: f64,
) -> PredictionMetrics {
    let mut sq_sum = 0.0;
    let mut abs_sum = 0.0;
    let mut real_pts: Vec<Point> = Vec::new();
    let mut pred_pts: Vec<Point> = Vec::new();
    let mut n = 0usize;

    for (input, target) in &pairs.pairs {
        if input.is_empty() || target.is_empty() {
            continue;
        }
        let preds = model.predict(input, target.len());
        for (p, t) in preds.iter().zip(target) {
            let p_km = grid.denormalize(p[0], p[1]);
            let t_km = grid.denormalize(t[0], t[1]);
            let err_cells = grid.km_to_cells(p_km.dist(t_km));
            sq_sum += err_cells * err_cells;
            abs_sum += err_cells;
            real_pts.push(t_km);
            pred_pts.push(p_km);
            n += 1;
        }
    }
    if n == 0 {
        return PredictionMetrics::default();
    }
    PredictionMetrics {
        rmse_cells: (sq_sum / n as f64).sqrt(),
        mae_cells: abs_sum / n as f64,
        mr: matching_rate(&real_pts, &pred_pts, a_km),
        n_points: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;
    use tamp_nn::Seq2SeqConfig;

    fn model() -> Seq2Seq {
        let mut rng = rng_for(1, 9);
        Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng)
    }

    #[test]
    fn empty_batch_gives_zero_metrics() {
        let m = evaluate_model(&model(), &TrainBatch::default(), &Grid::PAPER, 0.4);
        assert_eq!(m.n_points, 0);
        assert_eq!(m.rmse_cells, 0.0);
    }

    #[test]
    fn metrics_are_finite_and_consistent() {
        let batch = TrainBatch::new(vec![
            (
                vec![[0.1, 0.2], [0.15, 0.25]],
                vec![[0.2, 0.3], [0.25, 0.35]],
            ),
            (vec![[0.5, 0.5]], vec![[0.55, 0.5]]),
        ]);
        let m = evaluate_model(&model(), &batch, &Grid::PAPER, 0.4);
        assert_eq!(m.n_points, 3);
        assert!(m.rmse_cells.is_finite() && m.rmse_cells >= m.mae_cells * 0.99);
        assert!((0.0..=1.0).contains(&m.mr));
    }

    #[test]
    fn merge_weights_by_points() {
        let a = PredictionMetrics {
            rmse_cells: 1.0,
            mae_cells: 1.0,
            mr: 1.0,
            n_points: 1,
        };
        let b = PredictionMetrics {
            rmse_cells: 3.0,
            mae_cells: 3.0,
            mr: 0.0,
            n_points: 3,
        };
        let m = PredictionMetrics::merge(&[a, b]);
        assert_eq!(m.n_points, 4);
        assert!((m.mae_cells - 2.5).abs() < 1e-12);
        assert!((m.mr - 0.25).abs() < 1e-12);
        // RMSE² = (1 + 27)/4 = 7.
        assert!((m.rmse_cells - 7.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(PredictionMetrics::merge(&[]).n_points, 0);
    }

    #[test]
    fn perfect_predictor_scores_zero_error() {
        // Build a "model" evaluation where predictions equal targets by
        // checking the arithmetic path with a hand-rolled batch: use the
        // identity case via merge of a zero metric.
        let z = PredictionMetrics {
            rmse_cells: 0.0,
            mae_cells: 0.0,
            mr: 1.0,
            n_points: 10,
        };
        let m = PredictionMetrics::merge(&[z]);
        assert_eq!(m.rmse_cells, 0.0);
        assert_eq!(m.mr, 1.0);
    }
}

//! Best-response dynamics for the clustering game.
//!
//! Clustering is modelled as an n-player strategy game
//! `𝒫 = (N, {STᵢ}, {Uᵢ})` where each player (learning task) chooses which
//! cluster to join and earns the marginal quality it contributes (Eq. 5).
//! Theorem 1 shows `𝒫` is an exact potential game with potential
//! `Σ_G Q(G)`, so best-response dynamics converge to a Nash equilibrium.
//! [`best_response`] runs those dynamics from a k-medoids initialisation.
//! Per Algorithm 1, the strategy set of every player is the set of
//! clusters created by that initialisation: clusters can empty out (and
//! are then removed, line 12), but players never open new ones — `γ`
//! enters only through `Q` of clusters that shrink to a single member.

use crate::quality::{join_utility, member_utility, potential};
use crate::similarity::SimMatrix;

/// Outcome of the best-response dynamics.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// Final clusters (non-empty, disjoint, covering all players).
    pub clusters: Vec<Vec<usize>>,
    /// Number of full passes executed.
    pub passes: usize,
    /// Whether a Nash equilibrium was certified (no player moved in the
    /// final pass) as opposed to hitting the pass limit.
    pub converged: bool,
}

/// Runs best-response dynamics until no player can improve (Nash
/// equilibrium) or `max_passes` full passes elapse.
///
/// Strategies of player `i`: remain in the current cluster or join any
/// other cluster of the initialisation. Ties favour staying (strict
/// improvement is required to move), which guarantees termination by the
/// potential argument. Clusters emptied by departures are removed at the
/// end (Algorithm 1, line 12) but remain joinable during the dynamics.
pub fn best_response(
    sim: &SimMatrix,
    initial: Vec<Vec<usize>>,
    gamma: f64,
    max_passes: usize,
) -> GameOutcome {
    let mut clusters: Vec<Vec<usize>> = initial;
    let players: Vec<usize> = clusters.iter().flatten().copied().collect();
    let mut passes = 0;
    let mut converged = false;

    while passes < max_passes {
        passes += 1;
        let mut moved = false;
        for &i in &players {
            let cur = clusters
                .iter()
                .position(|c| c.contains(&i))
                .expect("player is somewhere");
            let stay = member_utility(sim, &clusters[cur], i, gamma);

            let mut best_u = stay;
            let mut best_c = cur;
            for (ci, c) in clusters.iter().enumerate() {
                if ci == cur {
                    continue;
                }
                let u = join_utility(sim, c, i, gamma);
                if u > best_u + 1e-12 {
                    best_u = u;
                    best_c = ci;
                }
            }

            if best_c != cur {
                clusters[cur].retain(|&m| m != i);
                clusters[best_c].push(i);
                moved = true;
            }
        }
        if !moved {
            converged = true;
            break;
        }
    }

    clusters.retain(|c| !c.is_empty());
    GameOutcome {
        clusters,
        passes,
        converged,
    }
}

/// Convenience: the potential of an outcome.
pub fn outcome_potential(sim: &SimMatrix, outcome: &GameOutcome, gamma: f64) -> f64 {
    potential(sim, &outcome.clusters, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_matrix(n: usize, block: usize) -> SimMatrix {
        SimMatrix::from_fn(n, |i, j| if i / block == j / block { 0.9 } else { 0.05 })
    }

    #[test]
    fn fixes_a_bad_initialisation() {
        // Blocks {0..3} and {4..7}, but the initial clustering splits them
        // badly. Best response must untangle it.
        let sim = block_matrix(8, 4);
        let initial = vec![vec![0, 4, 1, 5], vec![2, 6, 3, 7]];
        let out = best_response(&sim, initial, 0.2, 100);
        assert!(out.converged);
        for c in &out.clusters {
            let lows = c.iter().filter(|&&m| m < 4).count();
            assert!(lows == 0 || lows == c.len(), "mixed cluster: {c:?}");
        }
    }

    #[test]
    fn potential_never_decreases_across_dynamics() {
        // Track the potential pass by pass by re-running with increasing
        // pass limits.
        let sim = block_matrix(9, 3);
        let initial = vec![vec![0, 3, 6, 1], vec![4, 7, 2], vec![5, 8]];
        let mut last = potential(&sim, &initial, 0.2);
        for passes in 1..=6 {
            let out = best_response(&sim, initial.clone(), 0.2, passes);
            let p = outcome_potential(&sim, &out, 0.2);
            assert!(
                p >= last - 1e-9,
                "potential decreased: {last} → {p} at pass {passes}"
            );
            last = last.max(p);
        }
    }

    #[test]
    fn equilibrium_has_no_improving_move() {
        let sim = block_matrix(8, 4);
        let out = best_response(&sim, vec![vec![0, 1, 4, 5], vec![2, 3, 6, 7]], 0.2, 100);
        assert!(out.converged);
        // Verify Nash: no player can strictly improve.
        for (ci, c) in out.clusters.iter().enumerate() {
            for &i in c {
                let stay = member_utility(&sim, c, i, 0.2);
                for (cj, other) in out.clusters.iter().enumerate() {
                    if ci != cj {
                        let u = join_utility(&sim, other, i, 0.2);
                        assert!(u <= stay + 1e-9, "improving move exists");
                    }
                }
            }
        }
    }

    #[test]
    fn dissimilar_players_spread_toward_singletons() {
        // All similarities ~0: a singleton earns Q = γ, so players drain
        // out of the big cluster into the available empty-ish clusters
        // until each initial cluster holds as few players as possible.
        let sim = SimMatrix::from_fn(4, |_, _| 0.0);
        let out = best_response(
            &sim,
            vec![vec![0, 1, 2, 3], vec![], vec![], vec![]],
            0.5,
            100,
        );
        assert!(out.converged);
        assert_eq!(out.clusters.len(), 4, "{:?}", out.clusters);
        assert!(out.clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn preserves_player_set() {
        let sim = block_matrix(10, 5);
        let initial = vec![vec![0, 1, 2, 9], vec![3, 4, 5], vec![6, 7, 8]];
        let out = best_response(&sim, initial, 0.2, 100);
        let mut all: Vec<usize> = out.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let sim = SimMatrix::from_fn(0, |_, _| 0.0);
        let out = best_response(&sim, vec![], 0.2, 10);
        assert!(out.clusters.is_empty());
        assert!(out.converged);
    }
}

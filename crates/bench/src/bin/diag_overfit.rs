//! Diagnostic: the per-worker achievable prediction bound.
//!
//! Overfits one model per worker with 400 Adam steps on the full support
//! set — an upper bound on what any meta-initialisation + adaptation can
//! reach. Useful when tuning the simulator: if even the overfit bound is
//! poor, the mobility data is inherently unpredictable (roamers), not the
//! training pipeline.
use tamp_bench::seed_from_env;
use tamp_core::rng::rng_for;
use tamp_meta::eval::evaluate_model;
use tamp_nn::{Adam, MseLoss, Optimizer, Seq2Seq, Seq2SeqConfig};
use tamp_platform::training::{build_learning_tasks, TrainingConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    let w = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build();
    let cfg = TrainingConfig {
        seed,
        ..TrainingConfig::default()
    };
    let tasks = build_learning_tasks(&w, &cfg);
    for (i, task) in tasks.iter().enumerate().take(4) {
        if !task.is_trainable() {
            continue;
        }
        let mut rng = rng_for(seed, 99);
        let mut model = Seq2Seq::new(Seq2SeqConfig::lstm(16), &mut rng);
        let mut params = model.params();
        // persistence baseline: zero the head (delta = 0)
        let base = evaluate_model(&model, &task.query, &w.grid, 0.4);
        let mut opt = Adam::new(0.01, params.len());
        for step in 0..400 {
            model.set_params(&params);
            let (_, g) = model.loss_and_grad(&task.support, &MseLoss);
            opt.step(&mut params, &g);
            let _ = step;
        }
        model.set_params(&params);
        let trained = evaluate_model(&model, &task.query, &w.grid, 0.4);
        println!("worker {i} ({:?}): init rmse {:.2} mr {:.2} -> overfit rmse {:.2} mr {:.2} ({} support pairs)",
            w.workers[i].persona.kind, base.rmse_cells, base.mr, trained.rmse_cells, trained.mr, task.support.len());
    }
}

//! Prometheus-style text exposition (and a minimal parser for it).
//!
//! [`render`] turns a cumulative [`TelemetrySnapshot`] plus an optional
//! windowed [`LiveView`] into the text format scrapers expect:
//! counters as `tamp_<name>_total`, gauges bare, histograms as
//! summaries (`quantile` labels plus `_count`/`_sum`), and windowed
//! metrics under a `tamp_window_` prefix with a `scope` label per
//! shard (`scope="fleet"` for the merged view). Metric names are
//! sanitised to the Prometheus charset (`.` → `_`).
//!
//! [`parse_text`] is the matching minimal parser — enough to round-trip
//! [`render`] output in tests and tooling, not a general client.

use crate::registry::TelemetrySnapshot;
use crate::window::{LiveView, ScopeCell, FLEET_SCOPE};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Prefix for every exposed series.
pub const PROM_PREFIX: &str = "tamp_";
/// Prefix for windowed (live-view) series.
pub const PROM_WINDOW_PREFIX: &str = "tamp_window_";

/// Maps a metric name onto the Prometheus charset:
/// `[a-zA-Z0-9_:]`, with every other character becoming `_`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    write_labels(out, labels);
    let _ = writeln!(out, " {value}");
}

fn render_cell(out: &mut String, scope: &str, cell: &ScopeCell) {
    for (name, &v) in &cell.counters {
        sample(
            out,
            &format!("{PROM_WINDOW_PREFIX}{}_total", sanitize(name)),
            &[("scope", scope)],
            v as f64,
        );
    }
    for (name, &v) in &cell.gauges {
        sample(
            out,
            &format!("{PROM_WINDOW_PREFIX}{}", sanitize(name)),
            &[("scope", scope)],
            v,
        );
    }
    for (name, h) in &cell.histograms {
        let base = format!("{PROM_WINDOW_PREFIX}{}", sanitize(name));
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            sample(
                out,
                &base,
                &[("scope", scope), ("quantile", label)],
                h.quantile(q),
            );
        }
        sample(
            out,
            &format!("{base}_count"),
            &[("scope", scope)],
            h.count() as f64,
        );
        sample(out, &format!("{base}_sum"), &[("scope", scope)], h.sum());
    }
}

/// Renders the exposition document.
pub fn render(snapshot: &TelemetrySnapshot, live: Option<&LiveView>) -> String {
    let mut out = String::new();
    for (name, &v) in &snapshot.counters {
        let n = format!("{PROM_PREFIX}{}_total", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        sample(&mut out, &n, &[], v as f64);
    }
    for (name, g) in &snapshot.gauges {
        let n = format!("{PROM_PREFIX}{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        sample(&mut out, &n, &[], g.last);
    }
    for (name, h) in &snapshot.histograms {
        let base = format!("{PROM_PREFIX}{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {base} summary");
        for (v, label) in [(h.p50, "0.5"), (h.p95, "0.95"), (h.p99, "0.99")] {
            sample(&mut out, &base, &[("quantile", label)], v);
        }
        sample(&mut out, &format!("{base}_count"), &[], h.count as f64);
        sample(&mut out, &format!("{base}_sum"), &[], h.sum);
    }
    if let Some(view) = live {
        if let Some(latest) = view.latest {
            sample(
                &mut out,
                &format!("{PROM_PREFIX}window_latest"),
                &[],
                latest as f64,
            );
        }
        sample(
            &mut out,
            &format!("{PROM_PREFIX}windows_merged"),
            &[],
            view.windows_merged as f64,
        );
        for (scope, cell) in &view.scopes {
            render_cell(&mut out, scope, cell);
        }
        render_cell(&mut out, FLEET_SCOPE, &view.fleet);
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Series name.
    pub name: String,
    /// Labels, key-ordered.
    pub labels: BTreeMap<String, String>,
    /// The value.
    pub value: f64,
}

impl PromSample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }
}

/// Parses an exposition document produced by [`render`]: `# ` comment
/// lines are skipped; every other non-blank line must be
/// `name[{k="v",...}] value`.
pub fn parse_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ctx = |m: &str| format!("line {}: {m}", lineno + 1);
        let (head, value_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| ctx("expected 'name value'"))?;
        let value = value_str
            .parse::<f64>()
            .map_err(|_| ctx(&format!("bad value {value_str:?}")))?;
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| ctx("unterminated label set"))?;
                let mut labels = BTreeMap::new();
                let mut remaining = body;
                while !remaining.is_empty() {
                    let (key, rest) = remaining
                        .split_once("=\"")
                        .ok_or_else(|| ctx("expected k=\"v\" label"))?;
                    // Scan for the closing quote, honouring \" and \\.
                    let mut val = String::new();
                    let mut chars = rest.chars();
                    let mut closed = false;
                    while let Some(c) = chars.next() {
                        match c {
                            '\\' => match chars.next() {
                                Some('"') => val.push('"'),
                                Some('\\') => val.push('\\'),
                                Some(other) => {
                                    val.push('\\');
                                    val.push(other);
                                }
                                None => return Err(ctx("dangling escape")),
                            },
                            '"' => {
                                closed = true;
                                break;
                            }
                            c => val.push(c),
                        }
                    }
                    if !closed {
                        return Err(ctx("unterminated label value"));
                    }
                    labels.insert(key.to_string(), val);
                    remaining = chars.as_str().strip_prefix(',').unwrap_or(chars.as_str());
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(ctx(&format!("bad metric name {name:?}")));
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::window::WindowedRegistry;

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("serve.step.latency_ms"), "serve_step_latency_ms");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        let reg = MetricsRegistry::new();
        reg.count("serve.shed", 42);
        reg.gauge("serve.queue.depth", 3.0);
        for v in [1.0, 2.0, 100.0] {
            reg.observe("serve.step.latency_ms", v);
        }
        let live = WindowedRegistry::new(4);
        live.count("shard0", "serve.shed", 40);
        live.count("shard1", "serve.shed", 2);
        live.observe("shard0", "serve.step.latency_ms", 1.5);
        live.advance();
        let view = live.view(4);

        let text = render(&reg.snapshot(), Some(&view));
        let samples = parse_text(&text).unwrap();

        let find = |name: &str, scope: Option<&str>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name && s.label("scope") == scope && s.label("quantile").is_none()
                })
                .unwrap_or_else(|| panic!("missing {name} scope={scope:?}"))
                .value
        };
        assert_eq!(find("tamp_serve_shed_total", None), 42.0);
        assert_eq!(find("tamp_serve_queue_depth", None), 3.0);
        assert_eq!(find("tamp_serve_step_latency_ms_count", None), 3.0);
        assert_eq!(find("tamp_window_serve_shed_total", Some("shard0")), 40.0);
        assert_eq!(find("tamp_window_serve_shed_total", Some("shard1")), 2.0);
        assert_eq!(find("tamp_window_serve_shed_total", Some("fleet")), 42.0);
        assert_eq!(
            find("tamp_window_serve_step_latency_ms_count", Some("shard0")),
            1.0
        );
        let p99 = samples
            .iter()
            .find(|s| s.name == "tamp_serve_step_latency_ms" && s.label("quantile") == Some("0.99"))
            .unwrap();
        assert!((p99.value / 100.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn parser_handles_escaped_label_values() {
        let text = "m{l=\"a\\\"b\\\\c\"} 1\n";
        let s = &parse_text(text).unwrap()[0];
        assert_eq!(s.label("l"), Some("a\"b\\c"));
        assert_eq!(s.value, 1.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("novalue").is_err());
        assert!(parse_text("name{k=\"v\" 1").is_err());
        assert!(parse_text("name{k=v} 1").is_err());
        assert!(parse_text("bad.name 1").is_err());
        assert!(parse_text("m x").is_err());
        assert!(parse_text("# comment only\n").unwrap().is_empty());
    }
}

//! Robustness experiment: graceful degradation under injected faults.
//!
//! Sweeps report loss × prediction failure over the assignment
//! algorithms (PPI / KM / LB) on one fixed workload and predictor set,
//! measuring how completion degrades and how often each degradation rung
//! fires (see DESIGN.md, "Fault model & degradation ladder").
//!
//! The prediction-failure axis `f` is split 80 % clean failures
//! (rollout unavailable) and 20 % garbage responses, so both detection
//! paths of the ladder are exercised at every point. LB ignores
//! predictions entirely, so its series isolates the effect of report
//! loss alone — the gap between PPI and LB at equal fault levels is the
//! value prediction still adds under degraded inputs.

use crate::engine::{run_assignment_with_faults, AssignmentAlgo};
use crate::experiments::assignment::SweepConfig;
use crate::faults::FaultConfig;
use crate::training::{train_predictors, LossKind, TrainedPredictors, TrainingConfig};
use serde::{Deserialize, Serialize};
use tamp_sim::{Workload, WorkloadConfig};

/// One algorithm × fault-point measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Algorithm name (PPI / KM / LB).
    pub algorithm: String,
    /// P(a location report is lost), the x axis.
    pub report_loss: f64,
    /// P(a model rollout fails), the series axis.
    pub prediction_failure: f64,
    /// Task completion ratio.
    pub completion: f64,
    /// Rejection ratio.
    pub rejection: f64,
    /// Mean real detour of completed tasks, km.
    pub cost_km: f64,
    /// Reports lost before reaching the platform.
    pub dropped_reports: usize,
    /// Views served by the persistence fallback.
    pub fallback_views: usize,
    /// Models quarantined after divergent adaptation.
    pub quarantined_models: usize,
    /// Assignment pairs skipped as internally inconsistent.
    pub invalid_pairs: usize,
}

/// The fault configuration one sweep point runs under. The
/// prediction-failure axis also poisons online-adaptation rounds at the
/// same rate, so the quarantine rung of the ladder is measured whenever
/// the engine runs with `online_adapt` enabled.
pub fn sweep_point_faults(report_loss: f64, prediction_failure: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        report_loss,
        prediction_failure: 0.8 * prediction_failure,
        prediction_garbage: 0.2 * prediction_failure,
        adapt_poison: prediction_failure,
        seed,
        ..FaultConfig::none()
    }
}

fn run_cell(
    workload: &Workload,
    predictors: &TrainedPredictors,
    cfg: &SweepConfig,
    report_loss: f64,
    prediction_failure: f64,
) -> Vec<RobustnessRow> {
    let faults = sweep_point_faults(report_loss, prediction_failure, cfg.seed);
    [
        ("PPI", AssignmentAlgo::Ppi, Some(predictors)),
        ("KM", AssignmentAlgo::Km, Some(predictors)),
        ("LB", AssignmentAlgo::Lb, None),
    ]
    .into_iter()
    .map(|(name, algo, preds)| {
        let m = run_assignment_with_faults(workload, preds, algo, &cfg.engine, &faults)
            .expect("sweep fault configs are valid");
        RobustnessRow {
            algorithm: name.to_string(),
            report_loss,
            prediction_failure,
            completion: m.completion_ratio(),
            rejection: m.rejection_ratio(),
            cost_km: m.avg_worker_cost_km(),
            dropped_reports: m.dropped_reports,
            fallback_views: m.fallback_views,
            quarantined_models: m.quarantined_models,
            invalid_pairs: m.invalid_pairs,
        }
    })
    .collect()
}

/// The full grid: every `report_losses × prediction_failures` cell, three
/// algorithms per cell. Workload and predictors are built once — only the
/// fault layer varies, so differences between rows are pure fault effect.
pub fn robustness_sweep(
    cfg: &SweepConfig,
    report_losses: &[f64],
    prediction_failures: &[f64],
) -> Vec<RobustnessRow> {
    let workload = WorkloadConfig::new(cfg.kind, cfg.scale, cfg.seed).build();
    let predictors = train_predictors(
        &workload,
        &TrainingConfig {
            loss: LossKind::TaskOriented,
            ..cfg.training.clone()
        },
    );
    prediction_failures
        .iter()
        .flat_map(|&pf| {
            report_losses
                .iter()
                .flat_map(|&rl| run_cell(&workload, &predictors, cfg, rl, pf))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_assignment;
    use tamp_meta::meta_training::MetaConfig;
    use tamp_sim::{Scale, WorkloadKind};

    fn quick_sweep() -> SweepConfig {
        SweepConfig {
            kind: WorkloadKind::PortoDidi,
            scale: Scale::tiny(),
            seed: 33,
            training: TrainingConfig {
                hidden: 5,
                seq_in: 2,
                meta: MetaConfig {
                    iterations: 1,
                    batch_tasks: 2,
                    ..MetaConfig::default()
                },
                path_steps: 2,
                adapt_steps: 1,
                seed: 33,
                ..TrainingConfig::default()
            },
            engine: crate::engine::EngineConfig {
                seq_in: 2,
                ..crate::engine::EngineConfig::default()
            },
        }
    }

    #[test]
    fn sweep_covers_grid_and_stays_sane() {
        let cfg = quick_sweep();
        let rows = robustness_sweep(&cfg, &[0.0, 0.5], &[0.0, 0.25]);
        assert_eq!(rows.len(), 12, "3 algorithms × 2 × 2 points");
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.completion), "{r:?}");
            assert!((0.0..=1.0).contains(&r.rejection), "{r:?}");
            assert!(r.cost_km.is_finite());
        }
        // Zero-fault cells inject nothing.
        for r in rows
            .iter()
            .filter(|r| r.report_loss == 0.0 && r.prediction_failure == 0.0)
        {
            assert_eq!(r.dropped_reports, 0, "{r:?}");
            assert_eq!(r.fallback_views, 0, "{r:?}");
        }
        // Faulted cells actually exercise the ladder.
        let faulted: Vec<_> = rows.iter().filter(|r| r.report_loss == 0.5).collect();
        assert!(faulted.iter().any(|r| r.dropped_reports > 0));
        let pf = rows
            .iter()
            .find(|r| r.algorithm == "PPI" && r.prediction_failure == 0.25)
            .unwrap();
        assert!(pf.fallback_views > 0, "{pf:?}");
    }

    #[test]
    fn zero_fault_cell_matches_clean_engine() {
        let cfg = quick_sweep();
        let workload = WorkloadConfig::new(cfg.kind, cfg.scale, cfg.seed).build();
        let predictors = train_predictors(
            &workload,
            &TrainingConfig {
                loss: LossKind::TaskOriented,
                ..cfg.training.clone()
            },
        );
        let cell = run_cell(&workload, &predictors, &cfg, 0.0, 0.0);
        let clean = run_assignment(
            &workload,
            Some(&predictors),
            AssignmentAlgo::Ppi,
            &cfg.engine,
        );
        let ppi = cell.iter().find(|r| r.algorithm == "PPI").unwrap();
        assert_eq!(ppi.completion, clean.completion_ratio());
        assert_eq!(ppi.rejection, clean.rejection_ratio());
        assert_eq!(ppi.cost_km, clean.avg_worker_cost_km());
    }
}

//! The learning-task tree (Definition 6).
//!
//! A node `Tᵗ = (G, CH, fr, θ)` holds a learning-task cluster, its
//! children, its parent, and the initialisation weights `θ` of the
//! mobility models for tasks in that cluster. Only leaves carry training
//! data; interior nodes exist to hand increasingly specialised `θ` down
//! the hierarchy and to serve cold-start lookups.

use serde::{Deserialize, Serialize};

/// Index of a node inside a [`LearningTaskTree`].
pub type NodeId = usize;

/// One node of the learning-task tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeNode {
    /// Learning-task indices (into the tree's task set) in this node's
    /// cluster `G`.
    pub members: Vec<usize>,
    /// Child node ids `CH`.
    pub children: Vec<NodeId>,
    /// Parent node id `fr` (None at the root).
    pub parent: Option<NodeId>,
    /// Model initialisation parameters `θ`.
    pub theta: Vec<f64>,
    /// Which similarity-factor level produced this node (root = 0).
    pub level: usize,
}

/// The learning-task tree `T₀ᵗ`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LearningTaskTree {
    nodes: Vec<TreeNode>,
}

impl LearningTaskTree {
    /// Creates a tree with a root covering `members`, initialised at
    /// `theta`.
    pub fn with_root(members: Vec<usize>, theta: Vec<f64>) -> Self {
        Self {
            nodes: vec![TreeNode {
                members,
                children: Vec::new(),
                parent: None,
                theta,
                level: 0,
            }],
        }
    }

    /// The root's id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut TreeNode {
        &mut self.nodes[id]
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (never true after `with_root`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a child under `parent`, inheriting the parent's `θ`
    /// (Algorithm 1 line 15 creates `(G_sub, ∅, Tᵗ, Tᵗ.θ)`).
    pub fn add_child(&mut self, parent: NodeId, members: Vec<usize>) -> NodeId {
        let id = self.nodes.len();
        let (theta, level) = {
            let p = &self.nodes[parent];
            (p.theta.clone(), p.level + 1)
        };
        self.nodes.push(TreeNode {
            members,
            children: Vec::new(),
            parent: Some(parent),
            theta,
            level,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// All leaf ids (nodes without children).
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// Ids in depth-first post-order from the root (children before
    /// parents) — the traversal the cold-start lookup uses.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.post_order_from(self.root(), &mut out);
        out
    }

    fn post_order_from(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for &c in &self.nodes[id].children {
            self.post_order_from(c, out);
        }
        out.push(id);
    }

    /// The leaf whose cluster contains task `task_idx`, if any. Walks down
    /// from the root following membership.
    pub fn leaf_of_task(&self, task_idx: usize) -> Option<NodeId> {
        let mut cur = self.root();
        if !self.nodes[cur].members.contains(&task_idx) {
            return None;
        }
        'descend: loop {
            if self.nodes[cur].children.is_empty() {
                return Some(cur);
            }
            for &c in &self.nodes[cur].children {
                if self.nodes[c].members.contains(&task_idx) {
                    cur = c;
                    continue 'descend;
                }
            }
            // Member of this node but of no child — treat as leaf data.
            return Some(cur);
        }
    }

    /// Structural sanity check: children partition their parent's members
    /// (when a node has children at all). Used by tests.
    pub fn check_partition(&self) -> bool {
        for node in &self.nodes {
            if node.children.is_empty() {
                continue;
            }
            let mut combined: Vec<usize> = node
                .children
                .iter()
                .flat_map(|&c| self.nodes[c].members.iter().copied())
                .collect();
            combined.sort_unstable();
            let mut expected = node.members.clone();
            expected.sort_unstable();
            if combined != expected {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> LearningTaskTree {
        let mut t = LearningTaskTree::with_root(vec![0, 1, 2, 3], vec![0.0; 4]);
        let a = t.add_child(0, vec![0, 1]);
        let b = t.add_child(0, vec![2, 3]);
        t.add_child(a, vec![0]);
        t.add_child(a, vec![1]);
        let _ = b;
        t
    }

    #[test]
    fn children_inherit_theta_and_level() {
        let mut t = LearningTaskTree::with_root(vec![0, 1], vec![1.0, 2.0]);
        let c = t.add_child(0, vec![0]);
        assert_eq!(t.node(c).theta, vec![1.0, 2.0]);
        assert_eq!(t.node(c).level, 1);
        assert_eq!(t.node(c).parent, Some(0));
        assert_eq!(t.node(0).children, vec![c]);
    }

    #[test]
    fn leaves_are_childless() {
        let t = sample_tree();
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3); // node b plus the two children of a
        for l in leaves {
            assert!(t.node(l).children.is_empty());
        }
    }

    #[test]
    fn post_order_visits_children_first() {
        let t = sample_tree();
        let order = t.post_order();
        assert_eq!(order.len(), t.len());
        assert_eq!(*order.last().unwrap(), t.root());
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (id, node) in (0..t.len()).map(|i| (i, t.node(i))) {
            for &c in &node.children {
                assert!(pos(c) < pos(id), "child {c} after parent {id}");
            }
        }
    }

    #[test]
    fn leaf_of_task_descends_correctly() {
        let t = sample_tree();
        let l0 = t.leaf_of_task(0).unwrap();
        assert_eq!(t.node(l0).members, vec![0]);
        let l2 = t.leaf_of_task(2).unwrap();
        assert_eq!(t.node(l2).members, vec![2, 3]);
        assert!(t.leaf_of_task(99).is_none());
    }

    #[test]
    fn partition_check() {
        let mut t = sample_tree();
        assert!(t.check_partition());
        // Corrupt: remove a member from a leaf.
        let leaf = t.leaf_of_task(0).unwrap();
        t.node_mut(leaf).members.clear();
        assert!(!t.check_partition());
    }
}

//! Robustness under injected faults (ours, beyond the paper): sweeps
//! report loss × prediction failure and measures how gracefully each
//! assignment algorithm degrades. See DESIGN.md, "Fault model &
//! degradation ladder".

use tamp_bench::svg::{line_chart, Series};
use tamp_bench::{
    default_engine, default_training, out_dir, print_robustness, scale_from_env, seed_from_env,
};
use tamp_platform::engine::OnlineAdaptConfig;
use tamp_platform::experiments::{robustness_sweep, save_json, RobustnessRow, SweepConfig};
use tamp_sim::WorkloadKind;

const REPORT_LOSSES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
const PREDICTION_FAILURES: [f64; 3] = [0.0, 0.1, 0.25];

/// One series per (algorithm, prediction-failure slice), x = report loss
/// in %, y = `pick(row)`.
fn series_over_loss(
    rows: &[RobustnessRow],
    slices: &[f64],
    pick: impl Fn(&RobustnessRow) -> f64,
) -> Vec<Series> {
    let mut out = Vec::new();
    for algo in ["PPI", "KM", "LB"] {
        for &pf in slices {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.algorithm == algo && r.prediction_failure == pf)
                .map(|r| (r.report_loss * 100.0, pick(r)))
                .collect();
            if !points.is_empty() {
                out.push(Series {
                    name: format!("{algo} pf={:.0}%", pf * 100.0),
                    points,
                });
            }
        }
    }
    out
}

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Robustness: completion under report loss × prediction failure ({} workers, seed {seed})",
        scale.n_workers
    );
    let cfg = SweepConfig {
        kind: WorkloadKind::PortoDidi,
        scale,
        seed,
        training: default_training(seed),
        // Online adaptation is on so the sweep also measures the
        // quarantine rung (poisoned rounds → rollback to checkpoint).
        engine: tamp_platform::EngineConfig {
            online_adapt: Some(OnlineAdaptConfig::default()),
            ..default_engine(seed)
        },
    };
    let rows = robustness_sweep(&cfg, &REPORT_LOSSES, &PREDICTION_FAILURES);
    print_robustness(&rows);

    let out = out_dir();
    std::fs::create_dir_all(&out).expect("create output dir");
    save_json(
        &out.join("robustness.json"),
        "robustness_fault_sweep",
        &rows,
    )
    .expect("write rows");

    // Charts come straight from the in-memory rows (the JSON on disk is
    // for downstream tooling, not a round-trip dependency). The palette
    // has 8 colours, so each chart shows at most two failure slices.
    let charts = [
        (
            "robustness_completion.svg",
            line_chart(
                "Completion vs report loss",
                "report loss (%)",
                "completion ratio",
                &series_over_loss(&rows, &[0.0, 0.25], |r| r.completion),
            ),
        ),
        (
            "robustness_rejection.svg",
            line_chart(
                "Rejection vs report loss",
                "report loss (%)",
                "rejection ratio",
                &series_over_loss(&rows, &[0.0, 0.25], |r| r.rejection),
            ),
        ),
        (
            "robustness_fallbacks.svg",
            line_chart(
                "Prediction fallbacks vs report loss",
                "report loss (%)",
                "fallback views",
                &series_over_loss(&rows, &[0.1, 0.25], |r| r.fallback_views as f64),
            ),
        ),
    ];
    for (name, svg) in charts {
        std::fs::write(out.join(name), svg).expect("write svg");
        println!("wrote {}", out.join(name).display());
    }
}

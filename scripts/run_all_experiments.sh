#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the repo's own
# ablations. Configure with TAMP_SCALE (tiny|small|paper), TAMP_SEED,
# TAMP_OUT. Results print as markdown and land in ${TAMP_OUT:-results}/.
set -euo pipefail
cd "$(dirname "$0")/.."
BINS=(exp_table4 exp_table5 exp_table6 exp_table7
      exp_fig6 exp_fig7 exp_fig8 exp_fig9 exp_fig10 exp_fig11
      exp_ablation_meta exp_ablation_ppi exp_robustness)
cargo build --release -p tamp-bench --bins
for b in "${BINS[@]}"; do
  echo "=== $b ==="
  cargo run --release -p tamp-bench --bin "$b"
done

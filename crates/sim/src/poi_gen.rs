//! POI synthesis.
//!
//! The paper obtains POIs from OpenStreetMap to build the spatial feature
//! `V` of each learning task. We scatter category-clustered POIs over the
//! synthetic city: residential in the west, offices in the east, retail
//! and food along the central band, leisure and transport mixed — matching
//! the anchor geography of [`crate::archetype`].

use rand::Rng;
use tamp_core::{Grid, Poi, PoiCategory, Point};

/// Generates `n` POIs over the grid.
pub fn generate_pois(grid: &Grid, n: usize, rng: &mut impl Rng) -> Vec<Poi> {
    let w = grid.width_km();
    let h = grid.height_km();
    let mut pois = Vec::with_capacity(n);
    for _ in 0..n {
        let cat = PoiCategory::ALL[rng.gen_range(0..PoiCategory::ALL.len())];
        let (x_range, y_range) = match cat {
            PoiCategory::Residential => (0.0 * w..0.5 * w, 0.0 * h..h),
            PoiCategory::Office => (0.5 * w..w, 0.15 * h..0.85 * h),
            PoiCategory::Retail => (0.25 * w..0.75 * w, 0.25 * h..0.75 * h),
            PoiCategory::Food => (0.2 * w..0.8 * w, 0.2 * h..0.8 * h),
            PoiCategory::Leisure => (0.0 * w..w, 0.0 * h..h),
            PoiCategory::Transport => (0.1 * w..0.9 * w, 0.1 * h..0.9 * h),
        };
        pois.push(Poi::new(
            Point::new(rng.gen_range(x_range), rng.gen_range(y_range)),
            cat,
        ));
    }
    pois
}

/// The nearest POI to a point, if any exist.
pub fn nearest_poi(pois: &[Poi], p: Point) -> Option<Poi> {
    pois.iter()
        .min_by(|a, b| {
            a.loc
                .dist_sq(p)
                .partial_cmp(&b.loc.dist_sq(p))
                .expect("finite")
        })
        .copied()
}

/// The POI sequence of a worker: the nearest POI to each visited anchor
/// (the collection backing `Vᵢ` in Eq. 1).
pub fn poi_sequence(pois: &[Poi], anchors: &[Point]) -> Vec<Poi> {
    anchors
        .iter()
        .filter_map(|a| nearest_poi(pois, *a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    #[test]
    fn pois_inside_grid_and_all_categories_present() {
        let grid = Grid::PAPER;
        let mut rng = rng_for(1, tamp_core::rng::streams::POIS);
        let pois = generate_pois(&grid, 600, &mut rng);
        assert_eq!(pois.len(), 600);
        for p in &pois {
            assert!(grid.contains(p.loc));
        }
        for cat in PoiCategory::ALL {
            assert!(pois.iter().any(|p| p.category == cat), "{cat:?} missing");
        }
    }

    #[test]
    fn residential_west_office_east() {
        let grid = Grid::PAPER;
        let mut rng = rng_for(2, tamp_core::rng::streams::POIS);
        let pois = generate_pois(&grid, 500, &mut rng);
        let mean_x = |cat: PoiCategory| {
            let xs: Vec<f64> = pois
                .iter()
                .filter(|p| p.category == cat)
                .map(|p| p.loc.x)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean_x(PoiCategory::Residential) < mean_x(PoiCategory::Office));
    }

    #[test]
    fn nearest_poi_finds_closest() {
        let pois = vec![
            Poi::new(Point::new(0.0, 0.0), PoiCategory::Food),
            Poi::new(Point::new(5.0, 5.0), PoiCategory::Office),
        ];
        let n = nearest_poi(&pois, Point::new(4.0, 4.0)).unwrap();
        assert_eq!(n.category, PoiCategory::Office);
        assert!(nearest_poi(&[], Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn poi_sequence_matches_anchor_count() {
        let mut rng = rng_for(3, tamp_core::rng::streams::POIS);
        let pois = generate_pois(&Grid::PAPER, 100, &mut rng);
        let anchors = [Point::new(1.0, 1.0), Point::new(15.0, 8.0)];
        let seq = poi_sequence(&pois, &anchors);
        assert_eq!(seq.len(), 2);
    }
}

#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
#
# Everything runs --offline: the workspace's dependency set is small and
# pinned (see CONTRIBUTING.md), and CI must not depend on a registry
# being reachable. Run `cargo fetch` once on a connected machine first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + test"
cargo build --release --workspace --offline
cargo test --workspace --offline -q

echo "CI gate passed."

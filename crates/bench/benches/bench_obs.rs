//! Micro-bench: telemetry op cost — the "disabled means free" contract.
//!
//! Compares a disabled handle (`Obs::null()`), a `NullRecorder`-backed
//! handle (clocks + registry, no I/O), and a `MemoryRecorder`-backed
//! handle (full event materialisation) on the three hot-path ops, plus
//! the instrumented PPI assignment stage end to end. The acceptance bar
//! (ISSUE satellite 1) is NullRecorder overhead < 2% on the engine-side
//! workload; `diag_obs_overhead` checks the same bar offline.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use std::hint::black_box;
use tamp_assign::ppi::{ppi_assign_observed, PpiParams};
use tamp_assign::view::{ExcludedPairs, WorkerView};
use tamp_core::rng::rng_for;
use tamp_core::{Minutes, Point, SpatialTask, TaskId, WorkerId};
use tamp_obs::{MemoryRecorder, NullRecorder, Obs};

fn setup(n_tasks: usize, n_workers: usize, seed: u64) -> (Vec<SpatialTask>, Vec<WorkerView>) {
    let mut rng = rng_for(seed, 0);
    let tasks = (0..n_tasks)
        .map(|i| {
            SpatialTask::new(
                TaskId(i as u64),
                Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)),
                Minutes::ZERO,
                Minutes::new(rng.gen_range(30.0..60.0)),
            )
        })
        .collect();
    let workers = (0..n_workers)
        .map(|i| {
            let base = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0));
            WorkerView {
                id: WorkerId(i as u64),
                current: base,
                predicted: (0..6)
                    .map(|k| base.offset(0.5 * k as f64, rng.gen_range(-0.4..0.4)))
                    .collect(),
                real_future: Vec::new(),
                mr: rng.gen_range(0.1..0.9),
                detour_limit_km: 6.0,
                speed_km_per_min: 0.3,
            }
        })
        .collect();
    (tasks, workers)
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_ops");
    let handles: [(&str, Obs); 3] = [
        ("null", Obs::null()),
        ("null_recorder", Obs::new(NullRecorder)),
        ("memory_recorder", Obs::new(MemoryRecorder::new())),
    ];
    for (label, obs) in &handles {
        group.bench_function(format!("span/{label}"), |b| {
            b.iter(|| {
                let _s = black_box(obs).span("bench.span");
            })
        });
        group.bench_function(format!("count/{label}"), |b| {
            b.iter(|| black_box(obs).count("bench.count", 1))
        });
        group.bench_function(format!("gauge/{label}"), |b| {
            b.iter(|| black_box(obs).gauge("bench.gauge", 0.5))
        });
        group.bench_function(format!("observe/{label}"), |b| {
            b.iter(|| black_box(obs).observe("bench.observe", 12.5))
        });
    }
    group.finish();
}

fn bench_ppi_observed(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_ppi");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let (tasks, workers) = setup(96, 96, 96);
    let params = PpiParams {
        a_km: 0.4,
        epsilon: 8,
        now: Minutes::ZERO,
        use_index: true,
    };
    let none = ExcludedPairs::new();
    for (label, obs) in [
        ("null", Obs::null()),
        ("null_recorder", Obs::new(NullRecorder)),
    ] {
        group.bench_function(format!("ppi96/{label}"), |b| {
            b.iter(|| {
                black_box(ppi_assign_observed(
                    black_box(&tasks),
                    black_box(&workers),
                    &params,
                    &none,
                    &obs,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops, bench_ppi_observed);
criterion_main!(benches);

//! Property-based tests for the matching and assignment layer.

use proptest::prelude::*;
use tamp_assign::baselines::{km_assign, lb_assign, ub_assign};
use tamp_assign::hungarian::{matching_weight, max_weight_matching, WeightedEdge};
use tamp_assign::matching_rate::matching_rate;
use tamp_assign::ppi::{ppi_assign, PpiParams};
use tamp_assign::view::WorkerView;
use tamp_core::routine::TimedPoint;
use tamp_core::{Minutes, Point, SpatialTask, TaskId, WorkerId};

fn edges_strategy() -> impl Strategy<Value = (usize, usize, Vec<WeightedEdge>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let edge = (0..n, 0..m, 0.1..10.0f64).prop_map(|(l, r, w)| WeightedEdge::new(l, r, w));
        prop::collection::vec(edge, 0..12).prop_map(move |es| (n, m, es))
    })
}

fn worker_strategy() -> impl Strategy<Value = WorkerView> {
    (
        0u64..100,
        prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 1..8),
        prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 1..8),
        0.0..1.0f64,
        1.0..10.0f64,
        0.05..0.8f64,
    )
        .prop_map(|(id, pred, real, mr, d, sp)| WorkerView {
            id: WorkerId(id),
            current: Point::new(real[0].0, real[0].1),
            predicted: pred.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            real_future: real
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    TimedPoint::new(Point::new(x, y), Minutes::new(i as f64 * 10.0))
                })
                .collect(),
            mr,
            detour_limit_km: d,
            speed_km_per_min: sp,
        })
}

fn tasks_strategy() -> impl Strategy<Value = Vec<SpatialTask>> {
    prop::collection::vec((0.0..20.0f64, 0.0..10.0f64, 10.0..300.0f64), 0..8).prop_map(|ts| {
        ts.iter()
            .enumerate()
            .map(|(i, &(x, y, dl))| {
                SpatialTask::new(
                    TaskId(i as u64),
                    Point::new(x, y),
                    Minutes::ZERO,
                    Minutes::new(dl),
                )
            })
            .collect()
    })
}

/// De-duplicates worker ids (the generator can repeat them).
fn dedup_workers(mut ws: Vec<WorkerView>) -> Vec<WorkerView> {
    ws.sort_by_key(|w| w.id);
    ws.dedup_by_key(|w| w.id);
    ws
}

proptest! {
    #[test]
    fn matching_is_valid_and_beats_greedy((n, m, edges) in edges_strategy()) {
        let matched = max_weight_matching(n, m, &edges);
        // Validity: no vertex twice.
        let mut ls = std::collections::HashSet::new();
        let mut rs = std::collections::HashSet::new();
        for &(l, r) in &matched {
            prop_assert!(ls.insert(l));
            prop_assert!(rs.insert(r));
        }
        // Every matched pair corresponds to a real edge.
        for &(l, r) in &matched {
            prop_assert!(edges.iter().any(|e| e.left == l && e.right == r));
        }
        // Greedy by weight can never beat the solver on cardinality, nor
        // (at equal cardinality) on weight.
        let mut sorted = edges.clone();
        sorted.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
        let mut gl = std::collections::HashSet::new();
        let mut gr = std::collections::HashSet::new();
        let mut greedy = Vec::new();
        for e in &sorted {
            if !gl.contains(&e.left) && !gr.contains(&e.right) {
                gl.insert(e.left);
                gr.insert(e.right);
                greedy.push((e.left, e.right));
            }
        }
        prop_assert!(matched.len() >= greedy.len());
        if matched.len() == greedy.len() && !matched.is_empty() {
            let mw = matching_weight(&edges, &matched);
            let gw = matching_weight(&edges, &greedy);
            prop_assert!(mw >= gw - 1e-9, "solver weight {mw} < greedy {gw}");
        }
    }

    #[test]
    fn matching_rate_in_unit_interval(
        real in prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 0..20),
        pred in prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 0..20),
        a in 0.0..5.0f64,
    ) {
        let r: Vec<Point> = real.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let p: Vec<Point> = pred.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mr = matching_rate(&r, &p, a);
        prop_assert!((0.0..=1.0).contains(&mr));
        // Identity: MR(r, r) = 1 whenever r is non-empty.
        if !r.is_empty() {
            prop_assert_eq!(matching_rate(&r, &r, 0.0), 1.0);
        }
    }

    #[test]
    fn matching_rate_monotone_in_radius(
        real in prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 1..15),
        pred in prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 1..15),
        a1 in 0.0..3.0f64,
        extra in 0.0..3.0f64,
    ) {
        let r: Vec<Point> = real.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let p: Vec<Point> = pred.iter().map(|&(x, y)| Point::new(x, y)).collect();
        prop_assert!(matching_rate(&r, &p, a1 + extra) >= matching_rate(&r, &p, a1));
    }

    #[test]
    fn all_assigners_emit_valid_plans(
        tasks in tasks_strategy(),
        workers in prop::collection::vec(worker_strategy(), 0..6),
    ) {
        let workers = dedup_workers(workers);
        let now = Minutes::ZERO;
        let params = PpiParams { a_km: 0.4, epsilon: 3, now, use_index: true };
        for plan in [
            ppi_assign(&tasks, &workers, &params),
            km_assign(&tasks, &workers, now),
            lb_assign(&tasks, &workers, now),
            ub_assign(&tasks, &workers, now),
        ] {
            prop_assert!(plan.is_valid());
            prop_assert!(plan.len() <= tasks.len().min(workers.len()));
            // Plans only reference known ids.
            for pair in plan.pairs() {
                prop_assert!(tasks.iter().any(|t| t.id == pair.task));
                prop_assert!(workers.iter().any(|w| w.id == pair.worker));
            }
        }
    }

    #[test]
    fn ppi_never_assigns_beyond_stage3_bound(
        tasks in tasks_strategy(),
        workers in prop::collection::vec(worker_strategy(), 0..5),
    ) {
        // Every PPI pair must satisfy the stage-3 feasibility bound, since
        // stages 1–2 are strictly tighter.
        let workers = dedup_workers(workers);
        let now = Minutes::ZERO;
        let plan = ppi_assign(&tasks, &workers, &PpiParams { a_km: 0.4, epsilon: 4, now, use_index: true });
        for pair in plan.pairs() {
            let t = tasks.iter().find(|t| t.id == pair.task).unwrap();
            let w = workers.iter().find(|w| w.id == pair.worker).unwrap();
            let dmin = w
                .predicted
                .iter()
                .map(|p| p.dist(t.location))
                .fold(f64::INFINITY, f64::min);
            let bound = (w.detour_limit_km / 2.0).min(t.reach_radius(now, w.speed_km_per_min));
            prop_assert!(dmin <= bound + 1e-9, "pair beyond bound: dmin={dmin} bound={bound}");
        }
    }
}

proptest! {
    /// The spatially-indexed KM variant returns exactly the plan of full
    /// enumeration (the prefilter is conservative, the exact checks are
    /// shared).
    #[test]
    fn indexed_km_matches_full_enumeration(
        tasks in tasks_strategy(),
        workers in prop::collection::vec(worker_strategy(), 0..6),
    ) {
        use tamp_assign::baselines::{km_assign_excluding, km_assign_indexed};
        use tamp_assign::view::ExcludedPairs;
        let workers = dedup_workers(workers);
        let now = Minutes::ZERO;
        let none = ExcludedPairs::new();
        let full = km_assign_excluding(&tasks, &workers, now, &none);
        let indexed = km_assign_indexed(&tasks, &workers, now, &none);
        // Byte-identical: same pairs, same scores, same order.
        prop_assert_eq!(full.pairs(), indexed.pairs());
    }

    /// Indexed PPI ≡ naive PPI, byte for byte (pairs, scores, and order),
    /// across workloads, mini-batch sizes and matching radii. This is the
    /// contract that lets `spatial_index` default to on.
    #[test]
    fn indexed_ppi_matches_naive(
        tasks in tasks_strategy(),
        workers in prop::collection::vec(worker_strategy(), 0..8),
        epsilon in 1usize..6,
        a_km in 0.1..1.5f64,
    ) {
        let workers = dedup_workers(workers);
        let now = Minutes::ZERO;
        let naive = ppi_assign(
            &tasks,
            &workers,
            &PpiParams { a_km, epsilon, now, use_index: false },
        );
        let indexed = ppi_assign(
            &tasks,
            &workers,
            &PpiParams { a_km, epsilon, now, use_index: true },
        );
        prop_assert_eq!(naive.pairs(), indexed.pairs());
    }
}

//! Timed routines (trajectories).
//!
//! A routine `r = {(l₁,t₁), (l₂,t₂), …}` is a time-ordered series of
//! locations (Definition 2). Routines serve three roles in TAMP:
//!
//! 1. **History** — the training data of a worker's mobility model
//!    (Definition 3 samples `(seq_in, seq_out)` sub-trajectory pairs).
//! 2. **Prediction** — a predicted routine `r̂` drives assignment.
//! 3. **Ground truth** — the real routine decides acceptance and the real
//!    detour cost `d_c`.

use crate::geometry::Point;
use crate::time::Minutes;
use serde::{Deserialize, Serialize};

/// One sample of a routine: a location with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedPoint {
    /// Location at `time`.
    pub loc: Point,
    /// Timestamp of the sample.
    pub time: Minutes,
}

impl TimedPoint {
    /// Convenience constructor.
    #[inline]
    pub const fn new(loc: Point, time: Minutes) -> Self {
        Self { loc, time }
    }
}

/// A time-ordered sequence of [`TimedPoint`]s.
///
/// Invariant: timestamps are non-decreasing. Constructors either sort or
/// debug-assert this.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Routine {
    points: Vec<TimedPoint>,
}

impl Routine {
    /// An empty routine.
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Builds a routine from points, sorting them by timestamp.
    pub fn from_points(mut points: Vec<TimedPoint>) -> Self {
        points.sort_by(|a, b| {
            a.time
                .as_f64()
                .partial_cmp(&b.time.as_f64())
                .expect("timestamps are finite")
        });
        Self { points }
    }

    /// Builds a routine from locations sampled at a fixed cadence starting
    /// at `start`.
    pub fn from_sampled(
        locs: impl IntoIterator<Item = Point>,
        start: Minutes,
        step: Minutes,
    ) -> Self {
        let points = locs
            .into_iter()
            .enumerate()
            .map(|(i, loc)| {
                TimedPoint::new(loc, Minutes::new(start.as_f64() + i as f64 * step.as_f64()))
            })
            .collect();
        Self { points }
    }

    /// Appends a point; debug-asserts time ordering.
    pub fn push(&mut self, p: TimedPoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(
                p.time.as_f64() >= last.time.as_f64(),
                "routine points must be time-ordered"
            );
        }
        self.points.push(p);
    }

    /// All samples, in time order.
    #[inline]
    pub fn points(&self) -> &[TimedPoint] {
        &self.points
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the routine has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Just the locations, dropping timestamps.
    pub fn locations(&self) -> Vec<Point> {
        self.points.iter().map(|p| p.loc).collect()
    }

    /// First sample time, if any.
    pub fn start_time(&self) -> Option<Minutes> {
        self.points.first().map(|p| p.time)
    }

    /// Last sample time, if any.
    pub fn end_time(&self) -> Option<Minutes> {
        self.points.last().map(|p| p.time)
    }

    /// Position at time `t`, linearly interpolated between samples and
    /// clamped to the endpoints. `None` for an empty routine.
    pub fn position_at(&self, t: Minutes) -> Option<Point> {
        let pts = &self.points;
        let first = pts.first()?;
        if t.as_f64() <= first.time.as_f64() {
            return Some(first.loc);
        }
        let last = pts.last().expect("non-empty");
        if t.as_f64() >= last.time.as_f64() {
            return Some(last.loc);
        }
        // Binary search for the surrounding pair.
        let idx = pts.partition_point(|p| p.time.as_f64() <= t.as_f64());
        let a = pts[idx - 1];
        let b = pts[idx];
        let span = b.time.as_f64() - a.time.as_f64();
        if span <= 0.0 {
            return Some(b.loc);
        }
        let frac = (t.as_f64() - a.time.as_f64()) / span;
        Some(a.loc.lerp(b.loc, frac))
    }

    /// Samples with `time ∈ [start, end)`.
    pub fn window(&self, start: Minutes, end: Minutes) -> &[TimedPoint] {
        let lo = self
            .points
            .partition_point(|p| p.time.as_f64() < start.as_f64());
        let hi = self
            .points
            .partition_point(|p| p.time.as_f64() < end.as_f64());
        &self.points[lo..hi]
    }

    /// Total path length in kilometres.
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].loc.dist(w[1].loc))
            .sum()
    }

    /// Enumerates every `(input, output)` training pair of Definition 3:
    /// consecutive sub-trajectories of lengths `seq_in` and `seq_out`.
    ///
    /// Returns location-only windows; the caller normalises them for the
    /// model. Empty when the routine is shorter than `seq_in + seq_out`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tamp_core::{Minutes, Point, Routine};
    ///
    /// let r = Routine::from_sampled(
    ///     (0..4).map(|i| Point::new(i as f64, 0.0)),
    ///     Minutes::ZERO,
    ///     Minutes::new(10.0),
    /// );
    /// let pairs = r.training_pairs(2, 1);
    /// assert_eq!(pairs.len(), 2);
    /// assert_eq!(pairs[0].1, vec![Point::new(2.0, 0.0)]);
    /// ```
    pub fn training_pairs(&self, seq_in: usize, seq_out: usize) -> Vec<(Vec<Point>, Vec<Point>)> {
        assert!(
            seq_in > 0 && seq_out > 0,
            "sequence lengths must be positive"
        );
        let n = self.points.len();
        let need = seq_in + seq_out;
        if n < need {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n - need + 1);
        for start in 0..=(n - need) {
            let input = self.points[start..start + seq_in]
                .iter()
                .map(|p| p.loc)
                .collect();
            let target = self.points[start + seq_in..start + need]
                .iter()
                .map(|p| p.loc)
                .collect();
            out.push((input, target));
        }
        out
    }

    /// Splits the routine at time `t`: samples strictly before `t`, and
    /// samples at-or-after `t`.
    pub fn split_at(&self, t: Minutes) -> (Routine, Routine) {
        let idx = self
            .points
            .partition_point(|p| p.time.as_f64() < t.as_f64());
        (
            Routine {
                points: self.points[..idx].to_vec(),
            },
            Routine {
                points: self.points[idx..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight() -> Routine {
        // Moves east 1 km per 10 min from the origin.
        Routine::from_sampled(
            (0..5).map(|i| Point::new(i as f64, 0.0)),
            Minutes::ZERO,
            Minutes::new(10.0),
        )
    }

    #[test]
    fn from_points_sorts() {
        let r = Routine::from_points(vec![
            TimedPoint::new(Point::new(1.0, 0.0), Minutes::new(10.0)),
            TimedPoint::new(Point::new(0.0, 0.0), Minutes::new(0.0)),
        ]);
        assert_eq!(r.points()[0].time.as_f64(), 0.0);
    }

    #[test]
    fn position_interpolates_and_clamps() {
        let r = straight();
        assert_eq!(
            r.position_at(Minutes::new(-5.0)).unwrap(),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            r.position_at(Minutes::new(100.0)).unwrap(),
            Point::new(4.0, 0.0)
        );
        let mid = r.position_at(Minutes::new(15.0)).unwrap();
        assert!((mid.x - 1.5).abs() < 1e-12);
        assert!(Routine::new().position_at(Minutes::ZERO).is_none());
    }

    #[test]
    fn window_is_half_open() {
        let r = straight();
        let w = r.window(Minutes::new(10.0), Minutes::new(30.0));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].loc.x, 1.0);
        assert_eq!(w[1].loc.x, 2.0);
    }

    #[test]
    fn path_length_sums_legs() {
        let r = straight();
        assert!((r.path_length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn training_pairs_cover_all_offsets() {
        let r = straight(); // 5 points
        let pairs = r.training_pairs(2, 1);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert_eq!(pairs[0].1, vec![Point::new(2.0, 0.0)]);
        assert_eq!(pairs[2].1, vec![Point::new(4.0, 0.0)]);
        assert!(r.training_pairs(5, 1).is_empty());
    }

    #[test]
    fn split_at_partitions() {
        let r = straight();
        let (before, after) = r.split_at(Minutes::new(20.0));
        assert_eq!(before.len(), 2);
        assert_eq!(after.len(), 3);
        assert_eq!(after.points()[0].time.as_f64(), 20.0);
    }
}

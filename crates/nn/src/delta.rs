//! Base + sparse-delta weight storage.
//!
//! The paper's meta-learning structure makes per-worker models *small
//! perturbations of a shared prior*: every worker adapts from its GTMC
//! cluster head, and a cold-start worker **is** the head. Storing each
//! worker as `(head index, DeltaWeights)` therefore collapses fleet
//! memory from `O(workers × params)` toward `O(heads × params +
//! Σ nnz)`, and lets the batched rollout run one GEMM over the shared
//! base with a per-worker correction pass.
//!
//! A [`DeltaWeights`] records *overrides*, not differences: entry `(i,
//! v)` means "parameter `i` has value `v`", so applying a delta is an
//! overwrite and reconstruction is exact (no `base + d` rounding). At
//! floor `0.0` the fit keeps every parameter whose bits differ from the
//! base, making `fit → apply` a lossless round trip by construction.
//! When more than half the parameters differ, the sparse index/value
//! encoding would cost more than the dense vector it replaces, so the
//! fit transparently falls back to a dense payload — callers never pay
//! more than `8 bytes/param + O(1)`.

use serde::{Deserialize, Serialize};

/// Sparse (or, past the density break-even, dense) overrides that turn a
/// base parameter vector into a specific model's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaWeights {
    /// Total parameter count of the vectors this delta applies to.
    len: usize,
    /// The payload representation.
    repr: DeltaRepr,
}

/// Internal payload: sparse index/value pairs or a dense override.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum DeltaRepr {
    /// `idx` strictly increasing, `val[k]` the override at `idx[k]`.
    Sparse { idx: Vec<u32>, val: Vec<f64> },
    /// Full replacement vector (used when the sparse form would be
    /// larger — e.g. after SGD touched every parameter).
    Dense(Vec<f64>),
}

impl DeltaWeights {
    /// An empty delta: `apply` reproduces the base exactly.
    pub fn empty(len: usize) -> Self {
        Self {
            len,
            repr: DeltaRepr::Sparse {
                idx: Vec::new(),
                val: Vec::new(),
            },
        }
    }

    /// Fits the delta that turns `base` into `dense`: keeps every
    /// parameter whose value differs bitwise from the base by more than
    /// `floor` in magnitude (`floor == 0.0` keeps *all* bitwise
    /// differences, making the round trip exact). Falls back to a dense
    /// payload when the sparse encoding would be larger.
    pub fn fit(base: &[f64], dense: &[f64], floor: f64) -> Self {
        assert_eq!(base.len(), dense.len(), "delta fit length mismatch");
        assert!(
            base.len() <= u32::MAX as usize,
            "delta index space overflow"
        );
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, (&b, &d)) in base.iter().zip(dense).enumerate() {
            if d.to_bits() != b.to_bits() && (d - b).abs() >= floor {
                idx.push(i as u32);
                val.push(d);
            }
        }
        // Break-even: sparse costs 12 bytes/entry vs 8 bytes/param dense.
        if idx.len() * 12 > dense.len() * 8 {
            return Self {
                len: base.len(),
                repr: DeltaRepr::Dense(dense.to_vec()),
            };
        }
        Self {
            len: base.len(),
            repr: DeltaRepr::Sparse { idx, val },
        }
    }

    /// Parameter count of the vectors this delta applies to.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the delta overrides nothing (the model *is* the base).
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// Number of overridden parameters.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            DeltaRepr::Sparse { idx, .. } => idx.len(),
            DeltaRepr::Dense(_) => self.len,
        }
    }

    /// Approximate resident payload size in bytes (indices + values, or
    /// the dense vector).
    pub fn resident_bytes(&self) -> usize {
        match &self.repr {
            DeltaRepr::Sparse { idx, val } => idx.len() * 4 + val.len() * 8,
            DeltaRepr::Dense(v) => v.len() * 8,
        }
    }

    /// Overwrites `params` (a copy of the base) with the overrides.
    pub fn patch(&self, params: &mut [f64]) {
        assert_eq!(params.len(), self.len, "delta patch length mismatch");
        match &self.repr {
            DeltaRepr::Sparse { idx, val } => {
                for (&i, &v) in idx.iter().zip(val) {
                    params[i as usize] = v;
                }
            }
            DeltaRepr::Dense(v) => params.copy_from_slice(v),
        }
    }

    /// Reconstructs the dense parameter vector into `out` (resized):
    /// copy of `base`, then [`DeltaWeights::patch`].
    pub fn apply(&self, base: &[f64], out: &mut Vec<f64>) {
        assert_eq!(base.len(), self.len, "delta apply length mismatch");
        out.clear();
        out.extend_from_slice(base);
        self.patch(out);
    }

    /// Visits each override as `(flat index, value)` in increasing index
    /// order (the correction pass of the batched rollout).
    pub fn for_each(&self, mut f: impl FnMut(usize, f64)) {
        match &self.repr {
            DeltaRepr::Sparse { idx, val } => {
                for (&i, &v) in idx.iter().zip(val) {
                    f(i as usize, v);
                }
            }
            DeltaRepr::Dense(v) => {
                for (i, &x) in v.iter().enumerate() {
                    f(i, x);
                }
            }
        }
    }

    /// Whether the payload is the dense fallback (diagnostics).
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, DeltaRepr::Dense(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_zero_round_trip_is_exact() {
        let base: Vec<f64> = (0..64).map(|i| (i as f64 * 0.173).sin()).collect();
        let mut dense = base.clone();
        dense[3] = f64::from_bits(dense[3].to_bits() + 1); // one ulp
        dense[10] = -4.0;
        dense[63] = f64::MIN_POSITIVE;
        let d = DeltaWeights::fit(&base, &dense, 0.0);
        assert_eq!(d.nnz(), 3);
        let mut back = Vec::new();
        d.apply(&base, &mut back);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&dense));
    }

    #[test]
    fn empty_delta_reproduces_base() {
        let base = vec![1.0, 2.0, 3.0];
        let d = DeltaWeights::fit(&base, &base, 0.0);
        assert!(d.is_empty());
        assert_eq!(d.resident_bytes(), 0);
        let mut back = Vec::new();
        d.apply(&base, &mut back);
        assert_eq!(back, base);
    }

    #[test]
    fn positive_floor_drops_small_diffs() {
        let base = vec![0.0; 4];
        let dense = vec![1e-6, 0.5, -1e-6, 0.25];
        let d = DeltaWeights::fit(&base, &dense, 1e-3);
        assert_eq!(d.nnz(), 2);
        let mut back = Vec::new();
        d.apply(&base, &mut back);
        assert_eq!(back, vec![0.0, 0.5, 0.0, 0.25]);
    }

    #[test]
    fn dense_fallback_when_everything_moved() {
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let dense: Vec<f64> = base.iter().map(|v| v + 0.5).collect();
        let d = DeltaWeights::fit(&base, &dense, 0.0);
        assert!(d.is_dense());
        assert_eq!(d.resident_bytes(), 800); // never worse than dense
        let mut back = Vec::new();
        d.apply(&base, &mut back);
        assert_eq!(back, dense);
    }

    #[test]
    fn serde_round_trip() {
        let base = vec![1.0, 2.0, 3.0, 4.0];
        let dense = vec![1.0, 9.0, 3.0, 8.0];
        let d = DeltaWeights::fit(&base, &dense, 0.0);
        let json = serde_json::to_string(&d).unwrap();
        let back: DeltaWeights = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn for_each_visits_in_order() {
        let base = vec![0.0; 5];
        let dense = vec![0.0, 1.0, 0.0, 2.0, 3.0];
        let d = DeltaWeights::fit(&base, &dense, 0.0);
        let mut seen = Vec::new();
        d.for_each(|i, v| seen.push((i, v)));
        assert_eq!(seen, vec![(1, 1.0), (3, 2.0), (4, 3.0)]);
    }
}

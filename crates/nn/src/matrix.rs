//! A minimal row-major `f64` matrix.
//!
//! The models here are tiny (hidden sizes of a few dozen), so a simple
//! contiguous `Vec<f64>` with naive loops is both fast enough and easy to
//! verify. Shapes are checked with assertions — a shape bug is a
//! programming error, not a runtime condition.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from a flat row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation, the usual choice for
    /// tanh/sigmoid recurrent nets.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat view of the entries (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the entries (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = A·x` for a column vector `x` (`len == cols`).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// [`Matrix::matvec`] into a caller-provided buffer (`y.len == rows`).
    ///
    /// Rows are processed four at a time with one independent accumulator
    /// chain each — the per-row accumulation order (and therefore the
    /// result, bit for bit) is identical to the straightforward per-row
    /// loop; the blocking only removes the serial add-latency bottleneck
    /// by giving the CPU four dependency chains to overlap.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        assert_eq!(y.len(), self.rows, "matvec output mismatch");
        let n = self.cols;
        let mut r = 0;
        while r + 4 <= self.rows {
            let base = r * n;
            let (r0, rest) = self.data[base..base + 4 * n].split_at(n);
            let (r1, rest) = rest.split_at(n);
            let (r2, r3) = rest.split_at(n);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for (k, &xv) in x.iter().enumerate() {
                a0 += r0[k] * xv;
                a1 += r1[k] * xv;
                a2 += r2[k] * xv;
                a3 += r3[k] * xv;
            }
            y[r] = a0;
            y[r + 1] = a1;
            y[r + 2] = a2;
            y[r + 3] = a3;
            r += 4;
        }
        while r < self.rows {
            let row = &self.data[r * n..(r + 1) * n];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] = acc;
            r += 1;
        }
    }

    /// Writes a column-major copy of `A` into `out` (element `(r, c)` at
    /// `out[c * rows + r]`), resizing as needed. Pair with
    /// [`matvec_colmajor_into`] for a vectorisable forward product.
    pub fn transpose_into(&self, out: &mut Vec<f64>) {
        out.resize(self.rows * self.cols, 0.0);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                out[c * self.rows + r] = v;
            }
        }
    }

    /// `y = Aᵀ·x` for a column vector `x` (`len == rows`) without
    /// materialising the transpose.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.matvec_t_into(x, &mut y);
        y
    }

    /// [`Matrix::matvec_t`] into a caller-provided buffer, which is
    /// zero-filled first (`y.len == cols`). Accumulation order matches
    /// the allocating version exactly.
    pub fn matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t shape mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output mismatch");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += a * xr;
            }
        }
    }

    /// Rank-1 update `A += α · u vᵀ` (`u.len == rows`, `v.len == cols`).
    /// This is the workhorse of every backward pass.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "outer-product row mismatch");
        assert_eq!(v.len(), self.cols, "outer-product col mismatch");
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let a = alpha * ur;
            for (cell, &vc) in row.iter_mut().zip(v) {
                *cell += a * vc;
            }
        }
    }

    /// In-place `A += α · B`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scaling `A *= α`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fills the matrix with zeros, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// `y = A·x` where `wt` is `A` stored column-major (the output of
/// [`Matrix::transpose_into`]).
///
/// Each output row still accumulates its products in column order
/// `k = 0..cols` — exactly the order of [`Matrix::matvec_into`] — so the
/// result is bit-identical. The difference is purely mechanical: the
/// inner loop walks a contiguous column and updates independent outputs,
/// which the compiler can vectorise, unlike the row-major dot product
/// whose single accumulator chain forces scalar code.
pub fn matvec_colmajor_into(wt: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
    assert_eq!(wt.len(), rows * cols, "colmajor shape mismatch");
    assert_eq!(x.len(), cols, "matvec shape mismatch");
    assert_eq!(y.len(), rows, "matvec output mismatch");
    y.fill(0.0);
    // Columns are consumed two at a time so `y` is loaded/stored once per
    // pair; the expression below evaluates left to right, i.e.
    // `(y + w0·x0) + w1·x1`, which is exactly the one-column-at-a-time
    // order — results stay bit-identical.
    let mut k = 0;
    while k + 2 <= cols {
        let (x0, x1) = (x[k], x[k + 1]);
        let (c0, c1) = wt[k * rows..(k + 2) * rows].split_at(rows);
        for ((yv, &w0), &w1) in y.iter_mut().zip(c0).zip(c1) {
            *yv = *yv + w0 * x0 + w1 * x1;
        }
        k += 2;
    }
    if k < cols {
        let xv = x[k];
        let col = &wt[k * rows..(k + 1) * rows];
        for (yv, &wv) in y.iter_mut().zip(col) {
            *yv += wv * xv;
        }
    }
}

/// `Y = A·X` for `batch` stacked column vectors, where `wt` is `A`
/// stored column-major (the output of [`Matrix::transpose_into`]), `x`
/// is the input block in **k-major** layout (`x[k * batch + i]` =
/// element `k` of lane `i`) and `y` the output block in **r-major**
/// layout (`y[r * batch + i]`).
///
/// Each output element `(r, i)` accumulates its products over `k =
/// 0..cols` in ascending order from a single zero-initialised
/// accumulator — exactly the order of [`Matrix::matvec_into`] and
/// [`matvec_colmajor_into`] — so every lane of the batched product is
/// **bit-identical** to the corresponding serial matrix–vector product.
/// The batching only turns the innermost loop into a contiguous walk
/// over `batch` independent lanes, which vectorises trivially.
pub fn matmul_colmajor_into(
    wt: &[f64],
    rows: usize,
    cols: usize,
    batch: usize,
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(wt.len(), rows * cols, "colmajor shape mismatch");
    assert_eq!(x.len(), cols * batch, "matmul input mismatch");
    assert_eq!(y.len(), rows * batch, "matmul output mismatch");
    // Lane tiles are accumulated in register-resident arrays so each
    // output element is loaded and stored exactly once (the k-outer
    // formulation would re-stream the whole `y` block per column), and
    // rows are processed in pairs so every loaded input lane feeds two
    // accumulator chains — enough independent FMA chains to hide the
    // add latency. A cascade of tile widths keeps small batches on the
    // fast path instead of a per-lane fallback that re-walks `wt`.
    let mut i0 = 0;
    while i0 + 32 <= batch {
        mm_tile::<32>(wt, rows, batch, x, y, i0);
        i0 += 32;
    }
    if i0 + 16 <= batch {
        mm_tile::<16>(wt, rows, batch, x, y, i0);
        i0 += 16;
    }
    if i0 + 8 <= batch {
        mm_tile::<8>(wt, rows, batch, x, y, i0);
        i0 += 8;
    }
    if i0 + 4 <= batch {
        mm_tile::<4>(wt, rows, batch, x, y, i0);
        i0 += 4;
    }
    if i0 + 2 <= batch {
        mm_tile::<2>(wt, rows, batch, x, y, i0);
        i0 += 2;
    }
    if i0 < batch {
        mm_tile::<1>(wt, rows, batch, x, y, i0);
    }
}

/// One `T`-lane, two-row tile of [`matmul_colmajor_into`]. Per-element
/// accumulation stays a single k-ascending chain regardless of `T` or
/// the row pairing, preserving bit-identity.
#[inline]
fn mm_tile<const T: usize>(
    wt: &[f64],
    rows: usize,
    batch: usize,
    x: &[f64],
    y: &mut [f64],
    i0: usize,
) {
    let mut r = 0;
    while r + 2 <= rows {
        let mut a0 = [0.0f64; T];
        let mut a1 = [0.0f64; T];
        for (wcol, xrow) in wt.chunks_exact(rows).zip(x.chunks_exact(batch)) {
            let w0 = wcol[r];
            let w1 = wcol[r + 1];
            for ((p0, p1), &xv) in a0.iter_mut().zip(a1.iter_mut()).zip(&xrow[i0..i0 + T]) {
                *p0 += w0 * xv;
                *p1 += w1 * xv;
            }
        }
        y[r * batch + i0..r * batch + i0 + T].copy_from_slice(&a0);
        y[(r + 1) * batch + i0..(r + 1) * batch + i0 + T].copy_from_slice(&a1);
        r += 2;
    }
    if r < rows {
        let mut acc = [0.0f64; T];
        for (wcol, xrow) in wt.chunks_exact(rows).zip(x.chunks_exact(batch)) {
            let wv = wcol[r];
            for (a, &xv) in acc.iter_mut().zip(&xrow[i0..i0 + T]) {
                *a += wv * xv;
            }
        }
        y[r * batch + i0..r * batch + i0 + T].copy_from_slice(&acc);
    }
}

/// Re-associated variant of [`matmul_colmajor_into`]: columns are
/// consumed two at a time and their partial products combined as a
/// small tree, `acc += w0·x0 + w1·x1`, which halves the per-element
/// add-chain length and lets both products issue independently.
///
/// The tree summation **changes the accumulation order**, so results are
/// *not* bit-identical to the scalar kernels — they agree to within a
/// few ulps per accumulation step (property-tested in [`crate::batch`]).
/// Only the tolerance-gated [`Batched`](crate::KernelBackend)
/// serving backend uses this; training never does.
pub fn matmul_colmajor_relaxed_into(
    wt: &[f64],
    rows: usize,
    cols: usize,
    batch: usize,
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(wt.len(), rows * cols, "colmajor shape mismatch");
    assert_eq!(x.len(), cols * batch, "matmul input mismatch");
    assert_eq!(y.len(), rows * batch, "matmul output mismatch");
    let mut i0 = 0;
    while i0 + 32 <= batch {
        mm_tile_relaxed::<32>(wt, rows, cols, batch, x, y, i0);
        i0 += 32;
    }
    if i0 + 16 <= batch {
        mm_tile_relaxed::<16>(wt, rows, cols, batch, x, y, i0);
        i0 += 16;
    }
    if i0 + 8 <= batch {
        mm_tile_relaxed::<8>(wt, rows, cols, batch, x, y, i0);
        i0 += 8;
    }
    if i0 + 4 <= batch {
        mm_tile_relaxed::<4>(wt, rows, cols, batch, x, y, i0);
        i0 += 4;
    }
    if i0 + 2 <= batch {
        mm_tile_relaxed::<2>(wt, rows, cols, batch, x, y, i0);
        i0 += 2;
    }
    if i0 < batch {
        mm_tile_relaxed::<1>(wt, rows, cols, batch, x, y, i0);
    }
}

/// One `T`-lane, two-row tile of [`matmul_colmajor_relaxed_into`] with
/// the 2-wide column tree. Every tile width uses the same tree order, so
/// the result is independent of how the batch splits into tiles.
#[inline]
fn mm_tile_relaxed<const T: usize>(
    wt: &[f64],
    rows: usize,
    cols: usize,
    batch: usize,
    x: &[f64],
    y: &mut [f64],
    i0: usize,
) {
    let mut r = 0;
    while r + 2 <= rows {
        let mut a0 = [0.0f64; T];
        let mut a1 = [0.0f64; T];
        let mut k = 0;
        while k + 2 <= cols {
            let (wc0, wc1) = wt[k * rows..(k + 2) * rows].split_at(rows);
            let (xs0, xs1) = x[k * batch..(k + 2) * batch].split_at(batch);
            let (w00, w01) = (wc0[r], wc0[r + 1]);
            let (w10, w11) = (wc1[r], wc1[r + 1]);
            let s0 = &xs0[i0..i0 + T];
            let s1 = &xs1[i0..i0 + T];
            for (((p0, p1), &v0), &v1) in a0.iter_mut().zip(a1.iter_mut()).zip(s0).zip(s1) {
                *p0 += w00 * v0 + w10 * v1;
                *p1 += w01 * v0 + w11 * v1;
            }
            k += 2;
        }
        if k < cols {
            let wc = &wt[k * rows..(k + 1) * rows];
            let (w0, w1) = (wc[r], wc[r + 1]);
            let xs = &x[k * batch + i0..k * batch + i0 + T];
            for ((p0, p1), &v) in a0.iter_mut().zip(a1.iter_mut()).zip(xs) {
                *p0 += w0 * v;
                *p1 += w1 * v;
            }
        }
        y[r * batch + i0..r * batch + i0 + T].copy_from_slice(&a0);
        y[(r + 1) * batch + i0..(r + 1) * batch + i0 + T].copy_from_slice(&a1);
        r += 2;
    }
    if r < rows {
        let mut acc = [0.0f64; T];
        let mut k = 0;
        while k + 2 <= cols {
            let (wc0, wc1) = wt[k * rows..(k + 2) * rows].split_at(rows);
            let (xs0, xs1) = x[k * batch..(k + 2) * batch].split_at(batch);
            let (w0, w1) = (wc0[r], wc1[r]);
            let s0 = &xs0[i0..i0 + T];
            let s1 = &xs1[i0..i0 + T];
            for ((a, &v0), &v1) in acc.iter_mut().zip(s0).zip(s1) {
                *a += w0 * v0 + w1 * v1;
            }
            k += 2;
        }
        if k < cols {
            let wc = &wt[k * rows..(k + 1) * rows];
            let wv = wc[r];
            let xs = &x[k * batch + i0..k * batch + i0 + T];
            for (a, &v) in acc.iter_mut().zip(xs) {
                *a += wv * v;
            }
        }
        y[r * batch + i0..r * batch + i0 + T].copy_from_slice(&acc);
    }
}

/// Vector helpers used alongside [`Matrix`]; kept free so call sites read
/// like math.
pub mod vecops {
    /// Dot product. Panics on length mismatch.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `a += α·b` in place.
    pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
        assert_eq!(a.len(), b.len(), "axpy length mismatch");
        for (x, y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    }

    /// Euclidean norm.
    pub fn norm(a: &[f64]) -> f64 {
        dot(a, a).sqrt()
    }

    /// Cosine similarity; zero when either vector is (numerically) zero.
    pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let na = norm(a);
        let nb = norm(b);
        if na < 1e-12 || nb < 1e-12 {
            return 0.0;
        }
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = a.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    /// The 4-row-blocked kernel must be bit-identical to a scalar per-row
    /// loop for every row-count remainder (0..=3 tail rows).
    #[test]
    fn blocked_matvec_is_bitwise_identical_to_scalar() {
        let mut rng = tamp_core::rng::rng_for(7, 3);
        for rows in 1..10usize {
            let m = Matrix::xavier(rows, 7, &mut rng);
            let x: Vec<f64> = (0..7).map(|i| (i as f64 * 0.37).sin()).collect();
            let scalar: Vec<f64> = (0..rows)
                .map(|r| {
                    let mut acc = 0.0;
                    for (a, b) in m.row(r).iter().zip(&x) {
                        acc += a * b;
                    }
                    acc
                })
                .collect();
            assert_eq!(m.matvec(&x), scalar, "rows={rows}");
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![99.0, 99.0];
        m.matvec_into(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![-2.0, -2.0]);
        // matvec_t_into zero-fills: stale contents must not leak.
        let mut yt = vec![5.0, 5.0, 5.0];
        m.matvec_t_into(&[1.0, 2.0], &mut yt);
        assert_eq!(yt, vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = a.matvec_t(&[1.0, 2.0]);
        assert_eq!(y, vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(a.get(0, 0), 8.0);
        assert_eq!(a.get(1, 1), 30.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_rows(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
        a.clear();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = tamp_core::rng::rng_for(1, 3);
        let m = Matrix::xavier(8, 8, &mut rng);
        let limit = (6.0 / 16.0f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(m.frob_norm() > 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_checks_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    /// Every lane of the batched GEMM must be bit-identical to the
    /// serial matvec of that lane, for ragged row/col/batch shapes.
    #[test]
    fn batched_gemm_is_bitwise_identical_per_lane() {
        let mut rng = tamp_core::rng::rng_for(11, 0);
        for &(rows, cols) in &[(1usize, 1usize), (5, 3), (8, 7), (12, 20)] {
            let m = Matrix::xavier(rows, cols, &mut rng);
            let mut wt = Vec::new();
            m.transpose_into(&mut wt);
            for batch in [1usize, 2, 5, 9] {
                // k-major stacked inputs.
                let lanes: Vec<Vec<f64>> = (0..batch)
                    .map(|i| {
                        (0..cols)
                            .map(|k| ((i * 31 + k * 7) as f64 * 0.11).sin())
                            .collect()
                    })
                    .collect();
                let mut x = vec![0.0; cols * batch];
                for (i, lane) in lanes.iter().enumerate() {
                    for (k, &v) in lane.iter().enumerate() {
                        x[k * batch + i] = v;
                    }
                }
                let mut y = vec![9.9; rows * batch];
                matmul_colmajor_into(&wt, rows, cols, batch, &x, &mut y);
                for (i, lane) in lanes.iter().enumerate() {
                    let serial = m.matvec(lane);
                    for r in 0..rows {
                        assert_eq!(
                            y[r * batch + i].to_bits(),
                            serial[r].to_bits(),
                            "rows={rows} cols={cols} batch={batch} lane={i} r={r}"
                        );
                    }
                }
                // The relaxed kernel agrees to tight relative tolerance.
                let mut yr = vec![0.0; rows * batch];
                matmul_colmajor_relaxed_into(&wt, rows, cols, batch, &x, &mut yr);
                for (a, b) in y.iter().zip(&yr) {
                    let scale = a.abs().max(1.0);
                    assert!((a - b).abs() / scale < 1e-12, "relaxed drifted: {a} vs {b}");
                }
            }
        }
    }
}

//! Turns a JSONL telemetry trace (from `tamp-cli ... --trace FILE`) into
//! a per-stage latency table and an SVG timeline of the engine's batch
//! loop.
//!
//! ```text
//! cargo run -p tamp-bench --bin trace_report -- results/trace.jsonl
//! ```
//!
//! Writes `<trace>.timeline.svg` next to the input (override with
//! `TAMP_OUT`-relative `trace_timeline.svg` when no argument is given)
//! and prints a markdown table of span statistics to stdout.

use std::collections::BTreeMap;
use std::path::PathBuf;
use tamp_bench::svg::{line_chart, Series};
use tamp_obs::{Event, EventKind, Histogram};
use tamp_platform::experiments::report::print_markdown_table;

/// Per-span-name aggregate built from the trace.
struct SpanStats {
    hist: Histogram,
    total_us: f64,
}

fn main() {
    let arg = std::env::args().nth(1);
    let path = arg.map(PathBuf::from).unwrap_or_else(|| {
        PathBuf::from(std::env::var("TAMP_OUT").unwrap_or_else(|_| "results".into()))
            .join("trace.jsonl")
    });
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: read {}: {e}", path.display());
            std::process::exit(1);
        }
    };

    let mut stats: BTreeMap<String, SpanStats> = BTreeMap::new();
    // (name, batch idx, duration ms) of per-batch engine stage spans.
    let mut timeline: Vec<(String, u64, f64)> = Vec::new();
    let mut n_events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = match Event::from_json_line(line) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("error: {}:{}: {e}", path.display(), lineno + 1);
                std::process::exit(1);
            }
        };
        n_events += 1;
        if ev.kind != EventKind::Span {
            continue;
        }
        let span = ev.span.as_ref().expect("span event carries span data");
        let s = stats.entry(ev.name.clone()).or_insert_with(|| SpanStats {
            hist: Histogram::default(),
            total_us: 0.0,
        });
        s.hist.observe(span.dur_us as f64);
        s.total_us += span.dur_us as f64;
        if let Some(idx) = ev.idx {
            if ev.name.starts_with("engine.batch.") {
                timeline.push((ev.name.clone(), idx, span.dur_us as f64 / 1000.0));
            }
        }
    }

    if stats.is_empty() {
        eprintln!(
            "error: {} holds {n_events} events but no spans — was the run traced?",
            path.display()
        );
        std::process::exit(1);
    }

    // Per-stage latency table, heaviest first.
    let mut rows: Vec<(String, &SpanStats)> = stats.iter().map(|(n, s)| (n.clone(), s)).collect();
    rows.sort_by(|a, b| b.1.total_us.total_cmp(&a.1.total_us));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, s)| {
            let snap = s.hist.snapshot();
            vec![
                name.clone(),
                snap.count.to_string(),
                format!("{:.2}", s.total_us / 1000.0),
                format!("{:.1}", s.total_us / snap.count.max(1) as f64),
                format!("{:.1}", snap.p50),
                format!("{:.1}", snap.p95),
                format!("{:.1}", snap.p99),
                format!("{:.1}", snap.max),
            ]
        })
        .collect();
    println!("trace: {} ({n_events} events)\n", path.display());
    print_markdown_table(
        &[
            "span", "count", "total ms", "mean us", "p50 us", "p95 us", "p99 us", "max us",
        ],
        &table,
    );

    // SVG timeline: per-batch duration of each engine stage.
    let mut by_stage: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (name, idx, ms) in &timeline {
        let label = name.trim_start_matches("engine.batch.").to_string();
        by_stage.entry(label).or_default().push((*idx as f64, *ms));
    }
    if by_stage.is_empty() {
        eprintln!("note: no engine.batch.* spans — skipping the timeline SVG");
        return;
    }
    let series: Vec<Series> = by_stage
        .into_iter()
        .map(|(name, mut points)| {
            points.sort_by(|a, b| a.0.total_cmp(&b.0));
            Series { name, points }
        })
        .collect();
    let svg = line_chart(
        "Engine batch-stage latency",
        "batch",
        "stage time (ms)",
        &series,
    );
    let out = path.with_extension("timeline.svg");
    if let Err(e) = std::fs::write(&out, svg) {
        eprintln!("error: write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", out.display());
}

//! The Prediction-Performance-Involved task assignment algorithm
//! (Algorithm 4).
//!
//! PPI decomposes a batch's assignment into three stages ordered by the
//! confidence that the worker will actually complete the task:
//!
//! 1. **High confidence** — pairs with `|B|·MR ≥ 1`, i.e. the expected
//!    number of predicted trajectory points from which the worker can
//!    serve the task is at least one. Matched first by the KM algorithm
//!    with weight `1/minB`.
//! 2. **Ranked residual** — remaining pairs in descending `|B|·MR` order,
//!    matched in mini-batches of `ε` pairs, each closed with a KM call.
//! 3. **Best effort** — still-unassigned tasks and workers paired purely
//!    on predicted proximity under the detour/deadline bound.
//!
//! The staging deliberately trades global matching optimality for a lower
//! rejection rate: pairs the model is confident about are locked in before
//! speculative ones can displace them (see the paper's Discussion of
//! Algorithm 4).

use crate::feasibility::{
    expected_support, feasible_distances, min_b, theorem2_bound, FeasibilityParams,
};
use crate::hungarian::WeightedEdge;
use crate::solver::{solve_matching_keyed, ExactKmSolver, MatchingSolver, VertexKeys};
use crate::spatial::{BucketIndex, PrefilterBounds};
use crate::view::{ExcludedPairs, WorkerView};
use std::collections::HashMap;
use tamp_core::assignment::{Assignment, AssignmentPair};
use tamp_core::geometry::min_dist_to_path;
use tamp_core::{Minutes, SpatialTask};
use tamp_obs::Obs;

/// Softening constant for `1/minB` weights so a zero distance doesn't
/// produce an infinite weight.
const WEIGHT_EPS: f64 = 0.05;

/// Parameters of [`ppi_assign`].
#[derive(Debug, Clone, Copy)]
pub struct PpiParams {
    /// Matching-rate radius `a` (km) used in the Theorem 2 premise.
    pub a_km: f64,
    /// Stage-2 mini-batch size `ε ∈ ℕ₊`.
    pub epsilon: usize,
    /// Current time `t_c`.
    pub now: Minutes,
    /// Prefilter candidate pairs through a [`BucketIndex`] instead of
    /// enumerating every task × worker pair. The query radius is the
    /// batch-wide Theorem 2 bound ([`PrefilterBounds`]), so the surviving
    /// pairs — and therefore the assignment — are byte-identical to full
    /// enumeration (property-tested).
    pub use_index: bool,
}

impl Default for PpiParams {
    fn default() -> Self {
        Self {
            a_km: 0.4,
            epsilon: 8,
            now: Minutes::ZERO,
            use_index: true,
        }
    }
}

/// Inverse-distance preference weight.
#[inline]
fn inv_weight(dist: f64) -> f64 {
    1.0 / (dist + WEIGHT_EPS)
}

/// Runs Algorithm 4 on one batch with no excluded pairs.
pub fn ppi_assign(tasks: &[SpatialTask], workers: &[WorkerView], params: &PpiParams) -> Assignment {
    ppi_assign_excluding(tasks, workers, params, &ExcludedPairs::new())
}

/// Runs Algorithm 4 on one batch.
///
/// `tasks` and `workers` index the bipartite graph positionally; the
/// returned [`Assignment`] references their ids. Pairs in `excluded`
/// (previously rejected by the worker) are never proposed.
pub fn ppi_assign_excluding(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    params: &PpiParams,
    excluded: &ExcludedPairs,
) -> Assignment {
    ppi_assign_observed(tasks, workers, params, excluded, &Obs::null())
}

/// [`ppi_assign_excluding`] with telemetry: per-stage spans
/// (`ppi.stage1`/`ppi.stage2`/`ppi.stage3`), candidate-pruning counters
/// (`ppi.pairs.{scored,excluded,infeasible,confident,deferred}`,
/// `ppi.stage3.candidates`, and — when the index is enabled —
/// `ppi.index.{candidates,pruned,bbox_fallback}`), and a `ppi.km.calls` counter for the
/// inner Hungarian invocations (each timed into the `ppi.km` histogram).
///
/// `ppi.pairs.scored` is the number of pairs that actually received a
/// `(|B|·MR, minB)` score, i.e. survived both the exclusion check and the
/// feasibility filter. With the index enabled, excluded/infeasible counts
/// cover only the *probed* pairs; `ppi.index.pruned` accounts for the
/// rest.
///
/// Passing [`Obs::null`] makes this byte-identical to
/// [`ppi_assign_excluding`] — the assignment itself never depends on the
/// telemetry handle.
pub fn ppi_assign_observed(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    params: &PpiParams,
    excluded: &ExcludedPairs,
    obs: &Obs,
) -> Assignment {
    let mut solver = ExactKmSolver::default();
    ppi_assign_observed_with_solver(tasks, workers, params, excluded, obs, &mut solver)
}

/// [`ppi_assign_observed`] through a caller-owned [`MatchingSolver`], the
/// engine's seam for swapping the exact KM backend for the sparse auction
/// (and for carrying the auction's warm-start cache across windows —
/// vertex keys are the stable task/worker ids). With [`ExactKmSolver`]
/// the plan is byte-identical to [`ppi_assign_observed`].
pub fn ppi_assign_observed_with_solver(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    params: &PpiParams,
    excluded: &ExcludedPairs,
    obs: &Obs,
    solver: &mut dyn MatchingSolver,
) -> Assignment {
    let mut plan = Assignment::new();
    if tasks.is_empty() || workers.is_empty() {
        return plan;
    }
    assert!(params.epsilon > 0, "ε must be positive");
    let fparams = FeasibilityParams {
        a_km: params.a_km,
        now: params.now,
    };
    let left_keys: Vec<u64> = tasks.iter().map(|t| t.id.0).collect();
    let right_keys: Vec<u64> = workers.iter().map(|w| w.id.0).collect();
    let mut km_calls: u64 = 0;
    let mut km = |n_left: usize, n_right: usize, edges: &[WeightedEdge]| {
        km_calls += 1;
        let start = std::time::Instant::now();
        let keys = VertexKeys {
            left: &left_keys,
            right: &right_keys,
        };
        let m = solve_matching_keyed(solver, n_left, n_right, edges, &keys);
        obs.observe("ppi.km", start.elapsed().as_secs_f64() * 1e6);
        m
    };

    // Candidate generation: either every worker (naive) or the bucket
    // index queried at the batch-wide Theorem 2 radius. The index returns
    // a sorted superset of the feasible workers, so the feasibility
    // predicates below see the surviving pairs in the same order as the
    // naive scan — the two paths produce byte-identical plans.
    let index = params.use_index.then(|| {
        let bounds = PrefilterBounds::over(workers);
        (BucketIndex::build(workers, bounds.cell_km()), bounds)
    });
    let all_workers: Vec<usize> = if index.is_none() {
        (0..workers.len()).collect()
    } else {
        Vec::new()
    };
    let mut cand_buf: Vec<usize> = Vec::new();
    let mut index_candidates: u64 = 0;
    let mut index_pruned: u64 = 0;

    // ---- Stage 1: score every pair (Algorithm 4, lines 1–11) ----
    let stage1 = obs.span("ppi.stage1");
    let mut excluded_pairs: u64 = 0;
    let mut infeasible_pairs: u64 = 0;
    let mut confident = Vec::new();
    let mut deferred: Vec<(f64, f64, usize, usize)> = Vec::new(); // (support, minB, task, worker)
    for (ti, task) in tasks.iter().enumerate() {
        let candidates: &[usize] = match &index {
            Some((idx, bounds)) => {
                idx.candidates_within_into(
                    task.location,
                    bounds.radius_for(task, params.now),
                    &mut cand_buf,
                );
                index_candidates += cand_buf.len() as u64;
                index_pruned += (workers.len() - cand_buf.len()) as u64;
                &cand_buf
            }
            None => &all_workers,
        };
        for &wi in candidates {
            let worker = &workers[wi];
            if excluded.contains(&(task.id, worker.id)) {
                excluded_pairs += 1;
                continue;
            }
            let b = feasible_distances(worker, task, &fparams);
            if b.is_empty() {
                infeasible_pairs += 1;
                continue;
            }
            let support = expected_support(b.len(), worker.mr);
            let mb = min_b(&b).expect("non-empty B");
            if support >= 1.0 {
                confident.push(WeightedEdge::new(ti, wi, inv_weight(mb)));
            } else {
                deferred.push((support, mb, ti, wi));
            }
        }
    }
    obs.count(
        "ppi.pairs.scored",
        (confident.len() + deferred.len()) as u64,
    );
    obs.count("ppi.pairs.excluded", excluded_pairs);
    obs.count("ppi.pairs.infeasible", infeasible_pairs);
    obs.count("ppi.pairs.confident", confident.len() as u64);
    obs.count("ppi.pairs.deferred", deferred.len() as u64);
    let matched = km(tasks.len(), workers.len(), &confident);
    push_pairs(
        &mut plan,
        tasks,
        workers,
        &matched,
        &best_weights(&confident),
    );
    drop(stage1);

    // ---- Stage 2: ranked residual in ε mini-batches (lines 13–27) ----
    let stage2 = obs.span("ppi.stage2");
    // Descending support with a deterministic total order: NaN support
    // (e.g. a worker whose MR came back NaN from a corrupted validation
    // window) ranks last instead of panicking, equal support prefers the
    // nearer pair (smaller minB), and any remaining tie falls back to
    // (task, worker) index so the mini-batch boundaries are stable across
    // runs.
    deferred.sort_by(|x, y| {
        let key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
        key(y.0)
            .total_cmp(&key(x.0))
            .then_with(|| x.1.total_cmp(&y.1))
            .then_with(|| x.2.cmp(&y.2))
            .then_with(|| x.3.cmp(&y.3))
    });
    let mut pending: Vec<WeightedEdge> = Vec::new();
    let mut assigned_tasks = plan.assigned_tasks();
    let mut assigned_workers = plan.assigned_workers();
    let mut flush =
        |pending: &mut Vec<WeightedEdge>,
         plan: &mut Assignment,
         assigned_tasks: &mut std::collections::HashSet<tamp_core::TaskId>,
         assigned_workers: &mut std::collections::HashSet<tamp_core::WorkerId>| {
            if pending.is_empty() {
                return;
            }
            let m = km(tasks.len(), workers.len(), pending);
            let weights = best_weights(pending);
            for &(ti, wi) in &m {
                let pair = AssignmentPair {
                    task: tasks[ti].id,
                    worker: workers[wi].id,
                    score: weights.get(&(ti, wi)).copied().unwrap_or(0.0),
                };
                if plan.try_push(pair) {
                    assigned_tasks.insert(pair.task);
                    assigned_workers.insert(pair.worker);
                }
            }
            pending.clear();
        };
    for &(_support, mb, ti, wi) in &deferred {
        if assigned_tasks.contains(&tasks[ti].id) || assigned_workers.contains(&workers[wi].id) {
            continue; // element removed from 𝓑 by an earlier KM round
        }
        pending.push(WeightedEdge::new(ti, wi, inv_weight(mb)));
        if pending.len() == params.epsilon {
            flush(
                &mut pending,
                &mut plan,
                &mut assigned_tasks,
                &mut assigned_workers,
            );
        }
    }
    flush(
        &mut pending,
        &mut plan,
        &mut assigned_tasks,
        &mut assigned_workers,
    );
    drop(stage2);

    // ---- Stage 3: best-effort on predicted proximity (lines 28–34) ----
    let stage3_span = obs.span("ppi.stage3");
    let mut stage3 = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        if assigned_tasks.contains(&task.id) {
            continue;
        }
        let candidates: &[usize] = match &index {
            Some((idx, bounds)) => {
                idx.candidates_within_into(
                    task.location,
                    bounds.radius_for(task, params.now),
                    &mut cand_buf,
                );
                index_candidates += cand_buf.len() as u64;
                index_pruned += (workers.len() - cand_buf.len()) as u64;
                &cand_buf
            }
            None => &all_workers,
        };
        for &wi in candidates {
            let worker = &workers[wi];
            if assigned_workers.contains(&worker.id) || excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            if let Some(dmin) = min_dist_to_path(&worker.predicted, task.location) {
                if dmin <= theorem2_bound(worker, task, params.now) {
                    stage3.push(WeightedEdge::new(ti, wi, inv_weight(dmin)));
                }
            }
        }
    }
    obs.count("ppi.stage3.candidates", stage3.len() as u64);
    let matched = km(tasks.len(), workers.len(), &stage3);
    push_pairs(&mut plan, tasks, workers, &matched, &best_weights(&stage3));
    drop(stage3_span);
    obs.count("ppi.km.calls", km_calls);
    if let Some((idx, _)) = &index {
        obs.count("ppi.index.candidates", index_candidates);
        obs.count("ppi.index.pruned", index_pruned);
        if idx.used_fallback() {
            // A corrupted-but-finite outlier blew up the bounding box and
            // the index degraded to full enumeration this batch.
            obs.count("ppi.index.bbox_fallback", 1);
        }
    }

    plan
}

/// Best weight per `(left, right)` pair. The KM solver keeps the *best*
/// of parallel edges, so the reported score must be the max — and a hash
/// map makes the post-matching score lookup O(1) instead of an O(E) scan
/// per matched pair.
fn best_weights(edges: &[WeightedEdge]) -> HashMap<(usize, usize), f64> {
    let mut m: HashMap<(usize, usize), f64> = HashMap::with_capacity(edges.len());
    for e in edges {
        m.entry((e.left, e.right))
            .and_modify(|w| *w = w.max(e.weight))
            .or_insert(e.weight);
    }
    m
}

fn push_pairs(
    plan: &mut Assignment,
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    matched: &[(usize, usize)],
    weights: &HashMap<(usize, usize), f64>,
) {
    for &(ti, wi) in matched {
        let pair = AssignmentPair {
            task: tasks[ti].id,
            worker: workers[wi].id,
            score: weights.get(&(ti, wi)).copied().unwrap_or(0.0),
        };
        plan.try_push(pair);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::{Point, TaskId, WorkerId};

    fn worker(id: u64, pred: &[(f64, f64)], mr: f64) -> WorkerView {
        WorkerView {
            id: WorkerId(id),
            current: Point::new(pred[0].0, pred[0].1),
            predicted: pred.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            real_future: Vec::new(),
            mr,
            detour_limit_km: 6.0,
            speed_km_per_min: 0.3,
        }
    }

    fn task(id: u64, x: f64, y: f64) -> SpatialTask {
        SpatialTask::new(
            TaskId(id),
            Point::new(x, y),
            Minutes::ZERO,
            Minutes::new(240.0),
        )
    }

    fn params() -> PpiParams {
        PpiParams {
            a_km: 0.4,
            epsilon: 2,
            now: Minutes::ZERO,
            use_index: true,
        }
    }

    #[test]
    fn empty_inputs_give_empty_plan() {
        assert!(ppi_assign(&[], &[], &params()).is_empty());
        assert!(ppi_assign(&[task(1, 0.0, 0.0)], &[], &params()).is_empty());
    }

    #[test]
    fn plan_is_valid_and_confident_worker_keeps_near_task() {
        // Worker 1 passes directly by task 1 many times (high support);
        // worker 2 is a weak candidate for both tasks.
        let w1 = worker(1, &[(1.0, 1.0), (1.1, 1.0), (1.2, 1.0), (1.3, 1.0)], 0.9);
        let w2 = worker(2, &[(5.0, 5.0)], 0.2);
        let t1 = task(1, 1.1, 1.05);
        let t2 = task(2, 5.5, 5.0);
        let plan = ppi_assign(&[t1, t2], &[w1, w2], &params());
        assert!(plan.is_valid());
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), Some(WorkerId(2)));
    }

    #[test]
    fn stage3_catches_pairs_without_mr_support() {
        // MR = 0 keeps every pair out of stages 1–2; stage 3 must still
        // assign by predicted proximity.
        let w = worker(1, &[(2.0, 2.0)], 0.0);
        let t = task(1, 2.2, 2.0);
        let plan = ppi_assign(&[t], &[w], &params());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn infeasible_pairs_stay_unassigned() {
        // Task far outside the worker's detour bound.
        let w = worker(1, &[(0.0, 0.0)], 0.9);
        let t = task(1, 15.0, 9.0);
        let plan = ppi_assign(&[t], &[w], &params());
        assert!(plan.is_empty());
    }

    #[test]
    fn one_worker_cannot_take_two_tasks() {
        let w = worker(1, &[(1.0, 1.0), (1.1, 1.0)], 0.9);
        let t1 = task(1, 1.0, 1.0);
        let t2 = task(2, 1.1, 1.0);
        let plan = ppi_assign(&[t1, t2], &[w], &params());
        assert_eq!(plan.len(), 1);
        assert!(plan.is_valid());
    }

    #[test]
    fn prioritises_high_confidence_pair_for_contested_worker() {
        // Both tasks want worker 1 (the only nearby one). Task 1 enjoys
        // stage-1 confidence (many close predicted points); task 2 only
        // qualifies via stage 3. Worker 1 must go to task 1, and worker 2
        // (far but within bounds for task 2? no) — task 2 stays unassigned.
        let w1 = worker(1, &[(1.0, 1.0), (1.05, 1.0), (1.1, 1.0)], 0.8);
        let t1 = task(1, 1.05, 1.0);
        let t2 = task(2, 2.5, 1.0); // within stage-3 bound of w1 only
        let plan = ppi_assign(&[t1, t2], &[w1], &params());
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), None);
    }

    #[test]
    fn nan_matching_rate_ranks_last_instead_of_panicking() {
        // Worker 2's MR came back NaN (corrupted validation window).
        // Stage 2 must not panic, and the worker with a real score must
        // win the contested task.
        let mut p = params();
        p.epsilon = 1;
        let w_nan = worker(1, &[(0.3, 0.0)], f64::NAN);
        let w_ok = worker(2, &[(0.3, 0.0)], 0.5);
        let t = task(1, 0.0, 0.0);
        let plan = ppi_assign(&[t], &[w_nan, w_ok], &p);
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(2)));
    }

    #[test]
    fn equal_support_tie_prefers_nearer_task() {
        // Both pairs have support 0.5; the ε=1 mini-batches must take the
        // smaller-minB (nearer) pair first, so the single worker goes to
        // the near task deterministically.
        let mut p = params();
        p.epsilon = 1;
        let w = worker(1, &[(0.0, 0.0)], 0.5);
        let near = task(1, 0.5, 0.0);
        let far = task(2, 2.0, 0.0);
        // List the far task first so insertion order alone would pick it.
        let plan = ppi_assign(&[far, near], &[w], &p);
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), None);
    }

    #[test]
    fn indexed_matches_naive_randomized() {
        use rand::Rng;
        let mut rng = tamp_core::rng::rng_for(97, 0);
        for round in 0..20 {
            let workers: Vec<WorkerView> = (0..25)
                .map(|i| {
                    let pts: Vec<(f64, f64)> = (0..4)
                        .map(|_| (rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)))
                        .collect();
                    let mut w = worker(i, &pts, rng.gen_range(0.0..1.0));
                    w.detour_limit_km = rng.gen_range(1.0..8.0);
                    w.speed_km_per_min = rng.gen_range(0.1..0.6);
                    w
                })
                .collect();
            let tasks: Vec<SpatialTask> = (0..30)
                .map(|i| task(i, rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)))
                .collect();
            let mut p = params();
            p.epsilon = 1 + (round % 5);
            p.use_index = false;
            let naive = ppi_assign(&tasks, &workers, &p);
            p.use_index = true;
            let indexed = ppi_assign(&tasks, &workers, &p);
            assert_eq!(naive.pairs(), indexed.pairs(), "round {round}");
        }
    }

    #[test]
    fn epsilon_one_still_assigns_everything_feasible() {
        let mut p = params();
        p.epsilon = 1;
        // Three medium-confidence pairs (support < 1).
        let workers: Vec<WorkerView> = (0..3)
            .map(|i| {
                worker(
                    i,
                    &[(i as f64 * 2.0, 0.0), (i as f64 * 2.0 + 0.1, 0.0)],
                    0.3,
                )
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..3).map(|i| task(i, i as f64 * 2.0 + 0.2, 0.0)).collect();
        let plan = ppi_assign(&tasks, &workers, &p);
        assert_eq!(plan.len(), 3);
        assert!(plan.is_valid());
    }
}

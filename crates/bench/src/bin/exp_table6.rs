//! Regenerates **Table VI** of the paper: the clustering-algorithm ×
//! clustering-factor ablation (RMSE / MAE / MR / TT) on workload 2.

use tamp_bench::{default_training, out_dir, print_ablation, scale_from_env, seed_from_env};
use tamp_platform::experiments::{clustering_ablation, save_json};
use tamp_sim::{WorkloadConfig, WorkloadKind};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Table VI: clustering ablation (workload 2, {} workers, seed {seed})",
        scale.n_workers
    );
    let workload = WorkloadConfig::new(WorkloadKind::GowallaFoursquare, scale, seed).build();
    let rows = clustering_ablation(&workload, &default_training(seed));
    print_ablation(&rows);
    save_json(
        &out_dir().join("table6.json"),
        "table6_clustering_ablation_workload2",
        &rows,
    )
    .expect("write rows");
}

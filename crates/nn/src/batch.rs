//! Fleet-batched autoregressive rollout: cross-worker GEMM over a shared
//! base model with per-worker delta corrections.
//!
//! [`Seq2Seq::predict`] runs one GEMV per worker per step. When a serve
//! shard rolls out thousands of workers whose models share a cluster-head
//! base (see [`crate::delta`]), those GEMVs collapse into one
//! matrix-matrix product per step: stack the per-worker step features as
//! columns of an input matrix and multiply once by the shared weights.
//! [`predict_batch_into`] implements that, with [`BatchTape`] owning every
//! stacked intermediate so the hot path allocates nothing after warm-up.
//!
//! ## Backend guarantees
//!
//! * [`KernelBackend::Scalar`] — **bitwise identical** to calling
//!   [`Seq2Seq::predict`] per worker. Lanes whose delta is empty (the
//!   model *is* the base) go through [`matmul_colmajor_into`], whose
//!   per-lane accumulation order matches the serial GEMV exactly; lanes
//!   with a non-empty delta reconstruct their dense model into a scratch
//!   [`Seq2Seq`] and take the serial path, so their output is bitwise
//!   equal to predicting on the reconstructed model.
//! * [`KernelBackend::Batched`] — **tolerance-gated**. Every lane joins
//!   the shared-base GEMM through the re-associated
//!   [`matmul_colmajor_relaxed_into`] kernel, and non-empty deltas are
//!   applied as a sparse correction pass (`a[r] += (δ − base)·x[c]`)
//!   after each GEMM, and gate nonlinearities use the branch-free
//!   [`crate::fastmath`] approximations instead of libm. Outputs agree
//!   with the scalar backend to within a small relative error
//!   (property-tested below); serving gates on a configured tolerance
//!   before trusting them.
//!
//! GRU models have no stacked kernel; both backends fall back to the
//! serial per-lane path for them. Dense-fallback deltas (most parameters
//! moved) make the correction pass as expensive as a private GEMV — the
//! batched path still works, but the win comes from fleets dominated by
//! cluster heads and sparse adapters.

use crate::backend::KernelBackend;
use crate::delta::DeltaWeights;
use crate::dense::Dense;
use crate::fastmath::{sigmoid_approx, tanh_approx};
use crate::loss::Pt2;
use crate::lstm::{sigmoid, LstmCell};
use crate::matrix::{matmul_colmajor_into, matmul_colmajor_relaxed_into};
use crate::seq2seq::{step_features, Seq2Seq};
use std::collections::BTreeMap;
use std::mem;

/// Plans which pending rollouts stack into the same cross-worker GEMM.
///
/// Lanes are grouped by `(base-model id, observed-prefix length)`:
/// [`predict_batch_into`] requires every lane of a group to share the
/// base model (one weight matrix per GEMM) and the input length (one
/// stacked column block per step, no ragged tails). Architecture and
/// prediction horizon are uniform within a serve shard's predictor set,
/// so they are implied by the base id rather than carried in the key.
///
/// Group iteration order is deterministic (sorted by key, lanes in push
/// order), which keeps batched runs reproducible and lets the scalar
/// backend's byte-identity gates compare runs directly.
#[derive(Debug, Clone, Default)]
pub struct BatchedRollout {
    groups: BTreeMap<(usize, usize), Vec<usize>>,
    lanes: usize,
}

impl BatchedRollout {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers pending rollout `lane` under its grouping key.
    pub fn push(&mut self, lane: usize, base_id: usize, prefix_len: usize) {
        self.groups
            .entry((base_id, prefix_len))
            .or_default()
            .push(lane);
        self.lanes += 1;
    }

    /// Total registered lanes.
    pub fn len(&self) -> usize {
        self.lanes
    }

    /// Whether no lanes have been registered.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Visits every planned GEMM batch as `(base_id, lanes)` — groups in
    /// key order, each split into chunks of at most `batch` lanes
    /// (`batch == 0` is treated as 1).
    pub fn for_each_batch(&self, batch: usize, mut f: impl FnMut(usize, &[usize])) {
        let batch = batch.max(1);
        for (&(base_id, _prefix_len), lanes) in &self.groups {
            for chunk in lanes.chunks(batch) {
                f(base_id, chunk);
            }
        }
    }

    /// Clears the plan for reuse.
    pub fn clear(&mut self) {
        self.groups.clear();
        self.lanes = 0;
    }
}

/// Sparse per-lane weight corrections, decoded from a [`DeltaWeights`]
/// into per-layer `(row, col, value − base)` triples so the rollout can
/// apply them directly against the stacked activations.
#[derive(Debug, Clone, Default)]
struct LaneCorr {
    enc_w: Vec<(u32, u32, f64)>,
    enc_b: Vec<(u32, f64)>,
    dec_w: Vec<(u32, u32, f64)>,
    dec_b: Vec<(u32, f64)>,
    head_w: Vec<(u32, u32, f64)>,
    head_b: Vec<(u32, f64)>,
}

impl LaneCorr {
    fn clear(&mut self) {
        self.enc_w.clear();
        self.enc_b.clear();
        self.dec_w.clear();
        self.dec_b.clear();
        self.head_w.clear();
        self.head_b.clear();
    }
}

/// Reusable workspace for [`predict_batch_into`].
///
/// Owns the cached column-major weight transposes (keyed on the base
/// model's [`Seq2Seq::weights_tag`], recomputed only when the base
/// changes), the stacked activation matrices (`(I+H)×B` inputs, `4H×B`
/// gate pre-activations, `H×B` states, `2×B` head outputs), the decoder's
/// per-lane autoregressive points, decoded delta corrections, and a
/// scratch model for serial-fallback lanes. Buffers grow to the largest
/// batch seen and are then reused allocation-free.
#[derive(Default)]
pub struct BatchTape {
    wt_enc: Vec<f64>,
    wt_dec: Vec<f64>,
    wt_head: Vec<f64>,
    wt_tag: Option<u64>,
    xz: Vec<f64>,
    a: Vec<f64>,
    h: Vec<f64>,
    c: Vec<f64>,
    h_next: Vec<f64>,
    c_next: Vec<f64>,
    y: Vec<f64>,
    prev: Vec<Pt2>,
    before: Vec<Pt2>,
    lanes: Vec<usize>,
    corr: Vec<LaneCorr>,
    base_params: Vec<f64>,
    base_tag: Option<u64>,
    scratch_params: Vec<f64>,
    scratch_model: Option<Seq2Seq>,
    /// Number of GEMM groups / total GEMM lanes since the last
    /// [`BatchTape::take_stats`] call (telemetry).
    stat_groups: u64,
    stat_lanes: u64,
}

impl BatchTape {
    /// An empty tape; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the `(gemm_groups, gemm_lanes)` counters accumulated since
    /// the last call — the `nn.batch.{groups,size}` telemetry source.
    pub fn take_stats(&mut self) -> (u64, u64) {
        (
            mem::take(&mut self.stat_groups),
            mem::take(&mut self.stat_lanes),
        )
    }

    /// The dense model a `(base, delta)` pair denotes, reconstructed into
    /// the scratch slot (or `base` itself for an empty delta).
    fn lane_model<'a>(
        &'a mut self,
        base: &'a Seq2Seq,
        delta: Option<&DeltaWeights>,
    ) -> &'a Seq2Seq {
        let delta = match delta {
            Some(d) if !d.is_empty() => d,
            _ => return base,
        };
        if self.base_tag != Some(base.weights_tag()) {
            self.base_params = base.params();
            self.base_tag = Some(base.weights_tag());
        }
        delta.apply(&self.base_params, &mut self.scratch_params);
        let rebuild = match &self.scratch_model {
            Some(m) => m.config() != base.config(),
            None => true,
        };
        if rebuild {
            self.scratch_model = Some(base.clone());
        }
        let model = self.scratch_model.as_mut().expect("just ensured");
        model.set_params(&self.scratch_params);
        model
    }

    /// Decodes each lane's delta into per-layer corrections against the
    /// base weights (batched backend). `self.corr[i]` lines up with
    /// `self.lanes[i]`.
    fn build_corrections(
        &mut self,
        enc: &LstmCell,
        dec: &LstmCell,
        head: &Dense,
        deltas: &[Option<&DeltaWeights>],
    ) {
        let n = self.lanes.len();
        if self.corr.len() < n {
            self.corr.resize_with(n, LaneCorr::default);
        }
        let ew = enc.w.rows() * enc.w.cols();
        let off_eb = ew;
        let off_dw = off_eb + enc.b.len();
        let off_db = off_dw + dec.w.rows() * dec.w.cols();
        let off_hw = off_db + dec.b.len();
        let off_hb = off_hw + head.w.rows() * head.w.cols();
        let zdim_e = enc.w.cols();
        let zdim_d = dec.w.cols();
        let hcols = head.w.cols();
        for (slot, &li) in self.corr.iter_mut().zip(&self.lanes) {
            slot.clear();
            let Some(d) = deltas[li] else { continue };
            d.for_each(|s, v| {
                if s < off_eb {
                    if v.to_bits() != enc.w.as_slice()[s].to_bits() {
                        let (r, c) = (s / zdim_e, s % zdim_e);
                        slot.enc_w
                            .push((r as u32, c as u32, v - enc.w.as_slice()[s]));
                    }
                } else if s < off_dw {
                    let r = s - off_eb;
                    if v.to_bits() != enc.b[r].to_bits() {
                        slot.enc_b.push((r as u32, v - enc.b[r]));
                    }
                } else if s < off_db {
                    let s2 = s - off_dw;
                    if v.to_bits() != dec.w.as_slice()[s2].to_bits() {
                        let (r, c) = (s2 / zdim_d, s2 % zdim_d);
                        slot.dec_w
                            .push((r as u32, c as u32, v - dec.w.as_slice()[s2]));
                    }
                } else if s < off_hw {
                    let r = s - off_db;
                    if v.to_bits() != dec.b[r].to_bits() {
                        slot.dec_b.push((r as u32, v - dec.b[r]));
                    }
                } else if s < off_hb {
                    let s2 = s - off_hw;
                    if v.to_bits() != head.w.as_slice()[s2].to_bits() {
                        let (r, c) = (s2 / hcols, s2 % hcols);
                        slot.head_w
                            .push((r as u32, c as u32, v - head.w.as_slice()[s2]));
                    }
                } else {
                    let r = s - off_hb;
                    if v.to_bits() != head.b[r].to_bits() {
                        slot.head_b.push((r as u32, v - head.b[r]));
                    }
                }
            });
        }
    }

    /// The stacked rollout over `self.lanes`. Appends `seq_out` points to
    /// `out[lane]` for every lane in the group. `relaxed` selects the
    /// re-associated GEMM kernel; `use_corr` applies `self.corr`.
    #[allow(clippy::too_many_arguments)]
    fn rollout(
        &mut self,
        base_tag: u64,
        enc: &LstmCell,
        dec: &LstmCell,
        head: &Dense,
        inputs: &[&[Pt2]],
        seq_out: usize,
        relaxed: bool,
        use_corr: bool,
        out: &mut [Vec<Pt2>],
    ) {
        let bsz = self.lanes.len();
        if bsz == 0 {
            return;
        }
        self.stat_groups += 1;
        self.stat_lanes += bsz as u64;
        let hdim = enc.hidden();
        let idim = enc.input_dim();
        let zdim = idim + hdim;
        let g4 = 4 * hdim;
        let yrows = head.w.rows();
        if self.wt_tag != Some(base_tag) {
            enc.w.transpose_into(&mut self.wt_enc);
            dec.w.transpose_into(&mut self.wt_dec);
            head.w.transpose_into(&mut self.wt_head);
            self.wt_tag = Some(base_tag);
        }
        self.xz.resize(zdim * bsz, 0.0);
        self.a.resize(g4 * bsz, 0.0);
        self.y.resize(yrows * bsz, 0.0);
        for buf in [&mut self.h, &mut self.c, &mut self.h_next, &mut self.c_next] {
            buf.resize(hdim * bsz, 0.0);
            buf.fill(0.0);
        }
        self.prev.resize(bsz, [0.0, 0.0]);
        self.before.resize(bsz, [0.0, 0.0]);

        let in_len = inputs[self.lanes[0]].len();
        for t in 0..in_len {
            for (i, &li) in self.lanes.iter().enumerate() {
                let seq = inputs[li];
                let f = step_features(seq[t], seq[t.saturating_sub(1)]);
                for (k, &fv) in f.iter().enumerate() {
                    self.xz[k * bsz + i] = fv;
                }
            }
            self.xz[idim * bsz..zdim * bsz].copy_from_slice(&self.h);
            Self::gate_step(
                &self.wt_enc,
                &self.xz,
                &enc.b,
                hdim,
                zdim,
                bsz,
                relaxed,
                use_corr.then_some((&self.corr[..], CorrLayer::Enc)),
                &mut self.a,
                &self.c,
                &mut self.h_next,
                &mut self.c_next,
            );
            mem::swap(&mut self.h, &mut self.h_next);
            mem::swap(&mut self.c, &mut self.c_next);
        }

        for (i, &li) in self.lanes.iter().enumerate() {
            let seq = inputs[li];
            self.prev[i] = *seq.last().expect("non-empty input");
            self.before[i] = seq[seq.len().saturating_sub(2)];
        }
        for _ in 0..seq_out {
            for i in 0..bsz {
                let f = step_features(self.prev[i], self.before[i]);
                for (k, &fv) in f.iter().enumerate() {
                    self.xz[k * bsz + i] = fv;
                }
            }
            self.xz[idim * bsz..zdim * bsz].copy_from_slice(&self.h);
            Self::gate_step(
                &self.wt_dec,
                &self.xz,
                &dec.b,
                hdim,
                zdim,
                bsz,
                relaxed,
                use_corr.then_some((&self.corr[..], CorrLayer::Dec)),
                &mut self.a,
                &self.c,
                &mut self.h_next,
                &mut self.c_next,
            );
            mem::swap(&mut self.h, &mut self.h_next);
            mem::swap(&mut self.c, &mut self.c_next);

            // Head: the state matrix is already the k-major input.
            if relaxed {
                matmul_colmajor_relaxed_into(&self.wt_head, yrows, hdim, bsz, &self.h, &mut self.y);
            } else {
                matmul_colmajor_into(&self.wt_head, yrows, hdim, bsz, &self.h, &mut self.y);
            }
            if use_corr {
                for (i, corr) in self.corr[..bsz].iter().enumerate() {
                    for &(r, c, dv) in &corr.head_w {
                        self.y[r as usize * bsz + i] += dv * self.h[c as usize * bsz + i];
                    }
                }
            }
            for (r, &bv) in head.b.iter().enumerate() {
                for yv in &mut self.y[r * bsz..(r + 1) * bsz] {
                    *yv += bv;
                }
            }
            if use_corr {
                for (i, corr) in self.corr[..bsz].iter().enumerate() {
                    for &(r, dv) in &corr.head_b {
                        self.y[r as usize * bsz + i] += dv;
                    }
                }
            }
            for (i, &li) in self.lanes.iter().enumerate() {
                let pt = [
                    self.prev[i][0] + self.y[i],
                    self.prev[i][1] + self.y[bsz + i],
                ];
                out[li].push(pt);
                self.before[i] = self.prev[i];
                self.prev[i] = pt;
            }
        }
    }

    /// One fused LSTM gate step over the stacked batch: GEMM (+optional
    /// corrections), bias, gate nonlinearities, state update. Writes the
    /// next state into `h_next`/`c_next`. Per lane, the scalar kernel's
    /// arithmetic is bit-identical to [`LstmCell::forward_step_ws`].
    #[allow(clippy::too_many_arguments)]
    fn gate_step(
        wt: &[f64],
        xz: &[f64],
        bias: &[f64],
        hdim: usize,
        zdim: usize,
        bsz: usize,
        relaxed: bool,
        corr: Option<(&[LaneCorr], CorrLayer)>,
        a: &mut [f64],
        c: &[f64],
        h_next: &mut [f64],
        c_next: &mut [f64],
    ) {
        let g4 = 4 * hdim;
        if relaxed {
            matmul_colmajor_relaxed_into(wt, g4, zdim, bsz, xz, a);
        } else {
            matmul_colmajor_into(wt, g4, zdim, bsz, xz, a);
        }
        if let Some((corrs, layer)) = corr {
            for (i, lane) in corrs[..bsz].iter().enumerate() {
                let (w, b) = match layer {
                    CorrLayer::Enc => (&lane.enc_w, &lane.enc_b),
                    CorrLayer::Dec => (&lane.dec_w, &lane.dec_b),
                };
                for &(r, cc, dv) in w {
                    a[r as usize * bsz + i] += dv * xz[cc as usize * bsz + i];
                }
                for &(r, dv) in b {
                    a[r as usize * bsz + i] += dv;
                }
            }
        }
        for (r, &bv) in bias.iter().enumerate() {
            for av in &mut a[r * bsz..(r + 1) * bsz] {
                *av += bv;
            }
        }
        if relaxed {
            // The four gate blocks are contiguous `hdim × bsz` slabs in
            // the same element order as the state blocks, so the whole
            // nonlinearity pass is one flat elementwise loop over the
            // branch-free [`crate::fastmath`] activations — this is where
            // the batched backend escapes the libm scalar-call wall.
            let (ig_blk, rest) = a[..].split_at(hdim * bsz);
            let (fg_blk, rest) = rest.split_at(hdim * bsz);
            let (gg_blk, og_blk) = rest.split_at(hdim * bsz);
            let states = h_next.iter_mut().zip(c_next.iter_mut());
            for (((((&ia, &fa), &ga), &oa), &cv), (hn, cn_out)) in ig_blk
                .iter()
                .zip(fg_blk)
                .zip(gg_blk)
                .zip(og_blk)
                .zip(c)
                .zip(states)
            {
                let ig = sigmoid_approx(ia);
                let fg = sigmoid_approx(fa);
                let gg = tanh_approx(ga);
                let og = sigmoid_approx(oa);
                let cn = fg * cv + ig * gg;
                *cn_out = cn;
                *hn = og * tanh_approx(cn);
            }
        } else {
            for k in 0..hdim {
                for i in 0..bsz {
                    let ix = k * bsz + i;
                    let ig = sigmoid(a[ix]);
                    let fg = sigmoid(a[(hdim + k) * bsz + i]);
                    let gg = a[(2 * hdim + k) * bsz + i].tanh();
                    let og = sigmoid(a[(3 * hdim + k) * bsz + i]);
                    let cn = fg * c[ix] + ig * gg;
                    c_next[ix] = cn;
                    h_next[ix] = og * cn.tanh();
                }
            }
        }
    }
}

/// Which layer's corrections [`BatchTape::gate_step`] should apply.
#[derive(Clone, Copy)]
enum CorrLayer {
    Enc,
    Dec,
}

/// Batched [`Seq2Seq::predict`] over a group of workers sharing `base`.
///
/// `inputs` holds each lane's observed sequence — **all the same length**
/// (group ragged fleets by `(base, input_len)` before calling; the serve
/// shard's `RolloutKey` already buckets this way). `deltas[i]` is lane
/// `i`'s weight override against `base` (`None` or an empty delta means
/// the lane *is* the base model). Appends `seq_out` predicted points per
/// lane into `out[i]` (cleared first; outer `Vec` resized to match).
///
/// See the module docs for the per-backend equivalence guarantees.
pub fn predict_batch_into(
    base: &Seq2Seq,
    deltas: &[Option<&DeltaWeights>],
    inputs: &[&[Pt2]],
    seq_out: usize,
    backend: KernelBackend,
    tape: &mut BatchTape,
    out: &mut Vec<Vec<Pt2>>,
) {
    let n = inputs.len();
    assert_eq!(deltas.len(), n, "one delta slot per input lane");
    out.resize(n, Vec::new());
    out.truncate(n);
    for o in out.iter_mut() {
        o.clear();
    }
    if n == 0 {
        return;
    }
    let in_len = inputs[0].len();
    assert!(in_len > 0, "prediction needs at least one input point");
    assert!(
        inputs.iter().all(|s| s.len() == in_len),
        "ragged batch: group lanes by input length first"
    );
    let n_params = base.n_params();
    for d in deltas.iter().flatten() {
        assert_eq!(d.len(), n_params, "delta sized for a different model");
    }

    let parts = base.lstm_parts();
    tape.lanes.clear();
    match (backend, parts) {
        (KernelBackend::Scalar, Some(_)) => {
            // Bitwise path: base lanes batch, delta lanes go serial on
            // their reconstructed dense model.
            for (i, d) in deltas.iter().enumerate() {
                if d.is_some_and(|d| !d.is_empty()) {
                    let model = tape.lane_model(base, *d);
                    out[i] = model.predict(inputs[i], seq_out);
                } else {
                    tape.lanes.push(i);
                }
            }
            let (enc, dec, head) = parts.expect("matched Some");
            tape.rollout(
                base.weights_tag(),
                enc,
                dec,
                head,
                inputs,
                seq_out,
                false,
                false,
                out,
            );
        }
        (KernelBackend::Batched, Some((enc, dec, head))) => {
            tape.lanes.extend(0..n);
            tape.build_corrections(enc, dec, head, deltas);
            tape.rollout(
                base.weights_tag(),
                enc,
                dec,
                head,
                inputs,
                seq_out,
                true,
                true,
                out,
            );
        }
        (_, None) => {
            // GRU (or future cells): no stacked kernel — serial fallback.
            for (i, d) in deltas.iter().enumerate() {
                let model = tape.lane_model(base, *d);
                out[i] = model.predict(inputs[i], seq_out);
            }
        }
    }
}

/// Allocating convenience wrapper around [`predict_batch_into`].
pub fn predict_batch(
    base: &Seq2Seq,
    deltas: &[Option<&DeltaWeights>],
    inputs: &[&[Pt2]],
    seq_out: usize,
    backend: KernelBackend,
) -> Vec<Vec<Pt2>> {
    let mut tape = BatchTape::new();
    let mut out = Vec::new();
    predict_batch_into(base, deltas, inputs, seq_out, backend, &mut tape, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq2seq::Seq2SeqConfig;
    use rand::rngs::StdRng;
    use rand::Rng;
    use tamp_core::rng::rng_for;

    fn model(seed: u64, hidden: usize) -> Seq2Seq {
        let mut rng = rng_for(seed, 0);
        Seq2Seq::new(Seq2SeqConfig::lstm(hidden), &mut rng)
    }

    fn walk(rng: &mut StdRng, len: usize) -> Vec<Pt2> {
        let mut p = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            p = [
                p[0] + rng.gen_range(-0.05..0.05),
                p[1] + rng.gen_range(-0.05..0.05),
            ];
            out.push(p);
        }
        out
    }

    fn bits(seq: &[Pt2]) -> Vec<(u64, u64)> {
        seq.iter()
            .map(|p| (p[0].to_bits(), p[1].to_bits()))
            .collect()
    }

    /// A sparse perturbation of `base`: `k` parameters nudged.
    fn sparse_delta(base: &Seq2Seq, rng: &mut StdRng, k: usize) -> DeltaWeights {
        let params = base.params();
        let mut dense = params.clone();
        for _ in 0..k {
            let i = rng.gen_range(0..dense.len());
            dense[i] += rng.gen_range(-0.3..0.3);
        }
        DeltaWeights::fit(&params, &dense, 0.0)
    }

    #[test]
    fn planner_groups_by_base_and_prefix_and_chunks_deterministically() {
        let mut plan = BatchedRollout::new();
        // Lanes arrive in shard order with mixed bases and prefix lens.
        for (lane, (base, len)) in [(1, 4), (0, 4), (1, 4), (0, 7), (1, 2), (0, 4), (1, 4)]
            .into_iter()
            .enumerate()
        {
            plan.push(lane, base, len);
        }
        assert_eq!(plan.len(), 7);
        let mut seen = Vec::new();
        plan.for_each_batch(2, |base, lanes| seen.push((base, lanes.to_vec())));
        // Key order (base, prefix_len); push order within a group; chunks
        // capped at the batch size.
        assert_eq!(
            seen,
            vec![
                (0, vec![1, 5]),
                (0, vec![3]),
                (1, vec![4]),
                (1, vec![0, 2]),
                (1, vec![6]),
            ]
        );
        // batch 0 degrades to singleton chunks rather than panicking.
        let mut n = 0;
        plan.for_each_batch(0, |_, lanes| {
            assert_eq!(lanes.len(), 1);
            n += 1;
        });
        assert_eq!(n, 7);
        plan.clear();
        assert!(plan.is_empty());
    }

    #[test]
    fn scalar_batched_matches_serial_bitwise_across_shapes() {
        // Seeds × horizons × ragged group sizes, all base lanes.
        for seed in [1u64, 7, 42] {
            let base = model(seed, 6);
            let mut rng = rng_for(seed ^ 0xD00D, 1);
            for &in_len in &[1usize, 2, 5, 9] {
                for &horizon in &[1usize, 4, 7] {
                    for &bsz in &[1usize, 2, 3, 8, 13] {
                        let seqs: Vec<Vec<Pt2>> =
                            (0..bsz).map(|_| walk(&mut rng, in_len)).collect();
                        let inputs: Vec<&[Pt2]> = seqs.iter().map(|s| s.as_slice()).collect();
                        let deltas = vec![None; bsz];
                        let got =
                            predict_batch(&base, &deltas, &inputs, horizon, KernelBackend::Scalar);
                        for (lane, seq) in got.iter().zip(&seqs) {
                            let want = base.predict(seq, horizon);
                            assert_eq!(bits(lane), bits(&want), "seed {seed} b{bsz} h{horizon}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_delta_lanes_match_reconstructed_models_bitwise() {
        let base = model(3, 5);
        let mut rng = rng_for(99, 1);
        let d1 = sparse_delta(&base, &mut rng, 4);
        let d2 = sparse_delta(&base, &mut rng, 17);
        let seqs: Vec<Vec<Pt2>> = (0..5).map(|_| walk(&mut rng, 4)).collect();
        let inputs: Vec<&[Pt2]> = seqs.iter().map(|s| s.as_slice()).collect();
        let empty = DeltaWeights::empty(base.n_params());
        let deltas = vec![Some(&d1), None, Some(&d2), Some(&empty), Some(&d1)];

        let mut tape = BatchTape::new();
        let mut got = Vec::new();
        predict_batch_into(
            &base,
            &deltas,
            &inputs,
            4,
            KernelBackend::Scalar,
            &mut tape,
            &mut got,
        );
        // Mixed group: 3 delta lanes went serial, 2 base lanes batched.
        assert_eq!(tape.take_stats(), (1, 2));

        let reconstruct = |d: &DeltaWeights| {
            let mut p = base.params();
            d.patch(&mut p);
            let mut m = base.clone();
            m.set_params(&p);
            m
        };
        let m1 = reconstruct(&d1);
        let m2 = reconstruct(&d2);
        let want: Vec<Vec<Pt2>> = vec![
            m1.predict(&seqs[0], 4),
            base.predict(&seqs[1], 4),
            m2.predict(&seqs[2], 4),
            base.predict(&seqs[3], 4),
            m1.predict(&seqs[4], 4),
        ];
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(bits(g), bits(w));
        }
    }

    #[test]
    fn batched_backend_matches_scalar_within_tolerance() {
        let base = model(11, 8);
        let mut rng = rng_for(4242, 1);
        let d = sparse_delta(&base, &mut rng, 10);
        for &bsz in &[1usize, 4, 9] {
            let seqs: Vec<Vec<Pt2>> = (0..bsz).map(|_| walk(&mut rng, 5)).collect();
            let inputs: Vec<&[Pt2]> = seqs.iter().map(|s| s.as_slice()).collect();
            let deltas: Vec<Option<&DeltaWeights>> = (0..bsz)
                .map(|i| if i % 2 == 0 { None } else { Some(&d) })
                .collect();
            let scalar = predict_batch(&base, &deltas, &inputs, 6, KernelBackend::Scalar);
            let batched = predict_batch(&base, &deltas, &inputs, 6, KernelBackend::Batched);
            for (s, v) in scalar.iter().zip(&batched) {
                for (ps, pv) in s.iter().zip(v) {
                    for k in 0..2 {
                        let rel = (ps[k] - pv[k]).abs() / ps[k].abs().max(1.0);
                        assert!(
                            rel <= 1e-9,
                            "rel err {rel} (scalar {} vec {})",
                            ps[k],
                            pv[k]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gru_models_take_the_serial_fallback() {
        let mut rng = rng_for(5, 1);
        let base = Seq2Seq::new(Seq2SeqConfig::gru(5), &mut rng);
        let seqs: Vec<Vec<Pt2>> = (0..3).map(|_| walk(&mut rng, 4)).collect();
        let inputs: Vec<&[Pt2]> = seqs.iter().map(|s| s.as_slice()).collect();
        for backend in [KernelBackend::Scalar, KernelBackend::Batched] {
            let got = predict_batch(&base, &[None, None, None], &inputs, 3, backend);
            for (lane, seq) in got.iter().zip(&seqs) {
                assert_eq!(bits(lane), bits(&base.predict(seq, 3)));
            }
        }
    }

    #[test]
    fn delta_round_trip_through_batched_rollout_is_exact() {
        // floor-0 delta of a fully adapted (dense-fallback) model must
        // reproduce that model's serial predictions bitwise.
        let base = model(21, 6);
        let mut rng = rng_for(777, 1);
        let adapted = {
            let p: Vec<f64> = base
                .params()
                .iter()
                .map(|v| v + rng.gen_range(-0.01..0.01))
                .collect();
            let mut m = base.clone();
            m.set_params(&p);
            m
        };
        let d = DeltaWeights::fit(&base.params(), &adapted.params(), 0.0);
        assert!(d.is_dense());
        let seq = walk(&mut rng, 5);
        let got = predict_batch(
            &base,
            &[Some(&d)],
            &[seq.as_slice()],
            4,
            KernelBackend::Scalar,
        );
        assert_eq!(bits(&got[0]), bits(&adapted.predict(&seq, 4)));
    }

    #[test]
    fn tape_reuse_across_bases_and_batch_sizes_stays_exact() {
        let a = model(31, 6);
        let b = model(32, 6);
        let mut rng = rng_for(8, 1);
        let mut tape = BatchTape::new();
        let mut out = Vec::new();
        for round in 0..3 {
            for base in [&a, &b] {
                let bsz = 1 + (round * 3) % 7;
                let seqs: Vec<Vec<Pt2>> = (0..bsz).map(|_| walk(&mut rng, 4)).collect();
                let inputs: Vec<&[Pt2]> = seqs.iter().map(|s| s.as_slice()).collect();
                let deltas = vec![None; bsz];
                predict_batch_into(
                    base,
                    &deltas,
                    &inputs,
                    5,
                    KernelBackend::Scalar,
                    &mut tape,
                    &mut out,
                );
                for (lane, seq) in out.iter().zip(&seqs) {
                    assert_eq!(bits(lane), bits(&base.predict(seq, 5)));
                }
            }
        }
    }
}

//! Baseline assignment algorithms from the paper's evaluation
//! (Section IV-A, "Compared Algorithms").
//!
//! * [`ub_assign`] — **Upper Bound**: checks constraints against the
//!   worker's *real* trajectory, builds a bipartite graph weighted by the
//!   reciprocal of the real detour, and solves one KM matching. Its
//!   rejection rate is 0 by construction.
//! * [`lb_assign`] — **Lower Bound**: ignores mobility entirely; the
//!   bipartite graph is built from the workers' current locations alone
//!   (inverse-distance weights, deadline reachability as the only
//!   filter), so the workers' actual movement produces heavy rejections.
//! * [`km_assign`] — plain **KM**: the third stage of Algorithm 4 applied
//!   to everything (predicted-proximity bipartite graph, one matching).
//! * [`ggpso_assign`] — the genetic baseline of \[11\]: a population of
//!   assignment chromosomes improved by iterative crossover, mutation and
//!   selection.

use crate::feasibility::theorem2_bound;
use crate::hungarian::WeightedEdge;
use crate::solver::{solve_matching_keyed, ExactKmSolver, MatchingSolver, VertexKeys};
use crate::view::{ExcludedPairs, WorkerView};
use rand::seq::SliceRandom;
use rand::Rng;
use tamp_core::assignment::{Assignment, AssignmentPair};
use tamp_core::geometry::{detour_via, min_dist_to_path};
use tamp_core::time::travel_minutes;
use tamp_core::{Minutes, SpatialTask};

const WEIGHT_EPS: f64 = 0.05;

#[inline]
fn inv_weight(d: f64) -> f64 {
    1.0 / (d + WEIGHT_EPS)
}

fn matching_to_plan(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    edges: &[WeightedEdge],
) -> Assignment {
    let mut solver = ExactKmSolver::default();
    matching_to_plan_with(&mut solver, tasks, workers, edges)
}

fn matching_to_plan_with(
    solver: &mut dyn MatchingSolver,
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    edges: &[WeightedEdge],
) -> Assignment {
    let left_keys: Vec<u64> = tasks.iter().map(|t| t.id.0).collect();
    let right_keys: Vec<u64> = workers.iter().map(|w| w.id.0).collect();
    let keys = VertexKeys {
        left: &left_keys,
        right: &right_keys,
    };
    let matched = solve_matching_keyed(solver, tasks.len(), workers.len(), edges, &keys);
    // The solver keeps the *best* of parallel edges, so the reported
    // score must be the max weight per pair — and a map lookup avoids an
    // O(E) scan per matched pair.
    let mut weights: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::with_capacity(edges.len());
    for e in edges {
        weights
            .entry((e.left, e.right))
            .and_modify(|w| *w = w.max(e.weight))
            .or_insert(e.weight);
    }
    let mut plan = Assignment::new();
    for (ti, wi) in matched {
        plan.try_push(AssignmentPair {
            task: tasks[ti].id,
            worker: workers[wi].id,
            score: weights.get(&(ti, wi)).copied().unwrap_or(0.0),
        });
    }
    plan
}

/// The real detour and feasibility of serving `task` given the worker's
/// ground-truth future. Returns the minimum real detour over all
/// deviation legs that meet both the detour bound and the deadline, or
/// `None` when no leg qualifies.
pub fn oracle_detour(worker: &WorkerView, task: &SpatialTask, now: Minutes) -> Option<f64> {
    let path = &worker.real_future;
    if path.is_empty() {
        return None;
    }
    let mut best: Option<f64> = None;
    let consider = |best: &mut Option<f64>, detour: f64, depart_at: Minutes, from_dist: f64| {
        if detour > worker.detour_limit_km {
            return;
        }
        let depart = depart_at.as_f64().max(now.as_f64());
        let arrival = depart + travel_minutes(from_dist, worker.speed_km_per_min);
        if arrival < task.deadline.as_f64() {
            *best = Some(best.map_or(detour, |b: f64| b.min(detour)));
        }
    };
    if path.len() == 1 {
        let p = path[0];
        let d = p.loc.dist(task.location);
        consider(&mut best, 2.0 * d, p.time, d);
        return best;
    }
    for leg in path.windows(2) {
        let (a, b) = (leg[0], leg[1]);
        let detour = detour_via(a.loc, task.location, b.loc);
        let from_dist = a.loc.dist(task.location);
        consider(&mut best, detour, a.time, from_dist);
    }
    best
}

/// Upper-bound oracle assignment (real trajectories, zero rejections).
pub fn ub_assign(tasks: &[SpatialTask], workers: &[WorkerView], now: Minutes) -> Assignment {
    ub_assign_excluding(tasks, workers, now, &ExcludedPairs::new())
}

/// [`ub_assign`] honouring an exclusion set.
pub fn ub_assign_excluding(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    excluded: &ExcludedPairs,
) -> Assignment {
    let mut edges = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        for (wi, worker) in workers.iter().enumerate() {
            if excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            if let Some(detour) = oracle_detour(worker, task, now) {
                edges.push(WeightedEdge::new(ti, wi, inv_weight(detour)));
            }
        }
    }
    matching_to_plan(tasks, workers, &edges)
}

/// Lower-bound assignment: bipartite graph from current locations only
/// (Section IV-A). The only filter is deadline reachability from the
/// current position — the algorithm has no mobility model with which to
/// anticipate detours, which is exactly why it is the lower bound.
pub fn lb_assign(tasks: &[SpatialTask], workers: &[WorkerView], now: Minutes) -> Assignment {
    lb_assign_excluding(tasks, workers, now, &ExcludedPairs::new())
}

/// [`lb_assign`] honouring an exclusion set.
pub fn lb_assign_excluding(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    excluded: &ExcludedPairs,
) -> Assignment {
    let mut edges = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        for (wi, worker) in workers.iter().enumerate() {
            if excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            let dist = worker.current.dist(task.location);
            let within_deadline = now.as_f64() + travel_minutes(dist, worker.speed_km_per_min)
                < task.deadline.as_f64();
            if within_deadline {
                edges.push(WeightedEdge::new(ti, wi, inv_weight(dist)));
            }
        }
    }
    matching_to_plan(tasks, workers, &edges)
}

/// Plain KM baseline: the third stage of Algorithm 4 as a standalone
/// algorithm (predicted proximity under the Theorem 2 bound, one
/// matching).
pub fn km_assign(tasks: &[SpatialTask], workers: &[WorkerView], now: Minutes) -> Assignment {
    km_assign_excluding(tasks, workers, now, &ExcludedPairs::new())
}

/// [`km_assign`] honouring an exclusion set.
pub fn km_assign_excluding(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    excluded: &ExcludedPairs,
) -> Assignment {
    let mut solver = ExactKmSolver::default();
    km_assign_excluding_with_solver(tasks, workers, now, excluded, &mut solver)
}

/// [`km_assign_excluding`] through a caller-owned [`MatchingSolver`] —
/// the engine's backend seam. With [`ExactKmSolver`] the plan is
/// byte-identical to [`km_assign_excluding`]. UB, LB and GGPSO have no
/// solver variant: UB/LB are offline yardsticks (never on the serving
/// path) and GGPSO does not use bipartite matching at all.
pub fn km_assign_excluding_with_solver(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    excluded: &ExcludedPairs,
    solver: &mut dyn MatchingSolver,
) -> Assignment {
    let mut edges = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        for (wi, worker) in workers.iter().enumerate() {
            if excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            if let Some(dmin) = min_dist_to_path(&worker.predicted, task.location) {
                if dmin <= theorem2_bound(worker, task, now) {
                    edges.push(WeightedEdge::new(ti, wi, inv_weight(dmin)));
                }
            }
        }
    }
    matching_to_plan_with(solver, tasks, workers, &edges)
}

/// [`km_assign_excluding`] with spatial prefiltering: identical output,
/// but candidate workers per task come from a [`crate::spatial::BucketIndex`]
/// over current + predicted positions instead of full enumeration —
/// O(T·W) probes become O(T·local density). Worthwhile from a few hundred
/// workers upward (see `bench_ppi`).
pub fn km_assign_indexed(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    excluded: &ExcludedPairs,
) -> Assignment {
    let mut solver = ExactKmSolver::default();
    km_assign_indexed_with_solver(tasks, workers, now, excluded, &mut solver)
}

/// [`km_assign_indexed`] through a caller-owned [`MatchingSolver`]. With
/// [`ExactKmSolver`] the plan is byte-identical to [`km_assign_indexed`].
pub fn km_assign_indexed_with_solver(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    excluded: &ExcludedPairs,
    solver: &mut dyn MatchingSolver,
) -> Assignment {
    use crate::spatial::{BucketIndex, PrefilterBounds};
    if tasks.is_empty() || workers.is_empty() {
        return Assignment::new();
    }
    // Per-task radius from the batch-wide Theorem 2 bound: tighter than a
    // flat max(d)/2 for deadline-constrained tasks, still conservative
    // for every worker.
    let bounds = PrefilterBounds::over(workers);
    let index = BucketIndex::build(workers, bounds.cell_km());
    let mut cand_buf = Vec::new();
    let mut edges = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        index.candidates_within_into(task.location, bounds.radius_for(task, now), &mut cand_buf);
        for &wi in &cand_buf {
            let worker = &workers[wi];
            if excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            if let Some(dmin) = min_dist_to_path(&worker.predicted, task.location) {
                if dmin <= theorem2_bound(worker, task, now) {
                    edges.push(WeightedEdge::new(ti, wi, inv_weight(dmin)));
                }
            }
        }
    }
    matching_to_plan_with(solver, tasks, workers, &edges)
}

/// Hyper-parameters of the genetic baseline.
#[derive(Debug, Clone, Copy)]
pub struct GgpsoParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
}

impl Default for GgpsoParams {
    fn default() -> Self {
        Self {
            population: 32,
            generations: 60,
            mutation_rate: 0.08,
        }
    }
}

/// The GGPSO-style genetic baseline \[11\]: iterative crossover, mutation
/// and selection over task→worker assignment chromosomes.
///
/// Fitness rewards each validly assigned pair with `1 + 1/(1 + dist)`
/// (completion first, proximity second); chromosomes are repaired so no
/// worker is duplicated.
pub fn ggpso_assign(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    params: &GgpsoParams,
    rng: &mut impl Rng,
) -> Assignment {
    ggpso_assign_excluding(tasks, workers, now, params, &ExcludedPairs::new(), rng)
}

/// [`ggpso_assign`] honouring an exclusion set.
pub fn ggpso_assign_excluding(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    now: Minutes,
    params: &GgpsoParams,
    excluded: &ExcludedPairs,
    rng: &mut impl Rng,
) -> Assignment {
    if tasks.is_empty() || workers.is_empty() {
        return Assignment::new();
    }
    // Candidate workers (and their predicted distance) per task under the
    // same feasibility bound as the KM baseline.
    let mut candidates: Vec<Vec<(usize, f64)>> = vec![Vec::new(); tasks.len()];
    for (ti, task) in tasks.iter().enumerate() {
        for (wi, worker) in workers.iter().enumerate() {
            if excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            if let Some(dmin) = min_dist_to_path(&worker.predicted, task.location) {
                if dmin <= theorem2_bound(worker, task, now) {
                    candidates[ti].push((wi, dmin));
                }
            }
        }
    }

    type Chromosome = Vec<Option<usize>>;

    let repair = |chrom: &mut Chromosome| {
        let mut used = vec![false; workers.len()];
        for gene in chrom.iter_mut() {
            if let Some(w) = *gene {
                if used[w] {
                    *gene = None;
                } else {
                    used[w] = true;
                }
            }
        }
    };

    let fitness = |chrom: &Chromosome| -> f64 {
        let mut f = 0.0;
        for (ti, gene) in chrom.iter().enumerate() {
            if let Some(w) = *gene {
                if let Some(&(_, d)) = candidates[ti].iter().find(|(c, _)| *c == w) {
                    f += 1.0 + 3.0 / (1.0 + 3.0 * d);
                }
            }
        }
        f
    };

    let random_chrom = |rng: &mut dyn rand::RngCore| -> Chromosome {
        let mut chrom: Chromosome = candidates
            .iter()
            .map(|c| {
                if c.is_empty() || rand::Rng::gen_bool(rng, 0.3) {
                    None
                } else {
                    Some(c.choose(rng).expect("non-empty").0)
                }
            })
            .collect();
        repair(&mut chrom);
        chrom
    };

    let mut population: Vec<(Chromosome, f64)> = (0..params.population.max(2))
        .map(|_| {
            let c = random_chrom(rng);
            let f = fitness(&c);
            (c, f)
        })
        .collect();

    let tournament = |pop: &[(Chromosome, f64)], rng: &mut dyn rand::RngCore| -> Chromosome {
        let mut best: Option<&(Chromosome, f64)> = None;
        for _ in 0..3 {
            let cand = pop.choose(rng).expect("non-empty population");
            if best.is_none_or(|b| cand.1 > b.1) {
                best = Some(cand);
            }
        }
        best.expect("tournament winner").0.clone()
    };

    for _ in 0..params.generations {
        let mut next = Vec::with_capacity(population.len());
        // Elitism: carry the best chromosome forward unchanged.
        let elite = population
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
            .expect("non-empty population")
            .clone();
        next.push(elite);
        while next.len() < population.len() {
            let pa = tournament(&population, rng);
            let pb = tournament(&population, rng);
            // Uniform crossover.
            let mut child: Chromosome = pa
                .iter()
                .zip(&pb)
                .map(|(a, b)| if rng.gen_bool(0.5) { *a } else { *b })
                .collect();
            // Mutation: re-sample the gene from the task's candidates.
            for (ti, gene) in child.iter_mut().enumerate() {
                if rng.gen_bool(params.mutation_rate) {
                    *gene = if candidates[ti].is_empty() || rng.gen_bool(0.2) {
                        None
                    } else {
                        Some(candidates[ti].choose(rng).expect("non-empty").0)
                    };
                }
            }
            repair(&mut child);
            let f = fitness(&child);
            next.push((child, f));
        }
        population = next;
    }

    let (best, _) = population
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
        .expect("non-empty population");
    let mut plan = Assignment::new();
    for (ti, gene) in best.iter().enumerate() {
        if let Some(wi) = *gene {
            let d = candidates[ti]
                .iter()
                .find(|(c, _)| *c == wi)
                .map_or(f64::INFINITY, |&(_, d)| d);
            if d.is_finite() {
                plan.try_push(AssignmentPair {
                    task: tasks[ti].id,
                    worker: workers[wi].id,
                    score: inv_weight(d),
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::routine::TimedPoint;
    use tamp_core::{Point, TaskId, WorkerId};

    fn worker(id: u64, real: &[(f64, f64)], pred: &[(f64, f64)]) -> WorkerView {
        WorkerView {
            id: WorkerId(id),
            current: Point::new(real[0].0, real[0].1),
            predicted: pred.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            real_future: real
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    TimedPoint::new(Point::new(x, y), Minutes::new(i as f64 * 10.0))
                })
                .collect(),
            mr: 0.5,
            detour_limit_km: 6.0,
            speed_km_per_min: 0.3,
        }
    }

    fn task(id: u64, x: f64, y: f64, deadline: f64) -> SpatialTask {
        SpatialTask::new(
            TaskId(id),
            Point::new(x, y),
            Minutes::ZERO,
            Minutes::new(deadline),
        )
    }

    #[test]
    fn oracle_detour_respects_detour_limit() {
        let w = worker(1, &[(0.0, 0.0), (4.0, 0.0)], &[]);
        // On the path: near-zero detour.
        let near = task(1, 2.0, 0.1, 240.0);
        let d = oracle_detour(&w, &near, Minutes::ZERO).unwrap();
        assert!(d < 0.3);
        // Far off the path: beyond the 6 km detour limit.
        let far = task(2, 2.0, 8.0, 240.0);
        assert!(oracle_detour(&w, &far, Minutes::ZERO).is_none());
    }

    #[test]
    fn oracle_detour_respects_deadline() {
        let w = worker(1, &[(0.0, 0.0), (4.0, 0.0)], &[]);
        // Reachable spatially but the deadline passed long ago.
        let t = task(1, 2.0, 0.1, 1.0);
        assert!(oracle_detour(&w, &t, Minutes::ZERO).is_none());
    }

    #[test]
    fn oracle_single_point_roundtrip() {
        let w = worker(1, &[(0.0, 0.0)], &[]);
        let t = task(1, 2.0, 0.0, 240.0);
        let d = oracle_detour(&w, &t, Minutes::ZERO).unwrap();
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ub_assigns_on_real_trajectories() {
        let w1 = worker(1, &[(0.0, 0.0), (4.0, 0.0)], &[]);
        let w2 = worker(2, &[(0.0, 5.0), (4.0, 5.0)], &[]);
        let t1 = task(1, 2.0, 0.0, 240.0);
        let t2 = task(2, 2.0, 5.0, 240.0);
        let plan = ub_assign(&[t1, t2], &[w1, w2], Minutes::ZERO);
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), Some(WorkerId(2)));
    }

    #[test]
    fn lb_uses_current_location_only() {
        // LB filters only by deadline reachability from the current
        // location: a task 8 km away at 0.3 km/min needs ~27 min.
        let w = worker(1, &[(0.0, 0.0), (9.0, 0.0)], &[]);
        let unreachable = task(1, 8.0, 0.0, 20.0);
        let plan = lb_assign(&[unreachable], std::slice::from_ref(&w), Minutes::ZERO);
        assert!(
            plan.is_empty(),
            "deadline-unreachable task must not be assigned"
        );
        // A reachable task is assigned regardless of the real path.
        let t2 = task(2, 8.0, 0.0, 240.0);
        let plan = lb_assign(&[t2], std::slice::from_ref(&w), Minutes::ZERO);
        assert_eq!(plan.len(), 1);
        // With two tasks and one worker, LB prefers the nearer task.
        let near = task(3, 1.0, 0.0, 240.0);
        let far = task(4, 6.0, 0.0, 240.0);
        let plan = lb_assign(&[far, near], &[w], Minutes::ZERO);
        assert_eq!(plan.worker_for(TaskId(3)), Some(WorkerId(1)));
    }

    #[test]
    fn km_uses_predicted_path() {
        let w = worker(1, &[(0.0, 0.0)], &[(3.0, 0.0), (4.0, 0.0)]);
        let t = task(1, 3.2, 0.0, 240.0);
        let plan = km_assign(&[t], &[w], Minutes::ZERO);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn ggpso_finds_obvious_assignment() {
        let mut rng = tamp_core::rng::rng_for(11, tamp_core::rng::streams::GENETIC);
        let w1 = worker(1, &[(0.0, 0.0)], &[(1.0, 0.0)]);
        let w2 = worker(2, &[(0.0, 0.0)], &[(5.0, 5.0)]);
        let t1 = task(1, 1.1, 0.0, 240.0);
        let t2 = task(2, 5.1, 5.0, 240.0);
        let plan = ggpso_assign(
            &[t1, t2],
            &[w1, w2],
            Minutes::ZERO,
            &GgpsoParams::default(),
            &mut rng,
        );
        assert!(plan.is_valid());
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), Some(WorkerId(2)));
    }

    #[test]
    fn ggpso_never_duplicates_workers() {
        let mut rng = tamp_core::rng::rng_for(12, tamp_core::rng::streams::GENETIC);
        let w = worker(1, &[(0.0, 0.0)], &[(1.0, 0.0)]);
        let tasks: Vec<SpatialTask> = (0..5)
            .map(|i| task(i, 1.0 + i as f64 * 0.01, 0.0, 240.0))
            .collect();
        let plan = ggpso_assign(
            &tasks,
            &[w],
            Minutes::ZERO,
            &GgpsoParams::default(),
            &mut rng,
        );
        assert!(plan.len() <= 1);
        assert!(plan.is_valid());
    }
}

//! Optimisers over flat parameter vectors.
//!
//! Meta-learning needs direct control over parameter vectors (adapt steps
//! at rate β, meta steps at rate α — Algorithm 3), so optimisers work on
//! `&mut [f64]` rather than being baked into models.

/// Rescales `grad` in place so its Euclidean norm is at most `max_norm`
/// (global-norm gradient clipping — the standard guard against the
/// exploding gradients recurrent nets produce). Returns the pre-clip
/// norm.
pub fn clip_grad_norm(grad: &mut [f64], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

/// In-place `params += alpha · g` over flat parameter vectors — the
/// meta-update primitive that lets MAML-style loops modify a parameter
/// vector without cloning a whole weight set first.
#[inline]
pub fn add_scaled(params: &mut [f64], alpha: f64, g: &[f64]) {
    assert_eq!(params.len(), g.len(), "add_scaled length mismatch");
    for (p, gv) in params.iter_mut().zip(g) {
        *p += alpha * gv;
    }
}

/// In-place `params -= alpha · g` (an SGD/adapt step at rate `alpha`).
#[inline]
pub fn sub_scaled(params: &mut [f64], alpha: f64, g: &[f64]) {
    assert_eq!(params.len(), g.len(), "sub_scaled length mismatch");
    for (p, gv) in params.iter_mut().zip(g) {
        *p -= alpha * gv;
    }
}

/// A first-order optimiser over a flat parameter vector.
pub trait Optimizer {
    /// Applies one update given the gradient of the current step.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);
}

/// Plain stochastic gradient descent: `θ ← θ − lr · g`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// SGD at the given rate.
    pub fn new(lr: f64) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "sgd length mismatch");
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the canonical defaults (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f64, n_params: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Resets the moment estimates (e.g. when reusing the optimiser for a
    /// fresh adaptation).
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.t = 0;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "adam length mismatch");
        assert_eq!(params.len(), self.m.len(), "adam state length mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x−3)², gradient 2(x−3).
    fn quad_grad(x: f64) -> f64 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut x = [0.0];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = [quad_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = [0.0];
        let mut opt = Adam::new(0.2, 1);
        for _ in 0..300 {
            let g = [quad_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn adam_reset_clears_momentum() {
        let mut opt = Adam::new(0.1, 1);
        let mut x = [0.0];
        opt.step(&mut x, &[1.0]);
        assert!(opt.t == 1);
        opt.reset();
        assert!(opt.t == 0);
        assert_eq!(opt.m, vec![0.0]);
        assert_eq!(opt.v, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sgd_checks_lengths() {
        Sgd::new(0.1).step(&mut [0.0, 1.0], &[1.0]);
    }

    #[test]
    fn scaled_ops_match_manual_update() {
        let mut p = vec![1.0, 2.0, -0.5];
        add_scaled(&mut p, 0.5, &[2.0, -4.0, 1.0]);
        assert_eq!(p, vec![2.0, 0.0, 0.0]);
        sub_scaled(&mut p, 0.25, &[4.0, 0.0, -8.0]);
        assert_eq!(p, vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = vec![0.3, -0.4];
        let norm = clip_grad_norm(&mut g, 1.0);
        assert!((norm - 0.5).abs() < 1e-12);
        assert_eq!(g, vec![0.3, -0.4]);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut g = vec![3.0, 4.0];
        let norm = clip_grad_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-12);
    }
}

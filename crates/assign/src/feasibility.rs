//! Feasibility predicates from Lemmas 1–2 and Theorem 2.
//!
//! For a worker `w` at a predicted point `l̂` and a task `τ`, the pair is
//! *probabilistically feasible* when
//!
//! ```text
//! dis(l̂, τ.l) + a ≤ min(d/2, dᵗ)        with dᵗ = sp·(τ.t − t_c)
//! ```
//!
//! Under that premise Theorem 2 says the worker completes the task with
//! probability `MR(r, r̂)` without violating either the detour bound `d`
//! (Lemma 1) or the deadline (Lemma 2).

use crate::view::WorkerView;
use tamp_core::{Minutes, SpatialTask};

/// Parameters of the feasibility test.
#[derive(Debug, Clone, Copy)]
pub struct FeasibilityParams {
    /// The matching-rate radius `a` in kilometres (Definition 7).
    pub a_km: f64,
    /// Current time `t_c`.
    pub now: Minutes,
}

/// The bound `min(d/2, dᵗ)` of Theorem 2 for a worker/task pair.
pub fn theorem2_bound(worker: &WorkerView, task: &SpatialTask, now: Minutes) -> f64 {
    let d_t = task.reach_radius(now, worker.speed_km_per_min);
    (worker.detour_limit_km / 2.0).min(d_t)
}

/// The distance set `B` of Algorithm 4 (lines 4–7): the distances
/// `dis(l̂ᵢ, τ.l)` over predicted points that satisfy the Theorem 2
/// premise `dis(l̂ᵢ, τ.l) + a ≤ min(d/2, dᵗ)`.
pub fn feasible_distances(
    worker: &WorkerView,
    task: &SpatialTask,
    params: &FeasibilityParams,
) -> Vec<f64> {
    let bound = theorem2_bound(worker, task, params.now);
    if bound <= params.a_km {
        return Vec::new();
    }
    worker
        .predicted
        .iter()
        .map(|p| p.dist(task.location))
        .filter(|&d| d + params.a_km <= bound)
        .collect()
}

/// Smallest element of a distance set, `minB` of Algorithm 4.
pub fn min_b(b: &[f64]) -> Option<f64> {
    b.iter()
        .copied()
        .min_by(|x, y| x.partial_cmp(y).expect("finite"))
}

/// The score `|B| · MR` that orders Algorithm 4's stages: the expected
/// number of predicted points from which the worker can serve the task.
pub fn expected_support(b_len: usize, mr: f64) -> f64 {
    b_len as f64 * mr
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::{Point, TaskId, WorkerId};

    fn worker_at(points: &[(f64, f64)], d: f64, speed: f64) -> WorkerView {
        WorkerView {
            id: WorkerId(1),
            current: Point::new(0.0, 0.0),
            predicted: points.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            real_future: Vec::new(),
            mr: 0.5,
            detour_limit_km: d,
            speed_km_per_min: speed,
        }
    }

    fn task_at(x: f64, y: f64, deadline_min: f64) -> SpatialTask {
        SpatialTask::new(
            TaskId(1),
            Point::new(x, y),
            Minutes::ZERO,
            Minutes::new(deadline_min),
        )
    }

    #[test]
    fn bound_takes_minimum_of_detour_and_deadline() {
        let w = worker_at(&[(0.0, 0.0)], 8.0, 0.3);
        // Far deadline: bound = d/2 = 4.
        let t = task_at(1.0, 0.0, 1000.0);
        assert_eq!(theorem2_bound(&w, &t, Minutes::ZERO), 4.0);
        // Tight deadline: dᵗ = 0.3·10 = 3 < 4.
        let t = task_at(1.0, 0.0, 10.0);
        assert!((theorem2_bound(&w, &t, Minutes::ZERO) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn feasible_distances_filters_by_bound() {
        let w = worker_at(&[(1.0, 0.0), (3.0, 0.0), (10.0, 0.0)], 8.0, 1.0);
        let t = task_at(0.0, 0.0, 1000.0);
        // bound = 4, a = 0.5 → keep distances ≤ 3.5 → points at 1 and 3.
        let b = feasible_distances(
            &w,
            &t,
            &FeasibilityParams {
                a_km: 0.5,
                now: Minutes::ZERO,
            },
        );
        assert_eq!(b.len(), 2);
        assert_eq!(min_b(&b), Some(1.0));
    }

    #[test]
    fn expired_task_has_no_feasible_points() {
        let w = worker_at(&[(0.1, 0.0)], 8.0, 0.3);
        let t = task_at(0.0, 0.0, 5.0);
        let b = feasible_distances(
            &w,
            &t,
            &FeasibilityParams {
                a_km: 0.5,
                now: Minutes::new(10.0),
            },
        );
        assert!(b.is_empty());
    }

    #[test]
    fn bound_not_exceeding_a_yields_empty() {
        let w = worker_at(&[(0.0, 0.0)], 1.0, 1.0);
        let t = task_at(0.0, 0.0, 1000.0);
        // bound = 0.5, a = 0.5 → premise needs dis + 0.5 ≤ 0.5, only dis ≤ 0
        // — rejected outright by the early return.
        let b = feasible_distances(
            &w,
            &t,
            &FeasibilityParams {
                a_km: 0.5,
                now: Minutes::ZERO,
            },
        );
        assert!(b.is_empty());
    }

    #[test]
    fn expected_support_scales() {
        assert_eq!(expected_support(5, 0.4), 2.0);
        assert_eq!(expected_support(0, 0.9), 0.0);
    }

    #[test]
    fn min_b_of_empty_is_none() {
        assert_eq!(min_b(&[]), None);
        assert_eq!(min_b(&[2.0, 1.0, 3.0]), Some(1.0));
    }
}

//! Micro-bench: GTMC's best-response refinement vs plain k-medoids — the
//! cost the game-theoretic clustering adds per tree level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::rng::rng_for;
use tamp_meta::game::best_response;
use tamp_meta::kmedoids::kmedoids;
use tamp_meta::similarity::SimMatrix;

fn noisy_blocks(n: usize, block: usize) -> SimMatrix {
    SimMatrix::from_fn(n, |i, j| {
        let base = if i / block == j / block { 0.7 } else { 0.1 };
        // Deterministic jitter so the instance isn't degenerate.
        base + 0.1 * (((i * 31 + j * 17) % 10) as f64 / 10.0 - 0.5)
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for &n in &[16usize, 64, 128] {
        let sim = noisy_blocks(n, n / 4);
        let members: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("kmedoids", n), &n, |b, _| {
            let mut rng = rng_for(1, 0);
            b.iter(|| black_box(kmedoids(&sim, &members, 4, 30, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("kmedoids_plus_game", n), &n, |b, _| {
            let mut rng = rng_for(1, 0);
            b.iter(|| {
                let init = kmedoids(&sim, &members, 4, 30, &mut rng);
                black_box(best_response(&sim, init, 0.2, 30))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Micro-bench: forward / backward cost of the LSTM encoder–decoder per
//! sequence length — the inner loop of every adapt and meta step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::rng::rng_for;
use tamp_nn::loss::Pt2;
use tamp_nn::{sub_scaled, Adam, MseLoss, Optimizer, Seq2Seq, Seq2SeqConfig, TrainBatch};

fn batch(seq_in: usize, seq_out: usize, n: usize) -> TrainBatch {
    let pairs = (0..n)
        .map(|s| {
            let input: Vec<Pt2> = (0..seq_in)
                .map(|i| [0.1 + 0.01 * (s + i) as f64, 0.5])
                .collect();
            let target: Vec<Pt2> = (0..seq_out)
                .map(|i| [0.1 + 0.01 * (s + seq_in + i) as f64, 0.5])
                .collect();
            (input, target)
        })
        .collect();
    TrainBatch::new(pairs)
}

fn bench(c: &mut Criterion) {
    let mut rng = rng_for(1, 0);
    let model = Seq2Seq::new(Seq2SeqConfig::lstm(16), &mut rng);
    let mut group = c.benchmark_group("lstm");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2));
    for &(si, so) in &[(1usize, 1usize), (5, 1), (5, 3), (10, 3)] {
        let b8 = batch(si, so, 8);
        group.bench_with_input(
            BenchmarkId::new("loss_and_grad", format!("in{si}_out{so}")),
            &b8,
            |b, batch| b.iter(|| black_box(model.loss_and_grad(black_box(batch), &MseLoss))),
        );
        let input: Vec<Pt2> = (0..si).map(|i| [0.1 * i as f64, 0.5]).collect();
        group.bench_with_input(
            BenchmarkId::new("predict", format!("in{si}_out{so}")),
            &input,
            |b, input| b.iter(|| black_box(model.predict(black_box(input), so))),
        );
    }
    group.finish();
}

/// The backward pass in both guises: the per-call-allocating
/// `loss_and_grad` (the historical path, still the API for one-off
/// callers) vs `loss_and_grad_ws` reusing one `Tape` across calls — the
/// shape every adapt / meta inner loop now runs.
fn bench_backward(c: &mut Criterion) {
    let mut rng = rng_for(2, 0);
    let model = Seq2Seq::new(Seq2SeqConfig::lstm(16), &mut rng);
    let mut group = c.benchmark_group("lstm_backward");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2));
    for &(si, so) in &[(5usize, 1usize), (10, 3)] {
        let b8 = batch(si, so, 8);
        group.bench_with_input(
            BenchmarkId::new("alloc", format!("in{si}_out{so}")),
            &b8,
            |b, batch| b.iter(|| black_box(model.loss_and_grad(black_box(batch), &MseLoss))),
        );
        let mut tape = model.make_tape();
        group.bench_with_input(
            BenchmarkId::new("workspace", format!("in{si}_out{so}")),
            &b8,
            |b, batch| {
                b.iter(|| black_box(model.loss_and_grad_ws(black_box(batch), &MseLoss, &mut tape)))
            },
        );
    }
    group.finish();
}

/// Optimiser steps on a full parameter vector: the in-place SGD update
/// (`sub_scaled`, the inner-loop step) and one Adam step (per-worker
/// fine-tuning).
fn bench_optim_step(c: &mut Criterion) {
    let mut rng = rng_for(3, 0);
    let model = Seq2Seq::new(Seq2SeqConfig::lstm(16), &mut rng);
    let n = model.n_params();
    let grad: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 1e-3).collect();
    let mut group = c.benchmark_group("optim_step");
    group
        .sample_size(50)
        .measurement_time(std::time::Duration::from_secs(2));
    let mut theta = model.params();
    group.bench_function(BenchmarkId::new("sgd_sub_scaled", n), |b| {
        b.iter(|| {
            sub_scaled(&mut theta, 1e-6, &grad);
            black_box(theta[0])
        })
    });
    let mut theta = model.params();
    let mut opt = Adam::new(1e-4, n);
    group.bench_function(BenchmarkId::new("adam", n), |b| {
        b.iter(|| {
            opt.step(&mut theta, &grad);
            black_box(theta[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench, bench_backward, bench_optim_step);
criterion_main!(benches);

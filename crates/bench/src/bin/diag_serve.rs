//! Load-generates the serve host: replays each shard's day at
//! increasing task-rate multipliers (×1–×128) through a fixed-capacity
//! submission queue, once per overload policy (shed / degrade /
//! backpressure), and records per (rate, policy) the p50/p95/p99
//! per-window step latency, the cross-batch prediction-cache hit rate,
//! and the shed/degraded/retried counts. At the highest rates the
//! per-window bursts exceed the queue and the policies visibly diverge
//! — shed drops events, degrade trades reports for tasks and
//! persistence views, backpressure smears bursts across windows —
//! which is exactly the ladder docs/serving.md describes. Online
//! adaptation is enabled so the sweep also shows that per-worker cache
//! versioning keeps the hit rate alive across adaptation rounds
//! (a blanket invalidation would zero it). Writes
//! `results/serve_latency.json`: the legacy top-level `rates` array
//! still holds the shed-policy rows (old consumers keep working), the
//! `policies` array holds every (rate, policy) row.
//!
//! Environment: `TAMP_SEED` (default 42), `TAMP_SHARDS` (default 2),
//! `TAMP_THREADS` (default = shards), `TAMP_QUEUE_CAP` (default 12),
//! `TAMP_SCALE` (default `tiny`), `TAMP_MAX_RATE` (default 128; lower
//! it for quick local runs), `TAMP_OUT` (default `results/`).

use std::time::Instant;
use tamp_bench::{out_dir, seed_from_env};
use tamp_meta::meta_training::MetaConfig;
use tamp_obs::Obs;
use tamp_platform::{
    train_predictors, AssignmentAlgo, EngineConfig, LossKind, OnlineAdaptConfig, PredictionAlgo,
    TrainingConfig,
};
use tamp_serve::{HostConfig, OverloadPolicy, Pacing, ServeHost, Shard, ShardConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

/// Task-rate multipliers applied to the scale's default task count.
const RATES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The overload-policy ladder, swept at every rate.
const POLICIES: [(&str, OverloadPolicy); 3] = [
    ("shed", OverloadPolicy::Shed),
    ("degrade", OverloadPolicy::DegradeToFallback),
    (
        "backpressure",
        OverloadPolicy::Backpressure { retry_limit: 3 },
    ),
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One aggregated row of the sweep.
struct SweepRow {
    policy: &'static str,
    rate: usize,
    tasks_per_shard: usize,
    windows: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    invalidations: u64,
    offered: usize,
    submitted: usize,
    shed: usize,
    degraded: usize,
    retried: usize,
    completed: usize,
    fallback_views: usize,
    wall_seconds: f64,
}

fn row_json(r: &SweepRow) -> String {
    format!(
        "{{ \"policy\": \"{}\", \"rate\": {}, \"tasks_per_shard\": {}, \"windows\": {}, \
         \"batch_p50_ms\": {:.6}, \"batch_p95_ms\": {:.6}, \"batch_p99_ms\": {:.6}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
         \"cache_invalidations\": {}, \"offered\": {}, \"submitted\": {}, \"shed\": {}, \
         \"degraded\": {}, \"retried\": {}, \"completed\": {}, \"fallback_views\": {}, \
         \"wall_seconds\": {:.4} }}",
        r.policy,
        r.rate,
        r.tasks_per_shard,
        r.windows,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        r.hits,
        r.misses,
        r.hit_rate,
        r.invalidations,
        r.offered,
        r.submitted,
        r.shed,
        r.degraded,
        r.retried,
        r.completed,
        r.fallback_views,
        r.wall_seconds,
    )
}

fn main() {
    let base_seed = seed_from_env();
    let n_shards = env_usize("TAMP_SHARDS", 2).max(1);
    let threads = env_usize("TAMP_THREADS", n_shards).max(1);
    let queue_cap = env_usize("TAMP_QUEUE_CAP", 12).max(1);
    let max_rate = env_usize("TAMP_MAX_RATE", 128).max(1);
    let scale = match std::env::var("TAMP_SCALE").as_deref() {
        Ok("small") => Scale::small(),
        Ok("paper") => Scale::paper_workload1(),
        _ => Scale::tiny(),
    };

    // Quick offline stage: the sweep measures the serving path, not
    // training quality, so a small model keeps the loadgen snappy while
    // still exercising real rollouts (and hence the prediction cache).
    let training = |seed: u64| TrainingConfig {
        algo: PredictionAlgo::Maml,
        loss: LossKind::Mse,
        hidden: 8,
        seq_in: 5,
        meta: MetaConfig {
            iterations: 4,
            ..MetaConfig::default()
        },
        adapt_steps: 2,
        seed,
        ..TrainingConfig::default()
    };

    let mut rows: Vec<SweepRow> = Vec::new();
    for rate in RATES.into_iter().filter(|r| *r <= max_rate) {
        let n_tasks = scale.n_tasks * rate;
        // Train once per (rate, shard); the policies replay clones so
        // their rows differ only by the overload policy.
        let mut prepared = Vec::new();
        for i in 0..n_shards {
            let seed = base_seed + i as u64;
            let shard_scale = Scale { n_tasks, ..scale };
            let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, shard_scale, seed).build();
            eprintln!(
                "rate x{rate} shard{i}: {} workers, {} tasks — training...",
                workload.workers.len(),
                workload.tasks.len()
            );
            let predictors = train_predictors(&workload, &training(seed));
            prepared.push((seed, workload, predictors));
        }

        for (policy_name, policy) in POLICIES {
            let mut shards = Vec::new();
            for (i, (seed, workload, predictors)) in prepared.iter().enumerate() {
                let cfg = ShardConfig {
                    algo: AssignmentAlgo::Ppi,
                    engine: EngineConfig {
                        seq_in: 5,
                        seed: *seed,
                        prediction_cache: true,
                        // Adaptation rounds bump only the adapted
                        // workers' cache versions; the sweep's hit rate
                        // shows the rest of the cache staying warm.
                        online_adapt: Some(OnlineAdaptConfig::default()),
                        ..EngineConfig::default()
                    },
                    faults: None,
                    queue_capacity: queue_cap,
                    overload: policy,
                    perturb_step_sleep_ms: 0.0,
                };
                shards.push(
                    Shard::new(
                        format!("shard{i}"),
                        workload.clone(),
                        Some(predictors.clone()),
                        cfg,
                    )
                    .expect("shard construction"),
                );
            }

            let host = ServeHost::new(
                shards,
                HostConfig {
                    threads,
                    pacing: Pacing::FullSpeed,
                    ..HostConfig::default()
                },
            );
            let t0 = Instant::now();
            let report = host.run(&Obs::null());
            let wall = t0.elapsed().as_secs_f64();

            let (mut hits, mut misses, mut invalidations) = (0u64, 0u64, 0u64);
            let (mut offered, mut submitted, mut shed) = (0usize, 0usize, 0usize);
            let (mut degraded, mut retried, mut completed) = (0usize, 0usize, 0usize);
            let mut fallback_views = 0usize;
            let mut p50s = Vec::new();
            let (mut p95, mut p99) = (0.0f64, 0.0f64);
            for s in &report.shards {
                hits += s.cache.hits;
                misses += s.cache.misses;
                invalidations += s.cache.invalidations;
                offered += s.counts.offered();
                submitted += s.counts.submitted_tasks + s.counts.submitted_reports;
                shed += s.counts.shed();
                degraded += s.counts.degraded();
                retried += s.counts.retried;
                completed += s.metrics.completed;
                fallback_views += s.metrics.fallback_views;
                p50s.push(s.batch_p50_ms);
                p95 = p95.max(s.batch_p95_ms);
                p99 = p99.max(s.batch_p99_ms);
                // The ladder's accounting invariant, checked on real
                // loadgen output, not just unit fixtures.
                assert_eq!(
                    s.counts.offered(),
                    s.counts.submitted_tasks
                        + s.counts.submitted_reports
                        + s.counts.shed()
                        + s.counts.degraded(),
                    "offered == submitted + shed + degraded must close exactly"
                );
            }
            let p50 = p50s.iter().sum::<f64>() / p50s.len() as f64;
            let hit_rate = if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            };
            eprintln!(
                "rate x{rate} {policy_name}: {} windows, p50 {p50:.3} ms, p95 {p95:.3} ms, \
                 hit rate {hit_rate:.3}, shed {shed}, degraded {degraded}, retried {retried}, \
                 wall {wall:.2}s",
                report.windows
            );
            rows.push(SweepRow {
                policy: policy_name,
                rate,
                tasks_per_shard: n_tasks,
                windows: report.windows,
                p50_ms: p50,
                p95_ms: p95,
                p99_ms: p99,
                hits,
                misses,
                hit_rate,
                invalidations,
                offered,
                submitted,
                shed,
                degraded,
                retried,
                completed,
                fallback_views,
                wall_seconds: wall,
            });
        }
    }

    // Hand-formatted JSON, like the other diag bins: the measurement
    // record must hold real numbers even where serde_json is stubbed.
    // `rates` keeps the legacy shape (shed rows only, old field names
    // intact plus additive ones); `policies` holds the full sweep.
    let mut legacy = String::new();
    let shed_rows: Vec<&SweepRow> = rows.iter().filter(|r| r.policy == "shed").collect();
    for (i, r) in shed_rows.iter().enumerate() {
        let sep = if i + 1 == shed_rows.len() { "" } else { "," };
        legacy.push_str(&format!(
            "    {{ \"rate\": {}, \"tasks_per_shard\": {}, \"windows\": {}, \
             \"batch_p50_ms\": {:.6}, \"batch_p95_ms\": {:.6}, \"batch_p99_ms\": {:.6}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
             \"submitted\": {}, \"shed\": {}, \"completed\": {}, \
             \"wall_seconds\": {:.4} }}{sep}\n",
            r.rate,
            r.tasks_per_shard,
            r.windows,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.hits,
            r.misses,
            r.hit_rate,
            r.submitted,
            r.shed,
            r.completed,
            r.wall_seconds,
        ));
    }
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        body.push_str(&format!("    {}{sep}\n", row_json(r)));
    }
    let json = format!(
        "{{\n  \"name\": \"serve_latency\",\n  \"shards\": {n_shards},\n  \
         \"threads\": {threads},\n  \"queue_capacity\": {queue_cap},\n  \
         \"n_workers\": {},\n  \"rates\": [\n{legacy}  ],\n  \
         \"policies\": [\n{body}  ]\n}}\n",
        scale.n_workers
    );
    let path = out_dir().join("serve_latency.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, json).expect("write serve_latency.json");
    println!("wrote {}", path.display());
}

//! `tamp-cli` — run the TAMP simulator from the command line.
//!
//! ```text
//! tamp-cli generate  --kind porto|gowalla --scale tiny|small|paper --seed N --out workload.json
//! tamp-cli simulate  [--workload file.json | --kind ... --scale ... --seed N]
//!                    --algo ppi|km|ggpso|ub|lb [--loss task|mse] [--detour KM]
//!                    [--tasks N] [--json]
//! tamp-cli predict   [--workload file.json | --kind ... --scale ... --seed N]
//!                    --algo gttaml|gttaml-gt|ctml|maml [--loss task|mse] [--json]
//! ```
//!
//! `simulate` runs the full offline + online pipeline and prints the
//! paper's four assignment metrics; `predict` stops after the offline
//! stage and prints RMSE/MAE/MR/TT.

mod args;

use args::Args;
use std::path::Path;
use std::process::ExitCode;
use tamp_platform::{
    run_assignment, train_predictors, AssignmentAlgo, EngineConfig, LossKind, PredictionAlgo,
    TrainingConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

const HELP: &str = "\
tamp-cli — mobility prediction-aware spatial crowdsourcing simulator

USAGE:
  tamp-cli generate --out FILE [--kind porto|gowalla] [--scale tiny|small|paper]
                    [--seed N] [--detour KM] [--tasks N]
  tamp-cli simulate [--workload FILE | generation options] --algo ppi|km|ggpso|ub|lb
                    [--loss task|mse] [--json]
  tamp-cli predict  [--workload FILE | generation options]
                    [--algo gttaml|gttaml-gt|ctml|maml] [--loss task|mse] [--json]
  tamp-cli help
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    // Surface obvious typos: every command shares one option vocabulary.
    const KNOWN: [&str; 10] = [
        "out", "workload", "kind", "scale", "seed", "algo", "loss", "detour", "tasks", "json",
    ];
    for name in args.option_names() {
        if !KNOWN.contains(&name) {
            eprintln!("warning: unknown option --{name} (ignored)");
        }
    }
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("predict") => cmd_predict(&args),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "paper" => Ok(Scale::paper_workload1()),
        other => Err(format!("unknown scale: {other}")),
    }
}

fn parse_kind(s: &str) -> Result<WorkloadKind, String> {
    match s {
        "porto" | "workload1" => Ok(WorkloadKind::PortoDidi),
        "gowalla" | "workload2" => Ok(WorkloadKind::GowallaFoursquare),
        other => Err(format!("unknown workload kind: {other}")),
    }
}

fn parse_loss(s: &str) -> Result<LossKind, String> {
    match s {
        "task" | "task-oriented" => Ok(LossKind::TaskOriented),
        "mse" => Ok(LossKind::Mse),
        other => Err(format!("unknown loss: {other}")),
    }
}

fn build_or_load(args: &Args) -> Result<Workload, String> {
    if let Some(path) = args.get("workload") {
        return Workload::load_json(Path::new(path)).map_err(|e| format!("load {path}: {e}"));
    }
    let kind = parse_kind(args.get_or("kind", "porto"))?;
    let scale = parse_scale(args.get_or("scale", "small"))?;
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let mut cfg = WorkloadConfig::new(kind, scale, seed);
    if let Some(d) = args.get_parsed::<f64>("detour")? {
        cfg.detour_limit_km = d;
    }
    if let Some(n) = args.get_parsed::<usize>("tasks")? {
        cfg.scale.n_tasks = n;
    }
    Ok(cfg.build())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("generate needs --out FILE")?;
    let workload = build_or_load(args)?;
    workload
        .save_json(Path::new(out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} workers, {} tasks, horizon {:.0} min",
        workload.workers.len(),
        workload.tasks.len(),
        workload.horizon.as_f64()
    );
    Ok(())
}

fn training_config(args: &Args) -> Result<TrainingConfig, String> {
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(42);
    let mut cfg = TrainingConfig {
        seed,
        ..TrainingConfig::default()
    };
    cfg.loss = parse_loss(args.get_or("loss", "task"))?;
    Ok(cfg)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let workload = build_or_load(args)?;
    let algo = match args.get_or("algo", "ppi") {
        "ppi" => AssignmentAlgo::Ppi,
        "km" => AssignmentAlgo::Km,
        "ggpso" => AssignmentAlgo::Ggpso,
        "ub" => AssignmentAlgo::Ub,
        "lb" => AssignmentAlgo::Lb,
        other => return Err(format!("unknown assignment algorithm: {other}")),
    };
    let needs_predictors = !matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb);
    let predictors = if needs_predictors {
        let tcfg = training_config(args)?;
        eprintln!(
            "training predictors ({:?}, {:?} loss)...",
            tcfg.algo, tcfg.loss
        );
        Some(train_predictors(&workload, &tcfg))
    } else {
        None
    };
    let engine = EngineConfig {
        seed: args.get_parsed::<u64>("seed")?.unwrap_or(42),
        ..EngineConfig::default()
    };
    let m = run_assignment(&workload, predictors.as_ref(), algo, &engine);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{algo:?}"),
                "tasks_total": m.tasks_total,
                "completed": m.completed,
                "rejected": m.rejected,
                "completion_ratio": m.completion_ratio(),
                "rejection_ratio": m.rejection_ratio(),
                "avg_worker_cost_km": m.avg_worker_cost_km(),
                "algo_seconds": m.algo_seconds,
            })
        );
    } else {
        println!("algorithm        : {algo:?}");
        println!("tasks            : {}", m.tasks_total);
        println!(
            "completed        : {} ({:.3})",
            m.completed,
            m.completion_ratio()
        );
        println!(
            "rejected         : {} ({:.3})",
            m.rejected,
            m.rejection_ratio()
        );
        println!("avg worker cost  : {:.2} km", m.avg_worker_cost_km());
        println!("algorithm runtime: {:.3} s", m.algo_seconds);
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let workload = build_or_load(args)?;
    let mut tcfg = training_config(args)?;
    tcfg.algo = match args.get_or("algo", "gttaml") {
        "gttaml" => PredictionAlgo::Gttaml,
        "gttaml-gt" => PredictionAlgo::GttamlGt,
        "ctml" => PredictionAlgo::Ctml,
        "maml" => PredictionAlgo::Maml,
        other => return Err(format!("unknown prediction algorithm: {other}")),
    };
    let p = train_predictors(&workload, &tcfg);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": format!("{:?}", tcfg.algo),
                "rmse_cells": p.overall.rmse_cells,
                "mae_cells": p.overall.mae_cells,
                "matching_rate": p.overall.mr,
                "train_seconds": p.train_seconds,
                "clusters": p.n_clusters,
            })
        );
    } else {
        println!("algorithm     : {:?}", tcfg.algo);
        println!("RMSE          : {:.4} cells", p.overall.rmse_cells);
        println!("MAE           : {:.4} cells", p.overall.mae_cells);
        println!("matching rate : {:.4}", p.overall.mr);
        println!("training time : {:.1} s", p.train_seconds);
        println!("leaf clusters : {}", p.n_clusters);
    }
    Ok(())
}

//! City operations dashboard: every assignment algorithm on one day.
//!
//! Runs the paper's full Fig. 6-style roster — UB, LB, PPI, PPI-loss,
//! KM, KM-loss, GGPSO — on a single synthetic day and prints the
//! head-to-head table an operator would look at when choosing an
//! algorithm. This is effectively one sweep point of `exp_fig6`.
//!
//! ```sh
//! cargo run --release --example city_ops
//! ```

use tamp::platform::engine::run_all_algorithms;
use tamp::platform::{train_predictors, EngineConfig, LossKind, TrainingConfig};
use tamp::sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let scale = Scale::tiny();
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, 2024).build();
    println!(
        "day: {} workers / {} tasks / detour limit {} km\n",
        workload.workers.len(),
        workload.tasks.len(),
        workload.workers[0].worker.detour_limit_km
    );

    // Two predictor sets: the paper's weighted loss and plain MSE (the
    // `-loss` variants).
    let base = TrainingConfig {
        seed: 2024,
        ..TrainingConfig::default()
    };
    let with_loss = train_predictors(
        &workload,
        &TrainingConfig {
            loss: LossKind::TaskOriented,
            ..base.clone()
        },
    );
    let with_mse = train_predictors(
        &workload,
        &TrainingConfig {
            loss: LossKind::Mse,
            ..base
        },
    );
    println!(
        "predictors: weighted-loss MR {:.3} vs MSE MR {:.3} ({} clusters)\n",
        with_loss.overall.mr, with_mse.overall.mr, with_loss.n_clusters
    );

    let rows = run_all_algorithms(&workload, &with_loss, &with_mse, &EngineConfig::default());
    println!(
        "{:<9} {:>11} {:>10} {:>10} {:>11}",
        "algorithm", "completion", "rejection", "cost(km)", "runtime(s)"
    );
    for (name, m) in &rows {
        println!(
            "{:<9} {:>11.3} {:>10.3} {:>10.2} {:>11.3}",
            name,
            m.completion_ratio(),
            m.rejection_ratio(),
            m.avg_worker_cost_km(),
            m.algo_seconds
        );
    }
    println!(
        "\nExpected shape: UB on top with zero rejections, PPI beating KM on\nrejection and completion, GGPSO slowest by far. (LB places higher here\nthan in the paper — see EXPERIMENTS.md, Divergences.)"
    );
}

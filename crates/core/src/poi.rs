//! Points of interest.
//!
//! Section III-B models the *spatial feature* of a learning task as the
//! POI sequence `V = {v₁, …, vₙ}` with `vᵢ = ⟨xᵢ, yᵢ, aᵢ⟩` (latitude,
//! longitude, category). The kernel similarity `Sim_s` (Eq. 1) compares
//! two workers' POI sequences.

use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// Category of a point of interest.
///
/// A small closed set is enough for the synthetic city; the similarity
/// kernel only needs equality tests and a stable index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiCategory {
    /// Homes and apartment blocks.
    Residential,
    /// Offices and co-working.
    Office,
    /// Shops and malls.
    Retail,
    /// Restaurants, cafés, bars.
    Food,
    /// Parks, gyms, venues.
    Leisure,
    /// Stations, stops, depots.
    Transport,
}

impl PoiCategory {
    /// Every category, in stable order.
    pub const ALL: [PoiCategory; 6] = [
        PoiCategory::Residential,
        PoiCategory::Office,
        PoiCategory::Retail,
        PoiCategory::Food,
        PoiCategory::Leisure,
        PoiCategory::Transport,
    ];

    /// Stable index of this category within [`PoiCategory::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("category is in ALL")
    }
}

/// A point of interest `v = ⟨x, y, a⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Location in kilometres.
    pub loc: Point,
    /// Category `a`.
    pub category: PoiCategory,
}

impl Poi {
    /// Convenience constructor.
    pub const fn new(loc: Point, category: PoiCategory) -> Self {
        Self { loc, category }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_indexes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in PoiCategory::ALL {
            assert!(seen.insert(c.index()));
            assert_eq!(PoiCategory::ALL[c.index()], c);
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn poi_holds_location() {
        let p = Poi::new(Point::new(1.0, 2.0), PoiCategory::Food);
        assert_eq!(p.loc.y, 2.0);
        assert_eq!(p.category, PoiCategory::Food);
    }
}

//! Macro-bench: one FOMAML outer iteration and one TAML node at
//! paper-scale shapes (hidden 16, seq 5→1, default batch sizes) — the
//! units the offline training stage repeats thousands of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tamp_core::rng::rng_for;
use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
use tamp_meta::meta_training::{meta_train, MetaConfig};
use tamp_meta::taml::{taml_train, TamlConfig};
use tamp_meta::{LearningTask, LearningTaskTree};
use tamp_nn::{MseLoss, Seq2Seq, Seq2SeqConfig};

fn line_task(id: u64, speed: f64) -> LearningTask {
    let days: Vec<Routine> = (0..3)
        .map(|d| {
            Routine::from_sampled(
                (0..24).map(|i| Point::new((i as f64 * speed) % 18.0 + 1.0, 5.0)),
                Minutes::new(d as f64 * 1440.0),
                Minutes::new(10.0),
            )
        })
        .collect();
    let mut rng = rng_for(id, 0);
    LearningTask::from_history(
        WorkerId(id),
        &days,
        vec![],
        &Grid::PAPER,
        5,
        1,
        0.7,
        false,
        &mut rng,
    )
}

fn bench(c: &mut Criterion) {
    let mut rng = rng_for(1, 0);
    let template = Seq2Seq::new(Seq2SeqConfig::lstm(16), &mut rng);
    let tasks: Vec<LearningTask> = (0..8)
        .map(|i| line_task(i, 0.3 + 0.05 * i as f64))
        .collect();
    let refs: Vec<&LearningTask> = tasks.iter().collect();

    let mut group = c.benchmark_group("meta");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5));

    let one_iter = MetaConfig {
        iterations: 1,
        ..MetaConfig::default()
    };
    // threads 0 resolves to all cores; 1 is the serial baseline the
    // parallel path must reproduce byte-for-byte.
    for &threads in &[1usize, 0] {
        let cfg = MetaConfig {
            threads,
            ..one_iter
        };
        group.bench_with_input(
            BenchmarkId::new("fomaml_outer_iter", format!("threads{threads}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut theta = template.params();
                    let mut rng = rng_for(9, 1);
                    black_box(meta_train(
                        &mut theta, &refs, &template, &MseLoss, cfg, &mut rng,
                    ))
                })
            },
        );
    }

    // One TAML node: a single-root tree degenerates to one Meta-Training
    // call — the per-node unit of the Algorithm 2 recursion.
    group.bench_function("taml_node", |b| {
        b.iter(|| {
            let mut tree =
                LearningTaskTree::with_root((0..tasks.len()).collect(), template.params());
            let tcfg = TamlConfig {
                meta: one_iter,
                ..TamlConfig::default()
            };
            let mut rng = rng_for(9, 2);
            black_box(taml_train(
                &mut tree, &tasks, &template, &MseLoss, &tcfg, &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

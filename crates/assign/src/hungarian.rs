//! Maximum-weight bipartite matching — the "KM algorithm" of the paper
//! (Kuhn \[35\], Munkres \[36\]).
//!
//! Implemented as the O(n³) shortest-augmenting-path Hungarian method on
//! the min-cost formulation with dual potentials. The public entry point
//! [`max_weight_matching`] accepts a sparse edge list over a rectangular
//! bipartite graph and returns a matching that
//!
//! 1. has maximum cardinality over the *allowed* edges, and
//! 2. among those, maximum total weight,
//!
//! which is exactly the behaviour the paper's assignment stages need
//! (assign as many tasks as possible, preferring small detours via
//! `1/minB`-style weights).

/// A weighted edge `left → right` of the bipartite graph. Higher weight is
/// preferred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// Index on the left side (tasks, in the paper's usage).
    pub left: usize,
    /// Index on the right side (workers).
    pub right: usize,
    /// Preference weight; must be finite.
    pub weight: f64,
}

impl WeightedEdge {
    /// Convenience constructor.
    pub fn new(left: usize, right: usize, weight: f64) -> Self {
        Self {
            left,
            right,
            weight,
        }
    }
}

/// Sentinel cost for a forbidden pairing. Any finite edge weight used by
/// callers must be ≪ than this; `debug_assert`ed in the solver.
pub(crate) const FORBIDDEN: f64 = 1.0e9;

/// Scratch buffers for [`solve_min_cost`], reused across rows and across
/// per-component solves so the inner loop never allocates.
#[derive(Debug, Default)]
pub(crate) struct KmWorkspace {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
}

impl KmWorkspace {
    /// Resizes and zeroes every buffer for an `n × m` solve.
    fn reset(&mut self, n: usize, m: usize) {
        self.u.clear();
        self.u.resize(n + 1, 0.0);
        self.v.clear();
        self.v.resize(m + 1, 0.0);
        self.p.clear();
        self.p.resize(m + 1, 0);
        self.way.clear();
        self.way.resize(m + 1, 0);
        // `minv`/`used` are re-initialised per row inside the solve; only
        // capacity matters here.
        self.minv.resize(m + 1, f64::INFINITY);
        self.used.resize(m + 1, false);
    }
}

/// Solves the min-cost perfect assignment on an `n × m` cost matrix with
/// `n ≤ m` using the potentials/shortest-augmenting-path Hungarian method.
/// Returns `row_of_col[j]` (`usize::MAX` for unmatched columns).
///
/// `ws` supplies the scratch buffers; per-row `minv`/`used` are reset with
/// a `fill` instead of a fresh allocation each augmentation round.
fn solve_min_cost(n: usize, m: usize, cost: &[f64], ws: &mut KmWorkspace) -> Vec<usize> {
    debug_assert!(n <= m);
    // 1-indexed arrays, following the classic formulation.
    let inf = f64::INFINITY;
    ws.reset(n, m);
    let KmWorkspace {
        u,
        v,
        p,
        way,
        minv,
        used,
    } = ws;

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        minv[..=m].fill(inf);
        used[..=m].fill(false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[(i0 - 1) * m + (j - 1)] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_of_col = vec![usize::MAX; m];
    for j in 1..=m {
        if p[j] != 0 {
            row_of_col[j - 1] = p[j] - 1;
        }
    }
    row_of_col
}

/// Maximum-cardinality, maximum-weight matching over a sparse edge list.
///
/// `n_left` and `n_right` bound the vertex indices; absent edges are
/// forbidden. Returns `(left, right)` pairs of the matching, sorted by
/// `(left, right)`.
///
/// The graph is first split into connected components (a task in one city
/// district shares no candidate workers with a task in another), and each
/// component is solved as its own dense Hungarian instance — many small
/// `n² m` solves instead of one big one. Scratch buffers are shared
/// across components so the inner loop never allocates.
///
/// # Examples
///
/// ```
/// use tamp_assign::hungarian::{max_weight_matching, WeightedEdge};
///
/// // Two tasks, two workers; the anti-diagonal pairing is heavier.
/// let edges = [
///     WeightedEdge::new(0, 0, 1.0),
///     WeightedEdge::new(0, 1, 5.0),
///     WeightedEdge::new(1, 0, 5.0),
///     WeightedEdge::new(1, 1, 1.0),
/// ];
/// let m = max_weight_matching(2, 2, &edges);
/// assert_eq!(m, vec![(0, 1), (1, 0)]);
/// ```
///
/// # Panics
///
/// Panics if an edge index is out of range or a weight is not finite.
pub fn max_weight_matching(
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
) -> Vec<(usize, usize)> {
    let mut solver = crate::solver::ExactKmSolver::default();
    crate::solver::solve_matching(&mut solver, n_left, n_right, edges)
}

/// Solves one connected component as a dense Hungarian instance, pushing
/// the matched `(left, right)` pairs (original vertex ids) into `out`.
///
/// Returns `(dense_matrix_bytes, augmented_rows)` so the solver layer can
/// account for the peak dense allocation and the augmentation work.
pub(crate) fn solve_component(
    edges: &[&WeightedEdge],
    ws: &mut KmWorkspace,
    out: &mut Vec<(usize, usize)>,
) -> (usize, u64) {
    let mut lefts: Vec<usize> = edges.iter().map(|e| e.left).collect();
    lefts.sort_unstable();
    lefts.dedup();
    let mut rights: Vec<usize> = edges.iter().map(|e| e.right).collect();
    rights.sort_unstable();
    rights.dedup();
    let (ln, rn) = (lefts.len(), rights.len());
    let lpos = |v: usize| lefts.binary_search(&v).expect("left id present");
    let rpos = |v: usize| rights.binary_search(&v).expect("right id present");

    // Orient so rows ≤ cols.
    let transpose = ln > rn;
    let (n, m) = if transpose { (rn, ln) } else { (ln, rn) };

    // Min-cost formulation: cost = −weight, forbidden pairs cost FORBIDDEN.
    // Because FORBIDDEN dwarfs any weight, the solver first minimises the
    // number of forbidden pairs used (maximising real cardinality), then
    // maximises total weight.
    let mut cost = vec![FORBIDDEN; n * m];
    for e in edges {
        let (r, c) = if transpose {
            (rpos(e.right), lpos(e.left))
        } else {
            (lpos(e.left), rpos(e.right))
        };
        let cell = &mut cost[r * m + c];
        // Parallel edges: keep the best (max weight = min cost).
        *cell = cell.min(-e.weight);
    }

    let row_of_col = solve_min_cost(n, m, &cost, ws);
    for (c, &r) in row_of_col.iter().enumerate() {
        if r == usize::MAX {
            continue;
        }
        if cost[r * m + c] >= FORBIDDEN / 2.0 {
            continue; // matched through a forbidden cell — drop it
        }
        let (l, rr) = if transpose {
            (lefts[c], rights[r])
        } else {
            (lefts[r], rights[c])
        };
        out.push((l, rr));
    }
    (n * m * std::mem::size_of::<f64>(), n as u64)
}

/// Total weight of a matching under an edge list (useful for tests and
/// diagnostics). Pairs without a corresponding edge contribute the best
/// available parallel edge; panics if a pair has no edge at all.
///
/// The best-parallel-edge map is built once in O(E); the per-pair lookup
/// is O(1), so diagnostics that call this per repeat stay linear even at
/// `diag_scale` edge counts.
pub fn matching_weight(edges: &[WeightedEdge], matching: &[(usize, usize)]) -> f64 {
    let mut best: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::with_capacity(edges.len());
    for e in edges {
        best.entry((e.left, e.right))
            .and_modify(|w| *w = w.max(e.weight))
            .or_insert(e.weight);
    }
    matching
        .iter()
        .map(|pair| {
            let w = best.get(pair).copied().unwrap_or(f64::NEG_INFINITY);
            assert!(w.is_finite(), "matched pair without an edge");
            w
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(matching: &[(usize, usize)]) {
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for &(l, r) in matching {
            assert!(lefts.insert(l), "left {l} matched twice");
            assert!(rights.insert(r), "right {r} matched twice");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(max_weight_matching(0, 5, &[]).is_empty());
        assert!(max_weight_matching(5, 0, &[]).is_empty());
        assert!(max_weight_matching(3, 3, &[]).is_empty());
    }

    #[test]
    fn single_edge() {
        let m = max_weight_matching(2, 2, &[WeightedEdge::new(1, 0, 3.0)]);
        assert_eq!(m, vec![(1, 0)]);
    }

    #[test]
    fn picks_heavier_perfect_matching() {
        // 2×2 complete: diag = 1+1, anti-diag = 5+5.
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(1, 1, 1.0),
            WeightedEdge::new(0, 1, 5.0),
            WeightedEdge::new(1, 0, 5.0),
        ];
        let m = max_weight_matching(2, 2, &edges);
        assert_valid(&m);
        assert_eq!(m.len(), 2);
        assert_eq!(matching_weight(&edges, &m), 10.0);
    }

    #[test]
    fn prefers_cardinality_over_weight() {
        // A greedy weight-first match (0–0 at 100) blocks the second pair;
        // the solver must pick the two-pair matching even though its total
        // weight per-edge is smaller... but here total 100 < 2? No:
        // cardinality dominates because unmatched = forbidden cost. The
        // only way to match both lefts is (0,1) and (1,0).
        let edges = [
            WeightedEdge::new(0, 0, 100.0),
            WeightedEdge::new(0, 1, 1.0),
            WeightedEdge::new(1, 0, 1.0),
        ];
        let m = max_weight_matching(2, 2, &edges);
        assert_valid(&m);
        assert_eq!(m.len(), 2, "both lefts must be matched: {m:?}");
        assert_eq!(matching_weight(&edges, &m), 2.0);
    }

    #[test]
    fn rectangular_more_workers() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(0, 1, 2.0),
            WeightedEdge::new(0, 2, 3.0),
        ];
        let m = max_weight_matching(1, 3, &edges);
        assert_eq!(m, vec![(0, 2)]);
    }

    #[test]
    fn rectangular_more_tasks() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(1, 0, 2.0),
            WeightedEdge::new(2, 0, 3.0),
        ];
        let m = max_weight_matching(3, 1, &edges);
        assert_eq!(m, vec![(2, 0)]);
    }

    #[test]
    fn forbidden_edges_never_matched() {
        // Only (0,0) and (1,1) exist; the solver cannot invent (0,1).
        let edges = [WeightedEdge::new(0, 0, 1.0), WeightedEdge::new(1, 1, 1.0)];
        let m = max_weight_matching(2, 2, &edges);
        assert_valid(&m);
        let set: std::collections::HashSet<_> = m.into_iter().collect();
        assert!(set.contains(&(0, 0)));
        assert!(set.contains(&(1, 1)));
        assert!(!set.contains(&(0, 1)));
        assert!(!set.contains(&(1, 0)));
    }

    #[test]
    fn parallel_edges_keep_best() {
        let edges = [WeightedEdge::new(0, 0, 1.0), WeightedEdge::new(0, 0, 7.0)];
        let m = max_weight_matching(1, 1, &edges);
        assert_eq!(m, vec![(0, 0)]);
        assert_eq!(matching_weight(&edges, &m), 7.0);
    }

    #[test]
    fn sparse_indices_far_apart() {
        // Vertex ids near the bounds; the dense matrix must stay small.
        let edges = [
            WeightedEdge::new(999, 0, 2.0),
            WeightedEdge::new(0, 999, 3.0),
        ];
        let m = max_weight_matching(1000, 1000, &edges);
        assert_valid(&m);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn disjoint_components_solved_independently() {
        // Three disjoint blocks with interleaved, non-contiguous vertex
        // ids — the component split must keep them apart and still return
        // the globally optimal (= per-block optimal) matching.
        let edges = [
            // Block A: lefts {0, 6}, rights {2, 8} — anti-diag heavier.
            WeightedEdge::new(0, 2, 1.0),
            WeightedEdge::new(0, 8, 5.0),
            WeightedEdge::new(6, 2, 5.0),
            WeightedEdge::new(6, 8, 1.0),
            // Block B: left {3}, rights {0, 5} — prefers right 5.
            WeightedEdge::new(3, 0, 2.0),
            WeightedEdge::new(3, 5, 4.0),
            // Block C: lefts {1, 9}, right {4} — heavier left wins.
            WeightedEdge::new(1, 4, 1.5),
            WeightedEdge::new(9, 4, 2.5),
        ];
        let m = max_weight_matching(10, 10, &edges);
        assert_valid(&m);
        assert_eq!(m, vec![(0, 8), (3, 5), (6, 2), (9, 4)]);
        assert_eq!(matching_weight(&edges, &m), 5.0 + 5.0 + 4.0 + 2.5);
    }

    #[test]
    fn multi_component_matches_brute_force() {
        // Randomised graphs built from several small blocks over disjoint
        // vertex ranges, cross-checked against exhaustive enumeration.
        use rand::Rng;
        let mut rng = tamp_core::rng::rng_for(98, 0);
        for trial in 0..100 {
            let blocks = rng.gen_range(2..=4usize);
            let mut edges = Vec::new();
            for b in 0..blocks {
                // Each block lives on its own id range (stride 5) so the
                // blocks are guaranteed disjoint components.
                let (lo_l, lo_r) = (b * 5, b * 5);
                let n = rng.gen_range(1..=2usize);
                let m = rng.gen_range(1..=2usize);
                for l in 0..n {
                    for r in 0..m {
                        if rng.gen_bool(0.8) {
                            edges.push(WeightedEdge::new(
                                lo_l + l,
                                lo_r + r,
                                rng.gen_range(0.1..10.0),
                            ));
                        }
                    }
                }
            }
            if edges.len() > 12 {
                edges.truncate(12); // keep 2^E brute force cheap
            }
            let (n_left, n_right) = (blocks * 5, blocks * 5);
            let got = max_weight_matching(n_left, n_right, &edges);
            assert_valid(&got);
            let got_w = if got.is_empty() {
                0.0
            } else {
                matching_weight(&edges, &got)
            };

            // Brute force over edge subsets.
            let mut best = (0usize, 0.0f64);
            for mask in 0u32..(1 << edges.len()) {
                let mut used_l = std::collections::HashSet::new();
                let mut used_r = std::collections::HashSet::new();
                let mut ok = true;
                let mut w = 0.0;
                let mut c = 0usize;
                for (i, e) in edges.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        if !used_l.insert(e.left) || !used_r.insert(e.right) {
                            ok = false;
                            break;
                        }
                        w += e.weight;
                        c += 1;
                    }
                }
                if ok && (c > best.0 || (c == best.0 && w > best.1)) {
                    best = (c, w);
                }
            }
            assert_eq!(got.len(), best.0, "trial {trial}: cardinality mismatch");
            assert!(
                (got_w - best.1).abs() < 1e-6,
                "trial {trial}: weight {got_w} vs brute {}",
                best.1
            );
        }
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use rand::Rng;
        let mut rng = tamp_core::rng::rng_for(99, 0);
        for trial in 0..200 {
            let n = rng.gen_range(1..=4usize);
            let m = rng.gen_range(1..=4usize);
            let mut edges = Vec::new();
            for l in 0..n {
                for r in 0..m {
                    if rng.gen_bool(0.7) {
                        edges.push(WeightedEdge::new(l, r, rng.gen_range(0.1..10.0)));
                    }
                }
            }
            let got = max_weight_matching(n, m, &edges);
            let got_card = got.len();
            let got_w = if got.is_empty() {
                0.0
            } else {
                matching_weight(&edges, &got)
            };

            // Brute force: enumerate all matchings by recursion.
            fn best(
                edges: &[WeightedEdge],
                idx: usize,
                used_l: &mut Vec<bool>,
                used_r: &mut Vec<bool>,
            ) -> (usize, f64) {
                if idx == edges.len() {
                    return (0, 0.0);
                }
                // Skip edge idx.
                let mut acc = best(edges, idx + 1, used_l, used_r);
                let e = edges[idx];
                if !used_l[e.left] && !used_r[e.right] {
                    used_l[e.left] = true;
                    used_r[e.right] = true;
                    let (c, w) = best(edges, idx + 1, used_l, used_r);
                    used_l[e.left] = false;
                    used_r[e.right] = false;
                    let cand = (c + 1, w + e.weight);
                    // Cardinality first, then weight.
                    if cand.0 > acc.0 || (cand.0 == acc.0 && cand.1 > acc.1) {
                        acc = cand;
                    }
                }
                acc
            }
            let (bc, bw) = best(&edges, 0, &mut vec![false; n], &mut vec![false; m]);
            assert_eq!(got_card, bc, "trial {trial}: cardinality mismatch");
            assert!(
                (got_w - bw).abs() < 1e-6,
                "trial {trial}: weight {got_w} vs brute {bw}"
            );
        }
    }
}

//! Behavioural guarantees of the serve layer:
//!
//! * a serve run over a replayed workload is **byte-identical** to the
//!   one-shot `run_assignment` on the same workload (with and without
//!   the prediction cache, with and without fault injection);
//! * multi-shard hosts keep shards independent, and thread-pool
//!   stepping changes nothing;
//! * a full queue hits the overload policy explicitly and the
//!   accounting always closes: `offered == submitted + shed +
//!   degraded`, and every submitted task ends in exactly one of
//!   completed / expired / pending / queued;
//! * a shard restored from its snapshot — including the `shard_crash`
//!   fault's kill/restore cycles — continues byte-identically to an
//!   uninterrupted run;
//! * a predictor hot-swap evicts only changed workers' cache entries;
//! * graceful shutdown drains what was admitted and loses nothing
//!   silently.

use tamp_meta::meta_training::MetaConfig;
use tamp_obs::Obs;
use tamp_platform::engine::run_assignment_with_faults_traced;
use tamp_platform::{
    run_assignment_traced, train_predictors, AssignmentAlgo, BatchRecord, EngineConfig,
    FaultConfig, LossKind, PredictionAlgo, TrainedPredictors, TrainingConfig,
};
use tamp_serve::{
    HostConfig, OverloadPolicy, Pacing, ServeHost, Shard, ShardConfig, ShardReport, ShardSnapshot,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_predictors(w: &Workload, seed: u64) -> TrainedPredictors {
    train_predictors(
        w,
        &TrainingConfig {
            algo: PredictionAlgo::Maml,
            loss: LossKind::Mse,
            hidden: 6,
            seq_in: 3,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            adapt_steps: 2,
            seed,
            ..TrainingConfig::default()
        },
    )
}

fn engine(cache: bool) -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        prediction_cache: cache,
        ..EngineConfig::default()
    }
}

fn shard_cfg(cache: bool, queue_capacity: usize) -> ShardConfig {
    ShardConfig {
        algo: AssignmentAlgo::Ppi,
        engine: engine(cache),
        faults: None,
        queue_capacity,
        overload: OverloadPolicy::Shed,
        perturb_step_sleep_ms: 0.0,
    }
}

fn mixed_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        report_loss: 0.2,
        report_delay: 0.15,
        max_delay_min: 12.0,
        gps_noise_km: 0.05,
        corrupt_coord: 0.05,
        offline_worker: 0.2,
        offline_window_min: 40.0,
        prediction_failure: 0.2,
        prediction_garbage: 0.05,
        adapt_poison: 0.0,
        shard_crash: 0.0,
        seed,
    }
}

fn run_single_shard(w: &Workload, p: &TrainedPredictors, cfg: ShardConfig) -> ShardReport {
    let shard = Shard::new("s0", w.clone(), Some(p.clone()), cfg).unwrap();
    let host = ServeHost::new(vec![shard], HostConfig::default());
    let report = host.run(&Obs::null());
    report.shards.into_iter().next().unwrap()
}

/// Assignment-visible per-batch equality (timings and cache counters
/// legitimately differ between runs).
fn assert_same_trace(a: &[BatchRecord], b: &[BatchRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: batch count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.t_min.to_bits(), rb.t_min.to_bits(), "{what}[{i}]: t_min");
        assert_eq!(ra.pending, rb.pending, "{what}[{i}]: pending");
        assert_eq!(
            ra.idle_workers, rb.idle_workers,
            "{what}[{i}]: idle_workers"
        );
        assert_eq!(ra.proposed, rb.proposed, "{what}[{i}]: proposed");
        assert_eq!(ra.accepted, rb.accepted, "{what}[{i}]: accepted");
        assert_eq!(ra.rejected, rb.rejected, "{what}[{i}]: rejected");
        assert_eq!(ra.expired, rb.expired, "{what}[{i}]: expired");
        assert_eq!(
            ra.invalid_pairs, rb.invalid_pairs,
            "{what}[{i}]: invalid_pairs"
        );
        assert_eq!(
            ra.fallback_views, rb.fallback_views,
            "{what}[{i}]: fallback_views"
        );
        assert_eq!(
            ra.dropped_reports, rb.dropped_reports,
            "{what}[{i}]: dropped_reports"
        );
    }
}

fn assert_task_accounting(r: &ShardReport, what: &str) {
    assert_eq!(
        r.counts.offered() + r.unfed,
        r.stream_total,
        "{what}: offered + unfed must cover the stream"
    );
    // Queued events at end are unsplit by kind; in every scenario the
    // tests construct, a stopped host has drained its queues, so the
    // task-side conservation closes without a queued term.
    assert_eq!(r.queued_at_end, 0, "{what}: queues must be drained");
    assert_eq!(
        r.counts.submitted_tasks,
        r.metrics.completed + r.metrics.tasks_expired + r.pending_at_end,
        "{what}: every submitted task is completed, expired, or pending"
    );
}

#[test]
fn serve_replay_is_byte_identical_to_one_shot() {
    for seed in [3, 11] {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        let mut one_shot_trace = Vec::new();
        let one_shot = run_assignment_traced(
            &w,
            Some(&p),
            AssignmentAlgo::Ppi,
            &engine(false),
            &mut one_shot_trace,
        );
        // Cache ON in serve vs OFF in one-shot: equality proves both the
        // serve protocol and the cache at once.
        let report = run_single_shard(&w, &p, shard_cfg(true, 1 << 16));
        let what = format!("seed {seed}");
        assert_eq!(report.metrics.completed, one_shot.completed, "{what}");
        assert_eq!(report.metrics.rejected, one_shot.rejected, "{what}");
        assert_eq!(
            report.metrics.assigned_total, one_shot.assigned_total,
            "{what}"
        );
        assert_eq!(
            report.metrics.total_detour_km.to_bits(),
            one_shot.total_detour_km.to_bits(),
            "{what}: detour bits"
        );
        assert_same_trace(&report.trace, &one_shot_trace, &what);
        assert_eq!(report.counts.shed(), 0, "{what}: ample queue must not shed");
        assert!(report.cache.hits > 0, "{what}: serving must reuse rollouts");
        assert_task_accounting(&report, &what);
    }
}

#[test]
fn cached_and_cold_serve_runs_are_byte_identical() {
    let seed = 17;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let warm = run_single_shard(&w, &p, shard_cfg(true, 1 << 16));
    let cold = run_single_shard(&w, &p, shard_cfg(false, 1 << 16));
    assert_same_trace(&warm.trace, &cold.trace, "warm vs cold");
    assert_eq!(warm.metrics.completed, cold.metrics.completed);
    assert_eq!(
        warm.metrics.total_detour_km.to_bits(),
        cold.metrics.total_detour_km.to_bits()
    );
    assert!(warm.cache.hits > 0);
    assert_eq!(
        cold.cache.hits + cold.cache.misses,
        0,
        "cache off = untouched"
    );
}

#[test]
fn serve_under_fault_injection_matches_one_shot_faulted_run() {
    let seed = 5;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let faults = mixed_faults(seed ^ 0xBEEF);
    let mut one_shot_trace = Vec::new();
    let one_shot = run_assignment_with_faults_traced(
        &w,
        Some(&p),
        AssignmentAlgo::Ppi,
        &engine(false),
        &faults,
        &mut one_shot_trace,
    )
    .unwrap();
    let cfg = ShardConfig {
        faults: Some(faults),
        ..shard_cfg(true, 1 << 16)
    };
    let report = run_single_shard(&w, &p, cfg);
    assert_eq!(report.metrics.completed, one_shot.completed);
    assert_eq!(report.metrics.rejected, one_shot.rejected);
    assert_eq!(report.metrics.fallback_views, one_shot.fallback_views);
    assert_eq!(report.metrics.dropped_reports, one_shot.dropped_reports);
    assert_eq!(
        report.metrics.total_detour_km.to_bits(),
        one_shot.total_detour_km.to_bits()
    );
    assert_same_trace(&report.trace, &one_shot_trace, "faulted serve");
}

#[test]
fn multi_shard_host_keeps_shards_independent_and_parallel_stepping_is_identical() {
    let seeds = [3_u64, 4, 5];
    let mut shards = Vec::new();
    let mut singles = Vec::new();
    for &seed in &seeds {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        singles.push(run_single_shard(&w, &p, shard_cfg(true, 1 << 16)));
        shards.push(Shard::new(format!("s{seed}"), w, Some(p), shard_cfg(true, 1 << 16)).unwrap());
    }
    let host = ServeHost::new(
        shards,
        HostConfig {
            threads: 3,
            pacing: Pacing::FullSpeed,
            ..HostConfig::default()
        },
    );
    let report = host.run(&Obs::null());
    assert_eq!(report.shards.len(), seeds.len());
    for (joint, single) in report.shards.iter().zip(&singles) {
        assert_eq!(joint.metrics.completed, single.metrics.completed);
        assert_eq!(joint.metrics.rejected, single.metrics.rejected);
        assert_eq!(
            joint.metrics.total_detour_km.to_bits(),
            single.metrics.total_detour_km.to_bits()
        );
        assert_same_trace(&joint.trace, &single.trace, &joint.name);
        assert_task_accounting(joint, &joint.name);
    }
}

#[test]
fn full_queue_sheds_explicitly_and_accounting_still_closes() {
    let seed = 9;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    // Far below the first window's burst (all 8 workers' t=0 reports +
    // early tasks), so shedding must fire.
    let report = run_single_shard(&w, &p, shard_cfg(true, 4));
    assert!(report.counts.shed() > 0, "tiny queue must shed");
    assert_task_accounting(&report, "shedding run");
    // Shedding reports degrades inputs but must never corrupt engine
    // accounting.
    let m = &report.metrics;
    assert_eq!(m.completed + m.rejected + m.invalid_pairs, m.assigned_total);
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let seed = 13;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let shard = Shard::new("s0", w.clone(), Some(p.clone()), shard_cfg(true, 1 << 16)).unwrap();
    let mut host = ServeHost::new(vec![shard], HostConfig::default());
    let obs = Obs::null();
    // Mid-morning: feed+step 30 of the 120 windows, then stop accepting.
    let ticked = host.run_windows(30, &obs);
    assert_eq!(ticked, 30);
    let report = host.shutdown(&obs);
    let r = &report.shards[0];
    assert_eq!(r.queued_at_end, 0, "shutdown must drain the queue");
    assert_eq!(r.pending_at_end, 0, "shutdown must resolve admitted tasks");
    assert_eq!(
        r.counts.submitted_tasks,
        r.metrics.completed + r.metrics.tasks_expired,
        "every admitted task resolved by the drain"
    );
    assert!(r.unfed > 0, "stopping early leaves replay events unfed");
    assert_eq!(r.counts.offered() + r.unfed, r.stream_total);
}

/// Everything deterministic a shard run produces: engine metrics,
/// submission accounting, cache counters, and the per-batch trace.
fn assert_same_outcome(a: &ShardReport, b: &ShardReport, what: &str) {
    assert_eq!(a.windows, b.windows, "{what}: windows");
    assert_eq!(
        a.metrics.completed, b.metrics.completed,
        "{what}: completed"
    );
    assert_eq!(a.metrics.rejected, b.metrics.rejected, "{what}: rejected");
    assert_eq!(
        a.metrics.assigned_total, b.metrics.assigned_total,
        "{what}: assigned"
    );
    assert_eq!(
        a.metrics.tasks_expired, b.metrics.tasks_expired,
        "{what}: expired"
    );
    assert_eq!(
        a.metrics.total_detour_km.to_bits(),
        b.metrics.total_detour_km.to_bits(),
        "{what}: detour bits"
    );
    assert_eq!(a.counts, b.counts, "{what}: submission accounting");
    assert_eq!(a.cache, b.cache, "{what}: cache counters");
    assert_eq!(a.pending_at_end, b.pending_at_end, "{what}: pending");
    assert_same_trace(&a.trace, &b.trace, what);
}

#[test]
fn snapshot_restore_resumes_byte_identically_mid_run() {
    let seed = 21;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    // Backpressure + a tight queue keeps a non-empty retry buffer
    // alive at snapshot time, so the snapshot carries real serve-side
    // state, not just the engine.
    let cfg = ShardConfig {
        overload: OverloadPolicy::Backpressure { retry_limit: 5 },
        ..shard_cfg(true, 8)
    };
    let uninterrupted = run_single_shard(&w, &p, cfg.clone());

    let shard = Shard::new("s0", w.clone(), Some(p.clone()), cfg.clone()).unwrap();
    let mut host = ServeHost::new(vec![shard], HostConfig::default());
    let obs = Obs::null();
    host.run_windows(45, &obs);
    // Kill: serialize through JSON (the on-disk format), drop the host.
    let json = host.snapshot_shard(0).unwrap().to_json();
    drop(host);
    // Restore into a fresh shard over the same deployment and finish.
    let snap = ShardSnapshot::from_json(&json).unwrap();
    let restored = Shard::restore(w, Some(p), cfg, snap).unwrap();
    let report = ServeHost::new(vec![restored], HostConfig::default()).run(&obs);
    assert_same_outcome(
        &report.shards[0],
        &uninterrupted,
        "restored vs uninterrupted",
    );
}

#[test]
fn restore_rejects_incompatible_snapshots() {
    let seed = 21;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let cfg = shard_cfg(true, 1 << 16);
    let shard = Shard::new("s0", w.clone(), Some(p.clone()), cfg.clone()).unwrap();
    let mut snap = shard.snapshot();
    snap.version += 1;
    assert!(
        Shard::restore(w.clone(), Some(p.clone()), cfg.clone(), snap).is_err(),
        "future snapshot version must be refused"
    );
    let mut snap = shard.snapshot();
    snap.format = "something-else".into();
    assert!(
        Shard::restore(w.clone(), Some(p.clone()), cfg.clone(), snap).is_err(),
        "foreign format must be refused"
    );
    let mut snap = shard.snapshot();
    snap.logs.pop();
    assert!(
        Shard::restore(w, Some(p), cfg, snap).is_err(),
        "log/worker count mismatch must be refused"
    );
}

#[test]
fn shard_crash_fault_kill_restores_byte_identically() {
    // The acceptance drill: 3 seeds × 2 fault profiles, each compared
    // against the same run without crashes. `shard_crash` kills and
    // restores the shard through the JSON snapshot path mid-run, so any
    // state the snapshot misses would diverge the continuation.
    for seed in [3_u64, 11, 19] {
        let w = tiny_workload(seed);
        let p = quick_predictors(&w, seed);
        let profiles: [(&str, Option<FaultConfig>); 2] = [
            ("clean", None),
            ("mixed", Some(mixed_faults(seed ^ 0xBEEF))),
        ];
        for (pname, profile) in profiles {
            let base = ShardConfig {
                faults: profile,
                ..shard_cfg(true, 1 << 16)
            };
            let crashing = ShardConfig {
                faults: Some(FaultConfig {
                    shard_crash: 0.25,
                    ..profile.unwrap_or(FaultConfig {
                        seed: seed ^ 0x51AB,
                        ..FaultConfig::none()
                    })
                }),
                ..base.clone()
            };
            let steady = run_single_shard(&w, &p, base);
            let crashed = run_single_shard(&w, &p, crashing);
            let what = format!("seed {seed} profile {pname}");
            assert_eq!(steady.crashes, 0, "{what}: baseline never crashes");
            assert!(
                crashed.crashes > 0,
                "{what}: p=0.25 over 120 windows must crash"
            );
            assert_same_outcome(&crashed, &steady, &what);
        }
    }
}

#[test]
fn identical_predictor_hot_swap_is_a_no_op() {
    let seed = 23;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let cfg = shard_cfg(true, 1 << 16);
    let uninterrupted = run_single_shard(&w, &p, cfg.clone());

    let shard = Shard::new("s0", w, Some(p.clone()), cfg).unwrap();
    let mut host = ServeHost::new(vec![shard], HostConfig::default());
    let obs = Obs::null();
    host.run_windows(30, &obs);
    let outcome = host.swap_predictor(0, p).unwrap();
    assert_eq!(
        outcome.changed, 0,
        "identical models must not bump versions"
    );
    assert_eq!(outcome.evicted, 0);
    let report = host.run(&obs);
    assert_same_outcome(&report.shards[0], &uninterrupted, "no-op swap");
}

#[test]
fn predictor_hot_swap_evicts_only_changed_workers_and_keeps_the_cache_warm() {
    let seed = 23;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let shard = Shard::new("s0", w, Some(p.clone()), shard_cfg(true, 1 << 16)).unwrap();
    let mut host = ServeHost::new(vec![shard], HostConfig::default());
    let obs = Obs::null();
    host.run_windows(30, &obs);
    let before = host.shards()[0].cache_stats();
    assert!(before.hits > 0, "warm-up must populate the cache");

    // Re-adapt worker 0 only (a nudged parameter vector).
    let mut swapped = p.clone();
    let mut theta = swapped.models[0].params();
    theta[0] += 0.25;
    swapped.models[0].set_params(&theta);
    let outcome = host.swap_predictor(0, swapped).unwrap();
    assert_eq!(outcome.changed, 1, "exactly one worker's model changed");
    assert!(outcome.evicted <= 1, "at most that worker's entry evicted");
    let mid = host.shards()[0].cache_stats();
    assert_eq!(
        mid.invalidations,
        before.invalidations + outcome.evicted as u64,
        "swap invalidates nothing beyond the changed worker"
    );

    let report = host.run(&obs);
    let after = report.shards[0].cache;
    assert!(
        after.hits > mid.hits,
        "unchanged workers' rollouts must keep hitting after the swap \
         (a blanket invalidation would cold-start the shard)"
    );
}

#[test]
fn degrade_policy_trades_reports_for_tasks_and_forces_fallback_windows() {
    let seed = 9;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let cfg = ShardConfig {
        overload: OverloadPolicy::DegradeToFallback,
        ..shard_cfg(true, 4)
    };
    let degraded = run_single_shard(&w, &p, cfg);
    assert!(degraded.counts.degraded() > 0, "tiny queue must overflow");
    assert_eq!(
        degraded.counts.shed(),
        0,
        "degrade policy reclassifies every refusal"
    );
    assert!(
        degraded.metrics.fallback_views > 0,
        "overloaded windows must run on persistence views"
    );
    assert_task_accounting(&degraded, "degrade run");
    // Tasks outrank reports under pressure: with the same queue the
    // shed policy drops overflow tasks, degrade admits at least as many.
    let shed = run_single_shard(&w, &p, shard_cfg(true, 4));
    assert!(
        degraded.counts.submitted_tasks >= shed.counts.submitted_tasks,
        "evicting reports must never admit fewer tasks than shedding"
    );
}

#[test]
fn backpressure_policy_retries_with_bounded_attempts() {
    let seed = 9;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let cfg = ShardConfig {
        overload: OverloadPolicy::Backpressure { retry_limit: 3 },
        ..shard_cfg(true, 4)
    };
    let r = run_single_shard(&w, &p, cfg);
    assert!(r.counts.retried > 0, "tiny queue must force retries");
    assert!(
        r.counts.shed() > 0,
        "a persistently full queue must exhaust some events' attempts"
    );
    assert_eq!(r.counts.degraded(), 0, "backpressure never degrades");
    assert_task_accounting(&r, "backpressure run");
}

#[test]
fn serve_overload_and_crash_telemetry_reconcile() {
    let seed = 7;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let degrade = ShardConfig {
        overload: OverloadPolicy::DegradeToFallback,
        ..shard_cfg(true, 4)
    };
    let backpressure = ShardConfig {
        overload: OverloadPolicy::Backpressure { retry_limit: 2 },
        faults: Some(FaultConfig {
            shard_crash: 0.2,
            seed: seed ^ 0x51AB,
            ..FaultConfig::none()
        }),
        ..shard_cfg(true, 4)
    };
    let shards = vec![
        Shard::new("s0", w.clone(), Some(p.clone()), degrade).unwrap(),
        Shard::new("s1", w, Some(p), backpressure).unwrap(),
    ];
    let host = ServeHost::new(shards, HostConfig::default());
    let (obs, _mem) = Obs::in_memory();
    let report = host.run(&obs);
    let snap = obs.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let degraded: usize = report.shards.iter().map(|r| r.counts.degraded()).sum();
    let retried: usize = report.shards.iter().map(|r| r.counts.retried).sum();
    let crashes: u64 = report.shards.iter().map(|r| r.crashes).sum();
    assert_eq!(get("serve.overload.degraded"), degraded as u64);
    assert_eq!(get("serve.overload.retried"), retried as u64);
    assert_eq!(get("serve.crash.restore"), crashes);
    assert!(crashes > 0, "the crash drill shard must have crashed");
    assert!(degraded > 0 && retried > 0, "both policies must have fired");
}

#[test]
fn serve_telemetry_emits_cache_and_shed_counters() {
    let seed = 3;
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let shard = Shard::new("s0", w, Some(p), shard_cfg(true, 4)).unwrap();
    let host = ServeHost::new(vec![shard], HostConfig::default());
    let (obs, mem) = Obs::in_memory();
    let report = host.run(&obs);
    let snap = obs.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let r = &report.shards[0];
    assert_eq!(get("serve.cache.hit"), r.cache.hits);
    assert_eq!(get("serve.cache.miss"), r.cache.misses);
    assert_eq!(get("serve.cache.invalidate"), r.cache.invalidations);
    assert_eq!(get("serve.shed"), r.counts.shed() as u64);
    let events = mem.events();
    let serve_span = events
        .iter()
        .find(|e| e.name == "serve.batch" && e.span.is_some())
        .expect("serve.batch spans must be recorded");
    let engine_span = events
        .iter()
        .find(|e| e.name == "engine.batch" && e.span.is_some())
        .expect("engine spans must be recorded");
    assert_eq!(
        engine_span.span.unwrap().parent,
        Some(serve_span.span.unwrap().id),
        "the first engine.batch span must nest inside the first serve.batch span"
    );
}

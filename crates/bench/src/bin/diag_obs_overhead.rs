//! Measures the telemetry layer's overhead on the engine hot path —
//! the "disabled means free" contract of DESIGN.md § Observability.
//!
//! Four measurements:
//!
//! 1. **Per-op micro cost** of `span`/`count`/`gauge` on a disabled
//!    handle (`Obs::null()`) and on a [`NullRecorder`]-backed handle
//!    (clock reads + registry updates, but no I/O).
//! 2. **End-to-end engine delta**: the full batch loop
//!    (`run_assignment_observed`, PPI) timed with both handles,
//!    order-alternated repeats, paired-mean difference. Reported but
//!    not asserted — a ~60 ms run cannot resolve a sub-1% effect.
//! 3. **Op-count bound**: the run's actual telemetry ops priced at
//!    the per-op cost. Asserted against the < 2% acceptance bar.
//! 4. **Serve-path delta and bound**: the full sharded `ServeHost`
//!    with the live observability stack (windowed registry, SLO
//!    engine, head-sampled recorder) vs a disabled handle — the same
//!    paired measurement and the same < 2% bar, on the serving path.
//!
//! Runs offline (no criterion); writes `results/obs_overhead.json`
//! with one row per measured path (`"path": "engine"` / `"serve"`).

use std::sync::Arc;
use std::time::Instant;
use tamp_bench::{default_engine, default_training, out_dir, seed_from_env};
use tamp_meta::meta_training::MetaConfig;
use tamp_obs::{NullRecorder, Obs, SamplingRecorder, SloKind, SloSet, SloSpec, WindowedRegistry};
use tamp_platform::experiments::report::{print_markdown_table, save_json};
use tamp_platform::training::train_predictors;
use tamp_platform::{
    run_assignment_observed, AssignmentAlgo, EngineConfig, LossKind, PredictionAlgo,
    TrainedPredictors, TrainingConfig,
};
use tamp_serve::{HostConfig, OverloadPolicy, Pacing, ServeHost, Shard, ShardConfig};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

/// ns/op of one span + one count + one gauge on the given handle.
fn micro_ns_per_op(obs: &Obs, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let _s = obs.span("bench.micro");
        obs.count("bench.micro.count", 1);
        obs.gauge("bench.micro.gauge", i as f64);
    }
    t0.elapsed().as_secs_f64() * 1e9 / (iters as f64 * 3.0)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let seed = seed_from_env();
    println!("# Telemetry overhead (seed {seed})\n");

    // 1. Micro: per-op cost.
    let iters = 2_000_000u64;
    let null_ns = micro_ns_per_op(&Obs::null(), iters);
    let rec_ns = micro_ns_per_op(&Obs::new(NullRecorder), iters);
    print_markdown_table(
        &["handle", "ns/op (span+count+gauge avg)"],
        &[
            vec!["Obs::null()".into(), format!("{null_ns:.1}")],
            vec!["Obs::new(NullRecorder)".into(), format!("{rec_ns:.1}")],
        ],
    );

    // 2. End-to-end: full engine batch loop, interleaved repeats.
    // Small paper scale: matching is the dominant cost, as in any real
    // run — the regime the < 2% bar is defined over. (On a `tiny`
    // workload the whole run is a few ms and fixed per-batch telemetry
    // shows up at ~10%; that is not the hot path the contract covers.)
    let scale = Scale {
        n_workers: 30,
        n_tasks: 2400,
        ..Scale::small()
    };
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    let predictors = train_predictors(&workload, &default_training(seed));
    let engine = default_engine(seed);
    let run = |obs: &Obs| {
        let t0 = Instant::now();
        let m = run_assignment_observed(
            &workload,
            Some(&predictors),
            AssignmentAlgo::Ppi,
            &engine,
            None,
            None,
            obs,
        )
        .expect("engine run");
        (t0.elapsed().as_secs_f64(), m.completion_ratio())
    };

    // Warm-up, then interleave with the arm order alternating per
    // repeat — running one arm always-second makes it absorb the whole
    // drift of its predecessor (allocator state, frequency ramps) and
    // biases the comparison by far more than the effect under test.
    let (baseline_obs, recorder_obs) = (Obs::null(), Obs::new(NullRecorder));
    run(&baseline_obs);
    run(&recorder_obs);
    let repeats = 15;
    let (mut off, mut on) = (Vec::new(), Vec::new());
    let mut completion = (0.0, 0.0);
    for rep in 0..repeats {
        let arms: [bool; 2] = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for enabled in arms {
            if enabled {
                let (s, c) = run(&recorder_obs);
                on.push(s);
                completion.1 = c;
            } else {
                let (s, c) = run(&baseline_obs);
                off.push(s);
                completion.0 = c;
            }
        }
    }
    // Paired estimator: adjacent runs share machine state, so the
    // per-repeat difference cancels most of the drift that raw
    // per-arm medians keep.
    let paired_mean: f64 = off.iter().zip(&on).map(|(a, b)| b - a).sum::<f64>() / repeats as f64;
    let (off_med, on_med) = (median(&mut off), median(&mut on));
    let overhead_pct = paired_mean / off_med * 100.0;
    println!();
    print_markdown_table(
        &["arm", "median run (s)", "completion"],
        &[
            vec![
                "Obs::null()".into(),
                format!("{off_med:.4}"),
                format!("{:.4}", completion.0),
            ],
            vec![
                "Obs::new(NullRecorder)".into(),
                format!("{on_med:.4}"),
                format!("{:.4}", completion.1),
            ],
        ],
    );
    assert!(
        (completion.0 - completion.1).abs() < 1e-12,
        "telemetry must not change assignment results"
    );

    // Deterministic bound: count the telemetry ops the run actually
    // performs (events + histogram-only observes) and price them at
    // the measured per-op cost. The wall-clock delta above is the
    // corroborating measurement, but at ~50 ms per run its noise floor
    // (several %) sits above the effect; the bound is what the < 2%
    // bar is checked against.
    let (counting_obs, mem) = Obs::in_memory();
    run(&counting_obs);
    let events = mem.events().len() as u64;
    let snap = counting_obs.snapshot();
    let spans = mem
        .events()
        .iter()
        .filter(|e| e.kind == tamp_obs::EventKind::Span)
        .count() as u64;
    let hist_obs: u64 = snap.histograms.values().map(|h| h.count).sum();
    let observes = hist_obs.saturating_sub(spans);
    let total_ops = events + observes;
    let bound_pct = total_ops as f64 * rec_ns / (off_med * 1e9) * 100.0;
    println!(
        "\nmeasured end-to-end delta (paired mean of {repeats}): {overhead_pct:+.2}% \
         (per-pair noise of a ~{:.0} ms run is several %)",
        off_med * 1e3
    );
    println!(
        "op-count bound: {total_ops} ops x {rec_ns:.0} ns = {bound_pct:.2}% of the run (bar: < 2%)"
    );
    assert!(bound_pct < 2.0, "telemetry op cost exceeds the 2% bar");

    // 4. Serve path: the sharded host with the full live stack —
    // windowed registry, SLO engine, and a head-sampled recorder — vs a
    // disabled handle. Tasks are scaled up so matching dominates (the
    // regime the bar is defined over); telemetry ops stay fixed per
    // window, so the bound tightens as load grows.
    let sample_head = 64u64;
    let serve = measure_serve(seed, sample_head, rec_ns);
    println!(
        "\nserve path: off median {:.4} s, on median {:.4} s, paired delta {:+.2}%",
        serve.off_med, serve.on_med, serve.delta_pct
    );
    println!(
        "serve op-count bound: {} ops x {rec_ns:.0} ns = {:.2}% of the run (bar: < 2%)",
        serve.ops, serve.bound_pct
    );
    assert!(
        serve.bound_pct < 2.0,
        "serve-path telemetry op cost exceeds the 2% bar"
    );

    let rows = vec![
        serde_json::json!({
            "path": "engine",
            "micro_null_ns_per_op": null_ns,
            "micro_null_recorder_ns_per_op": rec_ns,
            "engine_off_median_s": off_med,
            "engine_on_median_s": on_med,
            "measured_delta_pct": overhead_pct,
            "telemetry_ops": total_ops,
            "overhead_bound_pct": bound_pct,
            "repeats": repeats,
        }),
        serde_json::json!({
            "path": "serve",
            "sample_head": sample_head,
            "serve_off_median_s": serve.off_med,
            "serve_on_median_s": serve.on_med,
            "measured_delta_pct": serve.delta_pct,
            "telemetry_ops": serve.ops,
            "overhead_bound_pct": serve.bound_pct,
            "repeats": serve.repeats,
        }),
    ];
    save_json(&out_dir().join("obs_overhead.json"), "obs_overhead", &rows).expect("write rows");
}

struct ServeMeasurement {
    off_med: f64,
    on_med: f64,
    delta_pct: f64,
    ops: u64,
    bound_pct: f64,
    repeats: usize,
}

/// A single latency objective, matching `slo/serve.slo.toml`'s shape —
/// the live engine must run during the "on" arm so its evaluation cost
/// is part of what the bar covers.
fn serve_slo() -> SloSet {
    SloSet {
        slos: vec![SloSpec {
            name: "step-p99".into(),
            metric: "serve.step.latency_ms".into(),
            kind: SloKind::Quantile(0.99),
            max: 1e9, // never violates: measuring cost, not verdicts
            window: 8,
            max_burn_rate: 0.0,
            trace_span: Some("serve.batch".into()),
        }],
    }
}

fn measure_serve(seed: u64, sample_head: u64, rec_ns: f64) -> ServeMeasurement {
    let scale = Scale {
        n_tasks: Scale::tiny().n_tasks * 16,
        ..Scale::tiny()
    };
    let training = |seed: u64| TrainingConfig {
        algo: PredictionAlgo::Maml,
        loss: LossKind::Mse,
        hidden: 8,
        seq_in: 5,
        meta: MetaConfig {
            iterations: 4,
            ..MetaConfig::default()
        },
        adapt_steps: 2,
        seed,
        ..TrainingConfig::default()
    };
    let prepared: Vec<(u64, Workload, TrainedPredictors)> = (0..2u64)
        .map(|i| {
            let s = seed + i;
            let w = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, s).build();
            let p = train_predictors(&w, &training(s));
            (s, w, p)
        })
        .collect();
    let build_host = |live: Option<Arc<WindowedRegistry>>| {
        let shards: Vec<Shard> = prepared
            .iter()
            .map(|(s, w, p)| {
                let cfg = ShardConfig {
                    algo: AssignmentAlgo::Ppi,
                    engine: EngineConfig {
                        seq_in: 5,
                        seed: *s,
                        prediction_cache: true,
                        ..EngineConfig::default()
                    },
                    faults: None,
                    queue_capacity: 1 << 16,
                    overload: OverloadPolicy::Shed,
                    perturb_step_sleep_ms: 0.0,
                };
                Shard::new(format!("s{s}"), w.clone(), Some(p.clone()), cfg)
                    .expect("shard construction")
            })
            .collect();
        let slo = live.is_some().then(serve_slo);
        ServeHost::new(
            shards,
            HostConfig {
                pacing: Pacing::FullSpeed,
                live,
                slo,
                ..HostConfig::default()
            },
        )
    };
    let run = |enabled: bool| {
        let (host, obs) = if enabled {
            (
                build_host(Some(Arc::new(WindowedRegistry::new(16)))),
                Obs::new(SamplingRecorder::new(NullRecorder, sample_head)),
            )
        } else {
            (build_host(None), Obs::null())
        };
        let t0 = Instant::now();
        let report = host.run(&obs);
        let completed: usize = report.shards.iter().map(|s| s.metrics.completed).sum();
        (t0.elapsed().as_secs_f64(), completed)
    };

    run(false);
    run(true);
    let repeats = 9;
    let (mut off, mut on) = (Vec::new(), Vec::new());
    let mut completed = (0usize, 0usize);
    for rep in 0..repeats {
        let arms: [bool; 2] = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for enabled in arms {
            let (s, c) = run(enabled);
            if enabled {
                on.push(s);
                completed.1 = c;
            } else {
                off.push(s);
                completed.0 = c;
            }
        }
    }
    assert_eq!(
        completed.0, completed.1,
        "the live observability stack must not change serving results"
    );
    let paired_mean: f64 = off.iter().zip(&on).map(|(a, b)| b - a).sum::<f64>() / repeats as f64;
    let (off_med, on_med) = (median(&mut off), median(&mut on));

    // Op count: one instrumented run (in-memory recorder, live stack).
    let (counting_obs, mem) = Obs::in_memory();
    let host = build_host(Some(Arc::new(WindowedRegistry::new(16))));
    let _ = host.run(&counting_obs);
    let events = mem.events().len() as u64;
    let snap = counting_obs.snapshot();
    let spans = mem
        .events()
        .iter()
        .filter(|e| e.kind == tamp_obs::EventKind::Span)
        .count() as u64;
    let hist_obs: u64 = snap.histograms.values().map(|h| h.count).sum();
    let ops = events + hist_obs.saturating_sub(spans);
    let bound_pct = ops as f64 * rec_ns / (off_med * 1e9) * 100.0;
    ServeMeasurement {
        off_med,
        on_med,
        delta_pct: paired_mean / off_med * 100.0,
        ops,
        bound_pct,
        repeats,
    }
}

//! Versioned, self-describing shard snapshots (crash safety).
//!
//! A [`ShardSnapshot`] captures everything a [`crate::Shard`] owns that
//! the replay depends on — the engine's [`EngineSnapshot`] plus the
//! serve-side state the engine does not know about: the replay cursor,
//! the queued-but-undrained events, the per-worker report logs, the
//! submission accounting, the overload-policy retry buffer, and the
//! collected trace. Restoring it into a shard built over the same
//! workload/predictors/config resumes the run mid-replay, and the
//! continuation is **byte-identical** to an uninterrupted run
//! (property-tested in `tests/properties.rs`, gated in
//! `scripts/ci.sh`).
//!
//! The format is JSON with an explicit `format` marker and a `version`
//! number, checked on restore: an incompatible snapshot fails loudly
//! instead of replaying garbage. Workload and configuration are *not*
//! embedded — a snapshot is a resume point for a known deployment, not
//! a portable container; [`crate::Shard::restore`] revalidates the
//! snapshot against the workload it is given.

use crate::event::ShardEvent;
use crate::shard::{RetryEntry, SubmissionCounts};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;
use tamp_core::TimedPoint;
use tamp_platform::engine::EngineSnapshot;
use tamp_platform::metrics::BatchRecord;

/// The `format` marker every shard snapshot carries.
pub const SHARD_SNAPSHOT_FORMAT: &str = "tamp-shard-snapshot";

/// Current shard-snapshot schema version. Bump on any incompatible
/// change so a restore fails loudly instead of replaying garbage.
pub const SHARD_SNAPSHOT_VERSION: u32 = 1;

/// Everything needed to resume a [`crate::Shard`] mid-replay (see the
/// module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Always [`SHARD_SNAPSHOT_FORMAT`] (self-description for humans
    /// and tooling poking at snapshot directories).
    pub format: String,
    /// Schema version ([`SHARD_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The shard's name at snapshot time.
    pub name: String,
    /// Replay-stream cursor: events already taken from the stream.
    pub stream_taken: usize,
    /// Events queued but not yet drained into a window.
    pub queued: Vec<ShardEvent>,
    /// Per-worker location reports received so far.
    pub logs: Vec<Vec<TimedPoint>>,
    /// Cumulative submission accounting.
    pub counts: SubmissionCounts,
    /// The backpressure policy's retry buffer (empty for other
    /// policies).
    pub retries: Vec<RetryEntry>,
    /// Whether the next stepped window was already marked degraded by
    /// the `DegradeToFallback` policy.
    pub degrade_pending: bool,
    /// Crash/restore cycles this shard has been through.
    pub crashes: u64,
    /// Per-window wall-clock step latencies so far, seconds.
    pub step_seconds: Vec<f64>,
    /// Per-window batch records so far.
    pub trace: Vec<BatchRecord>,
    /// The engine's own snapshot.
    pub engine: EngineSnapshot,
}

impl ShardSnapshot {
    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shard snapshot serializes")
    }

    /// Parses a JSON string (format/version are checked later, by
    /// [`crate::Shard::restore`]).
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("malformed shard snapshot: {e}"))
    }

    /// Writes the snapshot to `path` as JSON.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Reads a snapshot back from `path`.
    pub fn load_json(path: &Path) -> std::io::Result<Self> {
        let mut json = String::new();
        std::fs::File::open(path)?.read_to_string(&mut json)?;
        Self::from_json(&json).map_err(std::io::Error::other)
    }
}

//! Meta-Training within one learning-task cluster (Algorithm 3).
//!
//! First-order MAML: each sampled task adapts `k` SGD steps at rate `β`
//! on its support set, then contributes the gradient of its query loss
//! *at the adapted parameters* to the meta update at rate `α`. The
//! first-order approximation drops the second-derivative term of full
//! MAML — the standard FOMAML simplification, which tracks full MAML
//! closely in practice (see DESIGN.md's substitution table).
//!
//! Everything the rest of the pipeline consumes — adapt losses, query
//! losses, and the k-step gradient paths feeding `Sim_l` — is produced
//! exactly as Algorithm 3 specifies.

use crate::learning_task::LearningTask;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use tamp_nn::{clip_grad_norm, sub_scaled, Loss, Seq2Seq, Tape, TrainBatch};
use tamp_obs::Obs;

// Referenced from the `#[serde(default = ...)]` attribute only.
#[allow(dead_code)]
fn default_threads() -> usize {
    1
}

/// Hyper-parameters of Algorithm 3 (and of the TAML recursion that calls
/// it).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetaConfig {
    /// Meta learning rate `α`.
    pub alpha: f64,
    /// Adapt (inner) learning rate `β`.
    pub beta: f64,
    /// Inner adaptation steps `k`.
    pub adapt_steps: usize,
    /// Tasks sampled per meta iteration `m`.
    pub batch_tasks: usize,
    /// Meta iterations `l`.
    pub iterations: usize,
    /// Support pairs per adapt step.
    pub adapt_batch: usize,
    /// Query pairs per meta gradient.
    pub query_batch: usize,
    /// Global-norm gradient clip applied to every inner and meta
    /// gradient (LSTMs spike; clipping keeps small clusters stable).
    pub clip_norm: f64,
    /// Worker threads for the per-task inner loops (0 ⇒ one per
    /// available core). Results are byte-identical for every value:
    /// batches are presampled on the calling thread in the serial RNG
    /// order and per-task gradients are reduced in task order.
    #[serde(default = "default_threads")]
    pub threads: usize,
}

impl Default for MetaConfig {
    fn default() -> Self {
        Self {
            alpha: 0.08,
            beta: 0.12,
            adapt_steps: 3,
            batch_tasks: 4,
            iterations: 40,
            adapt_batch: 12,
            query_batch: 12,
            clip_norm: 1.0,
            threads: 1,
        }
    }
}

/// Resolves a `threads` knob: `0` means one worker per available core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Runs Algorithm 3 on a cluster: updates `theta` in place and returns the
/// average query loss `L^avg` over all iterations.
///
/// `template` supplies the architecture (its weights are overwritten).
/// Tasks that are not trainable are skipped; if none are trainable the
/// function is a no-op returning 0.
pub fn meta_train(
    theta: &mut [f64],
    tasks: &[&LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    rng: &mut impl Rng,
) -> f64 {
    meta_train_observed(theta, tasks, template, loss, cfg, rng, &Obs::null())
}

/// Presampled work for one task of one meta iteration: the k support
/// batches and the query batch, drawn on the calling thread so the RNG
/// stream matches the serial implementation exactly.
struct TaskJob {
    task_idx: usize,
    support: Vec<TrainBatch>,
    query: TrainBatch,
}

/// Result of one task's adapt + query-gradient computation. `qgrad` is
/// kept per task (not pre-summed per shard) so the final reduction adds
/// in task order regardless of thread count — floating-point addition is
/// not associative.
struct TaskOut {
    query_loss: f64,
    qgrad: Vec<f64>,
    nn_secs: f64,
}

/// The RNG-free compute of one task: k inner SGD steps on the support
/// batches, then the query loss and first-order meta gradient at the
/// adapted parameters. Arithmetic is identical to the historical serial
/// loop (`set_params`, clipped gradient, `θ -= β·g`), only allocation
/// patterns differ: the workspace `tape` and `theta_i` scratch are
/// reused across calls.
fn run_task(
    job: &TaskJob,
    theta: &[f64],
    model: &mut Seq2Seq,
    tape: &mut Tape,
    theta_i: &mut Vec<f64>,
    loss: &dyn Loss,
    cfg: &MetaConfig,
) -> TaskOut {
    let t0 = Instant::now();
    theta_i.clear();
    theta_i.extend_from_slice(theta);
    for sb in &job.support {
        model.set_params(theta_i);
        model.loss_and_grad_ws(sb, loss, tape);
        clip_grad_norm(tape.grad_mut(), cfg.clip_norm);
        sub_scaled(theta_i, cfg.beta, tape.grad());
    }
    // Query loss and its (first-order) meta gradient at θᵢ.
    model.set_params(theta_i);
    let query_loss = model.loss_and_grad_ws(&job.query, loss, tape);
    TaskOut {
        query_loss,
        qgrad: tape.grad().to_vec(),
        nn_secs: t0.elapsed().as_secs_f64(),
    }
}

/// [`meta_train`] with telemetry: one `meta.iter` span per meta
/// iteration, a `meta.query_loss` gauge per iteration (the running
/// batch-average query loss), an `nn.gemm` histogram sample per task
/// (seconds of NN compute), and a `meta.grad_reduce` span around each
/// meta-gradient reduction. Passing [`Obs::null`] makes this identical
/// to [`meta_train`] — telemetry never influences the RNG stream or the
/// update itself.
///
/// With `cfg.threads > 1` the per-task adapt + query-gradient work is
/// sharded across scoped threads. All RNG draws stay on the calling
/// thread in the serial order, every task's gradient is reduced in task
/// order, and all telemetry is emitted from the calling thread, so the
/// updated `theta`, the returned loss, and every gauge are byte-identical
/// to the single-threaded run.
#[allow(clippy::too_many_arguments)]
pub fn meta_train_observed(
    theta: &mut [f64],
    tasks: &[&LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    rng: &mut impl Rng,
    obs: &Obs,
) -> f64 {
    let trainable: Vec<&LearningTask> =
        tasks.iter().copied().filter(|t| t.is_trainable()).collect();
    if trainable.is_empty() {
        return 0.0;
    }
    assert_eq!(
        theta.len(),
        template.n_params(),
        "theta shape must match the template"
    );

    let n_threads = resolve_threads(cfg.threads);
    // Serial-path worker state, reused across all iterations. The job
    // buffers (support/query batches) are also recycled: refilling them
    // draws the RNG and produces pairs exactly as fresh allocation would.
    let mut model = template.clone();
    let mut tape = template.make_tape();
    let mut theta_i: Vec<f64> = Vec::with_capacity(theta.len());
    let mut jobs: Vec<TaskJob> = Vec::new();
    let mut meta_grad = vec![0.0; theta.len()];
    let mut total_query = 0.0;
    let mut query_count = 0usize;

    for iter in 0..cfg.iterations {
        let _iter_span = obs.span_idx("meta.iter", iter as u64);
        // Sample a batch of m tasks (with replacement when the cluster is
        // smaller than m, matching "sample a batch" semantics), then
        // presample every support/query batch in the serial nested order:
        // per task, k support draws followed by one query draw.
        let m = cfg.batch_tasks.max(1);
        let picked: Vec<&LearningTask> = (0..m)
            .map(|_| trainable[rng.gen_range(0..trainable.len())])
            .collect();
        jobs.truncate(m);
        while jobs.len() < m {
            jobs.push(TaskJob {
                task_idx: jobs.len(),
                support: Vec::new(),
                query: TrainBatch::new(Vec::new()),
            });
        }
        for (task_idx, (job, task)) in jobs.iter_mut().zip(picked).enumerate() {
            job.task_idx = task_idx;
            job.support.truncate(cfg.adapt_steps);
            while job.support.len() < cfg.adapt_steps {
                job.support.push(TrainBatch::new(Vec::new()));
            }
            for sb in job.support.iter_mut() {
                task.support_batch_into(cfg.adapt_batch, rng, sb);
            }
            task.query_batch_into(cfg.query_batch, rng, &mut job.query);
        }

        let outs: Vec<TaskOut> = if n_threads <= 1 || m == 1 {
            jobs.iter()
                .map(|job| run_task(job, theta, &mut model, &mut tape, &mut theta_i, loss, cfg))
                .collect()
        } else {
            run_tasks_parallel(&jobs, theta, template, loss, cfg, n_threads)
        };

        // Telemetry and reduction from the calling thread, in task order.
        let mut iter_query = 0.0;
        for out in &outs {
            obs.observe("nn.gemm", out.nn_secs);
            total_query += out.query_loss;
            query_count += 1;
            iter_query += out.query_loss;
        }
        obs.gauge_idx(
            "meta.query_loss",
            iter_query / outs.len() as f64,
            Some(iter as u64),
        );

        // Meta update: θ ← θ − α · (1/m) Σ ∇L^q.
        let _reduce_span = obs.span("meta.grad_reduce");
        meta_grad.fill(0.0);
        for out in &outs {
            for (mg, g) in meta_grad.iter_mut().zip(&out.qgrad) {
                *mg += g;
            }
        }
        let inv = 1.0 / m as f64;
        for g in meta_grad.iter_mut() {
            *g *= inv;
        }
        clip_grad_norm(&mut meta_grad, cfg.clip_norm);
        sub_scaled(theta, cfg.alpha, &meta_grad);
    }

    if query_count == 0 {
        0.0
    } else {
        total_query / query_count as f64
    }
}

/// Fans the presampled jobs of one meta iteration out over scoped worker
/// threads. Each worker owns a model clone and workspace; outputs come
/// back tagged with their task index and are re-sorted so downstream
/// reduction sees task order.
fn run_tasks_parallel(
    jobs: &[TaskJob],
    theta: &[f64],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    n_threads: usize,
) -> Vec<TaskOut> {
    let chunk = jobs.len().div_ceil(n_threads);
    let mut tagged: Vec<(usize, TaskOut)> = Vec::with_capacity(jobs.len());
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in jobs.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move |_| {
                let mut model = template.clone();
                let mut tape = template.make_tape();
                let mut theta_i: Vec<f64> = Vec::with_capacity(theta.len());
                shard
                    .iter()
                    .map(|job| {
                        (
                            job.task_idx,
                            run_task(job, theta, &mut model, &mut tape, &mut theta_i, loss, cfg),
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            tagged.extend(h.join().expect("meta worker panicked"));
        }
    })
    .expect("crossbeam scope");
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, out)| out).collect()
}

/// Average query loss of `theta` over a task set *without* adaptation
/// (used for diagnostics and as the recursion value in TAML).
pub fn query_loss(
    theta: &[f64],
    tasks: &[&LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
) -> f64 {
    let mut model = template.clone();
    model.set_params(theta);
    let mut total = 0.0;
    let mut n = 0usize;
    for t in tasks {
        if t.query.is_empty() {
            continue;
        }
        total += model.loss_only(&t.query, loss);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;
    use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
    use tamp_nn::{MseLoss, Seq2SeqConfig};

    /// A worker moving east at constant speed — perfectly learnable.
    fn line_task(id: u64, speed: f64) -> LearningTask {
        let days: Vec<Routine> = (0..3)
            .map(|d| {
                Routine::from_sampled(
                    (0..20).map(|i| Point::new((i as f64 * speed) % 18.0 + 1.0, 5.0)),
                    Minutes::new(d as f64 * 1440.0),
                    Minutes::new(10.0),
                )
            })
            .collect();
        let mut rng = rng_for(id, 0);
        LearningTask::from_history(
            WorkerId(id),
            &days,
            vec![],
            &Grid::PAPER,
            3,
            1,
            0.7,
            false,
            &mut rng,
        )
    }

    #[test]
    fn meta_training_reduces_query_loss() {
        let mut rng = rng_for(1, tamp_core::rng::streams::META);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(8), &mut rng);
        let tasks = [line_task(1, 0.4), line_task(2, 0.6)];
        let refs: Vec<&LearningTask> = tasks.iter().collect();

        let mut theta = template.params();
        let before = query_loss(&theta, &refs, &template, &MseLoss);
        let cfg = MetaConfig {
            iterations: 30,
            ..MetaConfig::default()
        };
        meta_train(&mut theta, &refs, &template, &MseLoss, &cfg, &mut rng);
        let after = query_loss(&theta, &refs, &template, &MseLoss);
        assert!(
            after < before,
            "meta-training should reduce loss: {before} → {after}"
        );
    }

    #[test]
    fn returns_average_query_loss() {
        let mut rng = rng_for(2, tamp_core::rng::streams::META);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let tasks = [line_task(3, 0.5)];
        let refs: Vec<&LearningTask> = tasks.iter().collect();
        let mut theta = template.params();
        let avg = meta_train(
            &mut theta,
            &refs,
            &template,
            &MseLoss,
            &MetaConfig::default(),
            &mut rng,
        );
        assert!(avg.is_finite() && avg >= 0.0);
    }

    #[test]
    fn untrainable_tasks_are_noop() {
        let mut rng = rng_for(3, tamp_core::rng::streams::META);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let empty = LearningTask {
            worker_id: WorkerId(9),
            support: Default::default(),
            query: Default::default(),
            poi_seq: vec![],
            sample_points: vec![],
            is_new: true,
        };
        let mut theta = template.params();
        let before = theta.clone();
        let l = meta_train(
            &mut theta,
            &[&empty],
            &template,
            &MseLoss,
            &MetaConfig::default(),
            &mut rng,
        );
        assert_eq!(l, 0.0);
        assert_eq!(theta, before);
    }

    /// Line-for-line copy of the historical serial implementation
    /// (fresh model clones, allocating `loss_and_grad`, in-place
    /// element loops). Kept as the oracle for the byte-equivalence test:
    /// the production path must reproduce it bit-for-bit at any thread
    /// count.
    fn meta_train_reference(
        theta: &mut [f64],
        tasks: &[&LearningTask],
        template: &Seq2Seq,
        loss: &dyn tamp_nn::Loss,
        cfg: &MetaConfig,
        rng: &mut impl rand::Rng,
    ) -> f64 {
        let trainable: Vec<&LearningTask> =
            tasks.iter().copied().filter(|t| t.is_trainable()).collect();
        if trainable.is_empty() {
            return 0.0;
        }
        let mut model = template.clone();
        let mut total_query = 0.0;
        let mut query_count = 0usize;
        for _iter in 0..cfg.iterations {
            let m = cfg.batch_tasks.max(1);
            let batch: Vec<&LearningTask> = (0..m)
                .map(|_| trainable[rng.gen_range(0..trainable.len())])
                .collect();
            let mut meta_grad = vec![0.0; theta.len()];
            for task in batch {
                let mut theta_i = theta.to_vec();
                for _ in 0..cfg.adapt_steps {
                    model.set_params(&theta_i);
                    let sb = task.support_batch(cfg.adapt_batch, rng);
                    let (_, mut grad) = model.loss_and_grad(&sb, loss);
                    clip_grad_norm(&mut grad, cfg.clip_norm);
                    for (p, g) in theta_i.iter_mut().zip(&grad) {
                        *p -= cfg.beta * g;
                    }
                }
                model.set_params(&theta_i);
                let qb = task.query_batch(cfg.query_batch, rng);
                let (ql, qgrad) = model.loss_and_grad(&qb, loss);
                total_query += ql;
                query_count += 1;
                for (mg, g) in meta_grad.iter_mut().zip(&qgrad) {
                    *mg += g;
                }
            }
            let inv = 1.0 / m as f64;
            for g in meta_grad.iter_mut() {
                *g *= inv;
            }
            clip_grad_norm(&mut meta_grad, cfg.clip_norm);
            for (p, g) in theta.iter_mut().zip(&meta_grad) {
                *p -= cfg.alpha * g;
            }
        }
        if query_count == 0 {
            0.0
        } else {
            total_query / query_count as f64
        }
    }

    #[test]
    fn meta_train_is_byte_identical_to_reference_at_any_thread_count() {
        for seed in [7u64, 21] {
            let mut init_rng = rng_for(seed, 0);
            let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut init_rng);
            let tasks = [
                line_task(seed * 10 + 1, 0.3),
                line_task(seed * 10 + 2, 0.5),
                line_task(seed * 10 + 3, 0.8),
            ];
            let refs: Vec<&LearningTask> = tasks.iter().collect();
            let cfg = MetaConfig {
                iterations: 5,
                batch_tasks: 3,
                adapt_steps: 2,
                adapt_batch: 6,
                query_batch: 6,
                ..MetaConfig::default()
            };

            let mut theta_ref = template.params();
            let mut rng = rng_for(seed, tamp_core::rng::streams::META);
            let loss_ref =
                meta_train_reference(&mut theta_ref, &refs, &template, &MseLoss, &cfg, &mut rng);

            for threads in [1usize, 2, 4] {
                let cfg = MetaConfig { threads, ..cfg };
                let mut theta = template.params();
                let mut rng = rng_for(seed, tamp_core::rng::streams::META);
                let loss = meta_train(&mut theta, &refs, &template, &MseLoss, &cfg, &mut rng);
                assert_eq!(
                    theta, theta_ref,
                    "threads={threads} drifted from the serial reference"
                );
                assert_eq!(loss, loss_ref, "query loss drifted at threads={threads}");
            }
        }
    }

    #[test]
    fn adaptation_specialises_meta_init_faster_than_random() {
        // The classic MAML sanity check: after meta-training across tasks
        // with shared structure, k adapt steps on a new task should beat
        // k adapt steps from the raw random init.
        let mut rng = rng_for(4, tamp_core::rng::streams::META);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(8), &mut rng);
        let train_tasks = [line_task(10, 0.3), line_task(11, 0.5), line_task(12, 0.7)];
        let refs: Vec<&LearningTask> = train_tasks.iter().collect();
        let mut theta = template.params();
        let cfg = MetaConfig {
            iterations: 40,
            ..MetaConfig::default()
        };
        meta_train(&mut theta, &refs, &template, &MseLoss, &cfg, &mut rng);

        let new_task = line_task(13, 0.45);
        let adapt = |init: &[f64], rng: &mut rand::rngs::StdRng| -> f64 {
            let mut t = init.to_vec();
            let mut model = template.clone();
            for _ in 0..3 {
                model.set_params(&t);
                let sb = new_task.support_batch(8, rng);
                let (_, g) = model.loss_and_grad(&sb, &MseLoss);
                for (p, gv) in t.iter_mut().zip(&g) {
                    *p -= 0.1 * gv;
                }
            }
            query_loss(&t, &[&new_task], &template, &MseLoss)
        };
        let meta_loss = adapt(&theta, &mut rng);
        let raw_loss = adapt(&template.params(), &mut rng);
        assert!(
            meta_loss < raw_loss,
            "meta init should adapt better: {meta_loss} vs {raw_loss}"
        );
    }
}

//! The per-worker information visible to assignment algorithms.

use std::collections::HashSet;
use tamp_core::routine::TimedPoint;
use tamp_core::{Point, TaskId, WorkerId};

/// Pairs the platform must not propose again (e.g. the worker already
/// rejected this task in an earlier batch). All assignment algorithms
/// honour this set.
pub type ExcludedPairs = HashSet<(TaskId, WorkerId)>;

/// What the platform knows about one online worker at assignment time.
///
/// `predicted` is the model's forecast of the worker's next locations, one
/// per paper time unit (10 min). `real_future` is the ground truth; it is
/// consulted *only* by the UB oracle baseline and by the acceptance
/// simulation in `tamp-platform` — the online algorithms never read it.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Worker identity.
    pub id: WorkerId,
    /// Current (reported) location.
    pub current: Point,
    /// Predicted future locations `ŵ.r`, one per time unit.
    pub predicted: Vec<Point>,
    /// Ground-truth future samples (oracle / acceptance only).
    pub real_future: Vec<TimedPoint>,
    /// The worker's matching rate `MR(r, r̂)` from validation
    /// (Definition 7).
    pub mr: f64,
    /// Maximum acceptable detour `w.d` in kilometres.
    pub detour_limit_km: f64,
    /// Travel speed in km per minute (`sp` of Lemma 2).
    pub speed_km_per_min: f64,
}

impl WorkerView {
    /// The real future as bare points (acceptance-path helper).
    pub fn real_path(&self) -> Vec<Point> {
        self.real_future.iter().map(|p| p.loc).collect()
    }

    /// Every point a spatial index must cover for this worker: the
    /// current location plus the predicted rollout. A worker is a
    /// candidate for a task exactly when one of these points is near it —
    /// both the stage-1/2 feasibility predicates (predicted points) and
    /// the stage-3 proximity check are distances to this set.
    pub fn indexable_points(&self) -> impl Iterator<Item = &Point> {
        std::iter::once(&self.current).chain(&self.predicted)
    }
}

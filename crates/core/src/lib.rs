//! # tamp-core
//!
//! Domain model for **Task Assignment in Mobility Prediction-aware Spatial
//! Crowdsourcing (TAMP)**, the problem studied by Li et al. (ICDE 2025).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`geometry`] — points in the plane (kilometres), Euclidean distance,
//!   and the *detour* computations that drive both the worker acceptance
//!   model and the assignment algorithms.
//! * [`time`] — timestamps in minutes, the paper's 10-minute *time unit*
//!   and 2-minute *batch window*.
//! * [`task`] — spatial tasks `τ = (l, t)` (Definition 1).
//! * [`worker`] — crowd workers `w = (r, l, d)` (Definition 2) and their
//!   timed routines.
//! * [`routine`] — timed trajectories with interpolation, windowing and
//!   sub-trajectory sampling (the basis of Definition 3's training pairs).
//! * [`grid`] — the paper's 100×50 discretisation of the city used to
//!   normalise model inputs and to report errors in grid-cell units.
//! * [`poi`] — points of interest `v = ⟨x, y, a⟩` used as the spatial
//!   feature of learning tasks (Section III-B).
//! * [`assignment`] — assignment plans `M` and accepted sub-plans `M'`
//!   (Definition 4) plus validity checks.
//! * [`codec`] — a compact binary encoding for routines (used to ship
//!   trajectories between the platform and experiment drivers).
//! * [`rng`] — deterministic seeding helpers so every experiment is
//!   reproducible from a single `u64` seed.
//!
//! All distances are in kilometres and all times in minutes unless a type
//! says otherwise. Conversions to the paper's grid-cell units go through
//! [`grid::Grid`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod codec;
pub mod error;
pub mod geometry;
pub mod grid;
pub mod poi;
pub mod rng;
pub mod routine;
pub mod task;
pub mod time;
pub mod worker;

pub use assignment::{Assignment, AssignmentPair};
pub use error::{EngineError, Result, TampError};
pub use geometry::Point;
pub use grid::Grid;
pub use poi::{Poi, PoiCategory};
pub use routine::{Routine, TimedPoint};
pub use task::{SpatialTask, TaskId};
pub use time::{Minutes, BATCH_WINDOW_MINUTES, TIME_UNIT_MINUTES};
pub use worker::{Worker, WorkerId};

//! The trace event model and its JSONL encoding.
//!
//! One event is one line of the trace. Three kinds exist:
//!
//! * `span` — a completed timed scope, with nesting (`id`/`parent`) and
//!   monotonic timing (`t_us` start offset, `dur_us` duration, both
//!   microseconds from the recorder's origin).
//! * `count` — a named counter increment.
//! * `gauge` — a named point-in-time measurement.
//!
//! Determinism contract: `count` and `gauge` lines carry **no wall-clock
//! field at all**, and a `span` line's identity fields (`name`, `id`,
//! `parent`, `idx`) are assigned in program order — so two runs with the
//! same seed produce identical event sequences modulo the `t_us`/`dur_us`
//! fields (see the schema reference in `docs/telemetry.md`).

use crate::json::{obj, JsonValue};

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (timed scope).
    Span,
    /// A counter increment.
    Count,
    /// A gauge observation.
    Gauge,
}

impl EventKind {
    /// The `ev` field value of the JSONL encoding.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Count => "count",
            EventKind::Gauge => "gauge",
        }
    }
}

/// Timing and nesting of a span event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanData {
    /// Sequential span id (1-based, assigned in program order).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Start offset from the observation origin, µs (wall-clock field).
    pub start_us: u64,
    /// Duration, µs (wall-clock field).
    pub dur_us: u64,
}

/// One telemetry event (= one JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Dotted event name, e.g. `engine.batch.matching`.
    pub name: String,
    /// Counter increment or gauge value (0 for spans).
    pub value: f64,
    /// Optional ordinal context: batch index, meta iteration, cluster id…
    pub idx: Option<u64>,
    /// Present on span events only.
    pub span: Option<SpanData>,
}

impl Event {
    /// A counter-increment event.
    pub fn count(name: impl Into<String>, value: u64, idx: Option<u64>) -> Self {
        Self {
            kind: EventKind::Count,
            name: name.into(),
            value: value as f64,
            idx,
            span: None,
        }
    }

    /// A gauge-observation event.
    pub fn gauge(name: impl Into<String>, value: f64, idx: Option<u64>) -> Self {
        Self {
            kind: EventKind::Gauge,
            name: name.into(),
            value,
            idx,
            span: None,
        }
    }

    /// Encodes the event as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(&'static str, JsonValue)> = vec![
            ("ev", JsonValue::Str(self.kind.tag().into())),
            ("name", JsonValue::Str(self.name.clone())),
        ];
        match self.kind {
            EventKind::Span => {
                let s = self.span.expect("span event carries SpanData");
                fields.push(("id", JsonValue::Num(s.id as f64)));
                fields.push((
                    "parent",
                    s.parent
                        .map_or(JsonValue::Null, |p| JsonValue::Num(p as f64)),
                ));
                fields.push(("t_us", JsonValue::Num(s.start_us as f64)));
                fields.push(("dur_us", JsonValue::Num(s.dur_us as f64)));
            }
            EventKind::Count | EventKind::Gauge => {
                fields.push(("value", JsonValue::Num(self.value)));
            }
        }
        if let Some(idx) = self.idx {
            fields.push(("idx", JsonValue::Num(idx as f64)));
        }
        obj(fields).to_json()
    }

    /// Decodes one JSONL line back into an [`Event`].
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        let kind = match v.get("ev").and_then(JsonValue::as_str) {
            Some("span") => EventKind::Span,
            Some("count") => EventKind::Count,
            Some("gauge") => EventKind::Gauge,
            other => return Err(format!("unknown event kind {other:?}")),
        };
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing name")?
            .to_string();
        let idx = v.get("idx").and_then(JsonValue::as_u64);
        let (value, span) = match kind {
            EventKind::Span => {
                let span = SpanData {
                    id: v
                        .get("id")
                        .and_then(JsonValue::as_u64)
                        .ok_or("missing id")?,
                    parent: v.get("parent").and_then(JsonValue::as_u64),
                    start_us: v
                        .get("t_us")
                        .and_then(JsonValue::as_u64)
                        .ok_or("missing t_us")?,
                    dur_us: v
                        .get("dur_us")
                        .and_then(JsonValue::as_u64)
                        .ok_or("missing dur_us")?,
                };
                (0.0, Some(span))
            }
            _ => {
                let value = v
                    .get("value")
                    .and_then(JsonValue::as_num)
                    .ok_or("missing value")?;
                (value, None)
            }
        };
        Ok(Self {
            kind,
            name,
            value,
            idx,
            span,
        })
    }

    /// The event with its wall-clock fields (`t_us`, `dur_us`) zeroed —
    /// the canonical form the determinism tests compare.
    pub fn without_wall_clock(&self) -> Self {
        let mut out = self.clone();
        if let Some(s) = out.span.as_mut() {
            s.start_us = 0;
            s.dur_us = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_round_trips() {
        let ev = Event {
            kind: EventKind::Span,
            name: "engine.batch".into(),
            value: 0.0,
            idx: Some(17),
            span: Some(SpanData {
                id: 3,
                parent: Some(1),
                start_us: 1234,
                dur_us: 567,
            }),
        };
        let line = ev.to_json_line();
        assert_eq!(Event::from_json_line(&line).unwrap(), ev);
        assert!(line.contains(r#""ev":"span""#));
    }

    #[test]
    fn count_and_gauge_lines_round_trip() {
        for ev in [
            Event::count("engine.fault.dropped_reports", 4, Some(2)),
            Event::gauge("train.query_loss", 0.125, None),
        ] {
            assert_eq!(Event::from_json_line(&ev.to_json_line()).unwrap(), ev);
        }
    }

    #[test]
    fn count_and_gauge_carry_no_wall_clock() {
        let line = Event::count("x", 1, None).to_json_line();
        assert!(!line.contains("t_us") && !line.contains("dur_us"));
    }

    #[test]
    fn without_wall_clock_normalises_spans_only() {
        let ev = Event {
            kind: EventKind::Span,
            name: "s".into(),
            value: 0.0,
            idx: None,
            span: Some(SpanData {
                id: 1,
                parent: None,
                start_us: 99,
                dur_us: 7,
            }),
        };
        let norm = ev.without_wall_clock();
        assert_eq!(norm.span.unwrap().start_us, 0);
        assert_eq!(norm.span.unwrap().id, 1);
        let g = Event::gauge("g", 1.0, None);
        assert_eq!(g.without_wall_clock(), g);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line(r#"{"ev":"span","name":"x"}"#).is_err());
        assert!(Event::from_json_line(r#"{"ev":"count","name":"x"}"#).is_err());
        assert!(Event::from_json_line("not json").is_err());
    }
}

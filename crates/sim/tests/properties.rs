//! Property-based tests for the synthetic-workload generators.

use proptest::prelude::*;
use tamp_core::rng::rng_for;
use tamp_core::{Grid, Minutes};
use tamp_sim::archetype::{ArchetypeKind, WorkerPersona};
use tamp_sim::routine_gen::{generate_day, generate_days, DayParams};
use tamp_sim::task_gen::{generate_tasks, workload1_hotspots, TaskGenConfig};

fn any_archetype() -> impl Strategy<Value = ArchetypeKind> {
    prop::sample::select(ArchetypeKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn days_have_exact_cadence_and_stay_in_grid(
        kind in any_archetype(),
        seed in 0u64..1000,
        units in 4usize..40,
    ) {
        let grid = Grid::PAPER;
        let mut rng = rng_for(seed, 21);
        let persona = WorkerPersona::sample(kind, &grid, &mut rng);
        let day = generate_day(
            &persona,
            &grid,
            &DayParams { units, ..DayParams::default() },
            &mut rng,
        );
        prop_assert_eq!(day.len(), units);
        for (i, p) in day.points().iter().enumerate() {
            prop_assert!(grid.contains(p.loc));
            prop_assert!((p.time.as_f64() - i as f64 * 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn leg_lengths_bounded_by_speed_and_noise(
        kind in any_archetype(),
        seed in 0u64..500,
    ) {
        let grid = Grid::PAPER;
        let mut rng = rng_for(seed, 22);
        let persona = WorkerPersona::sample(kind, &grid, &mut rng);
        let params = DayParams::default();
        let day = generate_day(&persona, &grid, &params, &mut rng);
        let bound = params.speed_km_per_unit + 10.0 * kind.noise_km();
        for leg in day.points().windows(2) {
            prop_assert!(leg[0].loc.dist(leg[1].loc) <= bound);
        }
    }

    #[test]
    fn multi_day_offsets_are_24h(
        kind in any_archetype(),
        seed in 0u64..300,
        days in 1usize..5,
    ) {
        let grid = Grid::PAPER;
        let mut rng = rng_for(seed, 23);
        let persona = WorkerPersona::sample(kind, &grid, &mut rng);
        let all = generate_days(&persona, &grid, &DayParams::default(), days, &mut rng);
        prop_assert_eq!(all.len(), days);
        for (d, day) in all.iter().enumerate() {
            prop_assert!((day.start_time().unwrap().as_f64() - d as f64 * 1440.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tasks_valid_sorted_and_in_grid(
        seed in 0u64..500,
        n in 1usize..200,
        lo in 1.0..4.0f64,
    ) {
        let grid = Grid::PAPER;
        let cfg = TaskGenConfig {
            hotspots: workload1_hotspots(&grid),
            horizon: Minutes::new(480.0),
            valid_time_units: (lo, lo + 1.0),
        };
        let mut rng = rng_for(seed, 24);
        let tasks = generate_tasks(&cfg, &grid, n, 0, &mut rng);
        prop_assert_eq!(tasks.len(), n);
        for pair in tasks.windows(2) {
            prop_assert!(pair[0].release.as_f64() <= pair[1].release.as_f64());
        }
        for t in &tasks {
            prop_assert!(grid.contains(t.location));
            let valid = (t.deadline.as_f64() - t.release.as_f64()) / 10.0;
            prop_assert!(valid >= lo - 1e-9 && valid <= lo + 1.0 + 1e-9);
            prop_assert!(t.release.as_f64() >= 0.0 && t.release.as_f64() < 480.0);
        }
    }
}

//! Sliding-window, scope-labelled metrics — the live view of a running
//! serve host, alongside the cumulative [`crate::MetricsRegistry`].
//!
//! A [`WindowedRegistry`] accumulates counters/gauges/histograms into
//! the *current* window under named scopes (one per shard, by
//! convention), and [`WindowedRegistry::advance`] seals that window
//! into a bounded ring of [`WindowSnapshot`]s. Queries merge trailing
//! windows per scope and across scopes ("fleet"), so
//! `serve.step.latency_ms` is answerable per shard and fleet-wide over
//! any trailing horizon the ring retains — exactly what the SLO engine
//! ([`crate::slo`]) evaluates each window.
//!
//! Sealed windows serialise through the crate's own JSON codec with
//! *sparse* histogram buckets, so a window log replayed offline
//! reconstructs bit-identical [`Histogram`]s and shares the live SLO
//! code path (`tamp slo-check --windows`).

use crate::json::{obj, parse, JsonValue};
use crate::registry::Histogram;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Sub-buckets per octave for windowed histograms — finer than the
/// cumulative registry's default 8 (~±1.1 % vs ~±4.4 % quantile error)
/// because SLO gates compare p99 against hard thresholds.
pub const WINDOW_HISTOGRAM_SUB: u32 = 32;

/// Scope name for the cross-scope merged view.
pub const FLEET_SCOPE: &str = "fleet";

/// One scope's metrics within one window (or a merge of several).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ScopeCell {
    /// Counter increments by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last value within the window).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl ScopeCell {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds a *later window of the same scope* into this cell:
    /// counters add, gauges take the later value, histograms merge.
    pub fn merge_later_window(&mut self, later: &ScopeCell) {
        for (k, v) in &later.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &later.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &later.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Folds *another scope* into this cell (fleet aggregation):
    /// counters add, gauges add (fleet totals — queue depths sum across
    /// shards), histograms merge.
    pub fn merge_scope(&mut self, other: &ScopeCell) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Serialises the cell (sparse histogram buckets).
    pub fn to_json_value(&self) -> JsonValue {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), JsonValue::Num(v as f64)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                .collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = JsonValue::Arr(
                        h.nonzero_buckets()
                            .into_iter()
                            .map(|(b, c)| {
                                JsonValue::Arr(vec![
                                    JsonValue::Num(b as f64),
                                    JsonValue::Num(c as f64),
                                ])
                            })
                            .collect(),
                    );
                    (
                        k.clone(),
                        obj([
                            ("sub", JsonValue::Num(h.sub() as f64)),
                            ("sum", JsonValue::Num(h.sum())),
                            ("min", JsonValue::Num(h.min())),
                            ("max", JsonValue::Num(h.max())),
                            ("buckets", buckets),
                        ]),
                    )
                })
                .collect(),
        );
        obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Parses a cell serialised by [`ScopeCell::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let mut out = ScopeCell::default();
        if let Some(m) = v.get("counters").and_then(JsonValue::as_obj) {
            for (k, c) in m {
                out.counters.insert(
                    k.clone(),
                    c.as_u64().ok_or(format!("counter {k} not a u64"))?,
                );
            }
        }
        if let Some(m) = v.get("gauges").and_then(JsonValue::as_obj) {
            for (k, g) in m {
                out.gauges.insert(
                    k.clone(),
                    g.as_num().ok_or(format!("gauge {k} not a number"))?,
                );
            }
        }
        if let Some(m) = v.get("histograms").and_then(JsonValue::as_obj) {
            for (k, h) in m {
                let num = |field: &str| -> Result<f64, String> {
                    h.get(field)
                        .and_then(JsonValue::as_num)
                        .ok_or(format!("histogram {k}: missing {field}"))
                };
                let sub = num("sub")? as u32;
                let mut parts = Vec::new();
                match h.get("buckets") {
                    Some(JsonValue::Arr(items)) => {
                        for item in items {
                            match item {
                                JsonValue::Arr(pair) if pair.len() == 2 => {
                                    let b = pair[0]
                                        .as_u64()
                                        .ok_or(format!("histogram {k}: bad bucket index"))?;
                                    let c = pair[1]
                                        .as_u64()
                                        .ok_or(format!("histogram {k}: bad bucket count"))?;
                                    parts.push((b as usize, c));
                                }
                                _ => return Err(format!("histogram {k}: bad bucket pair")),
                            }
                        }
                    }
                    _ => return Err(format!("histogram {k}: missing buckets")),
                }
                let hist =
                    Histogram::from_parts(sub, &parts, num("sum")?, num("min")?, num("max")?)
                        .map_err(|e| format!("histogram {k}: {e}"))?;
                out.histograms.insert(k.clone(), hist);
            }
        }
        Ok(out)
    }
}

/// One sealed window: its index plus every scope's cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSnapshot {
    /// Monotone window index (0-based over the registry's lifetime).
    pub index: u64,
    /// Scope name → that scope's metrics for this window.
    pub scopes: BTreeMap<String, ScopeCell>,
}

impl WindowSnapshot {
    /// All scopes merged into one fleet cell.
    pub fn fleet(&self) -> ScopeCell {
        let mut out = ScopeCell::default();
        for cell in self.scopes.values() {
            out.merge_scope(cell);
        }
        out
    }

    /// Serialises the window to one compact JSON line (the window-log
    /// format `serve --windows-log` appends per window).
    pub fn to_json(&self) -> String {
        obj([
            ("window", JsonValue::Num(self.index as f64)),
            (
                "scopes",
                JsonValue::Obj(
                    self.scopes
                        .iter()
                        .map(|(k, c)| (k.clone(), c.to_json_value()))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }

    /// Parses one window-log line.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let index = v
            .get("window")
            .and_then(JsonValue::as_u64)
            .ok_or("missing window index")?;
        let mut scopes = BTreeMap::new();
        if let Some(m) = v.get("scopes").and_then(JsonValue::as_obj) {
            for (k, cell) in m {
                scopes.insert(k.clone(), ScopeCell::from_json_value(cell)?);
            }
        }
        Ok(WindowSnapshot { index, scopes })
    }
}

#[derive(Debug)]
struct WindowedInner {
    retain: usize,
    next_index: u64,
    current: BTreeMap<String, ScopeCell>,
    sealed: VecDeque<WindowSnapshot>,
}

/// Thread-safe sliding-window registry: scoped accumulation into the
/// current window, a bounded ring of sealed windows, merged trailing
/// views per scope and fleet-wide.
#[derive(Debug)]
pub struct WindowedRegistry {
    inner: Mutex<WindowedInner>,
}

impl WindowedRegistry {
    /// A registry retaining the trailing `retain` sealed windows
    /// (minimum 1); older windows decay out of the ring.
    pub fn new(retain: usize) -> Self {
        Self {
            inner: Mutex::new(WindowedInner {
                retain: retain.max(1),
                next_index: 0,
                current: BTreeMap::new(),
                sealed: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowedInner> {
        self.inner.lock().expect("windowed registry lock")
    }

    /// Adds `n` to a counter in the current window (skipped when 0, like
    /// [`crate::Obs::count`]).
    pub fn count(&self, scope: &str, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut g = self.lock();
        *g.current
            .entry(scope.to_string())
            .or_default()
            .counters
            .entry(name.to_string())
            .or_default() += n;
    }

    /// Sets a gauge in the current window (last value wins).
    pub fn gauge(&self, scope: &str, name: &str, v: f64) {
        let mut g = self.lock();
        g.current
            .entry(scope.to_string())
            .or_default()
            .gauges
            .insert(name.to_string(), v);
    }

    /// Records a value into a windowed histogram
    /// ([`WINDOW_HISTOGRAM_SUB`] sub-buckets per octave).
    pub fn observe(&self, scope: &str, name: &str, v: f64) {
        let mut g = self.lock();
        g.current
            .entry(scope.to_string())
            .or_default()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_sub(WINDOW_HISTOGRAM_SUB))
            .observe(v);
    }

    /// Seals the current window (possibly empty), pushes it onto the
    /// ring, evicts beyond the retention bound, and returns the sealed
    /// snapshot.
    pub fn advance(&self) -> WindowSnapshot {
        let mut g = self.lock();
        let index = g.next_index;
        g.next_index += 1;
        let scopes = std::mem::take(&mut g.current);
        let snap = WindowSnapshot { index, scopes };
        g.sealed.push_back(snap.clone());
        while g.sealed.len() > g.retain {
            g.sealed.pop_front();
        }
        snap
    }

    /// Pushes an externally produced sealed window (offline window-log
    /// replay) without touching the current accumulation.
    pub fn push_sealed(&self, snap: WindowSnapshot) {
        let mut g = self.lock();
        g.next_index = g.next_index.max(snap.index + 1);
        g.sealed.push_back(snap);
        while g.sealed.len() > g.retain {
            g.sealed.pop_front();
        }
    }

    /// Number of windows sealed over the registry's lifetime.
    pub fn windows_sealed(&self) -> u64 {
        self.lock().next_index
    }

    /// Number of sealed windows currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.lock().sealed.len()
    }

    /// Clones of the trailing `n` sealed windows, oldest first.
    pub fn tail(&self, n: usize) -> Vec<WindowSnapshot> {
        let g = self.lock();
        let skip = g.sealed.len().saturating_sub(n);
        g.sealed.iter().skip(skip).cloned().collect()
    }

    /// Per-scope merge of the trailing `n` sealed windows.
    pub fn merged_tail(&self, n: usize) -> BTreeMap<String, ScopeCell> {
        let mut out: BTreeMap<String, ScopeCell> = BTreeMap::new();
        for w in self.tail(n) {
            for (scope, cell) in &w.scopes {
                out.entry(scope.clone())
                    .or_default()
                    .merge_later_window(cell);
            }
        }
        out
    }

    /// All scopes of the trailing `n` sealed windows merged into one
    /// fleet cell.
    pub fn fleet_tail(&self, n: usize) -> ScopeCell {
        let mut out = ScopeCell::default();
        for cell in self.merged_tail(n).values() {
            out.merge_scope(cell);
        }
        out
    }

    /// A serialisable point-in-time view over the trailing `n` windows —
    /// what the HTTP exporter's JSON endpoint and `tamp metrics` render.
    pub fn view(&self, n: usize) -> LiveView {
        let g = self.lock();
        let latest = g.next_index.checked_sub(1);
        let windows_merged = g.sealed.len().min(n);
        drop(g);
        let mut scopes = self.merged_tail(n);
        scopes.retain(|_, c| !c.is_empty());
        let mut fleet = ScopeCell::default();
        for cell in scopes.values() {
            fleet.merge_scope(cell);
        }
        LiveView {
            latest,
            windows_merged,
            scopes,
            fleet,
        }
    }
}

/// A merged trailing view of the registry, serialisable for transport.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveView {
    /// Index of the most recently sealed window (`None` before the first
    /// seal).
    pub latest: Option<u64>,
    /// How many sealed windows the view actually merged.
    pub windows_merged: usize,
    /// Per-scope merged cells.
    pub scopes: BTreeMap<String, ScopeCell>,
    /// All scopes merged.
    pub fleet: ScopeCell,
}

impl LiveView {
    /// Serialises the view to compact JSON.
    pub fn to_json(&self) -> String {
        obj([
            (
                "latest_window",
                match self.latest {
                    Some(i) => JsonValue::Num(i as f64),
                    None => JsonValue::Null,
                },
            ),
            ("windows_merged", JsonValue::Num(self.windows_merged as f64)),
            (
                "scopes",
                JsonValue::Obj(
                    self.scopes
                        .iter()
                        .map(|(k, c)| (k.clone(), c.to_json_value()))
                        .collect(),
                ),
            ),
            ("fleet", self.fleet.to_json_value()),
        ])
        .to_json()
    }

    /// Parses a view serialised by [`LiveView::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        Self::from_json_value(&v)
    }

    /// Like [`LiveView::from_json`] on an already-parsed value (e.g. a
    /// field of the exporter's `/metrics.json` document).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let latest = match v.get("latest_window") {
            Some(JsonValue::Null) | None => None,
            Some(n) => Some(n.as_u64().ok_or("latest_window not a u64")?),
        };
        let windows_merged = v
            .get("windows_merged")
            .and_then(JsonValue::as_u64)
            .ok_or("missing windows_merged")? as usize;
        let mut scopes = BTreeMap::new();
        if let Some(m) = v.get("scopes").and_then(JsonValue::as_obj) {
            for (k, cell) in m {
                scopes.insert(k.clone(), ScopeCell::from_json_value(cell)?);
            }
        }
        let fleet = ScopeCell::from_json_value(v.get("fleet").ok_or("missing fleet")?)?;
        Ok(LiveView {
            latest,
            windows_merged,
            scopes,
            fleet,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_accumulate_seal_and_evict() {
        let w = WindowedRegistry::new(2);
        w.count("shard0", "serve.shed", 3);
        w.count("shard0", "serve.shed", 0); // skipped, like Obs::count
        w.gauge("shard0", "serve.queue.depth", 5.0);
        w.observe("shard0", "serve.step.latency_ms", 1.5);
        let s0 = w.advance();
        assert_eq!(s0.index, 0);
        assert_eq!(s0.scopes["shard0"].counters["serve.shed"], 3);

        w.count("shard1", "serve.shed", 1);
        let s1 = w.advance();
        assert_eq!(s1.index, 1);
        let s2 = w.advance(); // empty window still seals
        assert!(s2.scopes.is_empty());

        // retain=2: window 0 evicted.
        assert_eq!(w.retained(), 2);
        assert_eq!(w.windows_sealed(), 3);
        let tail = w.tail(10);
        assert_eq!(tail[0].index, 1);
        assert_eq!(tail[1].index, 2);
    }

    #[test]
    fn merged_tail_sums_counters_and_keeps_last_gauge() {
        let w = WindowedRegistry::new(8);
        w.count("s", "c", 2);
        w.gauge("s", "g", 1.0);
        w.advance();
        w.count("s", "c", 5);
        w.gauge("s", "g", 9.0);
        w.observe("s", "h", 4.0);
        w.advance();
        let merged = w.merged_tail(8);
        assert_eq!(merged["s"].counters["c"], 7);
        assert_eq!(merged["s"].gauges["g"], 9.0);
        assert_eq!(merged["s"].histograms["h"].count(), 1);
        // Tail of 1 only sees the second window.
        assert_eq!(w.merged_tail(1)["s"].counters["c"], 5);
    }

    #[test]
    fn fleet_merges_scopes_with_gauges_summing() {
        let w = WindowedRegistry::new(4);
        w.count("shard0", "serve.shed", 1);
        w.count("shard1", "serve.shed", 2);
        w.gauge("shard0", "serve.queue.depth", 3.0);
        w.gauge("shard1", "serve.queue.depth", 4.0);
        w.observe("shard0", "lat", 1.0);
        w.observe("shard1", "lat", 100.0);
        w.advance();
        let fleet = w.fleet_tail(4);
        assert_eq!(fleet.counters["serve.shed"], 3);
        assert_eq!(fleet.gauges["serve.queue.depth"], 7.0);
        assert_eq!(fleet.histograms["lat"].count(), 2);
        assert_eq!(fleet.histograms["lat"].max(), 100.0);
    }

    #[test]
    fn window_snapshot_json_round_trips_exactly() {
        let w = WindowedRegistry::new(4);
        w.count("shard0", "serve.shed", 7);
        w.gauge("shard0", "serve.queue.depth", 2.5);
        for v in [0.4, 1.7, 1.7, 33.0] {
            w.observe("shard0", "serve.step.latency_ms", v);
        }
        w.count("shard1", "serve.shed", 1);
        let snap = w.advance();
        let back = WindowSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Replaying the line through push_sealed reproduces the same
        // merged view — the offline slo-check path.
        let replay = WindowedRegistry::new(4);
        replay.push_sealed(back);
        assert_eq!(replay.fleet_tail(4), w.fleet_tail(4));
    }

    #[test]
    fn live_view_json_round_trips() {
        let w = WindowedRegistry::new(4);
        w.count("shard0", "c", 1);
        w.observe("shard0", "h", 2.0);
        w.advance();
        let view = w.view(4);
        let back = LiveView::from_json(&view.to_json()).unwrap();
        assert_eq!(back, view);
        assert_eq!(view.latest, Some(0));
        assert_eq!(view.windows_merged, 1);
    }

    #[test]
    fn malformed_window_lines_are_rejected() {
        assert!(WindowSnapshot::from_json("{}").is_err());
        assert!(WindowSnapshot::from_json("nonsense").is_err());
        assert!(WindowSnapshot::from_json(
            r#"{"window":0,"scopes":{"s":{"histograms":{"h":{"sub":8}}}}}"#
        )
        .is_err());
    }

    #[test]
    fn windowed_registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WindowedRegistry>();
    }
}

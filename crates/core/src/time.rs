//! Time handling.
//!
//! The paper measures task validity in *time units* of 10 minutes
//! (Section IV-A, Table III: "each time unit representing 10 minutes")
//! and batches assignments in 2-minute windows. Internally everything is
//! a [`Minutes`] value — an `f64` number of minutes since the start of the
//! simulated day — so arithmetic stays trivial and precise enough for
//! city-scale simulation.

use serde::{Deserialize, Serialize};

/// One paper "time unit" in minutes (Table III).
pub const TIME_UNIT_MINUTES: f64 = 10.0;

/// The batch window used for batch-based task assignment, in minutes
/// (Section IV-A: "The time window for dividing task assignment batches is
/// set to 2 minutes").
pub const BATCH_WINDOW_MINUTES: f64 = 2.0;

/// A timestamp or duration in minutes.
///
/// Newtype over `f64` so that signatures distinguish kilometres from
/// minutes. Ordinary arithmetic is exposed through inherent methods rather
/// than operator overloads to keep call sites explicit about units.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Minutes(pub f64);

impl Minutes {
    /// Zero minutes.
    pub const ZERO: Minutes = Minutes(0.0);

    /// Constructs from a raw minute count.
    #[inline]
    pub const fn new(m: f64) -> Self {
        Minutes(m)
    }

    /// Constructs from a number of paper time units (1 unit = 10 min).
    #[inline]
    pub fn from_time_units(units: f64) -> Self {
        Minutes(units * TIME_UNIT_MINUTES)
    }

    /// This timestamp expressed in paper time units.
    #[inline]
    pub fn as_time_units(self) -> f64 {
        self.0 / TIME_UNIT_MINUTES
    }

    /// Raw minutes.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// `self + rhs`.
    #[inline]
    pub fn plus(self, rhs: Minutes) -> Minutes {
        Minutes(self.0 + rhs.0)
    }

    /// `self − rhs` (may be negative).
    #[inline]
    pub fn minus(self, rhs: Minutes) -> Minutes {
        Minutes(self.0 - rhs.0)
    }

    /// Whether this timestamp lies in the half-open interval `[start, end)`.
    #[inline]
    pub fn in_window(self, start: Minutes, end: Minutes) -> bool {
        self.0 >= start.0 && self.0 < end.0
    }
}

/// Travel time in minutes to cover `dist_km` at `speed_km_per_min`.
///
/// Returns `f64::INFINITY` for non-positive speeds so that deadline checks
/// simply fail rather than panic.
#[inline]
pub fn travel_minutes(dist_km: f64, speed_km_per_min: f64) -> f64 {
    if speed_km_per_min <= 0.0 {
        f64::INFINITY
    } else {
        dist_km / speed_km_per_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_round_trip() {
        let t = Minutes::from_time_units(3.0);
        assert_eq!(t.as_f64(), 30.0);
        assert_eq!(t.as_time_units(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let a = Minutes::new(12.0);
        let b = Minutes::new(5.0);
        assert_eq!(a.plus(b).as_f64(), 17.0);
        assert_eq!(a.minus(b).as_f64(), 7.0);
    }

    #[test]
    fn window_is_half_open() {
        let t = Minutes::new(10.0);
        assert!(t.in_window(Minutes::new(10.0), Minutes::new(12.0)));
        assert!(!t.in_window(Minutes::new(8.0), Minutes::new(10.0)));
    }

    #[test]
    fn travel_time_handles_zero_speed() {
        assert!(travel_minutes(5.0, 0.0).is_infinite());
        assert_eq!(travel_minutes(6.0, 0.3), 20.0);
    }
}

//! Daily routine generation.
//!
//! A worker's day is simulated at the paper's 10-minute cadence: the
//! worker moves between their persona's anchors at bounded speed, dwells
//! at each anchor, and every recorded sample is perturbed by the
//! archetype's observation noise. Distinct days reuse the same anchors in
//! (mostly) the same order, so a worker has a *learnable* pattern with
//! day-to-day variation — the setting mobility prediction assumes.

use crate::archetype::{ArchetypeKind, WorkerPersona};
use rand::Rng;
use rand_distr_normal::sample_normal;
use tamp_core::{Grid, Minutes, Point, Routine, TimedPoint, TIME_UNIT_MINUTES};

/// Tiny Box–Muller helper so we don't need the `rand_distr` crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One `N(0, sigma²)` sample.
    pub fn sample_normal(rng: &mut impl Rng, sigma: f64) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Parameters of one simulated day.
#[derive(Debug, Clone, Copy)]
pub struct DayParams {
    /// Number of 10-minute samples in the day.
    pub units: usize,
    /// Worker travel speed in km per time unit.
    pub speed_km_per_unit: f64,
    /// Start-of-day timestamp (minutes).
    pub day_start: Minutes,
}

impl Default for DayParams {
    fn default() -> Self {
        Self {
            units: 48, // an 8-hour active window
            speed_km_per_unit: 3.0,
            day_start: Minutes::ZERO,
        }
    }
}

/// Simulates one day of movement for `persona`, returning `units` samples
/// spaced one time unit apart starting at `day_start`.
pub fn generate_day(
    persona: &WorkerPersona,
    grid: &Grid,
    params: &DayParams,
    rng: &mut impl Rng,
) -> Routine {
    assert!(params.units > 0, "day must have samples");
    let noise = persona.kind.noise_km();
    let dwell_mean = persona.kind.dwell_units();

    // Anchor visiting order: commuters strictly alternate home/work; loops
    // cycle; roamers shuffle per day; localized hop randomly.
    let mut order: Vec<usize> = (0..persona.anchors.len()).collect();
    if persona.kind == ArchetypeKind::Roamer {
        use rand::seq::SliceRandom;
        order.shuffle(rng);
    }

    let mut pos = persona.anchors[order[0]];
    let mut goal_idx = 0usize; // index into `order`
    let mut dwell_left = sample_dwell(dwell_mean, rng);
    let mut points = Vec::with_capacity(params.units);

    for unit in 0..params.units {
        let t = Minutes::new(params.day_start.as_f64() + unit as f64 * TIME_UNIT_MINUTES);
        // Record the (noisy) current position.
        let observed = grid.clamp(Point::new(
            pos.x + sample_normal(rng, noise),
            pos.y + sample_normal(rng, noise),
        ));
        points.push(TimedPoint::new(observed, t));

        // Advance the underlying true position by one unit.
        let goal = persona.anchors[order[goal_idx % order.len()]];
        let to_goal = pos.dist(goal);
        if to_goal < 1e-9 {
            // At the anchor: dwell, then pick the next goal.
            if dwell_left > 0.0 {
                dwell_left -= 1.0;
            } else {
                goal_idx += 1;
                dwell_left = sample_dwell(dwell_mean, rng);
                // Localized workers sometimes revisit a random anchor
                // instead of cycling.
                if persona.kind == ArchetypeKind::Localized && rng.gen_bool(0.5) {
                    goal_idx = rng.gen_range(0..order.len());
                }
            }
        } else {
            let step = params.speed_km_per_unit.min(to_goal);
            pos = pos.lerp(goal, step / to_goal);
        }
    }
    Routine::from_points(points)
}

fn sample_dwell(mean: f64, rng: &mut impl Rng) -> f64 {
    // Tightly concentrated dwell around the archetype mean: day-to-day
    // repeatability is what makes mobility *learnable* (the paper's
    // premise that daily routines are predictable from history).
    (mean + rng.gen_range(-1.0..1.0) * mean * 0.1).max(0.0)
}

/// Simulates `days` consecutive days; each day is offset by 24 h in the
/// returned routines' timestamps but uses the *same* persona.
pub fn generate_days(
    persona: &WorkerPersona,
    grid: &Grid,
    base: &DayParams,
    days: usize,
    rng: &mut impl Rng,
) -> Vec<Routine> {
    (0..days)
        .map(|d| {
            let params = DayParams {
                day_start: Minutes::new(base.day_start.as_f64() + d as f64 * 24.0 * 60.0),
                ..*base
            };
            generate_day(persona, grid, &params, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    fn persona(kind: ArchetypeKind, seed: u64) -> WorkerPersona {
        let mut rng = rng_for(seed, 0);
        WorkerPersona::sample(kind, &Grid::PAPER, &mut rng)
    }

    #[test]
    fn day_has_requested_cadence() {
        let p = persona(ArchetypeKind::Commuter, 1);
        let mut rng = rng_for(1, 1);
        let day = generate_day(&p, &Grid::PAPER, &DayParams::default(), &mut rng);
        assert_eq!(day.len(), 48);
        let pts = day.points();
        assert_eq!(pts[0].time.as_f64(), 0.0);
        assert!((pts[1].time.as_f64() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn movement_respects_speed_plus_noise() {
        let p = persona(ArchetypeKind::Roamer, 2);
        let mut rng = rng_for(2, 1);
        let params = DayParams::default();
        let day = generate_day(&p, &Grid::PAPER, &params, &mut rng);
        // Max step = speed + generous noise allowance (4σ on both ends).
        let max_leg = params.speed_km_per_unit + 8.0 * p.kind.noise_km();
        for leg in day.points().windows(2) {
            let d = leg[0].loc.dist(leg[1].loc);
            assert!(d <= max_leg, "leg {d} exceeds {max_leg}");
        }
    }

    #[test]
    fn samples_stay_in_grid() {
        for kind in ArchetypeKind::ALL {
            let p = persona(kind, 3);
            let mut rng = rng_for(3, kind.index() as u64);
            let day = generate_day(&p, &Grid::PAPER, &DayParams::default(), &mut rng);
            for pt in day.points() {
                assert!(Grid::PAPER.contains(pt.loc));
            }
        }
    }

    #[test]
    fn commuter_days_are_similar_roamer_days_are_not() {
        let grid = Grid::PAPER;
        let params = DayParams::default();
        let day_dist = |kind: ArchetypeKind, seed: u64| -> f64 {
            let p = persona(kind, seed);
            let mut rng = rng_for(seed, 9);
            let days = generate_days(&p, &grid, &params, 2, &mut rng);
            // Mean pointwise distance between the two days, aligned by
            // time-of-day index.
            let a = days[0].points();
            let b = days[1].points();
            a.iter().zip(b).map(|(x, y)| x.loc.dist(y.loc)).sum::<f64>() / a.len() as f64
        };
        // Average across several workers to avoid flaky single draws.
        let commuter: f64 = (0..8)
            .map(|s| day_dist(ArchetypeKind::Commuter, 100 + s))
            .sum::<f64>()
            / 8.0;
        let roamer: f64 = (0..8)
            .map(|s| day_dist(ArchetypeKind::Roamer, 200 + s))
            .sum::<f64>()
            / 8.0;
        assert!(
            commuter < roamer,
            "commuters must repeat more than roamers: {commuter} vs {roamer}"
        );
    }

    #[test]
    fn generate_days_offsets_timestamps() {
        let p = persona(ArchetypeKind::Localized, 4);
        let mut rng = rng_for(4, 1);
        let days = generate_days(&p, &Grid::PAPER, &DayParams::default(), 3, &mut rng);
        assert_eq!(days.len(), 3);
        assert_eq!(days[1].start_time().unwrap().as_f64(), 24.0 * 60.0);
        assert_eq!(days[2].start_time().unwrap().as_f64(), 48.0 * 60.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = persona(ArchetypeKind::CourierLoop, 5);
        let mut r1 = rng_for(5, 1);
        let mut r2 = rng_for(5, 1);
        let d1 = generate_day(&p, &Grid::PAPER, &DayParams::default(), &mut r1);
        let d2 = generate_day(&p, &Grid::PAPER, &DayParams::default(), &mut r2);
        assert_eq!(d1, d2);
    }
}

//! Property-based tests for the neural substrate.

use proptest::prelude::*;
use tamp_core::rng::rng_for;
use tamp_nn::loss::Pt2;
use tamp_nn::matrix::vecops;
use tamp_nn::{Loss, Matrix, MseLoss, Seq2Seq, Seq2SeqConfig, TrainBatch};

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #[test]
    fn matvec_is_linear(a in finite_vec(12), x in finite_vec(4), y in finite_vec(4), alpha in -3.0..3.0f64) {
        let m = Matrix::from_rows(3, 4, a);
        // M(x + αy) = Mx + αMy
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| xi + alpha * yi).collect();
        let lhs = m.matvec(&combo);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..3 {
            prop_assert!((lhs[i] - (mx[i] + alpha * my[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_t_is_adjoint(a in finite_vec(12), x in finite_vec(4), y in finite_vec(3)) {
        // ⟨Mx, y⟩ = ⟨x, Mᵀy⟩
        let m = Matrix::from_rows(3, 4, a);
        let lhs = vecops::dot(&m.matvec(&x), &y);
        let rhs = vecops::dot(&x, &m.matvec_t(&y));
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn cosine_bounded(a in finite_vec(8), b in finite_vec(8)) {
        let c = vecops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn mse_non_negative_and_zero_at_target(p in -2.0..2.0f64, q in -2.0..2.0f64, n in 1usize..6) {
        let pred: Pt2 = [p, q];
        let (l, _) = MseLoss.step(pred, pred, n);
        prop_assert_eq!(l, 0.0);
        let (l2, _) = MseLoss.step(pred, [q, p], n);
        prop_assert!(l2 >= 0.0);
    }

    #[test]
    fn mse_gradient_descends(px in -1.0..1.0f64, py in -1.0..1.0f64, tx in -1.0..1.0f64, ty in -1.0..1.0f64) {
        // Stepping opposite the gradient must not increase the loss.
        let pred: Pt2 = [px, py];
        let target: Pt2 = [tx, ty];
        let (l, g) = MseLoss.step(pred, target, 1);
        let stepped: Pt2 = [pred[0] - 0.01 * g[0], pred[1] - 0.01 * g[1]];
        let (l2, _) = MseLoss.step(stepped, target, 1);
        prop_assert!(l2 <= l + 1e-12);
    }

    #[test]
    fn seq2seq_params_round_trip(seed in 0u64..500) {
        let mut rng = rng_for(seed, 3);
        let model = Seq2Seq::new(Seq2SeqConfig::lstm(4), &mut rng);
        let p = model.params();
        let mut rng2 = rng_for(seed + 1, 3);
        let mut clone = Seq2Seq::new(Seq2SeqConfig::lstm(4), &mut rng2);
        clone.set_params(&p);
        prop_assert_eq!(clone.params(), p);
    }

    #[test]
    fn seq2seq_outputs_finite(seed in 0u64..200, len_in in 1usize..6, len_out in 1usize..4) {
        let mut rng = rng_for(seed, 4);
        let model = Seq2Seq::new(Seq2SeqConfig::lstm(5), &mut rng);
        let input: Vec<Pt2> = (0..len_in).map(|i| [i as f64 * 0.1, 0.5]).collect();
        let out = model.predict(&input, len_out);
        prop_assert_eq!(out.len(), len_out);
        for p in out {
            prop_assert!(p[0].is_finite() && p[1].is_finite());
        }
    }

    #[test]
    fn gradient_norm_finite(seed in 0u64..100) {
        let mut rng = rng_for(seed, 5);
        let model = Seq2Seq::new(Seq2SeqConfig::lstm(4), &mut rng);
        let batch = TrainBatch::new(vec![(
            vec![[0.2, 0.2], [0.3, 0.3]],
            vec![[0.4, 0.4]],
        )]);
        let (l, g) = model.loss_and_grad(&batch, &MseLoss);
        prop_assert!(l.is_finite());
        prop_assert!(g.iter().all(|v| v.is_finite()));
        prop_assert_eq!(g.len(), model.n_params());
    }
}

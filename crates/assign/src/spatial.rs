//! Spatial prefiltering for large batches.
//!
//! Every assignment algorithm enumerates task × worker pairs; at paper
//! scale (442 workers, thousands of live tasks) that is millions of
//! feasibility probes per 2-minute batch. [`BucketIndex`] hashes each
//! worker's current location and predicted points into a uniform grid so
//! a task only probes workers with *some* point within a conservative
//! radius — the exact feasibility predicates still run afterwards, so
//! results are identical to full enumeration (property-tested).
//!
//! Consumers: all three PPI stages (`ppi_assign_observed`, via
//! [`PrefilterBounds`] for the per-task query radius) and the KM baseline
//! (`km_assign_indexed`). Both fall back to full enumeration when the
//! index is disabled (`EngineConfig::spatial_index` / `--no-index`), and
//! the two paths are property-tested byte-identical.

use crate::view::WorkerView;
use std::collections::HashSet;
use tamp_core::{Minutes, Point, SpatialTask};

/// Hard cap on `cols × rows`. The grid is sized from the bounding box of
/// all finite points, so a single corrupted-but-finite outlier (a worker
/// reported at (1e6, 1e6) by a noisy feed) would otherwise demand ~10¹²
/// buckets and abort on allocation. Past the cap the index degrades to a
/// single bucket holding every indexed worker — full enumeration, still a
/// conservative superset, so downstream results are unchanged.
const MAX_GRID_BUCKETS: usize = 1 << 20;

/// A uniform-grid index over worker positions (current + predicted).
#[derive(Debug, Clone)]
pub struct BucketIndex {
    cell_km: f64,
    cols: usize,
    rows: usize,
    origin: Point,
    /// Worker indices per bucket (deduplicated).
    buckets: Vec<Vec<u32>>,
    /// Grid exceeded [`MAX_GRID_BUCKETS`]; `buckets[0]` holds all workers.
    fallback: bool,
}

impl BucketIndex {
    /// Builds the index over `workers`, covering the bounding box of all
    /// their points. `cell_km` trades memory for probe precision; the
    /// batch engine uses the worker detour scale (≈ d/2).
    pub fn build(workers: &[WorkerView], cell_km: f64) -> Self {
        assert!(cell_km > 0.0, "cell size must be positive");
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for w in workers {
            // Non-finite points (corrupted feeds) can never satisfy a
            // distance predicate, so skipping them keeps the index
            // conservative *and* keeps the bounding box sane.
            for p in w.indexable_points().filter(|p| p.is_finite()) {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
                any = true;
            }
        }
        if !any {
            return Self {
                cell_km,
                cols: 1,
                rows: 1,
                origin: Point::new(0.0, 0.0),
                buckets: vec![Vec::new()],
                fallback: false,
            };
        }
        // `as usize` saturates on overflow, and `checked_mul` catches the
        // product — a degenerate bounding box can demand more buckets than
        // the address space holds.
        let cols = (((max.x - min.x) / cell_km).floor() as usize)
            .saturating_add(1)
            .max(1);
        let rows = (((max.y - min.y) / cell_km).floor() as usize)
            .saturating_add(1)
            .max(1);
        if cols.checked_mul(rows).is_none_or(|n| n > MAX_GRID_BUCKETS) {
            // One far outlier blew up the bounding box: fall back to full
            // enumeration (every indexed worker in a single bucket).
            let mut bucket: Vec<u32> = Vec::new();
            for (wi, w) in workers.iter().enumerate() {
                if w.indexable_points().any(|p| p.is_finite()) {
                    bucket.push(wi as u32);
                }
            }
            return Self {
                cell_km,
                cols: 1,
                rows: 1,
                origin: min,
                buckets: vec![bucket],
                fallback: true,
            };
        }
        let mut buckets = vec![Vec::new(); cols * rows];
        for (wi, w) in workers.iter().enumerate() {
            let mut seen = HashSet::new();
            for p in w.indexable_points().filter(|p| p.is_finite()) {
                let ix = (((p.x - min.x) / cell_km) as usize).min(cols - 1);
                let iy = (((p.y - min.y) / cell_km) as usize).min(rows - 1);
                if seen.insert((ix, iy)) {
                    buckets[iy * cols + ix].push(wi as u32);
                }
            }
        }
        Self {
            cell_km,
            cols,
            rows,
            origin: min,
            buckets,
            fallback: false,
        }
    }

    /// Worker indices with at least one indexed point within `radius_km`
    /// of `p` — conservatively (by bucket overlap), i.e. a superset of
    /// the exact answer and never a false negative. Sorted, deduplicated.
    pub fn candidates_within(&self, p: Point, radius_km: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.candidates_within_into(p, radius_km, &mut out);
        out
    }

    /// [`Self::candidates_within`] writing into a caller-owned buffer —
    /// the batch hot path queries once per task and reuses `out`.
    pub fn candidates_within_into(&self, p: Point, radius_km: f64, out: &mut Vec<usize>) {
        out.clear();
        if radius_km.is_nan() || radius_km < 0.0 || !p.is_finite() {
            // Negative or NaN radius, or a corrupted task location: no
            // finite-distance predicate can hold.
            return;
        }
        if self.fallback {
            // Degenerate grid: the single bucket holds every indexed
            // worker, already sorted and deduplicated by construction.
            out.extend(self.buckets[0].iter().map(|&w| w as usize));
            return;
        }
        let lo_x = ((p.x - radius_km - self.origin.x) / self.cell_km).floor();
        let hi_x = ((p.x + radius_km - self.origin.x) / self.cell_km).floor();
        let lo_y = ((p.y - radius_km - self.origin.y) / self.cell_km).floor();
        let hi_y = ((p.y + radius_km - self.origin.y) / self.cell_km).floor();
        let lo_x = lo_x.max(0.0) as usize;
        let lo_y = lo_y.max(0.0) as usize;
        let hi_x = (hi_x.max(0.0) as usize).min(self.cols - 1);
        let hi_y = (hi_y.max(0.0) as usize).min(self.rows - 1);
        for iy in lo_y..=hi_y {
            for ix in lo_x..=hi_x {
                out.extend(
                    self.buckets[iy * self.cols + ix]
                        .iter()
                        .map(|&w| w as usize),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Number of buckets (diagnostics).
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the bounding box demanded more than `MAX_GRID_BUCKETS`
    /// cells and the index degraded to full enumeration (diagnostics —
    /// surfaced as the `ppi.index.bbox_fallback` counter).
    pub fn used_fallback(&self) -> bool {
        self.fallback
    }
}

/// Batch-wide bounds from which a conservative per-task query radius is
/// derived.
///
/// Every feasibility predicate in the assignment layer is capped by the
/// Theorem 2 bound `min(d/2, sp·(τ.t − t_c))`, which is monotone in the
/// worker's detour limit `d` and speed `sp`. Taking the batch maxima of
/// both, `radius_for` dominates `theorem2_bound(w, τ)` for **every**
/// worker of the batch, so an index query at that radius can never drop a
/// feasible pair — while still shrinking with tight deadlines.
#[derive(Debug, Clone, Copy)]
pub struct PrefilterBounds {
    max_half_detour_km: f64,
    max_speed_km_per_min: f64,
}

impl PrefilterBounds {
    /// Batch maxima over `workers` (zeroes for an empty batch).
    pub fn over(workers: &[WorkerView]) -> Self {
        let mut max_half_detour_km: f64 = 0.0;
        let mut max_speed_km_per_min: f64 = 0.0;
        for w in workers {
            max_half_detour_km = max_half_detour_km.max(w.detour_limit_km / 2.0);
            max_speed_km_per_min = max_speed_km_per_min.max(w.speed_km_per_min);
        }
        Self {
            max_half_detour_km,
            max_speed_km_per_min,
        }
    }

    /// Conservative query radius for `task` at time `now`:
    /// `min(max(d)/2, max(sp)·remaining)` ≥ `theorem2_bound(w, task, now)`
    /// for every worker in the batch.
    pub fn radius_for(&self, task: &SpatialTask, now: Minutes) -> f64 {
        self.max_half_detour_km
            .min(task.reach_radius(now, self.max_speed_km_per_min))
    }

    /// Grid cell size for a [`BucketIndex`] serving these bounds: half
    /// the dominant radius, floored so degenerate batches (all detour
    /// limits ~0) don't explode the bucket count.
    pub fn cell_km(&self) -> f64 {
        (self.max_half_detour_km / 2.0).max(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::WorkerId;

    fn worker_at(id: u64, pts: &[(f64, f64)]) -> WorkerView {
        WorkerView {
            id: WorkerId(id),
            current: Point::new(pts[0].0, pts[0].1),
            predicted: pts[1..].iter().map(|&(x, y)| Point::new(x, y)).collect(),
            real_future: Vec::new(),
            mr: 0.5,
            detour_limit_km: 6.0,
            speed_km_per_min: 0.3,
        }
    }

    #[test]
    fn finds_nearby_workers() {
        let workers = vec![
            worker_at(0, &[(1.0, 1.0)]),
            worker_at(1, &[(10.0, 5.0)]),
            worker_at(2, &[(1.5, 1.2)]),
        ];
        let idx = BucketIndex::build(&workers, 1.0);
        let c = idx.candidates_within(Point::new(1.2, 1.0), 1.0);
        assert!(c.contains(&0) && c.contains(&2));
        assert!(!c.contains(&1));
    }

    #[test]
    fn predicted_points_are_indexed_too() {
        // Worker 0 is currently far away but predicted to pass near the
        // query point.
        let workers = vec![worker_at(0, &[(18.0, 9.0), (2.0, 2.0)])];
        let idx = BucketIndex::build(&workers, 1.0);
        let c = idx.candidates_within(Point::new(2.1, 2.1), 1.0);
        assert_eq!(c, vec![0]);
    }

    /// Conservativeness: every worker with a point truly within the
    /// radius is returned (false positives allowed, negatives not).
    #[test]
    fn never_misses_a_true_candidate() {
        use rand::Rng;
        let mut rng = tamp_core::rng::rng_for(31, 0);
        for _ in 0..50 {
            let workers: Vec<WorkerView> = (0..20)
                .map(|i| {
                    let pts: Vec<(f64, f64)> = (0..4)
                        .map(|_| (rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)))
                        .collect();
                    worker_at(i, &pts)
                })
                .collect();
            let idx = BucketIndex::build(&workers, rng.gen_range(0.5..3.0));
            let q = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0));
            let r = rng.gen_range(0.1..5.0);
            let got = idx.candidates_within(q, r);
            for (wi, w) in workers.iter().enumerate() {
                let truly_near = std::iter::once(&w.current)
                    .chain(&w.predicted)
                    .any(|p| p.dist(q) <= r);
                if truly_near {
                    assert!(got.contains(&wi), "missed worker {wi}");
                }
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let idx = BucketIndex::build(&[], 1.0);
        assert!(idx.candidates_within(Point::new(0.0, 0.0), 5.0).is_empty());
        assert_eq!(idx.n_buckets(), 1);
        assert!(!idx.used_fallback());
    }

    /// Regression: one corrupted-but-finite outlier among paper-scale
    /// workers used to size the grid from the blown-up bounding box —
    /// ~(1e6 / 0.5)² ≈ 4·10¹² buckets, which aborts on allocation. The
    /// capped build must fall back to full enumeration instead, and the
    /// fallback must stay a conservative superset (no missed candidates).
    #[test]
    fn outlier_point_falls_back_to_full_enumeration() {
        let mut workers: Vec<WorkerView> = (0..442)
            .map(|i| worker_at(i, &[((i % 40) as f64 * 0.5, (i % 20) as f64 * 0.5)]))
            .collect();
        workers.push(worker_at(442, &[(1.0e6, 1.0e6)]));
        let idx = BucketIndex::build(&workers, 0.5);
        assert!(idx.used_fallback());
        assert_eq!(idx.n_buckets(), 1);
        let q = Point::new(5.0, 5.0);
        let got = idx.candidates_within(q, 2.0);
        for (wi, w) in workers.iter().enumerate() {
            let truly_near = std::iter::once(&w.current)
                .chain(&w.predicted)
                .any(|p| p.dist(q) <= 2.0);
            if truly_near {
                assert!(got.contains(&wi), "fallback missed worker {wi}");
            }
        }
        // Sane boxes keep the real grid (and its pruning power).
        let idx = BucketIndex::build(&workers[..442], 0.5);
        assert!(!idx.used_fallback());
        assert!(idx.n_buckets() > 1);
    }

    #[test]
    fn negative_radius_is_empty() {
        let workers = vec![worker_at(0, &[(1.0, 1.0)])];
        let idx = BucketIndex::build(&workers, 1.0);
        assert!(idx.candidates_within(Point::new(1.0, 1.0), -1.0).is_empty());
    }

    /// The prefilter radius must dominate `theorem2_bound` for every
    /// worker of the batch — that is the property that makes the indexed
    /// PPI path equivalent to full enumeration.
    #[test]
    fn prefilter_radius_dominates_theorem2_bound() {
        use crate::feasibility::theorem2_bound;
        use rand::Rng;
        use tamp_core::{SpatialTask, TaskId};
        let mut rng = tamp_core::rng::rng_for(32, 0);
        for _ in 0..50 {
            let workers: Vec<WorkerView> = (0..15)
                .map(|i| {
                    let mut w =
                        worker_at(i, &[(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0))]);
                    w.detour_limit_km = rng.gen_range(0.5..10.0);
                    w.speed_km_per_min = rng.gen_range(0.05..0.8);
                    w
                })
                .collect();
            let bounds = PrefilterBounds::over(&workers);
            let now = Minutes::new(rng.gen_range(0.0..120.0));
            let task = SpatialTask::new(
                TaskId(0),
                Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..10.0)),
                Minutes::ZERO,
                Minutes::new(rng.gen_range(0.0..300.0)),
            );
            let radius = bounds.radius_for(&task, now);
            for w in &workers {
                assert!(
                    theorem2_bound(w, &task, now) <= radius + 1e-12,
                    "prefilter radius must be conservative"
                );
            }
        }
    }
}

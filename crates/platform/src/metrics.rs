//! The paper's four assignment metrics (Section IV-A), the per-batch
//! trace record, and the per-stage wall-clock breakdown that replaced
//! the lumped `algo_seconds` counter.

use serde::{Deserialize, Serialize};

/// Wall-clock seconds spent in each stage of the engine's batch loop.
///
/// Before the observability work, `algo_seconds` wrapped only the
/// matcher call, making rollout and acceptance costs invisible. This
/// struct is the per-stage replacement; `algo_seconds` survives as an
/// alias of [`StageTimings::matching_s`] for backward compatibility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Building worker views (includes `rollout_s`).
    pub snapshot_s: f64,
    /// Model rollout portion of the snapshot stage.
    pub rollout_s: f64,
    /// The assignment algorithm proper (the old `algo_seconds`).
    pub matching_s: f64,
    /// Simulating worker accept/reject decisions.
    pub acceptance_s: f64,
    /// Task admission, expiry, and carry-over bookkeeping.
    pub carry_s: f64,
    /// Online-adaptation rounds (zero when adaptation is off).
    pub adapt_s: f64,
}

impl StageTimings {
    /// Sum of the top-level stages (`rollout_s` is already inside
    /// `snapshot_s`, so it is not added again).
    pub fn total_s(&self) -> f64 {
        self.snapshot_s + self.matching_s + self.acceptance_s + self.carry_s + self.adapt_s
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &StageTimings) {
        self.snapshot_s += other.snapshot_s;
        self.rollout_s += other.rollout_s;
        self.matching_s += other.matching_s;
        self.acceptance_s += other.acceptance_s;
        self.carry_s += other.carry_s;
        self.adapt_s += other.adapt_s;
    }
}

/// One batch window's snapshot (produced by
/// [`crate::engine::run_assignment_traced`]).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BatchRecord {
    /// End of the batch window, minutes.
    pub t_min: f64,
    /// Live tasks entering the matcher.
    pub pending: usize,
    /// Idle workers snapshotted for this batch.
    #[serde(default)]
    pub idle_workers: usize,
    /// Pairs the assignment algorithm proposed.
    #[serde(default)]
    pub proposed: usize,
    /// Proposals the workers accepted (tasks completed).
    #[serde(default)]
    pub accepted: usize,
    /// Proposals the workers rejected.
    #[serde(default)]
    pub rejected: usize,
    /// Location reports measured in this window that never became usable
    /// (dropped, corrupted, or swallowed by an offline window).
    #[serde(default)]
    pub dropped_reports: usize,
    /// Worker views built from the persistence fallback because the
    /// model rollout failed or returned garbage this batch.
    #[serde(default)]
    pub fallback_views: usize,
    /// Proposed pairs skipped because the pair referenced a task or
    /// worker missing from this batch's snapshot.
    #[serde(default)]
    pub invalid_pairs: usize,
    /// Models quarantined (rolled back to their offline checkpoint)
    /// during this batch's adaptation round.
    #[serde(default)]
    pub quarantined_models: usize,
    /// Tasks that left the pending pool unserved this batch because
    /// their deadline passed (absent in traces recorded before the
    /// serve work).
    #[serde(default)]
    pub expired: usize,
    /// Worker rollouts served from the cross-batch prediction cache
    /// this batch (zero while the cache is disabled).
    #[serde(default)]
    pub cache_hits: usize,
    /// Cacheable rollouts that had to be computed this batch.
    #[serde(default)]
    pub cache_misses: usize,
    /// Cache entries dropped by this batch's blanket invalidation
    /// (online-adaptation rounds only).
    #[serde(default)]
    pub cache_invalidations: usize,
    /// Per-stage wall-clock breakdown of this batch (absent in traces
    /// recorded before the observability work).
    #[serde(default)]
    pub stages: StageTimings,
}

/// Aggregate outcome of one simulated test day.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AssignmentMetrics {
    /// Total tasks published over the day.
    pub tasks_total: usize,
    /// Assignments proposed across all batches, `Σ|M|`.
    pub assigned_total: usize,
    /// Assignments accepted and completed, `Σ|M'|`.
    pub completed: usize,
    /// Assignments rejected by workers.
    pub rejected: usize,
    /// Sum of real detours of completed pairs, km.
    pub total_detour_km: f64,
    /// Wall-clock seconds spent inside the assignment algorithm.
    ///
    /// Kept for backward compatibility: this is exactly
    /// `stages.matching_s` — the full per-stage breakdown (rollout,
    /// acceptance, carry-over…) lives in [`AssignmentMetrics::stages`].
    pub algo_seconds: f64,
    /// Per-stage wall-clock breakdown summed over all batches (absent in
    /// metrics recorded before the observability work).
    #[serde(default)]
    pub stages: StageTimings,
    /// Location reports lost before reaching the platform (fault
    /// injection; zero in a clean run).
    pub dropped_reports: usize,
    /// Views served by the persistence fallback instead of a model
    /// rollout (fault injection; zero in a clean run).
    pub fallback_views: usize,
    /// Models quarantined and rolled back to their offline checkpoint
    /// after a divergent adaptation round.
    pub quarantined_models: usize,
    /// Assignment pairs skipped as internally inconsistent instead of
    /// panicking; counted inside `assigned_total`, so
    /// `completed + rejected + invalid_pairs == assigned_total`.
    pub invalid_pairs: usize,
    /// Tasks whose deadline passed before any worker completed them.
    /// Together with `completed` and whatever is still pending at the
    /// horizon this partitions `tasks_total` (absent in metrics recorded
    /// before the serve work).
    #[serde(default)]
    pub tasks_expired: usize,
    /// Rollouts served from the cross-batch prediction cache (zero when
    /// [`crate::EngineConfig::prediction_cache`] is off).
    #[serde(default)]
    pub cache_hits: usize,
    /// Cacheable rollouts that were computed because no valid entry
    /// existed.
    #[serde(default)]
    pub cache_misses: usize,
    /// Cache entries discarded by blanket invalidation after
    /// online-adaptation rounds.
    #[serde(default)]
    pub cache_invalidations: usize,
}

impl AssignmentMetrics {
    /// Completion ratio: completed / total tasks.
    pub fn completion_ratio(&self) -> f64 {
        if self.tasks_total == 0 {
            0.0
        } else {
            self.completed as f64 / self.tasks_total as f64
        }
    }

    /// Rejection ratio `(|M| − |M'|)/|M|` (Definition 5).
    pub fn rejection_ratio(&self) -> f64 {
        if self.assigned_total == 0 {
            0.0
        } else {
            self.rejected as f64 / self.assigned_total as f64
        }
    }

    /// Average worker cost: mean real detour of completed pairs, km.
    pub fn avg_worker_cost_km(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_detour_km / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let m = AssignmentMetrics {
            tasks_total: 100,
            assigned_total: 80,
            completed: 60,
            rejected: 20,
            total_detour_km: 90.0,
            algo_seconds: 1.0,
            ..Default::default()
        };
        assert!((m.completion_ratio() - 0.6).abs() < 1e-12);
        assert!((m.rejection_ratio() - 0.25).abs() < 1e-12);
        assert!((m.avg_worker_cost_km() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let m = AssignmentMetrics::default();
        assert_eq!(m.completion_ratio(), 0.0);
        assert_eq!(m.rejection_ratio(), 0.0);
        assert_eq!(m.avg_worker_cost_km(), 0.0);
    }

    #[test]
    fn counts_are_consistent() {
        let m = AssignmentMetrics {
            tasks_total: 10,
            assigned_total: 8,
            completed: 5,
            rejected: 3,
            ..Default::default()
        };
        assert_eq!(m.completed + m.rejected, m.assigned_total);
    }

    #[test]
    fn stage_timings_accumulate_and_total() {
        let mut a = StageTimings {
            snapshot_s: 1.0,
            rollout_s: 0.5,
            matching_s: 2.0,
            acceptance_s: 0.25,
            carry_s: 0.125,
            adapt_s: 0.0,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.matching_s, 4.0);
        assert_eq!(a.rollout_s, 1.0);
        // rollout is inside snapshot, not double-counted in the total.
        assert!((a.total_s() - 2.0 * (1.0 + 2.0 + 0.25 + 0.125)).abs() < 1e-12);
    }
}

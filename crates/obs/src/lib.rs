//! # tamp-obs
//!
//! Zero-dependency telemetry for the TAMP workspace: scoped span timers,
//! named counters/gauges/histograms, structured JSONL traces, and a
//! serialisable end-of-run [`TelemetrySnapshot`].
//!
//! Everything flows through an [`Obs`] handle:
//!
//! ```
//! use tamp_obs::Obs;
//!
//! let (obs, mem) = Obs::in_memory();
//! {
//!     let _batch = obs.span("engine.batch");
//!     obs.count("engine.fault.dropped_reports", 2);
//!     obs.gauge("train.query_loss", 0.12);
//! }
//! assert_eq!(mem.events().len(), 3);
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counters["engine.fault.dropped_reports"], 2);
//! assert_eq!(snapshot.histograms["engine.batch"].count, 1);
//! ```
//!
//! Design rules (the "overhead contract", DESIGN.md § Observability):
//!
//! * **No external dependencies.** The crate sits under every hot path
//!   in the workspace; it carries its own JSON codec ([`json`]).
//! * **Disabled means free.** [`Obs::null`] makes every call a branch on
//!   an `Option` — no clock reads, no allocation, no locking.
//! * **Telemetry never fails the run.** Recorder I/O errors are
//!   swallowed (and queryable); nothing here panics on bad input.
//! * **Determinism modulo wall-clock.** Event sequences are functions of
//!   program order; only `t_us`/`dur_us` fields vary between identically
//!   seeded runs (recorders are driven from one thread per scope).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod sampling;
pub mod slo;
pub mod span;
pub mod window;

pub use event::{Event, EventKind, SpanData};
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use registry::{GaugeStat, Histogram, HistogramSnapshot, MetricsRegistry, TelemetrySnapshot};
pub use sampling::{SamplingRecorder, SAMPLED_SPAN_PREFIX};
pub use slo::{SloEngine, SloKind, SloOutcome, SloSet, SloSpec, SloViolation};
pub use span::SpanGuard;
pub use window::{LiveView, ScopeCell, WindowSnapshot, WindowedRegistry, FLEET_SCOPE};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct ObsInner {
    recorder: Arc<dyn Recorder>,
    registry: MetricsRegistry,
    origin: Instant,
    next_span_id: AtomicU64,
}

/// The telemetry handle the engine, training, and assignment code carry.
///
/// Cloning is cheap (an `Arc`); clones share the recorder, registry, and
/// span-id sequence. A disabled handle ([`Obs::null`]) reduces every
/// operation to an `Option` branch.
#[derive(Clone)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::null()
    }
}

impl Obs {
    /// A disabled handle: every call is a no-op.
    pub fn null() -> Self {
        Self { inner: None }
    }

    /// An enabled handle feeding the given recorder (plus the internal
    /// metrics registry).
    pub fn new(recorder: impl Recorder + 'static) -> Self {
        Self::from_shared(Arc::new(recorder))
    }

    /// Like [`Obs::new`] for an already-shared recorder.
    pub fn from_shared(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                recorder,
                registry: MetricsRegistry::new(),
                origin: Instant::now(),
                next_span_id: AtomicU64::new(1),
            })),
        }
    }

    /// An enabled handle backed by a [`MemoryRecorder`], returning both
    /// (tests and reconciliation checks).
    pub fn in_memory() -> (Self, Arc<MemoryRecorder>) {
        let mem = Arc::new(MemoryRecorder::new());
        (Self::from_shared(mem.clone()), mem)
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the returned guard records on drop.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(_) => SpanGuard::open(self, name, None),
        }
    }

    /// Opens a span carrying an ordinal (`idx`) — batch number, meta
    /// iteration, cluster id…
    #[inline]
    pub fn span_idx(&self, name: &'static str, idx: u64) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(_) => SpanGuard::open(self, name, Some(idx)),
        }
    }

    /// Adds `n` to a counter and emits a `count` event (skipped when
    /// `n == 0`, so quiet batches don't bloat traces).
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        self.count_idx(name, n, None);
    }

    /// [`Obs::count`] with an ordinal.
    #[inline]
    pub fn count_idx(&self, name: &str, n: u64, idx: Option<u64>) {
        if let Some(inner) = &self.inner {
            if n == 0 {
                return;
            }
            inner.registry.count(name, n);
            inner.recorder.record(&Event::count(name, n, idx));
        }
    }

    /// Sets a gauge and emits a `gauge` event.
    #[inline]
    pub fn gauge(&self, name: &str, v: f64) {
        self.gauge_idx(name, v, None);
    }

    /// [`Obs::gauge`] with an ordinal.
    #[inline]
    pub fn gauge_idx(&self, name: &str, v: f64, idx: Option<u64>) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, v);
            inner.recorder.record(&Event::gauge(name, v, idx));
        }
    }

    /// Records a value into a histogram only (no trace event) — for
    /// high-frequency observations where per-event lines would dominate
    /// the trace.
    #[inline]
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, v);
        }
    }

    /// Freezes the current metrics. Empty when disabled.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            None => TelemetrySnapshot::default(),
            Some(inner) => inner.registry.snapshot(),
        }
    }

    /// Flushes the recorder's buffered output.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.recorder.flush();
        }
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.next_span_id.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn micros_since_origin(&self, t: Instant) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            t.saturating_duration_since(i.origin)
                .as_micros()
                .min(u64::MAX as u128) as u64
        })
    }

    pub(crate) fn record_span_end(&self, event: Event, dur_us: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(&event.name, dur_us as f64);
            inner.recorder.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_fully_inert() {
        let obs = Obs::null();
        assert!(!obs.is_enabled());
        obs.count("c", 5);
        obs.gauge("g", 1.0);
        obs.observe("h", 2.0);
        obs.flush();
        assert_eq!(obs.snapshot(), TelemetrySnapshot::default());
    }

    #[test]
    fn null_recorder_handle_still_accumulates_metrics() {
        let obs = Obs::new(NullRecorder);
        obs.count("c", 5);
        {
            let _s = obs.span("s");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.histograms["s"].count, 1);
    }

    #[test]
    fn zero_count_emits_nothing() {
        let (obs, mem) = Obs::in_memory();
        obs.count("c", 0);
        assert!(mem.is_empty());
        assert_eq!(obs.snapshot().counters.get("c"), None);
    }

    #[test]
    fn clones_share_state() {
        let (obs, mem) = Obs::in_memory();
        let clone = obs.clone();
        clone.count("c", 1);
        obs.count("c", 2);
        assert_eq!(obs.snapshot().counters["c"], 3);
        assert_eq!(mem.len(), 2);
    }

    #[test]
    fn obs_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }
}

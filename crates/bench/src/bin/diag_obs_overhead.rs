//! Measures the telemetry layer's overhead on the engine hot path —
//! the "disabled means free" contract of DESIGN.md § Observability.
//!
//! Three measurements:
//!
//! 1. **Per-op micro cost** of `span`/`count`/`gauge` on a disabled
//!    handle (`Obs::null()`) and on a [`NullRecorder`]-backed handle
//!    (clock reads + registry updates, but no I/O).
//! 2. **End-to-end engine delta**: the full batch loop
//!    (`run_assignment_observed`, PPI) timed with both handles,
//!    order-alternated repeats, paired-mean difference. Reported but
//!    not asserted — a ~60 ms run cannot resolve a sub-1% effect.
//! 3. **Op-count bound**: the run's actual telemetry ops priced at
//!    the per-op cost. Asserted against the < 2% acceptance bar.
//!
//! Runs offline (no criterion); writes `results/obs_overhead.json`.

use std::time::Instant;
use tamp_bench::{default_engine, default_training, out_dir, seed_from_env};
use tamp_obs::{NullRecorder, Obs};
use tamp_platform::experiments::report::{print_markdown_table, save_json};
use tamp_platform::training::train_predictors;
use tamp_platform::{run_assignment_observed, AssignmentAlgo};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

/// ns/op of one span + one count + one gauge on the given handle.
fn micro_ns_per_op(obs: &Obs, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let _s = obs.span("bench.micro");
        obs.count("bench.micro.count", 1);
        obs.gauge("bench.micro.gauge", i as f64);
    }
    t0.elapsed().as_secs_f64() * 1e9 / (iters as f64 * 3.0)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let seed = seed_from_env();
    println!("# Telemetry overhead (seed {seed})\n");

    // 1. Micro: per-op cost.
    let iters = 2_000_000u64;
    let null_ns = micro_ns_per_op(&Obs::null(), iters);
    let rec_ns = micro_ns_per_op(&Obs::new(NullRecorder), iters);
    print_markdown_table(
        &["handle", "ns/op (span+count+gauge avg)"],
        &[
            vec!["Obs::null()".into(), format!("{null_ns:.1}")],
            vec!["Obs::new(NullRecorder)".into(), format!("{rec_ns:.1}")],
        ],
    );

    // 2. End-to-end: full engine batch loop, interleaved repeats.
    // Small paper scale: matching is the dominant cost, as in any real
    // run — the regime the < 2% bar is defined over. (On a `tiny`
    // workload the whole run is a few ms and fixed per-batch telemetry
    // shows up at ~10%; that is not the hot path the contract covers.)
    let scale = Scale {
        n_workers: 30,
        n_tasks: 2400,
        ..Scale::small()
    };
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    let predictors = train_predictors(&workload, &default_training(seed));
    let engine = default_engine(seed);
    let run = |obs: &Obs| {
        let t0 = Instant::now();
        let m = run_assignment_observed(
            &workload,
            Some(&predictors),
            AssignmentAlgo::Ppi,
            &engine,
            None,
            None,
            obs,
        )
        .expect("engine run");
        (t0.elapsed().as_secs_f64(), m.completion_ratio())
    };

    // Warm-up, then interleave with the arm order alternating per
    // repeat — running one arm always-second makes it absorb the whole
    // drift of its predecessor (allocator state, frequency ramps) and
    // biases the comparison by far more than the effect under test.
    let (baseline_obs, recorder_obs) = (Obs::null(), Obs::new(NullRecorder));
    run(&baseline_obs);
    run(&recorder_obs);
    let repeats = 15;
    let (mut off, mut on) = (Vec::new(), Vec::new());
    let mut completion = (0.0, 0.0);
    for rep in 0..repeats {
        let arms: [bool; 2] = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for enabled in arms {
            if enabled {
                let (s, c) = run(&recorder_obs);
                on.push(s);
                completion.1 = c;
            } else {
                let (s, c) = run(&baseline_obs);
                off.push(s);
                completion.0 = c;
            }
        }
    }
    // Paired estimator: adjacent runs share machine state, so the
    // per-repeat difference cancels most of the drift that raw
    // per-arm medians keep.
    let paired_mean: f64 = off.iter().zip(&on).map(|(a, b)| b - a).sum::<f64>() / repeats as f64;
    let (off_med, on_med) = (median(&mut off), median(&mut on));
    let overhead_pct = paired_mean / off_med * 100.0;
    println!();
    print_markdown_table(
        &["arm", "median run (s)", "completion"],
        &[
            vec![
                "Obs::null()".into(),
                format!("{off_med:.4}"),
                format!("{:.4}", completion.0),
            ],
            vec![
                "Obs::new(NullRecorder)".into(),
                format!("{on_med:.4}"),
                format!("{:.4}", completion.1),
            ],
        ],
    );
    assert!(
        (completion.0 - completion.1).abs() < 1e-12,
        "telemetry must not change assignment results"
    );

    // Deterministic bound: count the telemetry ops the run actually
    // performs (events + histogram-only observes) and price them at
    // the measured per-op cost. The wall-clock delta above is the
    // corroborating measurement, but at ~50 ms per run its noise floor
    // (several %) sits above the effect; the bound is what the < 2%
    // bar is checked against.
    let (counting_obs, mem) = Obs::in_memory();
    run(&counting_obs);
    let events = mem.events().len() as u64;
    let snap = counting_obs.snapshot();
    let spans = mem
        .events()
        .iter()
        .filter(|e| e.kind == tamp_obs::EventKind::Span)
        .count() as u64;
    let hist_obs: u64 = snap.histograms.values().map(|h| h.count).sum();
    let observes = hist_obs.saturating_sub(spans);
    let total_ops = events + observes;
    let bound_pct = total_ops as f64 * rec_ns / (off_med * 1e9) * 100.0;
    println!(
        "\nmeasured end-to-end delta (paired mean of {repeats}): {overhead_pct:+.2}% \
         (per-pair noise of a ~{:.0} ms run is several %)",
        off_med * 1e3
    );
    println!(
        "op-count bound: {total_ops} ops x {rec_ns:.0} ns = {bound_pct:.2}% of the run (bar: < 2%)"
    );
    assert!(bound_pct < 2.0, "telemetry op cost exceeds the 2% bar");

    let rows = vec![serde_json::json!({
        "micro_null_ns_per_op": null_ns,
        "micro_null_recorder_ns_per_op": rec_ns,
        "engine_off_median_s": off_med,
        "engine_on_median_s": on_med,
        "measured_delta_pct": overhead_pct,
        "telemetry_ops": total_ops,
        "overhead_bound_pct": bound_pct,
        "repeats": repeats,
    })];
    save_json(&out_dir().join("obs_overhead.json"), "obs_overhead", &rows).expect("write rows");
}

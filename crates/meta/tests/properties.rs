//! Property-based tests for the meta-learning layer.

use proptest::prelude::*;
use tamp_core::Point;
use tamp_meta::game::best_response;
use tamp_meta::kmedoids::kmedoids;
use tamp_meta::quality::{cluster_quality, potential};
use tamp_meta::similarity::{sim_distribution, sim_learning_path, SimMatrix};
use tamp_meta::wasserstein::{strided_subsample, w1_distance};

fn sym_matrix() -> impl Strategy<Value = SimMatrix> {
    (2usize..10).prop_flat_map(|n| {
        prop::collection::vec(0.0..1.0f64, n * n)
            .prop_map(move |raw| SimMatrix::from_fn(n, |i, j| raw[i.min(j) * n + i.max(j)]))
    })
}

fn cloud() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..20.0f64, 0.0..10.0f64), 1..40)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn quality_is_bounded(sim in sym_matrix(), gamma in 0.01..0.99f64) {
        let n = sim.len();
        let members: Vec<usize> = (0..n).collect();
        let q = cluster_quality(&sim, &members, gamma);
        prop_assert!((0.0..=1.0).contains(&q), "Q = {q}");
        prop_assert_eq!(cluster_quality(&sim, &[], gamma), 0.0);
        prop_assert_eq!(cluster_quality(&sim, &[0], gamma), gamma);
    }

    /// Theorem 1: best response converges and never loses potential.
    #[test]
    fn best_response_converges_with_monotone_potential(
        sim in sym_matrix(),
        gamma in 0.05..0.5f64,
        k in 2usize..4,
    ) {
        let n = sim.len();
        // Round-robin initialisation into k clusters plus empty slots.
        let mut initial: Vec<Vec<usize>> = vec![Vec::new(); 2 * k];
        for i in 0..n {
            initial[i % k].push(i);
        }
        let p0 = potential(&sim, &initial, gamma);
        let out = best_response(&sim, initial, gamma, 200);
        prop_assert!(out.converged, "dynamics must reach Nash in 200 passes");
        let p1 = potential(&sim, &out.clusters, gamma);
        prop_assert!(p1 >= p0 - 1e-9, "potential fell: {p0} → {p1}");
        // Players preserved.
        let mut all: Vec<usize> = out.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn kmedoids_partitions(sim in sym_matrix(), k in 1usize..5) {
        let n = sim.len();
        let members: Vec<usize> = (0..n).collect();
        let mut rng = tamp_core::rng::rng_for(7, 0);
        let clusters = kmedoids(&sim, &members, k, 20, &mut rng);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, members);
        prop_assert!(clusters.iter().all(|c| !c.is_empty()));
        prop_assert!(clusters.len() <= k.max(n));
    }

    #[test]
    fn wasserstein_is_pseudo_metric(a in cloud(), b in cloud()) {
        let dab = w1_distance(&a, &b);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - w1_distance(&b, &a)).abs() < 1e-9, "symmetry");
        prop_assert!(w1_distance(&a, &a) < 1e-9, "identity");
    }

    #[test]
    fn wasserstein_translation_lower_bound(a in cloud(), dx in 0.0..5.0f64) {
        // W1(X, X + t) = |t| exactly for equal-size sets; subsampling may
        // pick different points of X, so allow slack through the mean.
        let b: Vec<Point> = a.iter().map(|p| p.offset(dx, 0.0)).collect();
        let d = w1_distance(&a, &b);
        // Distance between a distribution and its translate is at most
        // |t| plus subsampling noise, and at least |t| − noise; with the
        // same strided subsample on both sides it is exact.
        prop_assert!((d - dx).abs() < 1e-9, "translate: {d} vs {dx}");
    }

    #[test]
    fn sim_distribution_in_unit_interval(a in cloud(), b in cloud()) {
        let s = sim_distribution(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sim_distribution(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sim_learning_path_bounded(
        a in prop::collection::vec(prop::collection::vec(-2.0..2.0f64, 4), 0..5),
        b in prop::collection::vec(prop::collection::vec(-2.0..2.0f64, 4), 0..5),
    ) {
        let s = sim_learning_path(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        if !a.is_empty() {
            // Identity: any path is maximally similar to itself (cos = 1
            // per step) unless a step is the zero vector.
            let nonzero = a.iter().all(|g| g.iter().any(|v| v.abs() > 1e-9));
            if nonzero {
                prop_assert!((sim_learning_path(&a, &a) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn strided_subsample_is_subset(a in cloud(), n in 1usize..20) {
        let s = strided_subsample(&a, n);
        prop_assert_eq!(s.len(), a.len().min(n));
        for p in &s {
            prop_assert!(a.iter().any(|q| q == p));
        }
    }
}

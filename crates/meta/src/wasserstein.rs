//! Exact 1-Wasserstein distance between empirical 2-D distributions.
//!
//! The distribution-similarity factor (Eq. 3) needs the Wasserstein
//! distance between two workers' location distributions. On equal-size
//! empirical samples the W1 distance under the Euclidean ground metric is
//! exactly the optimal assignment cost divided by the sample count, which
//! we compute with the workspace's own Hungarian solver — the textbook
//! estimator, no approximation beyond subsampling.

use tamp_assign::hungarian::{max_weight_matching, WeightedEdge};
use tamp_core::Point;

/// Cap on the subsample size; W1 on an n-point subsample costs O(n³).
pub const DEFAULT_SUBSAMPLE: usize = 48;

/// Deterministically subsamples `n` points with an even stride (keeps the
/// temporal spread of a trajectory without needing an RNG).
pub fn strided_subsample(points: &[Point], n: usize) -> Vec<Point> {
    if points.len() <= n {
        return points.to_vec();
    }
    let stride = points.len() as f64 / n as f64;
    (0..n)
        .map(|i| points[(i as f64 * stride) as usize])
        .collect()
}

/// Exact W1 distance between two equal-size point sets.
///
/// Both sets are first subsampled to `min(|a|, |b|, cap)` points with an
/// even stride. Returns 0 for empty inputs.
pub fn w1_distance_capped(a: &[Point], b: &[Point], cap: usize) -> f64 {
    let n = a.len().min(b.len()).min(cap);
    if n == 0 {
        return 0.0;
    }
    let xs = strided_subsample(a, n);
    let ys = strided_subsample(b, n);
    // Min-cost perfect matching as max-weight with weight = OFFSET − dist;
    // with a complete equal-size bipartite graph the matching is perfect,
    // so maximising Σ(OFFSET − dist) minimises Σdist exactly.
    const OFFSET: f64 = 1.0e5;
    let mut edges = Vec::with_capacity(n * n);
    for (i, x) in xs.iter().enumerate() {
        for (j, y) in ys.iter().enumerate() {
            edges.push(WeightedEdge::new(i, j, OFFSET - x.dist(*y)));
        }
    }
    let matched = max_weight_matching(n, n, &edges);
    debug_assert_eq!(matched.len(), n, "complete graph must match perfectly");
    let total: f64 = matched.iter().map(|&(i, j)| xs[i].dist(ys[j])).sum();
    total / n as f64
}

/// [`w1_distance_capped`] with [`DEFAULT_SUBSAMPLE`].
pub fn w1_distance(a: &[Point], b: &[Point]) -> f64 {
    w1_distance_capped(a, b, DEFAULT_SUBSAMPLE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tamp_core::rng::rng_for;

    fn cloud(center: (f64, f64), n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rng_for(seed, 8);
        (0..n)
            .map(|_| {
                Point::new(
                    center.0 + rng.gen_range(-0.5..0.5),
                    center.1 + rng.gen_range(-0.5..0.5),
                )
            })
            .collect()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = cloud((5.0, 5.0), 20, 1);
        assert!(w1_distance(&a, &a) < 1e-9);
    }

    #[test]
    fn translation_shifts_distance_by_offset() {
        // W1 between X and X+t is exactly |t| (translate every point).
        let a = cloud((5.0, 5.0), 30, 2);
        let b: Vec<Point> = a.iter().map(|p| p.offset(3.0, 0.0)).collect();
        let d = w1_distance(&a, &b);
        assert!((d - 3.0).abs() < 1e-9, "translation distance {d}");
    }

    #[test]
    fn symmetric() {
        let a = cloud((2.0, 2.0), 25, 3);
        let b = cloud((8.0, 6.0), 25, 4);
        assert!((w1_distance(&a, &b) - w1_distance(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let a = cloud((1.0, 1.0), 16, 5);
        let b = cloud((4.0, 4.0), 16, 6);
        let c = cloud((8.0, 2.0), 16, 7);
        let ab = w1_distance(&a, &b);
        let bc = w1_distance(&b, &c);
        let ac = w1_distance(&a, &c);
        assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn farther_clouds_are_farther() {
        let a = cloud((2.0, 5.0), 20, 8);
        let near = cloud((4.0, 5.0), 20, 9);
        let far = cloud((14.0, 5.0), 20, 10);
        assert!(w1_distance(&a, &near) < w1_distance(&a, &far));
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(w1_distance(&[], &[]), 0.0);
        assert_eq!(w1_distance(&cloud((0.0, 0.0), 5, 11), &[]), 0.0);
    }

    #[test]
    fn subsample_preserves_spread() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let s = strided_subsample(&pts, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].x, 0.0);
        assert!(s[9].x >= 80.0, "last sample from the tail: {}", s[9].x);
    }

    #[test]
    fn matches_brute_force_on_tiny_instances() {
        // Exhaustive check against all permutations for n = 4.
        let mut rng = rng_for(12, 8);
        for _ in 0..20 {
            let a: Vec<Point> = (0..4)
                .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let b: Vec<Point> = (0..4)
                .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect();
            let got = w1_distance(&a, &b);
            // Brute force over 4! permutations.
            let idx = [0usize, 1, 2, 3];
            let mut best = f64::INFINITY;
            permute(&idx, &mut |perm| {
                let c: f64 = perm.iter().enumerate().map(|(i, &j)| a[i].dist(b[j])).sum();
                best = best.min(c / 4.0);
            });
            assert!((got - best).abs() < 1e-9, "got {got}, brute {best}");
        }
    }

    fn permute(items: &[usize], f: &mut impl FnMut(&[usize])) {
        let mut v = items.to_vec();
        heap_permute(&mut v, items.len(), f);
    }

    fn heap_permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == 1 {
            f(v);
            return;
        }
        for i in 0..k {
            heap_permute(v, k - 1, f);
            if k.is_multiple_of(2) {
                v.swap(i, k - 1);
            } else {
                v.swap(0, k - 1);
            }
        }
    }
}

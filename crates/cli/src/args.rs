//! Minimal `--key value` argument parsing.
//!
//! The workspace's approved dependency list has no CLI parser, and the
//! surface is small enough that a hand-rolled map keeps the binary
//! dependency-free.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// Grammar: `[command] (--key value | --flag)*`. A `--key` followed by
    /// another `--key` (or nothing) is treated as a boolean flag with
    /// value `"true"`.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                out.command = iter.next();
            }
        }
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument: {arg}"))?;
            if key.is_empty() {
                return Err("empty option name".into());
            }
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(),
            };
            if out.options.insert(key.to_string(), value).is_some() {
                return Err(format!("duplicate option: --{key}"));
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Boolean flag (present without value or with `true`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Names of all provided options (for unknown-option checks).
    pub fn option_names(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn command_and_options() {
        let a = parse(&["simulate", "--seed", "7", "--algo", "ppi"]);
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_or("missing", "x"), "x");
        assert_eq!(a.get_parsed::<u64>("seed").unwrap(), Some(7));
    }

    #[test]
    fn bare_flags() {
        let a = parse(&["generate", "--verbose", "--out", "w.json"]);
        assert!(a.flag("verbose"));
        assert_eq!(a.get("out"), Some("w.json"));
        assert!(!a.flag("out"));
    }

    #[test]
    fn no_command() {
        let a = parse(&["--help"]);
        assert_eq!(a.command, None);
        assert!(a.flag("help"));
    }

    #[test]
    fn rejects_duplicates_and_positionals() {
        assert!(Args::parse(["--a".into(), "1".into(), "--a".into(), "2".into()]).is_err());
        assert!(Args::parse(["cmd".into(), "stray".into()]).is_err());
    }

    #[test]
    fn parse_error_message_names_key() {
        let a = parse(&["x", "--n", "abc"]);
        let err = a.get_parsed::<u32>("n").unwrap_err();
        assert!(err.contains("--n"), "{err}");
    }
}

//! The Prediction-Performance-Involved task assignment algorithm
//! (Algorithm 4).
//!
//! PPI decomposes a batch's assignment into three stages ordered by the
//! confidence that the worker will actually complete the task:
//!
//! 1. **High confidence** — pairs with `|B|·MR ≥ 1`, i.e. the expected
//!    number of predicted trajectory points from which the worker can
//!    serve the task is at least one. Matched first by the KM algorithm
//!    with weight `1/minB`.
//! 2. **Ranked residual** — remaining pairs in descending `|B|·MR` order,
//!    matched in mini-batches of `ε` pairs, each closed with a KM call.
//! 3. **Best effort** — still-unassigned tasks and workers paired purely
//!    on predicted proximity under the detour/deadline bound.
//!
//! The staging deliberately trades global matching optimality for a lower
//! rejection rate: pairs the model is confident about are locked in before
//! speculative ones can displace them (see the paper's Discussion of
//! Algorithm 4).

use crate::feasibility::{
    expected_support, feasible_distances, min_b, theorem2_bound, FeasibilityParams,
};
use crate::hungarian::{max_weight_matching, WeightedEdge};
use crate::view::{ExcludedPairs, WorkerView};
use tamp_core::assignment::{Assignment, AssignmentPair};
use tamp_core::geometry::min_dist_to_path;
use tamp_core::{Minutes, SpatialTask};
use tamp_obs::Obs;

/// Softening constant for `1/minB` weights so a zero distance doesn't
/// produce an infinite weight.
const WEIGHT_EPS: f64 = 0.05;

/// Parameters of [`ppi_assign`].
#[derive(Debug, Clone, Copy)]
pub struct PpiParams {
    /// Matching-rate radius `a` (km) used in the Theorem 2 premise.
    pub a_km: f64,
    /// Stage-2 mini-batch size `ε ∈ ℕ₊`.
    pub epsilon: usize,
    /// Current time `t_c`.
    pub now: Minutes,
}

impl Default for PpiParams {
    fn default() -> Self {
        Self {
            a_km: 0.4,
            epsilon: 8,
            now: Minutes::ZERO,
        }
    }
}

/// Inverse-distance preference weight.
#[inline]
fn inv_weight(dist: f64) -> f64 {
    1.0 / (dist + WEIGHT_EPS)
}

/// Runs Algorithm 4 on one batch with no excluded pairs.
pub fn ppi_assign(tasks: &[SpatialTask], workers: &[WorkerView], params: &PpiParams) -> Assignment {
    ppi_assign_excluding(tasks, workers, params, &ExcludedPairs::new())
}

/// Runs Algorithm 4 on one batch.
///
/// `tasks` and `workers` index the bipartite graph positionally; the
/// returned [`Assignment`] references their ids. Pairs in `excluded`
/// (previously rejected by the worker) are never proposed.
pub fn ppi_assign_excluding(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    params: &PpiParams,
    excluded: &ExcludedPairs,
) -> Assignment {
    ppi_assign_observed(tasks, workers, params, excluded, &Obs::null())
}

/// [`ppi_assign_excluding`] with telemetry: per-stage spans
/// (`ppi.stage1`/`ppi.stage2`/`ppi.stage3`), candidate-pruning counters
/// (`ppi.pairs.{scored,excluded,infeasible,confident,deferred}`,
/// `ppi.stage3.candidates`), and a `ppi.km.calls` counter for the inner
/// Hungarian invocations (each timed into the `ppi.km` histogram).
///
/// Passing [`Obs::null`] makes this byte-identical to
/// [`ppi_assign_excluding`] — the assignment itself never depends on the
/// telemetry handle.
pub fn ppi_assign_observed(
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    params: &PpiParams,
    excluded: &ExcludedPairs,
    obs: &Obs,
) -> Assignment {
    let mut plan = Assignment::new();
    if tasks.is_empty() || workers.is_empty() {
        return plan;
    }
    assert!(params.epsilon > 0, "ε must be positive");
    let fparams = FeasibilityParams {
        a_km: params.a_km,
        now: params.now,
    };
    let mut km_calls: u64 = 0;
    let mut km = |n_left: usize, n_right: usize, edges: &[WeightedEdge]| {
        km_calls += 1;
        let start = std::time::Instant::now();
        let m = max_weight_matching(n_left, n_right, edges);
        obs.observe("ppi.km", start.elapsed().as_secs_f64() * 1e6);
        m
    };

    // ---- Stage 1: score every pair (Algorithm 4, lines 1–11) ----
    let stage1 = obs.span("ppi.stage1");
    let mut excluded_pairs: u64 = 0;
    let mut infeasible_pairs: u64 = 0;
    let mut confident = Vec::new();
    let mut deferred: Vec<(f64, f64, usize, usize)> = Vec::new(); // (support, minB, task, worker)
    for (ti, task) in tasks.iter().enumerate() {
        for (wi, worker) in workers.iter().enumerate() {
            if excluded.contains(&(task.id, worker.id)) {
                excluded_pairs += 1;
                continue;
            }
            let b = feasible_distances(worker, task, &fparams);
            if b.is_empty() {
                infeasible_pairs += 1;
                continue;
            }
            let support = expected_support(b.len(), worker.mr);
            let mb = min_b(&b).expect("non-empty B");
            if support >= 1.0 {
                confident.push(WeightedEdge::new(ti, wi, inv_weight(mb)));
            } else {
                deferred.push((support, mb, ti, wi));
            }
        }
    }
    obs.count("ppi.pairs.scored", (tasks.len() * workers.len()) as u64);
    obs.count("ppi.pairs.excluded", excluded_pairs);
    obs.count("ppi.pairs.infeasible", infeasible_pairs);
    obs.count("ppi.pairs.confident", confident.len() as u64);
    obs.count("ppi.pairs.deferred", deferred.len() as u64);
    let matched = km(tasks.len(), workers.len(), &confident);
    push_pairs(&mut plan, tasks, workers, &matched, &confident);
    drop(stage1);

    // ---- Stage 2: ranked residual in ε mini-batches (lines 13–27) ----
    let stage2 = obs.span("ppi.stage2");
    deferred.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite support"));
    let mut pending: Vec<WeightedEdge> = Vec::new();
    let mut assigned_tasks = plan.assigned_tasks();
    let mut assigned_workers = plan.assigned_workers();
    let mut flush =
        |pending: &mut Vec<WeightedEdge>,
         plan: &mut Assignment,
         assigned_tasks: &mut std::collections::HashSet<tamp_core::TaskId>,
         assigned_workers: &mut std::collections::HashSet<tamp_core::WorkerId>| {
            if pending.is_empty() {
                return;
            }
            let m = km(tasks.len(), workers.len(), pending);
            for &(ti, wi) in &m {
                let pair = AssignmentPair {
                    task: tasks[ti].id,
                    worker: workers[wi].id,
                    score: edge_weight(pending, ti, wi),
                };
                if plan.try_push(pair) {
                    assigned_tasks.insert(pair.task);
                    assigned_workers.insert(pair.worker);
                }
            }
            pending.clear();
        };
    for &(_support, mb, ti, wi) in &deferred {
        if assigned_tasks.contains(&tasks[ti].id) || assigned_workers.contains(&workers[wi].id) {
            continue; // element removed from 𝓑 by an earlier KM round
        }
        pending.push(WeightedEdge::new(ti, wi, inv_weight(mb)));
        if pending.len() == params.epsilon {
            flush(
                &mut pending,
                &mut plan,
                &mut assigned_tasks,
                &mut assigned_workers,
            );
        }
    }
    flush(
        &mut pending,
        &mut plan,
        &mut assigned_tasks,
        &mut assigned_workers,
    );
    drop(stage2);

    // ---- Stage 3: best-effort on predicted proximity (lines 28–34) ----
    let stage3_span = obs.span("ppi.stage3");
    let mut stage3 = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        if assigned_tasks.contains(&task.id) {
            continue;
        }
        for (wi, worker) in workers.iter().enumerate() {
            if assigned_workers.contains(&worker.id) || excluded.contains(&(task.id, worker.id)) {
                continue;
            }
            if let Some(dmin) = min_dist_to_path(&worker.predicted, task.location) {
                if dmin <= theorem2_bound(worker, task, params.now) {
                    stage3.push(WeightedEdge::new(ti, wi, inv_weight(dmin)));
                }
            }
        }
    }
    obs.count("ppi.stage3.candidates", stage3.len() as u64);
    let matched = km(tasks.len(), workers.len(), &stage3);
    push_pairs(&mut plan, tasks, workers, &matched, &stage3);
    drop(stage3_span);
    obs.count("ppi.km.calls", km_calls);

    plan
}

fn edge_weight(edges: &[WeightedEdge], l: usize, r: usize) -> f64 {
    edges
        .iter()
        .find(|e| e.left == l && e.right == r)
        .map_or(0.0, |e| e.weight)
}

fn push_pairs(
    plan: &mut Assignment,
    tasks: &[SpatialTask],
    workers: &[WorkerView],
    matched: &[(usize, usize)],
    edges: &[WeightedEdge],
) {
    for &(ti, wi) in matched {
        let pair = AssignmentPair {
            task: tasks[ti].id,
            worker: workers[wi].id,
            score: edge_weight(edges, ti, wi),
        };
        plan.try_push(pair);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::{Point, TaskId, WorkerId};

    fn worker(id: u64, pred: &[(f64, f64)], mr: f64) -> WorkerView {
        WorkerView {
            id: WorkerId(id),
            current: Point::new(pred[0].0, pred[0].1),
            predicted: pred.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            real_future: Vec::new(),
            mr,
            detour_limit_km: 6.0,
            speed_km_per_min: 0.3,
        }
    }

    fn task(id: u64, x: f64, y: f64) -> SpatialTask {
        SpatialTask::new(
            TaskId(id),
            Point::new(x, y),
            Minutes::ZERO,
            Minutes::new(240.0),
        )
    }

    fn params() -> PpiParams {
        PpiParams {
            a_km: 0.4,
            epsilon: 2,
            now: Minutes::ZERO,
        }
    }

    #[test]
    fn empty_inputs_give_empty_plan() {
        assert!(ppi_assign(&[], &[], &params()).is_empty());
        assert!(ppi_assign(&[task(1, 0.0, 0.0)], &[], &params()).is_empty());
    }

    #[test]
    fn plan_is_valid_and_confident_worker_keeps_near_task() {
        // Worker 1 passes directly by task 1 many times (high support);
        // worker 2 is a weak candidate for both tasks.
        let w1 = worker(1, &[(1.0, 1.0), (1.1, 1.0), (1.2, 1.0), (1.3, 1.0)], 0.9);
        let w2 = worker(2, &[(5.0, 5.0)], 0.2);
        let t1 = task(1, 1.1, 1.05);
        let t2 = task(2, 5.5, 5.0);
        let plan = ppi_assign(&[t1, t2], &[w1, w2], &params());
        assert!(plan.is_valid());
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), Some(WorkerId(2)));
    }

    #[test]
    fn stage3_catches_pairs_without_mr_support() {
        // MR = 0 keeps every pair out of stages 1–2; stage 3 must still
        // assign by predicted proximity.
        let w = worker(1, &[(2.0, 2.0)], 0.0);
        let t = task(1, 2.2, 2.0);
        let plan = ppi_assign(&[t], &[w], &params());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn infeasible_pairs_stay_unassigned() {
        // Task far outside the worker's detour bound.
        let w = worker(1, &[(0.0, 0.0)], 0.9);
        let t = task(1, 15.0, 9.0);
        let plan = ppi_assign(&[t], &[w], &params());
        assert!(plan.is_empty());
    }

    #[test]
    fn one_worker_cannot_take_two_tasks() {
        let w = worker(1, &[(1.0, 1.0), (1.1, 1.0)], 0.9);
        let t1 = task(1, 1.0, 1.0);
        let t2 = task(2, 1.1, 1.0);
        let plan = ppi_assign(&[t1, t2], &[w], &params());
        assert_eq!(plan.len(), 1);
        assert!(plan.is_valid());
    }

    #[test]
    fn prioritises_high_confidence_pair_for_contested_worker() {
        // Both tasks want worker 1 (the only nearby one). Task 1 enjoys
        // stage-1 confidence (many close predicted points); task 2 only
        // qualifies via stage 3. Worker 1 must go to task 1, and worker 2
        // (far but within bounds for task 2? no) — task 2 stays unassigned.
        let w1 = worker(1, &[(1.0, 1.0), (1.05, 1.0), (1.1, 1.0)], 0.8);
        let t1 = task(1, 1.05, 1.0);
        let t2 = task(2, 2.5, 1.0); // within stage-3 bound of w1 only
        let plan = ppi_assign(&[t1, t2], &[w1], &params());
        assert_eq!(plan.worker_for(TaskId(1)), Some(WorkerId(1)));
        assert_eq!(plan.worker_for(TaskId(2)), None);
    }

    #[test]
    fn epsilon_one_still_assigns_everything_feasible() {
        let mut p = params();
        p.epsilon = 1;
        // Three medium-confidence pairs (support < 1).
        let workers: Vec<WorkerView> = (0..3)
            .map(|i| {
                worker(
                    i,
                    &[(i as f64 * 2.0, 0.0), (i as f64 * 2.0 + 0.1, 0.0)],
                    0.3,
                )
            })
            .collect();
        let tasks: Vec<SpatialTask> = (0..3).map(|i| task(i, i as f64 * 2.0 + 0.2, 0.0)).collect();
        let plan = ppi_assign(&tasks, &workers, &p);
        assert_eq!(plan.len(), 3);
        assert!(plan.is_valid());
    }
}

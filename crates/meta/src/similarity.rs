//! The three clustering factors and their pairwise similarity matrices.
//!
//! * **Spatial** (`Sim_s`, Eq. 1): a kernel mean embedding over the two
//!   workers' POI sequences, using a Gaussian location kernel modulated by
//!   category agreement, normalised into `\[0, 1\]` by the self-kernel
//!   (cosine normalisation in the kernel's feature space).
//! * **Learning path** (`Sim_l`, Eq. 2): the mean cosine similarity of the
//!   two tasks' k-step gradient sequences, affinely mapped from `[−1, 1]`
//!   to `\[0, 1\]` so every factor shares the `γ`-comparable scale of Eq. 4.
//! * **Distribution** (`Sim_d`, Eq. 3): the reciprocal Wasserstein
//!   distance; we use the bounded form `1/(1 + W1/λ)` so that identical
//!   distributions score exactly 1 rather than ∞ (the paper's `1/W1` is
//!   unbounded, which would make `Q(G)` incomparable with `γ ∈ (0,1)`).

use crate::learning_task::LearningTask;
use crate::wasserstein::{strided_subsample, w1_distance, DEFAULT_SUBSAMPLE};
use serde::{Deserialize, Serialize};
use tamp_core::Poi;
use tamp_nn::matrix::vecops::{cosine, dot, norm};

/// Which clustering factor a similarity matrix encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FactorKind {
    /// Distribution similarity `Sim_d` (Eq. 3).
    Distribution,
    /// Spatial (POI) similarity `Sim_s` (Eq. 1).
    Spatial,
    /// Learning-path similarity `Sim_l` (Eq. 2).
    LearningPath,
}

impl FactorKind {
    /// The paper's chosen factor order for multi-level clustering
    /// (Section IV-B: "the order ... is Sim_d, Sim_s, and Sim_l").
    pub const PAPER_ORDER: [FactorKind; 3] = [
        FactorKind::Distribution,
        FactorKind::Spatial,
        FactorKind::LearningPath,
    ];
}

/// A symmetric pairwise similarity matrix over `n` learning tasks, with
/// values in `\[0, 1\]` and a unit diagonal.
#[derive(Debug, Clone)]
pub struct SimMatrix {
    n: usize,
    vals: Vec<f64>,
}

impl SimMatrix {
    /// Builds from a symmetric pair function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut vals = vec![1.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let s = f(i, j).clamp(0.0, 1.0);
                vals[i * n + j] = s;
                vals[j * n + i] = s;
            }
        }
        Self { n, vals }
    }

    /// Builds from a symmetric pair function, computing the upper
    /// triangle across `threads` scoped workers.
    ///
    /// Bitwise identical to [`SimMatrix::from_fn`] for every thread
    /// count: each pair value depends only on `(i, j)` and its placement
    /// in the matrix is position-determined, so scheduling cannot change
    /// the result. Rows are dealt round-robin because row `i` carries
    /// `n − 1 − i` pairs — contiguous chunks would leave the last worker
    /// nearly idle.
    pub fn from_fn_par(n: usize, threads: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let n_threads = threads.max(1);
        if n_threads == 1 || n < 2 {
            return Self::from_fn(n, f);
        }
        let mut vals = vec![1.0; n * n];
        {
            let mut shards: Vec<Vec<(usize, &mut [f64])>> =
                (0..n_threads).map(|_| Vec::new()).collect();
            for (i, row) in vals.chunks_mut(n).enumerate() {
                shards[i % n_threads].push((i, row));
            }
            let f = &f;
            crossbeam::thread::scope(|s| {
                for shard in shards {
                    s.spawn(move |_| {
                        for (i, row) in shard {
                            for (j, v) in row.iter_mut().enumerate().skip(i + 1) {
                                *v = f(i, j).clamp(0.0, 1.0);
                            }
                        }
                    });
                }
            })
            .expect("similarity worker panicked");
        }
        for i in 0..n {
            for j in (i + 1)..n {
                vals[j * n + i] = vals[i * n + j];
            }
        }
        Self { n, vals }
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Pairwise similarity (1 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.vals[i * self.n + j]
    }

    /// The matching *distance* `1 − sim`, used by k-medoids.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        1.0 - self.get(i, j)
    }

    /// Mean similarity between `i` and a set of indices (ignoring `i`
    /// itself); 0 for an empty set.
    pub fn mean_to_set(&self, i: usize, set: &[usize]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &j in set {
            if j != i {
                sum += self.get(i, j);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// The kernel `K_h` of Eq. 1: Gaussian in location, scaled by category
/// agreement (1 for equal categories, `CROSS_CATEGORY` otherwise).
fn poi_kernel(a: &Poi, b: &Poi, bandwidth_km: f64) -> f64 {
    const CROSS_CATEGORY: f64 = 0.3;
    let loc = (-a.loc.dist_sq(b.loc) / (2.0 * bandwidth_km * bandwidth_km)).exp();
    let cat = if a.category == b.category {
        1.0
    } else {
        CROSS_CATEGORY
    };
    loc * cat
}

fn mean_kernel(a: &[Poi], b: &[Poi], bandwidth_km: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for x in a {
        for y in b {
            sum += poi_kernel(x, y, bandwidth_km);
        }
    }
    sum / (a.len() * b.len()) as f64
}

/// `Sim_s` (Eq. 1): normalised kernel mean similarity of POI sequences.
///
/// Normalisation is the kernel-space cosine `k(a,b)/√(k(a,a)·k(b,b))`,
/// which maps into `\[0, 1\]` with 1 for identical sequences.
pub fn sim_spatial(a: &[Poi], b: &[Poi], bandwidth_km: f64) -> f64 {
    let saa = mean_kernel(a, a, bandwidth_km);
    let sbb = mean_kernel(b, b, bandwidth_km);
    sim_spatial_normalised(a, b, saa, sbb, bandwidth_km)
}

/// [`sim_spatial`] with the self-kernels `k(a,a)` / `k(b,b)` supplied by
/// the caller. They only depend on one sequence each, so matrix builds
/// hoist them out of the O(n²) pair loop; the arithmetic is otherwise
/// identical to [`sim_spatial`].
fn sim_spatial_normalised(a: &[Poi], b: &[Poi], saa: f64, sbb: f64, bandwidth_km: f64) -> f64 {
    let cross = mean_kernel(a, b, bandwidth_km);
    if cross <= 0.0 {
        return 0.0;
    }
    if saa <= 0.0 || sbb <= 0.0 {
        return 0.0;
    }
    (cross / (saa * sbb).sqrt()).clamp(0.0, 1.0)
}

/// `Sim_l` (Eq. 2): mean step-wise cosine similarity of two k-step
/// gradient paths, mapped from `[−1, 1]` to `\[0, 1\]`.
pub fn sim_learning_path(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let k = a.len().min(b.len());
    if k == 0 {
        return 0.0;
    }
    let mean: f64 = (0..k).map(|i| cosine(&a[i], &b[i])).sum::<f64>() / k as f64;
    ((mean + 1.0) / 2.0).clamp(0.0, 1.0)
}

/// [`sim_learning_path`] with the per-step gradient norms supplied by the
/// caller (each norm depends on one path only, so matrix builds compute
/// them once per task). Inlines [`cosine`]'s exact arithmetic — same
/// zero-guard, same `dot/(‖a‖·‖b‖)` and clamps — on the hoisted norms.
fn sim_learning_path_normed(a: &[Vec<f64>], b: &[Vec<f64>], na: &[f64], nb: &[f64]) -> f64 {
    let k = a.len().min(b.len());
    if k == 0 {
        return 0.0;
    }
    let mean: f64 = (0..k)
        .map(|i| {
            if na[i] < 1e-12 || nb[i] < 1e-12 {
                0.0
            } else {
                (dot(&a[i], &b[i]) / (na[i] * nb[i])).clamp(-1.0, 1.0)
            }
        })
        .sum::<f64>()
        / k as f64;
    ((mean + 1.0) / 2.0).clamp(0.0, 1.0)
}

/// Characteristic length scale (km) of the distribution similarity: the
/// W1 distance at which `Sim_d` halves. City-block scale keeps mid-range
/// similarities comparable with `γ` and the level thresholds `Θ`.
pub const DIST_SCALE_KM: f64 = 5.0;

/// `Sim_d` (Eq. 3, bounded form): `1/(1 + W1/λ)` between the two tasks'
/// sample distributions, with `λ =` [`DIST_SCALE_KM`].
pub fn sim_distribution(a: &[tamp_core::Point], b: &[tamp_core::Point]) -> f64 {
    1.0 / (1.0 + w1_distance(a, b) / DIST_SCALE_KM)
}

/// Default Gaussian bandwidth for the POI kernel, km.
pub const DEFAULT_BANDWIDTH_KM: f64 = 1.5;

/// Builds the similarity matrix for one factor over a task set.
///
/// For [`FactorKind::LearningPath`] the caller must supply the per-task
/// gradient paths (computed by [`crate::maml::gradient_paths`]); the other
/// factors read the tasks directly.
pub fn build_sim_matrix(
    factor: FactorKind,
    tasks: &[LearningTask],
    gradient_paths: Option<&[Vec<Vec<f64>>]>,
) -> SimMatrix {
    build_sim_matrix_threaded(factor, tasks, gradient_paths, 1)
}

/// [`build_sim_matrix`] with per-task preprocessing hoisted out of the
/// O(n²) pair loop and the upper triangle computed across `threads`
/// workers (values are bitwise identical for every thread count; see
/// [`SimMatrix::from_fn_par`]).
pub fn build_sim_matrix_threaded(
    factor: FactorKind,
    tasks: &[LearningTask],
    gradient_paths: Option<&[Vec<Vec<f64>>]>,
    threads: usize,
) -> SimMatrix {
    let n = tasks.len();
    match factor {
        FactorKind::Spatial => {
            // The self-kernels normalising Eq. 1 depend on one sequence
            // each; compute all n once instead of 2·(n choose 2) times.
            let self_k: Vec<f64> = tasks
                .iter()
                .map(|t| mean_kernel(&t.poi_seq, &t.poi_seq, DEFAULT_BANDWIDTH_KM))
                .collect();
            SimMatrix::from_fn_par(n, threads, |i, j| {
                sim_spatial_normalised(
                    &tasks[i].poi_seq,
                    &tasks[j].poi_seq,
                    self_k[i],
                    self_k[j],
                    DEFAULT_BANDWIDTH_KM,
                )
            })
        }
        FactorKind::Distribution => {
            // When both sides hold at least DEFAULT_SUBSAMPLE points the
            // W1 subsample size is the cap for every partner, so the
            // strided subsample can be taken once per task. Smaller tasks
            // make the size min(|a|, |b|, cap) pair-dependent — those
            // pairs keep the unhoisted path so values stay identical.
            let subs: Vec<Option<Vec<tamp_core::Point>>> = tasks
                .iter()
                .map(|t| {
                    (t.sample_points.len() >= DEFAULT_SUBSAMPLE)
                        .then(|| strided_subsample(&t.sample_points, DEFAULT_SUBSAMPLE))
                })
                .collect();
            SimMatrix::from_fn_par(n, threads, |i, j| match (&subs[i], &subs[j]) {
                (Some(a), Some(b)) => 1.0 / (1.0 + w1_distance(a, b) / DIST_SCALE_KM),
                _ => sim_distribution(&tasks[i].sample_points, &tasks[j].sample_points),
            })
        }
        FactorKind::LearningPath => {
            let paths = gradient_paths.expect("learning-path factor needs gradient paths");
            assert_eq!(paths.len(), tasks.len(), "one path per task");
            // Eq. 2's cosines reuse each step gradient's norm against
            // every partner; hoist the norms out of the pair loop.
            let norms: Vec<Vec<f64>> = paths
                .iter()
                .map(|p| p.iter().map(|g| norm(g)).collect())
                .collect();
            SimMatrix::from_fn_par(n, threads, |i, j| {
                sim_learning_path_normed(&paths[i], &paths[j], &norms[i], &norms[j])
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::{PoiCategory, Point};

    fn poi(x: f64, y: f64, cat: PoiCategory) -> Poi {
        Poi::new(Point::new(x, y), cat)
    }

    #[test]
    fn spatial_identity_is_one() {
        let seq = vec![
            poi(1.0, 1.0, PoiCategory::Food),
            poi(3.0, 2.0, PoiCategory::Office),
        ];
        let s = sim_spatial(&seq, &seq, 1.5);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spatial_decays_with_distance() {
        let a = vec![poi(1.0, 1.0, PoiCategory::Food)];
        let near = vec![poi(1.5, 1.0, PoiCategory::Food)];
        let far = vec![poi(15.0, 8.0, PoiCategory::Food)];
        assert!(sim_spatial(&a, &near, 1.5) > sim_spatial(&a, &far, 1.5));
    }

    #[test]
    fn spatial_prefers_same_category() {
        let a = vec![poi(1.0, 1.0, PoiCategory::Food)];
        let same = vec![poi(1.5, 1.0, PoiCategory::Food)];
        let diff = vec![poi(1.5, 1.0, PoiCategory::Office)];
        assert!(sim_spatial(&a, &same, 1.5) > sim_spatial(&a, &diff, 1.5));
    }

    #[test]
    fn spatial_empty_is_zero() {
        let a = vec![poi(1.0, 1.0, PoiCategory::Food)];
        assert_eq!(sim_spatial(&a, &[], 1.5), 0.0);
        assert_eq!(sim_spatial(&[], &[], 1.5), 0.0);
    }

    #[test]
    fn learning_path_identity_and_opposite() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!((sim_learning_path(&a, &a) - 1.0).abs() < 1e-9);
        let b = vec![vec![-1.0, 0.0], vec![0.0, -1.0]];
        assert!(sim_learning_path(&a, &b).abs() < 1e-9);
        assert_eq!(sim_learning_path(&a, &[]), 0.0);
    }

    #[test]
    fn distribution_identity_is_one() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        assert!((sim_distribution(&pts, &pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_decays_with_shift() {
        let a: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let near: Vec<Point> = a.iter().map(|p| p.offset(0.5, 0.0)).collect();
        let far: Vec<Point> = a.iter().map(|p| p.offset(8.0, 0.0)).collect();
        assert!(sim_distribution(&a, &near) > sim_distribution(&a, &far));
    }

    #[test]
    fn matrix_is_symmetric_unit_diag() {
        let m = SimMatrix::from_fn(4, |i, j| ((i + j) as f64 * 0.1).min(1.0));
        for i in 0..4 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
        assert!((m.dist(0, 1) - (1.0 - m.get(0, 1))).abs() < 1e-12);
    }

    #[test]
    fn mean_to_set_ignores_self() {
        let m = SimMatrix::from_fn(3, |_, _| 0.5);
        assert_eq!(m.mean_to_set(0, &[0]), 0.0);
        assert_eq!(m.mean_to_set(0, &[0, 1, 2]), 0.5);
    }

    /// The memoized + threaded builds must be bitwise identical to the
    /// naive per-pair functions for every factor and thread count — the
    /// hoisted self-kernels / subsamples / norms reuse the exact same
    /// arithmetic, and upper-triangle placement is position-determined.
    #[test]
    fn threaded_memoized_builds_match_naive_pairwise() {
        use crate::learning_task::LearningTask;
        use rand::Rng;
        use tamp_core::rng::rng_for;
        use tamp_core::WorkerId;

        let mut rng = rng_for(99, 3);
        let n = 7usize;
        let tasks: Vec<LearningTask> = (0..n)
            .map(|i| {
                // Mix sizes around DEFAULT_SUBSAMPLE so both the hoisted
                // and the fallback W1 paths are exercised.
                let n_pts = if i % 2 == 0 {
                    DEFAULT_SUBSAMPLE + 12
                } else {
                    10
                };
                let sample_points: Vec<Point> = (0..n_pts)
                    .map(|_| Point::new(rng.gen_range(0.0..19.0), rng.gen_range(0.0..9.0)))
                    .collect();
                let poi_seq: Vec<Poi> = (0..4)
                    .map(|k| {
                        let cat = if (i + k) % 2 == 0 {
                            PoiCategory::Food
                        } else {
                            PoiCategory::Office
                        };
                        poi(rng.gen_range(0.0..19.0), rng.gen_range(0.0..9.0), cat)
                    })
                    .collect();
                LearningTask {
                    worker_id: WorkerId(i as u64),
                    support: Default::default(),
                    query: Default::default(),
                    poi_seq,
                    sample_points,
                    is_new: false,
                }
            })
            .collect();
        let paths: Vec<Vec<Vec<f64>>> = (0..n)
            .map(|i| {
                if i == 3 {
                    Vec::new() // empty path: Sim_l must stay 0 to anyone
                } else {
                    (0..3)
                        .map(|_| (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect())
                        .collect()
                }
            })
            .collect();

        for factor in FactorKind::PAPER_ORDER {
            let naive = match factor {
                FactorKind::Spatial => SimMatrix::from_fn(n, |i, j| {
                    sim_spatial(&tasks[i].poi_seq, &tasks[j].poi_seq, DEFAULT_BANDWIDTH_KM)
                }),
                FactorKind::Distribution => SimMatrix::from_fn(n, |i, j| {
                    sim_distribution(&tasks[i].sample_points, &tasks[j].sample_points)
                }),
                FactorKind::LearningPath => {
                    SimMatrix::from_fn(n, |i, j| sim_learning_path(&paths[i], &paths[j]))
                }
            };
            for threads in [1usize, 2, 4] {
                let m = build_sim_matrix_threaded(factor, &tasks, Some(&paths), threads);
                for i in 0..n {
                    for j in 0..n {
                        assert_eq!(
                            m.get(i, j).to_bits(),
                            naive.get(i, j).to_bits(),
                            "factor {factor:?} threads {threads} pair ({i},{j})"
                        );
                    }
                }
            }
        }
    }
}

//! City-scale matching diagnostics: how far does each solver backend
//! carry a realistic assignment batch?
//!
//! A synthetic city of 16 hotspot districts is swept from 10k to 500k
//! workers (tasks = workers/8). Each task is wired to its ~12 nearest
//! workers through the bucket index, giving the component-structured
//! sparse graphs the serving engine produces. Per size we record the
//! component-size distribution, the median solve time of the exact
//! dense backend (when tractable — gated on an estimated slack-update
//! and dense-matrix-bytes budget, with the skip reason recorded) and of
//! the sparse forward-auction backend, peak matrix bytes for both, and
//! the bids saved by warm-starting prices across perturbed windows.
//! Wherever exact runs, exact-vs-auction equivalence is asserted per
//! repeat.
//!
//! Full sweep writes `results/scaling_matching.json`; `--smoke` runs the
//! 10k size only, asserts the equivalence and the auction's sparse
//! memory bound, and writes nothing (CI-friendly).

use rand::Rng;
use std::time::Instant;
use tamp_assign::auction::AuctionSolver;
use tamp_assign::hungarian::{matching_weight, WeightedEdge};
use tamp_assign::solver::{
    component_sizes, solve_matching, solve_matching_keyed, ExactKmSolver, MatchingSolver,
    VertexKeys,
};
use tamp_assign::spatial::BucketIndex;
use tamp_assign::view::WorkerView;
use tamp_bench::{out_dir, seed_from_env};
use tamp_core::rng::rng_for;
use tamp_core::{Point, WorkerId};
use tamp_platform::experiments::report::{print_markdown_table, save_json};

const DISTRICTS: usize = 16;
const AREA_X_KM: f64 = 60.0;
const AREA_Y_KM: f64 = 45.0;
const DISTRICT_SIGMA_KM: f64 = 1.2;
const KNN: usize = 12;
const WARM_WINDOWS: usize = 3;

/// Exact-backend budget: estimated slack updates (Σ ln²·rn over
/// components) and the largest component's dense matrix. Beyond either,
/// the dense oracle is skipped and the reason recorded.
const EXACT_OPS_CAP: f64 = 2e10;
const EXACT_BYTES_CAP: usize = 1 << 30;

struct City {
    task_pts: Vec<Point>,
    worker_pts: Vec<Point>,
    edges: Vec<WeightedEdge>,
    left_keys: Vec<u64>,
    right_keys: Vec<u64>,
}

fn inv_dist(task: Point, worker: Point) -> f64 {
    1.0 / (1.0 + task.dist(worker))
}

/// Triangular-distributed hotspot scatter around a district centre.
fn scatter(rng: &mut impl Rng, c: Point) -> Point {
    let dx = (rng.gen_range(0.0..1.0) + rng.gen_range(0.0..1.0) - 1.0) * 3.0 * DISTRICT_SIGMA_KM;
    let dy = (rng.gen_range(0.0..1.0) + rng.gen_range(0.0..1.0) - 1.0) * 3.0 * DISTRICT_SIGMA_KM;
    Point::new(c.x + dx, c.y + dy)
}

fn build_city(n_workers: usize, seed: u64) -> City {
    let mut rng = rng_for(seed, 0);
    let centres: Vec<Point> = (0..DISTRICTS)
        .map(|_| {
            Point::new(
                rng.gen_range(5.0..AREA_X_KM - 5.0),
                rng.gen_range(5.0..AREA_Y_KM - 5.0),
            )
        })
        .collect();
    let n_tasks = n_workers / 8;
    let worker_pts: Vec<Point> = (0..n_workers)
        .map(|i| scatter(&mut rng, centres[i % DISTRICTS]))
        .collect();
    let task_pts: Vec<Point> = (0..n_tasks)
        .map(|i| scatter(&mut rng, centres[i % DISTRICTS]))
        .collect();

    // kNN edges via the bucket index; radius shrinks with density so the
    // candidate pool per task stays roughly constant across sizes.
    let per_district = (n_workers / DISTRICTS).max(1);
    let base_radius = (2.0 * (625.0 / per_district as f64).sqrt()).max(0.25);
    let views: Vec<WorkerView> = worker_pts
        .iter()
        .enumerate()
        .map(|(i, &p)| WorkerView {
            id: WorkerId(i as u64),
            current: p,
            predicted: Vec::new(),
            real_future: Vec::new(),
            mr: 0.5,
            detour_limit_km: 5.0,
            speed_km_per_min: 0.4,
        })
        .collect();
    let index = BucketIndex::build(&views, base_radius);

    let mut edges = Vec::new();
    let mut cand = Vec::new();
    let mut near: Vec<(f64, usize)> = Vec::new();
    for (t, &tp) in task_pts.iter().enumerate() {
        let mut radius = base_radius;
        for _ in 0..5 {
            index.candidates_within_into(tp, radius, &mut cand);
            if cand.len() >= KNN {
                break;
            }
            radius *= 2.0;
        }
        near.clear();
        near.extend(cand.iter().map(|&w| (tp.dist(worker_pts[w]), w)));
        near.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(_, w) in near.iter().take(KNN) {
            edges.push(WeightedEdge::new(t, w, inv_dist(tp, worker_pts[w])));
        }
    }

    City {
        left_keys: (0..n_tasks as u64).collect(),
        right_keys: (0..n_workers as u64).collect(),
        task_pts,
        worker_pts,
        edges,
    }
}

/// Same edge structure, weights recomputed after a small per-worker
/// position drift — the consecutive-window serving pattern.
fn perturbed_edges(city: &City, seed: u64, window: u64) -> Vec<WeightedEdge> {
    let mut rng = rng_for(seed, window);
    let jitter: Vec<(f64, f64)> = (0..city.worker_pts.len())
        .map(|_| (rng.gen_range(-0.02..0.02), rng.gen_range(-0.02..0.02)))
        .collect();
    city.edges
        .iter()
        .map(|e| {
            let w = city.worker_pts[e.right];
            let moved = Point::new(w.x + jitter[e.right].0, w.y + jitter[e.right].1);
            WeightedEdge::new(e.left, e.right, inv_dist(city.task_pts[e.left], moved))
        })
        .collect()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_env();
    let sizes: &[usize] = if smoke {
        &[10_000]
    } else {
        &[10_000, 50_000, 100_000, 500_000]
    };
    let repeats = if smoke { 2 } else { 3 };
    println!(
        "# Matching-backend scaling on the hotspot city (seed {seed}, {repeats} repeats{})\n",
        if smoke { ", --smoke" } else { "" }
    );

    let mut table = Vec::new();
    let mut rows = Vec::new();
    for &n_workers in sizes {
        let city = build_city(n_workers, seed ^ n_workers as u64);
        let (nl, nr) = (city.task_pts.len(), city.worker_pts.len());
        let keys = VertexKeys {
            left: &city.left_keys,
            right: &city.right_keys,
        };

        let mut comps = component_sizes(&city.edges);
        comps.sort_by_key(|&(l, r, _)| std::cmp::Reverse(l + r));
        let largest = comps.first().copied().unwrap_or((0, 0, 0));
        let mut vertex_counts: Vec<usize> = comps.iter().map(|&(l, r, _)| l + r).collect();
        vertex_counts.sort_unstable();
        let median_vertices = vertex_counts[vertex_counts.len() / 2];
        let est_ops: f64 = comps
            .iter()
            .map(|&(l, r, _)| l as f64 * l as f64 * r as f64)
            .sum();
        let est_dense_bytes: usize = comps
            .iter()
            .map(|&(l, r, _)| l * r * std::mem::size_of::<f64>())
            .max()
            .unwrap_or(0);

        let exact_skip = if est_ops > EXACT_OPS_CAP {
            Some(format!(
                "estimated {est_ops:.2e} slack updates > {EXACT_OPS_CAP:.1e} cap"
            ))
        } else if est_dense_bytes > EXACT_BYTES_CAP {
            Some(format!(
                "largest component needs {est_dense_bytes} dense bytes > {EXACT_BYTES_CAP} cap"
            ))
        } else {
            None
        };

        // Auction backend: cold solve per repeat (identical inputs, so
        // stats are identical per repeat; keep the last).
        let mut auction_s = Vec::new();
        let mut auction_m = Vec::new();
        let mut auction_stats = None;
        for _ in 0..repeats {
            let mut solver = AuctionSolver::new();
            let t0 = Instant::now();
            let m = solve_matching(&mut solver, nl, nr, &city.edges);
            auction_s.push(t0.elapsed().as_secs_f64());
            assert_eq!(
                solver.stats().abandoned,
                0,
                "{n_workers} workers: auction abandoned the solve"
            );
            auction_m = m;
            auction_stats = Some(solver.take_stats());
        }
        let auction_stats = auction_stats.expect("repeats > 0");
        let auction_w = matching_weight(&city.edges, &auction_m);

        // Exact backend, gated: every repeat is checked against the
        // auction result (cardinality exactly, weight within ε-bound).
        let mut exact_s = Vec::new();
        let mut exact_peak_dense = 0usize;
        for _ in 0..if exact_skip.is_none() { repeats } else { 0 } {
            let mut solver = ExactKmSolver::default();
            let t0 = Instant::now();
            let m = solve_matching(&mut solver, nl, nr, &city.edges);
            exact_s.push(t0.elapsed().as_secs_f64());
            exact_peak_dense = exact_peak_dense.max(solver.stats().peak_dense_bytes);
            assert_eq!(
                m.len(),
                auction_m.len(),
                "{n_workers} workers: auction cardinality must match exact"
            );
            let wex = matching_weight(&city.edges, &m);
            assert!(
                (wex - auction_w).abs() <= 1e-3 * (1.0 + wex.abs()),
                "{n_workers} workers: auction weight {auction_w} vs exact {wex}"
            );
        }

        // Warm-start yield: prices cached across perturbed windows must
        // reproduce the cold matchings bid-for-bid identically while
        // spending fewer bids.
        let mut warm = AuctionSolver::with_warm_start();
        let _ = solve_matching_keyed(&mut warm, nl, nr, &city.edges, &keys);
        let _ = warm.take_stats();
        let (mut warm_bids, mut cold_bids) = (0u64, 0u64);
        for window in 1..=WARM_WINDOWS as u64 {
            let pe = perturbed_edges(&city, seed ^ n_workers as u64, window);
            let mut cold = AuctionSolver::new();
            let cold_m = solve_matching_keyed(&mut cold, nl, nr, &pe, &keys);
            let warm_m = solve_matching_keyed(&mut warm, nl, nr, &pe, &keys);
            assert_eq!(
                warm_m, cold_m,
                "{n_workers} workers, window {window}: warm must equal cold"
            );
            let ws = warm.take_stats();
            assert!(ws.warm_hits > 0, "window {window}: expected a cache hit");
            warm_bids += ws.bids;
            cold_bids += cold.take_stats().bids;
        }

        let auction_med = median(&mut auction_s);
        let exact_med = (!exact_s.is_empty()).then(|| median(&mut exact_s));
        let saved = 1.0 - warm_bids as f64 / cold_bids.max(1) as f64;

        if smoke {
            assert!(
                exact_skip.is_none(),
                "--smoke size must keep the exact oracle tractable"
            );
            assert!(
                auction_stats.peak_sparse_bytes < est_dense_bytes,
                "auction peak {} bytes must undercut the dense matrix {} bytes",
                auction_stats.peak_sparse_bytes,
                est_dense_bytes
            );
            assert!(
                warm_bids < cold_bids,
                "warm starts must save bids ({warm_bids} vs {cold_bids})"
            );
        }

        table.push(vec![
            n_workers.to_string(),
            nl.to_string(),
            city.edges.len().to_string(),
            format!("{} (med {})", comps.len(), median_vertices),
            format!("{}x{}", largest.0, largest.1),
            exact_med.map_or_else(|| "skipped".into(), |s| format!("{:.2}", s * 1e3)),
            format!("{:.2}", auction_med * 1e3),
            format!("{:.1}", est_dense_bytes as f64 / 1e6),
            format!("{:.2}", auction_stats.peak_sparse_bytes as f64 / 1e6),
            format!("{:.0}%", saved * 100.0),
        ]);
        rows.push(serde_json::json!({
            "n_workers": n_workers,
            "n_tasks": nl,
            "n_edges": city.edges.len(),
            "n_components": comps.len(),
            "median_component_vertices": median_vertices,
            "largest_component_left": largest.0,
            "largest_component_right": largest.1,
            "largest_component_edges": largest.2,
            "exact_ran": exact_skip.is_none(),
            "exact_skip_reason": exact_skip,
            "exact_median_s": exact_med,
            "exact_peak_dense_bytes": (exact_peak_dense > 0).then_some(exact_peak_dense),
            "exact_est_dense_bytes": est_dense_bytes,
            "exact_est_slack_updates": est_ops,
            "auction_median_s": auction_med,
            "auction_peak_sparse_bytes": auction_stats.peak_sparse_bytes,
            "auction_bids": auction_stats.bids,
            "auction_phases": auction_stats.phases,
            "auction_matched": auction_m.len(),
            "speedup_exact_over_auction": exact_med.map(|e| e / auction_med),
            "warm_windows": WARM_WINDOWS,
            "warm_bids": warm_bids,
            "cold_bids": cold_bids,
            "warm_bids_saved_ratio": saved,
            "repeats": repeats,
            "seed": seed,
        }));
        println!(
            "  {n_workers} workers done: auction {:.0} ms, exact {}",
            auction_med * 1e3,
            exact_med.map_or_else(|| "skipped".to_string(), |s| format!("{:.0} ms", s * 1e3)),
        );
    }

    println!();
    print_markdown_table(
        &[
            "workers",
            "tasks",
            "edges",
            "components",
            "largest (LxR)",
            "exact (ms)",
            "auction (ms)",
            "dense est (MB)",
            "sparse peak (MB)",
            "warm bids saved",
        ],
        &table,
    );

    if smoke {
        println!("\n--smoke: equivalence, sparse memory bound and warm-start yield all hold");
    } else {
        save_json(
            &out_dir().join("scaling_matching.json"),
            "scaling_matching",
            &rows,
        )
        .expect("write rows");
    }
}

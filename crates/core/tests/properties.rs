//! Property-based tests for the core geometric and codec invariants.

use proptest::prelude::*;
use tamp_core::codec::{decode_routine, encode_routine};
use tamp_core::geometry::{detour_via, min_detour_on_path, Point};
use tamp_core::routine::Routine;
use tamp_core::time::Minutes;
use tamp_core::Grid;

fn pt() -> impl Strategy<Value = Point> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_is_a_metric(a in pt(), b in pt(), c in pt()) {
        // Non-negativity and symmetry.
        prop_assert!(a.dist(b) >= 0.0);
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
        // Triangle inequality (with fp slack).
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
    }

    #[test]
    fn detour_is_non_negative(a in pt(), v in pt(), b in pt()) {
        prop_assert!(detour_via(a, v, b) >= 0.0);
    }

    #[test]
    fn detour_zero_iff_on_segment(a in pt(), b in pt(), t in 0.0..1.0f64) {
        let on = a.lerp(b, t);
        prop_assert!(detour_via(a, on, b) < 1e-9);
    }

    #[test]
    fn min_detour_never_exceeds_single_leg(points in prop::collection::vec(pt(), 2..10), via in pt()) {
        let best = min_detour_on_path(&points, via).unwrap();
        for leg in points.windows(2) {
            prop_assert!(best <= detour_via(leg[0], via, leg[1]) + 1e-12);
        }
    }

    #[test]
    fn routine_codec_round_trips(locs in prop::collection::vec(pt(), 0..40), start in -100.0..100.0f64, step in 0.1..30.0f64) {
        let r = Routine::from_sampled(locs, Minutes::new(start), Minutes::new(step));
        let back = decode_routine(encode_routine(&r)).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn position_at_is_on_convex_hull_bbox(locs in prop::collection::vec(pt(), 1..20), t in -10.0..200.0f64) {
        let r = Routine::from_sampled(locs.clone(), Minutes::ZERO, Minutes::new(10.0));
        let p = r.position_at(Minutes::new(t)).unwrap();
        let (min_x, max_x) = locs.iter().fold((f64::MAX, f64::MIN), |(lo, hi), q| (lo.min(q.x), hi.max(q.x)));
        let (min_y, max_y) = locs.iter().fold((f64::MAX, f64::MIN), |(lo, hi), q| (lo.min(q.y), hi.max(q.y)));
        prop_assert!(p.x >= min_x - 1e-9 && p.x <= max_x + 1e-9);
        prop_assert!(p.y >= min_y - 1e-9 && p.y <= max_y + 1e-9);
    }

    #[test]
    fn training_pairs_count(n in 1usize..30, seq_in in 1usize..5, seq_out in 1usize..4) {
        let r = Routine::from_sampled(
            (0..n).map(|i| Point::new(i as f64, 0.0)),
            Minutes::ZERO,
            Minutes::new(10.0),
        );
        let pairs = r.training_pairs(seq_in, seq_out);
        let expected = n.saturating_sub(seq_in + seq_out - 1);
        prop_assert_eq!(pairs.len(), expected);
        for (i, o) in &pairs {
            prop_assert_eq!(i.len(), seq_in);
            prop_assert_eq!(o.len(), seq_out);
        }
    }

    #[test]
    fn grid_normalize_round_trip(x in 0.0..20.0f64, y in 0.0..10.0f64) {
        let g = Grid::PAPER;
        let p = Point::new(x, y);
        let (nx, ny) = g.normalize(p);
        prop_assert!((0.0..=1.0).contains(&nx) && (0.0..=1.0).contains(&ny));
        prop_assert!(g.denormalize(nx, ny).dist(p) < 1e-9);
    }

    #[test]
    fn grid_cell_index_in_range(x in -5.0..30.0f64, y in -5.0..20.0f64) {
        let g = Grid::PAPER;
        let (ix, iy) = g.cell_index(Point::new(x, y));
        prop_assert!(ix < g.cols && iy < g.rows);
    }
}

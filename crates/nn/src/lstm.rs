//! An LSTM cell with exact backpropagation through time.
//!
//! Gate layout follows the classic formulation (Graves 2012, the paper's
//! reference \[28\]):
//!
//! ```text
//! i = σ(W_i·[x; h] + b_i)      input gate
//! f = σ(W_f·[x; h] + b_f)      forget gate
//! g = tanh(W_g·[x; h] + b_g)   candidate
//! o = σ(W_o·[x; h] + b_o)      output gate
//! c' = f ⊙ c + i ⊙ g
//! h' = o ⊙ tanh(c')
//! ```
//!
//! The four gates are stored in one `(4H) × (I+H)` matrix (row blocks in
//! `i, f, g, o` order) plus a `4H` bias, which keeps the parameter
//! flattening used by the meta-learner trivial.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// The recurrent state `(h, c)` of an LSTM.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Vec<f64>,
    /// Cell vector.
    pub c: Vec<f64>,
}

impl LstmState {
    /// The all-zero initial state.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Everything the backward pass needs from one forward step.
#[derive(Debug, Clone)]
pub struct StepCache {
    /// Concatenated `[x; h_prev]`.
    pub z: Vec<f64>,
    /// Activated gates, each of length `H`.
    pub i: Vec<f64>,
    /// Forget gate.
    pub f: Vec<f64>,
    /// Candidate.
    pub g: Vec<f64>,
    /// Output gate.
    pub o: Vec<f64>,
    /// Cell state entering the step.
    pub c_prev: Vec<f64>,
    /// Cell state leaving the step.
    pub c: Vec<f64>,
}

/// An LSTM cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmCell {
    input_dim: usize,
    hidden: usize,
    /// `(4H) × (I+H)` gate weights, row blocks `i, f, g, o`.
    pub w: Matrix,
    /// `4H` gate biases.
    pub b: Vec<f64>,
}

/// Gradients of an [`LstmCell`], same shapes as the parameters.
#[derive(Debug, Clone)]
pub struct LstmGrad {
    /// Gradient of `w`.
    pub dw: Matrix,
    /// Gradient of `b`.
    pub db: Vec<f64>,
}

impl LstmGrad {
    /// Zero gradients for a cell of the given shape.
    pub fn zeros(cell: &LstmCell) -> Self {
        Self {
            dw: Matrix::zeros(cell.w.rows(), cell.w.cols()),
            db: vec![0.0; cell.b.len()],
        }
    }
}

impl LstmCell {
    /// A new cell with Xavier weights and the forget-gate bias set to 1
    /// (the standard trick that keeps early gradients alive).
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let w = Matrix::xavier(4 * hidden, input_dim + hidden, rng);
        let mut b = vec![0.0; 4 * hidden];
        for bias in b.iter_mut().skip(hidden).take(hidden) {
            *bias = 1.0; // forget-gate block
        }
        Self {
            input_dim,
            hidden,
            w,
            b,
        }
    }

    /// Input dimension `I`.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimension `H`.
    #[inline]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// One forward step. Returns the new state and the cache needed by
    /// [`LstmCell::backward_step`].
    pub fn forward_step(&self, x: &[f64], state: &LstmState) -> (LstmState, StepCache) {
        assert_eq!(x.len(), self.input_dim, "lstm input dim mismatch");
        assert_eq!(state.h.len(), self.hidden, "lstm state dim mismatch");
        let h = self.hidden;
        let mut z = Vec::with_capacity(self.input_dim + h);
        z.extend_from_slice(x);
        z.extend_from_slice(&state.h);

        let mut a = self.w.matvec(&z);
        for (av, bv) in a.iter_mut().zip(&self.b) {
            *av += bv;
        }

        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(a[k]);
            f[k] = sigmoid(a[h + k]);
            g[k] = a[2 * h + k].tanh();
            o[k] = sigmoid(a[3 * h + k]);
        }

        let mut c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * state.c[k] + i[k] * g[k];
            h_new[k] = o[k] * c[k].tanh();
        }

        let cache = StepCache {
            z,
            i,
            f,
            g,
            o,
            c_prev: state.c.clone(),
            c: c.clone(),
        };
        (LstmState { h: h_new, c }, cache)
    }

    /// One backward step of BPTT.
    ///
    /// `dh` is the gradient flowing into this step's hidden output (sum of
    /// the head gradient and the recurrent gradient from step `t+1`);
    /// `dc_next` the gradient into this step's cell output. Accumulates
    /// into `grad` and returns `(dx, dh_prev, dc_prev)`.
    pub fn backward_step(
        &self,
        cache: &StepCache,
        dh: &[f64],
        dc_next: &[f64],
        grad: &mut LstmGrad,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h = self.hidden;
        assert_eq!(dh.len(), h);
        assert_eq!(dc_next.len(), h);

        let mut da = vec![0.0; 4 * h];
        let mut dc_prev = vec![0.0; h];
        for k in 0..h {
            let tanh_c = cache.c[k].tanh();
            let do_ = dh[k] * tanh_c;
            let dc = dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c) + dc_next[k];
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];

            da[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            da[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            da[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            da[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }

        grad.dw.add_outer(1.0, &da, &cache.z);
        for (gb, d) in grad.db.iter_mut().zip(&da) {
            *gb += d;
        }

        let dz = self.w.matvec_t(&da);
        let dx = dz[..self.input_dim].to_vec();
        let dh_prev = dz[self.input_dim..].to_vec();
        (dx, dh_prev, dc_prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = rng_for(1, 0);
        let cell = LstmCell::new(2, 4, &mut rng);
        let state = LstmState::zeros(4);
        let (next, cache) = cell.forward_step(&[0.3, -0.1], &state);
        assert_eq!(next.h.len(), 4);
        assert_eq!(next.c.len(), 4);
        assert_eq!(cache.z.len(), 6);
        // h = o·tanh(c) ∈ (−1, 1).
        assert!(next.h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = rng_for(2, 0);
        let cell = LstmCell::new(3, 5, &mut rng);
        assert!(cell.b[..5].iter().all(|&b| b == 0.0));
        assert!(cell.b[5..10].iter().all(|&b| b == 1.0));
        assert!(cell.b[10..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn zero_input_zero_state_gives_deterministic_output() {
        let mut rng = rng_for(3, 0);
        let cell = LstmCell::new(2, 3, &mut rng);
        let s = LstmState::zeros(3);
        let (a, _) = cell.forward_step(&[0.0, 0.0], &s);
        let (b, _) = cell.forward_step(&[0.0, 0.0], &s);
        assert_eq!(a, b);
    }

    /// Finite-difference gradient check of a single step: perturb every
    /// parameter and compare against the analytic gradient of a scalar
    /// objective `sum(h') + sum(c')`.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = rng_for(4, 0);
        let cell = LstmCell::new(2, 3, &mut rng);
        let state = LstmState {
            h: vec![0.1, -0.2, 0.05],
            c: vec![0.3, 0.0, -0.4],
        };
        let x = [0.7, -0.3];

        let objective = |cell: &LstmCell| -> f64 {
            let (s, _) = cell.forward_step(&x, &state);
            s.h.iter().sum::<f64>() + s.c.iter().sum::<f64>()
        };

        // Analytic gradient: dL/dh' = 1, dL/dc' = 1.
        let (_, cache) = cell.forward_step(&x, &state);
        let mut grad = LstmGrad::zeros(&cell);
        let ones = vec![1.0; 3];
        cell.backward_step(&cache, &ones, &ones, &mut grad);

        let eps = 1e-6;
        // Check a spread of weight entries.
        for &(r, c) in &[(0usize, 0usize), (3, 2), (6, 4), (11, 1), (5, 3)] {
            let mut plus = cell.clone();
            plus.w.set(r, c, plus.w.get(r, c) + eps);
            let mut minus = cell.clone();
            minus.w.set(r, c, minus.w.get(r, c) - eps);
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            let an = grad.dw.get(r, c);
            assert!((fd - an).abs() < 1e-6, "w[{r},{c}]: fd={fd}, analytic={an}");
        }
        // And the biases.
        for k in 0..12 {
            let mut plus = cell.clone();
            plus.b[k] += eps;
            let mut minus = cell.clone();
            minus.b[k] -= eps;
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            assert!(
                (fd - grad.db[k]).abs() < 1e-6,
                "b[{k}]: fd={fd}, analytic={}",
                grad.db[k]
            );
        }
    }

    /// The input/state gradients must match finite differences too.
    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = rng_for(5, 0);
        let cell = LstmCell::new(2, 3, &mut rng);
        let state = LstmState {
            h: vec![0.05, -0.15, 0.2],
            c: vec![-0.1, 0.25, 0.0],
        };
        let x = [0.4, 0.9];

        let objective = |x: &[f64], state: &LstmState| -> f64 {
            let (s, _) = cell.forward_step(x, state);
            s.h.iter().sum::<f64>() + s.c.iter().sum::<f64>()
        };

        let (_, cache) = cell.forward_step(&x, &state);
        let mut grad = LstmGrad::zeros(&cell);
        let ones = vec![1.0; 3];
        let (dx, dh_prev, dc_prev) = cell.backward_step(&cache, &ones, &ones, &mut grad);

        let eps = 1e-6;
        for k in 0..2 {
            let mut xp = x;
            xp[k] += eps;
            let mut xm = x;
            xm[k] -= eps;
            let fd = (objective(&xp, &state) - objective(&xm, &state)) / (2.0 * eps);
            assert!((fd - dx[k]).abs() < 1e-6, "dx[{k}]");
        }
        for k in 0..3 {
            let mut sp = state.clone();
            sp.h[k] += eps;
            let mut sm = state.clone();
            sm.h[k] -= eps;
            let fd = (objective(&x, &sp) - objective(&x, &sm)) / (2.0 * eps);
            assert!((fd - dh_prev[k]).abs() < 1e-6, "dh_prev[{k}]");

            let mut sp = state.clone();
            sp.c[k] += eps;
            let mut sm = state.clone();
            sm.c[k] -= eps;
            let fd = (objective(&x, &sp) - objective(&x, &sm)) / (2.0 * eps);
            assert!((fd - dc_prev[k]).abs() < 1e-6, "dc_prev[{k}]");
        }
    }
}

//! Planar geometry: points, distances and detours.
//!
//! The TAMP paper works in a city-scale plane; we use kilometres on both
//! axes. The central geometric quantity is the **detour** a worker incurs
//! when diverting from a leg of their routine to a task location:
//! `dis(l₁, τ) + dis(τ, l₂) − dis(l₁, l₂)` (Lemma 1 and Section II,
//! Definition 4).

use serde::{Deserialize, Serialize};

/// A location in the plane, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in kilometres.
    pub x: f64,
    /// Northing in kilometres.
    pub y: f64,
}

impl Point {
    /// Creates a point from kilometre coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in kilometres.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation from `self` towards `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside
    /// `\[0, 1\]` extrapolate along the same line.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Component-wise addition.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// The extra distance incurred by travelling `from → via → to` instead of
/// `from → to` directly.
///
/// This is the per-leg detour of Lemma 1. It is non-negative by the
/// triangle inequality and zero when `via` lies on the segment.
#[inline]
pub fn detour_via(from: Point, via: Point, to: Point) -> f64 {
    (from.dist(via) + via.dist(to) - from.dist(to)).max(0.0)
}

/// The minimal detour over every leg `(pᵢ, pᵢ₊₁)` of a polyline `path`
/// when inserting a stop at `via`.
///
/// Returns `None` for paths with fewer than two points (a single point has
/// no leg to divert from; callers treat this as "detour = out-and-back",
/// see [`min_detour_on_path_or_roundtrip`]).
pub fn min_detour_on_path(path: &[Point], via: Point) -> Option<f64> {
    if path.len() < 2 {
        return None;
    }
    let mut best = f64::INFINITY;
    for leg in path.windows(2) {
        let d = detour_via(leg[0], via, leg[1]);
        if d < best {
            best = d;
        }
    }
    Some(best)
}

/// Like [`min_detour_on_path`], but a path with a single point falls back
/// to the out-and-back detour `2 · dis(p, via)` (the worker must return to
/// where they were going to be).
pub fn min_detour_on_path_or_roundtrip(path: &[Point], via: Point) -> Option<f64> {
    match path.len() {
        0 => None,
        1 => Some(2.0 * path[0].dist(via)),
        _ => min_detour_on_path(path, via),
    }
}

/// Distance from `via` to the nearest vertex of `path`, or `None` for an
/// empty path. Used by the third stage of the PPI algorithm (Algorithm 4,
/// lines 28–32) where only the predicted trajectory is consulted.
pub fn min_dist_to_path(path: &[Point], via: Point) -> Option<f64> {
    path.iter()
        .map(|p| p.dist(via))
        .min_by(|a, b| a.partial_cmp(b).expect("distances are finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-4.0, 7.25);
        assert_eq!(a.dist(b), b.dist(a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Point::new(1.0, 3.0));
    }

    #[test]
    fn detour_on_segment_is_zero() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(10.0, 0.0);
        let on = Point::new(4.0, 0.0);
        assert!(detour_via(from, on, to).abs() < 1e-12);
    }

    #[test]
    fn detour_off_segment_is_positive() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(10.0, 0.0);
        let off = Point::new(5.0, 5.0);
        let d = detour_via(from, off, to);
        assert!(d > 0.0);
        // 2 * sqrt(25+25) - 10
        assert!((d - (2.0 * 50.0_f64.sqrt() - 10.0)).abs() < 1e-12);
    }

    #[test]
    fn min_detour_picks_best_leg() {
        let path = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        // A task right next to the second leg.
        let via = Point::new(10.5, 5.0);
        let d = min_detour_on_path(&path, via).unwrap();
        // The best leg is (10,0)→(10,10); the detour is small.
        assert!(d < 0.2, "detour {d} should be small");
    }

    #[test]
    fn min_detour_requires_two_points() {
        assert!(min_detour_on_path(&[Point::new(0.0, 0.0)], Point::new(1.0, 1.0)).is_none());
        assert!(min_detour_on_path(&[], Point::new(1.0, 1.0)).is_none());
    }

    #[test]
    fn roundtrip_fallback_for_single_point() {
        let d =
            min_detour_on_path_or_roundtrip(&[Point::new(0.0, 0.0)], Point::new(3.0, 4.0)).unwrap();
        assert_eq!(d, 10.0);
    }

    #[test]
    fn min_dist_to_path_finds_nearest_vertex() {
        let path = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let d = min_dist_to_path(&path, Point::new(9.0, 1.0)).unwrap();
        assert!((d - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(min_dist_to_path(&[], Point::new(0.0, 0.0)).is_none());
    }
}

//! Window pacing: how fast simulated batch windows advance relative to
//! wall clock.
//!
//! Simulation and load testing run [`Pacing::FullSpeed`] (no sleeping —
//! the accelerated clock); a demo deployment can pace windows against
//! real time with a speedup factor.

use std::time::Duration;

/// How the host paces consecutive batch windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Step windows as fast as they compute (the accelerated clock).
    FullSpeed,
    /// Sleep so one simulated minute takes `60 / speedup` wall seconds;
    /// `speedup: 60.0` plays a 2-minute window every 2 wall seconds.
    RealTime {
        /// Simulated-to-wall-clock acceleration factor (> 0).
        speedup: f64,
    },
}

impl Pacing {
    /// Wall-clock pause after stepping one window of `window_min`
    /// simulated minutes (`None` when running full speed).
    pub fn window_sleep(&self, window_min: f64) -> Option<Duration> {
        match *self {
            Pacing::FullSpeed => None,
            Pacing::RealTime { speedup } => {
                let secs = window_min * 60.0 / speedup.max(f64::MIN_POSITIVE);
                Some(Duration::from_secs_f64(secs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_never_sleeps() {
        assert_eq!(Pacing::FullSpeed.window_sleep(2.0), None);
    }

    #[test]
    fn real_time_scales_with_speedup() {
        let p = Pacing::RealTime { speedup: 60.0 };
        let d = p.window_sleep(2.0).unwrap();
        assert!((d.as_secs_f64() - 2.0).abs() < 1e-9);
    }
}

//! Loss functions, including the paper's task-assignment-oriented loss.
//!
//! Section III-C argues that plain MSE misaligns mobility prediction with
//! task assignment: an error at a trajectory point surrounded by many
//! historical tasks hurts assignment far more than the same error in a
//! task desert. Eq. 6 therefore re-weights the squared error per point:
//!
//! ```text
//! L_T = (1/|r|) Σ_i f_w(l_i) · (l_i − l̂_i)²            (Eq. 6)
//! f_w(l) = κ · |{τ : dis(τ, l) < d_q}| / ρᵗ + δ         (Eq. 7)
//! ```
//!
//! where `ρᵗ` is the expected number of historical tasks in a circle of
//! radius `d_q` under a uniform distribution, `κ ∈ (0,1)` scales the
//! density influence and `δ > 0` keeps every point's weight positive.
//!
//! Losses operate in the model's normalised `\[0,1\]²` coordinate space; the
//! weighted loss internally denormalises through its [`Grid`] to query the
//! kilometre-space [`TaskDensityMap`].

use serde::{Deserialize, Serialize};
use tamp_core::{Grid, Point};

/// A 2-D point in the model's normalised coordinate space.
pub type Pt2 = [f64; 2];

/// Per-step loss interface used by the sequence models.
///
/// `step` returns the loss contribution of one output step and the
/// gradient `∂L/∂pred`. Implementations must already include the `1/|r|`
/// averaging factor so that summing over steps yields the sequence loss.
pub trait Loss: Send + Sync {
    /// Loss and gradient for a single predicted output step.
    ///
    /// `seq_len` is the number of output steps `|r|` of the sequence the
    /// step belongs to.
    fn step(&self, pred: Pt2, target: Pt2, seq_len: usize) -> (f64, Pt2);
}

/// Plain mean-squared-error over the output sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn step(&self, pred: Pt2, target: Pt2, seq_len: usize) -> (f64, Pt2) {
        let inv = 1.0 / seq_len as f64;
        let dx = pred[0] - target[0];
        let dy = pred[1] - target[1];
        let loss = inv * (dx * dx + dy * dy);
        (loss, [2.0 * inv * dx, 2.0 * inv * dy])
    }
}

/// Hyper-parameters of the weight function `f_w` (Eq. 7).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WeightParams {
    /// `κ ∈ (0,1)`: influence of the historical task density.
    pub kappa: f64,
    /// `δ > 0`: weight floor so sparse regions still contribute.
    pub delta: f64,
    /// `d_q` in kilometres: radius of the density query around a point.
    pub d_q_km: f64,
    /// Cap on the density ratio `count/ρᵗ`. Hotspot mixtures concentrate
    /// hundreds of tasks in a few cells; without a cap the weight ratio
    /// between hotspot and desert reaches 10–20×, which destabilises
    /// training instead of focusing it (the paper tunes κ and δ "to be
    /// optimal" — this cap plays the same moderating role).
    pub density_cap: f64,
}

impl Default for WeightParams {
    fn default() -> Self {
        Self {
            kappa: 0.3,
            delta: 0.7,
            d_q_km: 1.0,
            density_cap: 4.0,
        }
    }
}

/// Spatial index over historical task locations supporting exact
/// count-within-radius queries.
///
/// Task locations are binned into grid cells; a query scans only the cells
/// intersecting the query circle's bounding box, then distance-checks the
/// points inside them.
#[derive(Debug, Clone)]
pub struct TaskDensityMap {
    grid: Grid,
    /// Task points, binned per cell (row-major `iy * cols + ix`).
    bins: Vec<Vec<Point>>,
    total: usize,
}

impl TaskDensityMap {
    /// Builds the index from historical task locations.
    pub fn build(grid: Grid, tasks: &[Point]) -> Self {
        let mut bins = vec![Vec::new(); grid.cols * grid.rows];
        for &p in tasks {
            let (ix, iy) = grid.cell_index(p);
            bins[iy * grid.cols + ix].push(p);
        }
        Self {
            grid,
            bins,
            total: tasks.len(),
        }
    }

    /// Total number of indexed tasks.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The grid the index is built over.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Exact number of indexed tasks with `dis(τ, p) < radius_km`.
    pub fn count_within(&self, p: Point, radius_km: f64) -> usize {
        if radius_km <= 0.0 || self.total == 0 {
            return 0;
        }
        let r2 = radius_km * radius_km;
        let (min_ix, min_iy) = self
            .grid
            .cell_index(Point::new(p.x - radius_km, p.y - radius_km));
        let (max_ix, max_iy) = self
            .grid
            .cell_index(Point::new(p.x + radius_km, p.y + radius_km));
        let mut count = 0;
        for iy in min_iy..=max_iy {
            for ix in min_ix..=max_ix {
                for q in &self.bins[iy * self.grid.cols + ix] {
                    if p.dist_sq(*q) < r2 {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// The uniform-density expectation `ρᵗ`: how many tasks a circle of
    /// radius `d_q` would contain if tasks were spread uniformly over the
    /// region. Floored at a small positive value so the weight never
    /// divides by zero.
    pub fn uniform_expectation(&self, d_q_km: f64) -> f64 {
        let area = self.grid.width_km() * self.grid.height_km();
        let circle = std::f64::consts::PI * d_q_km * d_q_km;
        (self.total as f64 * circle / area).max(1e-9)
    }
}

/// The task-assignment-oriented loss of Eq. 6–7.
#[derive(Debug, Clone)]
pub struct TaskOrientedLoss {
    density: TaskDensityMap,
    params: WeightParams,
    rho_t: f64,
}

impl TaskOrientedLoss {
    /// Creates the loss from a historical task-density index.
    pub fn new(density: TaskDensityMap, params: WeightParams) -> Self {
        let rho_t = density.uniform_expectation(params.d_q_km);
        Self {
            density,
            params,
            rho_t,
        }
    }

    /// The weight `f_w(l)` at a kilometre-space location (Eq. 7, with the
    /// density ratio capped at [`WeightParams::density_cap`]).
    pub fn weight_at(&self, l_km: Point) -> f64 {
        let count = self.density.count_within(l_km, self.params.d_q_km);
        let ratio = (count as f64 / self.rho_t).min(self.params.density_cap);
        self.params.kappa * ratio + self.params.delta
    }

    /// The hyper-parameters in force.
    pub fn params(&self) -> WeightParams {
        self.params
    }
}

impl Loss for TaskOrientedLoss {
    fn step(&self, pred: Pt2, target: Pt2, seq_len: usize) -> (f64, Pt2) {
        // The weight is evaluated at the *ground-truth* location l_i
        // (Eq. 6 weights by f_w(l_i)), denormalised to kilometres.
        let l_km = self.density.grid.denormalize(target[0], target[1]);
        let w = self.weight_at(l_km);
        let inv = w / seq_len as f64;
        let dx = pred[0] - target[0];
        let dy = pred[1] - target[1];
        let loss = inv * (dx * dx + dy * dy);
        (loss, [2.0 * inv * dx, 2.0 * inv * dy])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_step_value_and_gradient() {
        let (l, g) = MseLoss.step([0.5, 0.5], [0.25, 0.75], 2);
        // (0.25² + 0.25²)/2 = 0.0625
        assert!((l - 0.0625).abs() < 1e-12);
        assert!((g[0] - 0.25).abs() < 1e-12);
        assert!((g[1] + 0.25).abs() < 1e-12);
    }

    #[test]
    fn mse_is_zero_at_target() {
        let (l, g) = MseLoss.step([0.3, 0.3], [0.3, 0.3], 1);
        assert_eq!(l, 0.0);
        assert_eq!(g, [0.0, 0.0]);
    }

    fn hotspot_density() -> TaskDensityMap {
        // 100 tasks in a tight cluster around (5, 5); none elsewhere.
        let tasks: Vec<Point> = (0..100)
            .map(|i| Point::new(5.0 + (i % 10) as f64 * 0.01, 5.0 + (i / 10) as f64 * 0.01))
            .collect();
        TaskDensityMap::build(Grid::PAPER, &tasks)
    }

    #[test]
    fn count_within_is_exact() {
        let d = hotspot_density();
        assert_eq!(d.count_within(Point::new(5.05, 5.05), 1.0), 100);
        assert_eq!(d.count_within(Point::new(15.0, 5.0), 1.0), 0);
        assert_eq!(d.count_within(Point::new(5.0, 5.0), 0.0), 0);
    }

    #[test]
    fn count_within_straddles_cells() {
        let grid = Grid::PAPER; // 0.2 km cells
        let tasks = vec![Point::new(0.99, 0.99), Point::new(1.01, 1.01)];
        let d = TaskDensityMap::build(grid, &tasks);
        // Both points are ~0.014 km from (1,1) but in different cells.
        assert_eq!(d.count_within(Point::new(1.0, 1.0), 0.1), 2);
    }

    #[test]
    fn weight_is_higher_near_tasks() {
        let loss = TaskOrientedLoss::new(hotspot_density(), WeightParams::default());
        let hot = loss.weight_at(Point::new(5.0, 5.0));
        let cold = loss.weight_at(Point::new(18.0, 2.0));
        assert!(hot > cold, "hot {hot} must exceed cold {cold}");
        // Cold region weight degenerates to δ.
        assert!((cold - 0.7).abs() < 1e-9);
        // And the hot weight is capped: κ·cap + δ.
        assert!(hot <= 0.3 * 4.0 + 0.7 + 1e-9);
    }

    #[test]
    fn kappa_zero_degenerates_to_scaled_mse() {
        let params = WeightParams {
            kappa: 0.0,
            delta: 1.0,
            d_q_km: 1.0,
            density_cap: 4.0,
        };
        let weighted = TaskOrientedLoss::new(hotspot_density(), params);
        let (lw, gw) = weighted.step([0.4, 0.4], [0.2, 0.3], 3);
        let (lm, gm) = MseLoss.step([0.4, 0.4], [0.2, 0.3], 3);
        assert!((lw - lm).abs() < 1e-12);
        assert!((gw[0] - gm[0]).abs() < 1e-12);
        assert!((gw[1] - gm[1]).abs() < 1e-12);
    }

    #[test]
    fn weighted_gradient_points_toward_target() {
        let loss = TaskOrientedLoss::new(hotspot_density(), WeightParams::default());
        // Target at the hotspot (normalised coords of (5,5) on 20×10 km).
        let target = [0.25, 0.5];
        let (_, g) = loss.step([0.3, 0.6], target, 1);
        // Gradient must push the prediction down toward the target.
        assert!(g[0] > 0.0 && g[1] > 0.0);
    }

    #[test]
    fn uniform_expectation_scales_with_radius() {
        let d = hotspot_density();
        let r1 = d.uniform_expectation(1.0);
        let r2 = d.uniform_expectation(2.0);
        assert!((r2 / r1 - 4.0).abs() < 1e-9, "area scales quadratically");
    }
}

//! Game-Theory-based Multi-level Learning Task Clustering (Algorithm 1).
//!
//! GTMC builds the learning-task tree level by level: the root holds all
//! tasks; each queued node is clustered under the current similarity
//! factor (k-medoids initialisation, then best-response dynamics to a
//! Nash equilibrium), its sub-clusters become children, and children
//! whose quality under the current factor stays below the threshold
//! `Θ_j` are queued for the next factor. Setting
//! [`GtmcConfig::use_game`] to `false` reproduces the paper's GTTAML-GT
//! ablation (clustering without the game refinement).

use crate::game::best_response;
use crate::kmedoids::kmedoids;
use crate::quality::cluster_quality;
use crate::similarity::SimMatrix;
use crate::tree::LearningTaskTree;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tamp_core::rng::rng_for;

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GtmcConfig {
    /// Sub-clusters per split (`k` of the k-medoids initialisation).
    pub k: usize,
    /// Singleton quality `γ ∈ (0, 1)` (Eq. 4).
    pub gamma: f64,
    /// Per-level thresholds `Θ_j`: a sub-cluster with quality below
    /// `Θ_j` is clustered further with the next factor. Must have one
    /// entry per factor.
    pub thresholds: Vec<f64>,
    /// `true` → run best-response dynamics after k-medoids (GTMC);
    /// `false` → keep the raw k-medoids clusters (GTTAML-GT ablation).
    pub use_game: bool,
    /// Cap on best-response passes.
    pub max_game_passes: usize,
    /// Cap on k-medoids iterations.
    pub kmedoids_iters: usize,
    /// Nodes with fewer members than this are not split further — tiny
    /// clusters starve Meta-Training of cross-worker transfer.
    pub min_split: usize,
    /// Seed for the clustering RNG.
    pub seed: u64,
}

impl Default for GtmcConfig {
    fn default() -> Self {
        Self {
            k: 4,
            gamma: 0.2,
            thresholds: vec![0.75, 0.75, 0.75],
            use_game: true,
            max_game_passes: 30,
            kmedoids_iters: 30,
            min_split: 6,
            seed: 0,
        }
    }
}

/// Builds the learning-task tree over `n_tasks` tasks using the ordered
/// similarity matrices `sims` (one per factor, the paper's order being
/// `Sim_d, Sim_s, Sim_l`). The root's `θ` is `init_theta`; children
/// inherit it.
pub fn build_tree(
    n_tasks: usize,
    sims: &[SimMatrix],
    cfg: &GtmcConfig,
    init_theta: Vec<f64>,
) -> LearningTaskTree {
    assert!(!sims.is_empty(), "need at least one similarity factor");
    assert_eq!(sims.len(), cfg.thresholds.len(), "one threshold per factor");
    for s in sims {
        assert_eq!(s.len(), n_tasks, "similarity matrix size mismatch");
    }

    let mut tree = LearningTaskTree::with_root((0..n_tasks).collect(), init_theta);
    if n_tasks == 0 {
        return tree;
    }

    // Queue of (node, factor index j), as in Algorithm 1.
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    queue.push_back((tree.root(), 0));
    let mut rng_stream = 0u64;

    while let Some((node_id, j)) = queue.pop_front() {
        let members = tree.node(node_id).members.clone();
        if members.len() < cfg.min_split.max(2) {
            continue;
        }
        let sim = &sims[j];
        let mut rng = rng_for(cfg.seed, tamp_core::rng::streams::CLUSTER + rng_stream);
        rng_stream += 1;

        // Lines 5–11: k-medoids initialisation, then best response to a
        // Nash equilibrium. The strategy set is the k initial clusters
        // plus k unoccupied ones, so the equilibrium can dissolve a
        // mixed cluster or open a new one without unbounded
        // fragmentation (cluster count stays ≤ 2k per split).
        let mut initial = kmedoids(sim, &members, cfg.k, cfg.kmedoids_iters, &mut rng);
        let clusters = if cfg.use_game {
            initial.extend(std::iter::repeat_with(Vec::new).take(cfg.k));
            best_response(sim, initial, cfg.gamma, cfg.max_game_passes).clusters
        } else {
            initial
        };

        // Lines 13–18: materialise children; queue low-quality ones for
        // the next factor.
        if clusters.len() > 1 {
            for cluster in clusters {
                let q = cluster_quality(sim, &cluster, cfg.gamma);
                let child = tree.add_child(node_id, cluster);
                if j + 1 < sims.len() && q < cfg.thresholds[j] {
                    queue.push_back((child, j + 1));
                }
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three clear blocks of four under factor 0; factor 1 splits the
    /// middle block further into pairs.
    fn factors() -> Vec<SimMatrix> {
        let f0 = SimMatrix::from_fn(12, |i, j| if i / 4 == j / 4 { 0.6 } else { 0.02 });
        let f1 = SimMatrix::from_fn(12, |i, j| {
            if i / 4 == j / 4 && i / 2 == j / 2 {
                0.95
            } else if i / 4 == j / 4 {
                0.2
            } else {
                0.02
            }
        });
        vec![f0, f1]
    }

    fn cfg() -> GtmcConfig {
        GtmcConfig {
            k: 3,
            gamma: 0.2,
            thresholds: vec![0.75, 0.75],
            min_split: 2,
            seed: 7,
            ..GtmcConfig::default()
        }
    }

    #[test]
    fn builds_multi_level_tree_recovering_blocks() {
        let tree = build_tree(12, &factors(), &cfg(), vec![0.0; 3]);
        assert!(tree.len() > 1, "tree must split");
        assert!(tree.check_partition());
        // Level-1 children must not mix factor-0 blocks.
        for &c in &tree.node(tree.root()).children {
            let m = &tree.node(c).members;
            let blocks: std::collections::HashSet<usize> = m.iter().map(|x| x / 4).collect();
            assert_eq!(blocks.len(), 1, "level-1 cluster mixes blocks: {m:?}");
        }
        // Quality 0.6 < Θ=0.75 under factor 0, so some cluster descends
        // to the factor-1 level.
        let reached_level2 = (0..tree.len()).any(|i| tree.node(i).level == 2);
        assert!(reached_level2, "expected descent into the second factor");
        // Leaves never mix factor-1 pairs with strangers at high quality:
        // every multi-member leaf is factor-consistent (all members share
        // a factor-0 block).
        for &l in &tree.leaves() {
            let m = &tree.node(l).members;
            let blocks: std::collections::HashSet<usize> = m.iter().map(|x| x / 4).collect();
            assert!(blocks.len() <= 1, "leaf mixes blocks: {m:?}");
        }
    }

    #[test]
    fn every_task_reaches_exactly_one_leaf() {
        let tree = build_tree(12, &factors(), &cfg(), vec![0.0; 3]);
        let mut seen = vec![0usize; 12];
        for l in tree.leaves() {
            for &m in &tree.node(l).members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "leaf coverage: {seen:?}");
    }

    #[test]
    fn children_inherit_root_theta() {
        let theta = vec![1.0, -2.0, 3.0];
        let tree = build_tree(12, &factors(), &cfg(), theta.clone());
        for i in 0..tree.len() {
            assert_eq!(tree.node(i).theta, theta);
        }
    }

    #[test]
    fn single_task_tree_is_root_only() {
        let sims = vec![SimMatrix::from_fn(1, |_, _| 1.0)];
        let c = GtmcConfig {
            thresholds: vec![0.75],
            ..cfg()
        };
        let tree = build_tree(1, &sims, &c, vec![0.0]);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn empty_task_set_is_root_only() {
        let sims = vec![SimMatrix::from_fn(0, |_, _| 1.0)];
        let c = GtmcConfig {
            thresholds: vec![0.75],
            ..cfg()
        };
        let tree = build_tree(0, &sims, &c, vec![0.0]);
        assert_eq!(tree.len(), 1);
        assert!(tree.node(0).members.is_empty());
    }

    #[test]
    fn high_quality_clusters_do_not_descend() {
        // One tight block: factor-0 quality 0.9 ≥ Θ, so even though a
        // second factor exists, no level-2 nodes appear.
        let sims = vec![
            SimMatrix::from_fn(6, |i, j| if i / 3 == j / 3 { 0.9 } else { 0.05 }),
            SimMatrix::from_fn(6, |_, _| 0.5),
        ];
        let c = GtmcConfig {
            thresholds: vec![0.75, 0.75],
            seed: 3,
            ..cfg()
        };
        let tree = build_tree(6, &sims, &c, vec![0.0]);
        assert!(tree.len() > 1);
        for i in 0..tree.len() {
            assert!(tree.node(i).level <= 1, "unexpected level-2 node");
        }
    }

    #[test]
    fn gttaml_gt_variant_skips_game() {
        let mut c = cfg();
        c.use_game = false;
        let tree = build_tree(12, &factors(), &c, vec![0.0]);
        assert!(tree.check_partition());
        assert!(tree.len() > 1);
    }
}

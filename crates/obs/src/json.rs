//! A deliberately tiny JSON value model, writer, and parser.
//!
//! `tamp-obs` must stay dependency-free (it sits below every other crate
//! in the workspace and is linked into hot paths), so it carries its own
//! encoder/decoder for the small JSON subset the trace format needs:
//! objects, arrays, strings, finite numbers, booleans, and null. Numbers
//! are written with Rust's shortest-round-trip `f64`/`u64` formatting, so
//! a value survives write → parse → write unchanged.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (object keys are ordered for deterministic
/// re-serialisation).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2⁵³ round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, key-ordered.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialises the value to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a finite number with shortest-round-trip formatting; non-finite
/// values (which valid telemetry never produces) degrade to `null`.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes a JSON string literal with the escapes the grammar requires.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. The whole input must be consumed (modulo
/// trailing whitespace) — exactly what a JSONL line needs.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {s:?} at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are outside the trace format's
                        // needs; map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Convenience: builds an object from `(key, value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_objects() {
        let text = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":0.25}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_num(), Some(0.25));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, 1.5, -3.25, 1e-9, 123456789.0, 0.1, f64::MAX] {
            let text = JsonValue::Num(n).to_json();
            assert_eq!(parse(&text).unwrap().as_num(), Some(n), "{n}");
        }
    }

    #[test]
    fn escapes_survive() {
        let s = "quote\" back\\ nl\n tab\t unicode ü";
        let text = JsonValue::Str(s.into()).to_json();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }
}

//! Ablation: first-order vs second-order MAML.
//!
//! Quantifies DESIGN.md's FOMAML substitution: trains one shared
//! initialisation with each meta-gradient variant on the same workload
//! and seed, then reports validation RMSE/MAE/MR and training time. The
//! paper's method is agnostic to this choice; the expectation is that the
//! two land in the same quality regime with second-order paying ~3× the
//! gradient evaluations.

use std::time::Instant;
use tamp_bench::{default_training, out_dir, seed_from_env};
use tamp_core::rng::{rng_for, streams};
use tamp_meta::eval::{evaluate_model, PredictionMetrics};
use tamp_meta::maml::adapt;
use tamp_meta::meta_training::meta_train;
use tamp_meta::second_order::meta_train_second_order;
use tamp_meta::LearningTask;
use tamp_nn::{MseLoss, Seq2Seq, Seq2SeqConfig};
use tamp_platform::experiments::report::{f1, f4, print_markdown_table, save_json};
use tamp_platform::training::{build_learning_tasks, TrainingConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    let mut scale = Scale::small();
    scale.n_workers = 24; // second-order costs 3× per step; keep it snappy
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    let cfg: TrainingConfig = default_training(seed);
    let tasks = build_learning_tasks(&workload, &cfg);

    let mut rng = rng_for(seed, streams::WEIGHTS);
    let template = Seq2Seq::new(Seq2SeqConfig::lstm(cfg.hidden), &mut rng);

    let evaluate = |theta: &[f64], rng: &mut rand::rngs::StdRng| -> PredictionMetrics {
        let per: Vec<PredictionMetrics> = tasks
            .iter()
            .map(|t: &LearningTask| {
                let model = adapt(
                    theta,
                    t,
                    &template,
                    &MseLoss,
                    cfg.adapt_steps,
                    cfg.meta.beta,
                    cfg.meta.adapt_batch,
                    rng,
                );
                evaluate_model(&model, &t.query, &workload.grid, cfg.a_km)
            })
            .collect();
        PredictionMetrics::merge(&per)
    };

    println!(
        "# Ablation: meta-gradient order ({} workers, seed {seed})",
        workload.workers.len()
    );
    let refs: Vec<&LearningTask> = tasks.iter().collect();
    let mut rows = Vec::new();
    for (name, second_order) in [("first-order (FOMAML)", false), ("second-order", true)] {
        let mut theta = template.params();
        let mut meta_rng = rng_for(seed, streams::META);
        let start = Instant::now();
        if second_order {
            meta_train_second_order(
                &mut theta,
                &refs,
                &template,
                &MseLoss,
                &cfg.meta,
                &mut meta_rng,
            );
        } else {
            meta_train(
                &mut theta,
                &refs,
                &template,
                &MseLoss,
                &cfg.meta,
                &mut meta_rng,
            );
        }
        let tt = start.elapsed().as_secs_f64();
        let m = evaluate(&theta, &mut meta_rng);
        rows.push(serde_json::json!({
            "variant": name,
            "rmse": m.rmse_cells,
            "mae": m.mae_cells,
            "mr": m.mr,
            "tt_seconds": tt,
        }));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r["variant"].as_str().unwrap().to_string(),
                f4(r["rmse"].as_f64().unwrap()),
                f4(r["mae"].as_f64().unwrap()),
                f4(r["mr"].as_f64().unwrap()),
                f1(r["tt_seconds"].as_f64().unwrap()),
            ]
        })
        .collect();
    print_markdown_table(&["variant", "RMSE", "MAE", "MR", "TT (s)"], &table);
    save_json(
        &out_dir().join("ablation_meta.json"),
        "ablation_meta_order",
        &rows,
    )
    .expect("write rows");
}

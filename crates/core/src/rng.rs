//! Deterministic randomness helpers.
//!
//! Every stochastic component in the workspace (data synthesis, weight
//! initialisation, task sampling, the genetic baseline) derives its RNG
//! from a single experiment seed through [`derive_seed`], so an experiment
//! is exactly reproducible from one `u64` while sub-streams stay
//! statistically independent.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes an experiment seed with a stream label into an independent child
/// seed (SplitMix64 finaliser, the standard seed-derivation mixer).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for the given `(seed, stream)` pair.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

/// Well-known stream labels so call sites don't collide by accident.
pub mod streams {
    /// Worker routine synthesis.
    pub const ROUTINES: u64 = 1;
    /// Spatial task synthesis.
    pub const TASKS: u64 = 2;
    /// Model weight initialisation.
    pub const WEIGHTS: u64 = 3;
    /// Meta-training batch sampling.
    pub const META: u64 = 4;
    /// Clustering initialisation (k-medoids / k-means).
    pub const CLUSTER: u64 = 5;
    /// Genetic baseline (GGPSO).
    pub const GENETIC: u64 = 6;
    /// POI synthesis.
    pub const POIS: u64 = 7;
    /// Distribution-similarity subsampling.
    pub const WASSERSTEIN: u64 = 8;
    /// Fault injection (report loss/noise, offline windows, prediction
    /// failures) — see `tamp-platform::faults`.
    pub const FAULTS: u64 = 9;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
    }

    #[test]
    fn streams_are_independent() {
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_reproduces() {
        let mut a = rng_for(7, streams::TASKS);
        let mut b = rng_for(7, streams::TASKS);
        let xa: [u64; 4] = std::array::from_fn(|_| a.gen());
        let xb: [u64; 4] = std::array::from_fn(|_| b.gen());
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = rng_for(7, streams::TASKS);
        let mut b = rng_for(7, streams::ROUTINES);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }
}

//! k-medoids clustering \[26\] over a similarity matrix.
//!
//! Algorithm 1 initialises the strategy-game clusters by running
//! k-medoids with `1/F_j` as the distance between learning tasks; we use
//! the equivalent bounded distance `1 − sim`. The same routine (without
//! the game refinement) is the clustering backbone of the GTTAML-GT
//! ablation.

use crate::similarity::SimMatrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Clusters `members` into at most `k` groups by k-medoids (Park & Jun's
/// simple-and-fast variant: assign to nearest medoid, recompute medoid as
/// the member minimising total in-cluster distance, repeat).
///
/// Returns non-empty clusters; fewer than `k` may come back when members
/// coincide. Deterministic given `rng`.
pub fn kmedoids(
    sim: &SimMatrix,
    members: &[usize],
    k: usize,
    max_iters: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    assert!(k > 0, "k must be positive");
    if members.len() <= k {
        return members.iter().map(|&m| vec![m]).collect();
    }

    // Initial medoids: random distinct members.
    let mut medoids: Vec<usize> = {
        let mut pool = members.to_vec();
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    };

    let mut assignment = vec![0usize; members.len()];
    for _ in 0..max_iters {
        // Assign each member to its nearest medoid.
        let mut changed = false;
        for (mi, &m) in members.iter().enumerate() {
            let best = (0..medoids.len())
                .min_by(|&a, &b| {
                    sim.dist(m, medoids[a])
                        .partial_cmp(&sim.dist(m, medoids[b]))
                        .expect("finite distance")
                })
                .expect("at least one medoid");
            if assignment[mi] != best {
                assignment[mi] = best;
                changed = true;
            }
        }

        // Recompute medoids.
        let mut new_medoids = medoids.clone();
        for (c, nm) in new_medoids.iter_mut().enumerate() {
            let cluster: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|(mi, _)| assignment[*mi] == c)
                .map(|(_, &m)| m)
                .collect();
            if cluster.is_empty() {
                continue;
            }
            let best = cluster
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca: f64 = cluster.iter().map(|&x| sim.dist(a, x)).sum();
                    let cb: f64 = cluster.iter().map(|&x| sim.dist(b, x)).sum();
                    ca.partial_cmp(&cb).expect("finite")
                })
                .expect("non-empty cluster");
            *nm = best;
        }
        let medoids_changed = new_medoids != medoids;
        medoids = new_medoids;
        if !changed && !medoids_changed {
            break;
        }
    }

    // Materialise clusters, dropping empties.
    let mut clusters = vec![Vec::new(); medoids.len()];
    for (mi, &m) in members.iter().enumerate() {
        clusters[assignment[mi]].push(m);
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;

    /// Two obvious blocks: members 0–3 mutually similar, 4–7 mutually
    /// similar, low cross similarity.
    fn block_matrix() -> SimMatrix {
        SimMatrix::from_fn(8, |i, j| if (i < 4) == (j < 4) { 0.9 } else { 0.05 })
    }

    #[test]
    fn recovers_blocks() {
        let sim = block_matrix();
        let members: Vec<usize> = (0..8).collect();
        let mut rng = rng_for(1, tamp_core::rng::streams::CLUSTER);
        let clusters = kmedoids(&sim, &members, 2, 50, &mut rng);
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            let lows = c.iter().filter(|&&m| m < 4).count();
            assert!(lows == 0 || lows == c.len(), "cluster mixes blocks: {c:?}");
        }
    }

    #[test]
    fn covers_all_members_exactly_once() {
        let sim = block_matrix();
        let members: Vec<usize> = (0..8).collect();
        let mut rng = rng_for(2, tamp_core::rng::streams::CLUSTER);
        let clusters = kmedoids(&sim, &members, 3, 50, &mut rng);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, members);
    }

    #[test]
    fn few_members_become_singletons() {
        let sim = block_matrix();
        let mut rng = rng_for(3, tamp_core::rng::streams::CLUSTER);
        let clusters = kmedoids(&sim, &[2, 5], 4, 50, &mut rng);
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let sim = block_matrix();
        let members: Vec<usize> = (0..8).collect();
        let mut r1 = rng_for(4, 0);
        let mut r2 = rng_for(4, 0);
        assert_eq!(
            kmedoids(&sim, &members, 2, 50, &mut r1),
            kmedoids(&sim, &members, 2, 50, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let sim = block_matrix();
        let mut rng = rng_for(5, 0);
        kmedoids(&sim, &[0, 1], 0, 10, &mut rng);
    }
}

//! Live-observability guarantees of the serve layer:
//!
//! * the windowed (sliding-window) metrics, the cumulative telemetry
//!   snapshot, and the per-shard `ServeReport` accounting all agree —
//!   three independent paths to the same totals;
//! * the `--metrics-addr` exporter answers Prometheus text and JSON
//!   scrapes *mid-run*, and the live view advances between scrapes;
//! * a declarative SLO spec evaluated live inside the host stays green
//!   on a clean run and trips decisively under a seeded latency
//!   regression (`perturb_step_sleep_ms`);
//! * the window log replays offline into the exact same SLO verdicts
//!   the live engine reached.

use std::sync::Arc;
use tamp_meta::meta_training::MetaConfig;
use tamp_obs::{
    LiveView, Obs, SloEngine, SloKind, SloSet, SloSpec, WindowSnapshot, WindowedRegistry,
};
use tamp_platform::{
    train_predictors, AssignmentAlgo, EngineConfig, LossKind, PredictionAlgo, TrainedPredictors,
    TrainingConfig,
};
use tamp_serve::{
    http_get, HostConfig, MetricsServer, OverloadPolicy, ServeHost, Shard, ShardConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_predictors(w: &Workload, seed: u64) -> TrainedPredictors {
    train_predictors(
        w,
        &TrainingConfig {
            algo: PredictionAlgo::Maml,
            loss: LossKind::Mse,
            hidden: 6,
            seq_in: 3,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            adapt_steps: 2,
            seed,
            ..TrainingConfig::default()
        },
    )
}

fn shard(name: &str, seed: u64, queue_capacity: usize, perturb_ms: f64) -> Shard {
    let w = tiny_workload(seed);
    let p = quick_predictors(&w, seed);
    let cfg = ShardConfig {
        algo: AssignmentAlgo::Ppi,
        engine: EngineConfig {
            seq_in: 3,
            prediction_cache: true,
            seed,
            ..EngineConfig::default()
        },
        faults: None,
        queue_capacity,
        overload: OverloadPolicy::Shed,
        perturb_step_sleep_ms: perturb_ms,
    };
    Shard::new(name, w, Some(p), cfg).expect("shard construction")
}

fn latency_slo(max_ms: f64, window: usize) -> SloSet {
    SloSet {
        slos: vec![SloSpec {
            name: "step-p99".into(),
            metric: "serve.step.latency_ms".into(),
            kind: SloKind::Quantile(0.99),
            max: max_ms,
            window,
            max_burn_rate: 0.0,
            trace_span: Some("serve.batch".into()),
        }],
    }
}

/// Sum of one windowed counter over every scope and retained window.
fn fleet_counter(live: &WindowedRegistry, name: &str) -> u64 {
    live.fleet_tail(usize::MAX)
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn windowed_cumulative_and_report_accounting_agree() {
    let live = Arc::new(WindowedRegistry::new(4096));
    let (obs, _mem) = Obs::in_memory();
    // A tiny queue forces shedding, so the reconciliation also covers
    // the overload counters, not just the happy path.
    let shards = vec![shard("s0", 11, 4, 0.0), shard("s1", 12, 4, 0.0)];
    let host = ServeHost::new(
        shards,
        HostConfig {
            live: Some(live.clone()),
            ..HostConfig::default()
        },
    );
    let report = host.run(&obs);
    let snapshot = obs.snapshot();

    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let submitted: usize = report
        .shards
        .iter()
        .map(|s| s.counts.submitted_tasks + s.counts.submitted_reports)
        .sum();
    let shed: usize = report.shards.iter().map(|s| s.counts.shed()).sum();
    let hits: u64 = report.shards.iter().map(|s| s.cache.hits).sum();
    let misses: u64 = report.shards.iter().map(|s| s.cache.misses).sum();
    assert!(submitted > 0, "tiny workload must submit something");
    assert!(shed > 0, "capacity-4 queues must shed");

    // Cumulative snapshot == report accounting.
    assert_eq!(counter("serve.submitted"), submitted as u64);
    assert_eq!(counter("serve.shed"), shed as u64);
    assert_eq!(counter("serve.cache.hit"), hits);
    assert_eq!(counter("serve.cache.miss"), misses);

    // Windowed fleet totals == both of the above.
    assert_eq!(fleet_counter(&live, "serve.submitted"), submitted as u64);
    assert_eq!(fleet_counter(&live, "serve.shed"), shed as u64);
    assert_eq!(fleet_counter(&live, "serve.cache.hit"), hits);
    assert_eq!(fleet_counter(&live, "serve.cache.miss"), misses);

    // Per-scope merges match per-shard reports, and the latency
    // histogram saw every stepped window.
    let merged = live.merged_tail(usize::MAX);
    let total_windows: u64 = report.shards.iter().map(|s| s.windows).sum();
    for s in &report.shards {
        let cell = &merged[&s.name];
        assert_eq!(
            cell.counters.get("serve.submitted").copied().unwrap_or(0),
            (s.counts.submitted_tasks + s.counts.submitted_reports) as u64,
            "scope {}",
            s.name
        );
        assert_eq!(
            cell.counters.get("serve.shed").copied().unwrap_or(0),
            s.counts.shed() as u64,
            "scope {}",
            s.name
        );
    }
    let fleet_hist = &live.fleet_tail(usize::MAX).histograms["serve.step.latency_ms"];
    assert_eq!(fleet_hist.count(), total_windows);
    assert_eq!(
        snapshot.histograms["serve.step.latency_ms"].count,
        total_windows
    );
}

#[test]
fn exporter_answers_scrapes_mid_run() {
    let live = Arc::new(WindowedRegistry::new(64));
    let obs = Obs::null();
    let shards = vec![shard("s0", 21, 1 << 16, 0.0), shard("s1", 22, 1 << 16, 0.0)];
    let mut host = ServeHost::new(
        shards,
        HostConfig {
            live: Some(live.clone()),
            ..HostConfig::default()
        },
    );
    host.run_windows(3, &obs);

    let src_live = live.clone();
    let src_obs = obs.clone();
    let server = MetricsServer::bind(
        "127.0.0.1:0",
        Arc::new(move || (src_obs.snapshot(), Some(src_live.view(64)))),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    // First scrape: Prometheus text, mid-run.
    let text = http_get(&addr, "/metrics").expect("scrape /metrics");
    let samples = tamp_obs::prom::parse_text(&text).expect("well-formed exposition");
    let submitted = samples
        .iter()
        .find(|s| {
            s.name == "tamp_window_serve_submitted_total" && s.label("scope") == Some("fleet")
        })
        .expect("fleet submitted series");
    assert!(submitted.value > 0.0);
    let latest = samples
        .iter()
        .find(|s| s.name == "tamp_window_latest")
        .expect("window index series");
    assert_eq!(latest.value, 2.0, "three sealed windows -> latest index 2");

    // The run continues under the exporter; the view advances.
    host.run_windows(3, &obs);
    let json = http_get(&addr, "/metrics.json").expect("scrape /metrics.json");
    let doc = tamp_obs::json::parse(&json).expect("well-formed JSON");
    let view = LiveView::from_json_value(doc.get("live").expect("live field")).expect("live view");
    assert_eq!(view.latest, Some(5));
    assert!(view.scopes.contains_key("s0") && view.scopes.contains_key("s1"));
    assert!(view.fleet.counters["serve.submitted"] >= submitted.value as u64);

    host.shutdown(&obs);
}

#[test]
fn slo_stays_green_clean_and_trips_under_seeded_regression() {
    let dir = std::env::temp_dir().join(format!("tamp-obs-slo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Clean run against a generous threshold: green.
    let live = Arc::new(WindowedRegistry::new(8));
    let (obs, _mem) = Obs::in_memory();
    let host = ServeHost::new(
        vec![shard("s0", 31, 1 << 16, 0.0)],
        HostConfig {
            live: Some(live),
            slo: Some(latency_slo(250.0, 4)),
            ..HostConfig::default()
        },
    );
    let clean = host.run(&obs);
    assert_eq!(clean.slos.len(), 1);
    assert!(!clean.slos[0].breached, "clean run within 250 ms p99");
    assert_eq!(clean.slos[0].violations, 0);
    assert_eq!(
        obs.snapshot().counters.get("slo.violation.step-p99"),
        None,
        "no violation counters on a green run"
    );

    // Seeded regression: an 8 ms sleep inside the timed step section
    // must push p99 past a 5 ms threshold in every window.
    let log_path = dir.join("windows.jsonl");
    let live = Arc::new(WindowedRegistry::new(8));
    let (obs, _mem) = Obs::in_memory();
    let host = ServeHost::new(
        vec![shard("s0", 31, 1 << 16, 8.0)],
        HostConfig {
            live: Some(live),
            window_log: Some(log_path.clone()),
            slo: Some(latency_slo(5.0, 4)),
            ..HostConfig::default()
        },
    );
    let hot = host.run(&obs);
    let row = &hot.slos[0];
    assert!(row.breached, "8 ms perturbation must trip a 5 ms SLO");
    assert!(row.evaluated > 0);
    assert_eq!(row.violations, row.evaluated, "every window violates");
    assert!(row.worst >= 8.0);
    assert_eq!(
        obs.snapshot()
            .counters
            .get("slo.violation.step-p99")
            .copied(),
        Some(row.violations),
        "one counter bump per violating evaluation"
    );

    // Offline replay of the window log reaches the same verdict — the
    // `tamp slo-check --windows` code path.
    let text = std::fs::read_to_string(&log_path).expect("window log written");
    let replay = WindowedRegistry::new(8);
    let mut engine = SloEngine::new(latency_slo(5.0, 4));
    for line in text.lines() {
        let snap = WindowSnapshot::from_json(line).expect("well-formed window line");
        replay.push_sealed(snap);
        engine.evaluate(&replay);
    }
    let offline = &engine.outcomes()[0];
    assert_eq!(offline.evaluated, row.evaluated);
    assert_eq!(offline.violations, row.violations);
    assert_eq!(offline.breached, row.breached);

    std::fs::remove_dir_all(&dir).ok();
}

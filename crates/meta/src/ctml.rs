//! The CTML baseline \[41\].
//!
//! "A clustered task-aware meta-learning algorithm, which clusters
//! learning tasks by soft K-means according to features of input data and
//! learning paths represented by parameter update trajectories"
//! (Section IV-A). We build per-task feature vectors from (a) summary
//! statistics of the input data distribution and (b) the parameter-update
//! trajectory (per-step update norms and the within-path direction
//! drift), run soft k-means to convergence, hard-assign by maximum
//! responsibility, and meta-train one initialisation per cluster.

use crate::learning_task::LearningTask;
use crate::meta_training::{meta_train, MetaConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use tamp_nn::matrix::vecops::cosine;
use tamp_nn::{Loss, Seq2Seq};

/// CTML hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct CtmlConfig {
    /// Number of soft clusters.
    pub k: usize,
    /// Soft k-means EM iterations.
    pub em_iters: usize,
    /// Responsibility temperature (smaller = harder assignments).
    pub temperature: f64,
    /// Gradient-path length used for the learning-path features.
    pub path_steps: usize,
    /// Inner rate for the path probe.
    pub path_beta: f64,
    /// Meta-training configuration per cluster.
    pub meta: MetaConfig,
}

impl Default for CtmlConfig {
    fn default() -> Self {
        Self {
            k: 4,
            em_iters: 25,
            temperature: 0.5,
            path_steps: 3,
            path_beta: 0.1,
            meta: MetaConfig::default(),
        }
    }
}

/// A trained CTML model: clusters, their centroids in feature space, and
/// one meta-trained initialisation per cluster.
#[derive(Debug, Clone)]
pub struct CtmlModel {
    /// Hard cluster membership (task indices).
    pub clusters: Vec<Vec<usize>>,
    /// Feature-space centroids, parallel to `clusters`.
    pub centroids: Vec<Vec<f64>>,
    /// Meta-trained `θ` per cluster, parallel to `clusters`.
    pub thetas: Vec<Vec<f64>>,
    /// The per-task features used at training time (kept so new tasks can
    /// be normalised identically).
    feature_dim: usize,
}

impl CtmlModel {
    /// The cluster a feature vector belongs to (nearest centroid).
    pub fn assign(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.feature_dim, "feature dim mismatch");
        self.centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                sq_dist(a, features)
                    .partial_cmp(&sq_dist(b, features))
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("at least one cluster")
    }

    /// The initialisation for a task with the given features.
    pub fn theta_for(&self, features: &[f64]) -> &[f64] {
        &self.thetas[self.assign(features)]
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Builds the CTML feature vector of one task given its gradient path.
///
/// Features: `[mean_x, mean_y, std_x, std_y, mean_step]` of the raw
/// samples, then per-step gradient norms (the parameter-update
/// trajectory's magnitudes) and the cosine drift between the first and
/// last updates.
pub fn task_features(task: &LearningTask, path: &[Vec<f64>]) -> Vec<f64> {
    let pts = &task.sample_points;
    let n = pts.len().max(1) as f64;
    let mean_x = pts.iter().map(|p| p.x).sum::<f64>() / n;
    let mean_y = pts.iter().map(|p| p.y).sum::<f64>() / n;
    let var_x = pts.iter().map(|p| (p.x - mean_x).powi(2)).sum::<f64>() / n;
    let var_y = pts.iter().map(|p| (p.y - mean_y).powi(2)).sum::<f64>() / n;
    let mean_step = if pts.len() > 1 {
        pts.windows(2).map(|w| w[0].dist(w[1])).sum::<f64>() / (pts.len() - 1) as f64
    } else {
        0.0
    };
    let mut f = vec![mean_x, mean_y, var_x.sqrt(), var_y.sqrt(), mean_step];
    for g in path {
        f.push(g.iter().map(|v| v * v).sum::<f64>().sqrt());
    }
    if path.len() >= 2 {
        f.push(cosine(&path[0], path.last().expect("non-empty")));
    } else {
        f.push(0.0);
    }
    f
}

/// Z-score normalises a feature matrix column-wise (in place).
fn normalise_columns(features: &mut [Vec<f64>]) {
    if features.is_empty() {
        return;
    }
    let dim = features[0].len();
    let n = features.len() as f64;
    for c in 0..dim {
        let mean = features.iter().map(|f| f[c]).sum::<f64>() / n;
        let var = features.iter().map(|f| (f[c] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt().max(1e-9);
        for f in features.iter_mut() {
            f[c] = (f[c] - mean) / sd;
        }
    }
}

/// Soft k-means over normalised features. Returns `(centroids, hard
/// assignment per row)`.
fn soft_kmeans(
    features: &[Vec<f64>],
    k: usize,
    iters: usize,
    temperature: f64,
    rng: &mut impl Rng,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    assert!(k > 0 && !features.is_empty());
    let dim = features[0].len();
    let k = k.min(features.len());
    // Init centroids on random distinct rows.
    let mut idx: Vec<usize> = (0..features.len()).collect();
    idx.shuffle(rng);
    let mut centroids: Vec<Vec<f64>> = idx[..k].iter().map(|&i| features[i].clone()).collect();

    let mut resp = vec![vec![0.0; k]; features.len()];
    for _ in 0..iters {
        // E-step: responsibilities ∝ exp(−‖x − μ‖²/T).
        for (i, f) in features.iter().enumerate() {
            let mut maxneg = f64::NEG_INFINITY;
            let negs: Vec<f64> = centroids
                .iter()
                .map(|c| {
                    let v = -sq_dist(c, f) / temperature.max(1e-9);
                    maxneg = maxneg.max(v);
                    v
                })
                .collect();
            let mut z = 0.0;
            for (r, v) in resp[i].iter_mut().zip(&negs) {
                *r = (v - maxneg).exp();
                z += *r;
            }
            for r in resp[i].iter_mut() {
                *r /= z;
            }
        }
        // M-step: weighted means.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let mut acc = vec![0.0; dim];
            let mut w = 0.0;
            for (i, f) in features.iter().enumerate() {
                let r = resp[i][c];
                w += r;
                for (a, v) in acc.iter_mut().zip(f) {
                    *a += r * v;
                }
            }
            if w > 1e-12 {
                for a in acc.iter_mut() {
                    *a /= w;
                }
                *centroid = acc;
            }
        }
    }
    let hard: Vec<usize> = resp
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                .map(|(i, _)| i)
                .expect("k ≥ 1")
        })
        .collect();
    (centroids, hard)
}

/// Trains CTML: features → soft k-means → per-cluster MAML.
///
/// `paths` are the gradient paths from [`crate::maml::gradient_paths`]
/// (reused for both the features here and `Sim_l` elsewhere).
pub fn ctml_train(
    tasks: &[LearningTask],
    paths: &[Vec<Vec<f64>>],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &CtmlConfig,
    rng: &mut impl Rng,
) -> CtmlModel {
    assert_eq!(tasks.len(), paths.len(), "one path per task");
    assert!(!tasks.is_empty(), "CTML needs tasks");
    let mut features: Vec<Vec<f64>> = tasks
        .iter()
        .zip(paths)
        .map(|(t, p)| task_features(t, p))
        .collect();
    normalise_columns(&mut features);

    let (centroids, hard) = soft_kmeans(&features, cfg.k, cfg.em_iters, cfg.temperature, rng);
    let k = centroids.len();
    let mut clusters = vec![Vec::new(); k];
    for (i, &c) in hard.iter().enumerate() {
        clusters[c].push(i);
    }

    let mut thetas = Vec::with_capacity(k);
    for cluster in &clusters {
        let mut theta = template.params();
        if !cluster.is_empty() {
            let refs: Vec<&LearningTask> = cluster.iter().map(|&i| &tasks[i]).collect();
            meta_train(&mut theta, &refs, template, loss, &cfg.meta, rng);
        }
        thetas.push(theta);
    }

    CtmlModel {
        clusters,
        centroids,
        thetas,
        feature_dim: features.first().map_or(0, |f| f.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maml::gradient_paths;
    use tamp_core::rng::rng_for;
    use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
    use tamp_nn::{MseLoss, Seq2SeqConfig};

    fn task_in_corner(id: u64, cx: f64, cy: f64) -> LearningTask {
        let days: Vec<Routine> = (0..2)
            .map(|d| {
                Routine::from_sampled(
                    (0..14)
                        .map(|i| Point::new(cx + (i % 4) as f64 * 0.3, cy + (i % 3) as f64 * 0.3)),
                    Minutes::new(d as f64 * 1440.0),
                    Minutes::new(10.0),
                )
            })
            .collect();
        let mut rng = rng_for(id, 6);
        LearningTask::from_history(
            WorkerId(id),
            &days,
            vec![],
            &Grid::PAPER,
            2,
            1,
            0.7,
            false,
            &mut rng,
        )
    }

    fn corner_tasks() -> Vec<LearningTask> {
        vec![
            task_in_corner(0, 2.0, 2.0),
            task_in_corner(1, 2.5, 2.2),
            task_in_corner(2, 16.0, 8.0),
            task_in_corner(3, 16.5, 7.8),
        ]
    }

    #[test]
    fn clusters_cover_all_tasks() {
        let tasks = corner_tasks();
        let mut rng = rng_for(1, 6);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let paths = gradient_paths(&tasks, &template, &MseLoss, 3, 0.1, 8, &mut rng);
        let cfg = CtmlConfig {
            k: 2,
            meta: MetaConfig {
                iterations: 4,
                ..MetaConfig::default()
            },
            ..CtmlConfig::default()
        };
        let model = ctml_train(&tasks, &paths, &template, &MseLoss, &cfg, &mut rng);
        let mut all: Vec<usize> = model.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(model.thetas.len(), model.clusters.len());
    }

    #[test]
    fn separates_spatially_distinct_groups() {
        let tasks = corner_tasks();
        let mut rng = rng_for(2, 6);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let paths = gradient_paths(&tasks, &template, &MseLoss, 3, 0.1, 8, &mut rng);
        let cfg = CtmlConfig {
            k: 2,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            ..CtmlConfig::default()
        };
        let model = ctml_train(&tasks, &paths, &template, &MseLoss, &cfg, &mut rng);
        // 0,1 together; 2,3 together.
        for c in &model.clusters {
            if c.is_empty() {
                continue;
            }
            let low = c.iter().filter(|&&i| i < 2).count();
            assert!(low == 0 || low == c.len(), "mixed cluster {c:?}");
        }
    }

    #[test]
    fn assign_routes_to_nearest_centroid() {
        let tasks = corner_tasks();
        let mut rng = rng_for(3, 6);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let paths = gradient_paths(&tasks, &template, &MseLoss, 3, 0.1, 8, &mut rng);
        let cfg = CtmlConfig {
            k: 2,
            meta: MetaConfig {
                iterations: 2,
                ..MetaConfig::default()
            },
            ..CtmlConfig::default()
        };
        let model = ctml_train(&tasks, &paths, &template, &MseLoss, &cfg, &mut rng);
        // A centroid must be its own nearest centroid.
        for (i, c) in model.centroids.iter().enumerate() {
            assert_eq!(model.assign(c), i);
            assert_eq!(model.theta_for(c), &model.thetas[i][..]);
        }
    }

    #[test]
    fn feature_vector_shape() {
        let tasks = corner_tasks();
        let path = vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]];
        let f = task_features(&tasks[0], &path);
        // 5 data features + 3 norms + 1 drift.
        assert_eq!(f.len(), 9);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}

//! Task-assignment experiments (Figures 6–11).
//!
//! Every sweep point rebuilds the workload with the swept parameter,
//! trains two GTTAML predictor sets (task-assignment-oriented loss and
//! plain MSE — the `PPI`/`PPI-loss`, `KM`/`KM-loss` split), runs all
//! seven algorithms through the batch engine, and reports the paper's
//! four metrics.

use crate::engine::{run_all_algorithms, EngineConfig};
use crate::training::{train_predictors, LossKind, TrainingConfig};
use serde::{Deserialize, Serialize};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

/// One algorithm × sweep-point measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignmentRow {
    /// Algorithm name (UB / LB / PPI / PPI-loss / KM / KM-loss / GGPSO).
    pub algorithm: String,
    /// Name of the swept parameter.
    pub param: String,
    /// Swept value.
    pub x: f64,
    /// Task completion ratio.
    pub completion: f64,
    /// Rejection ratio `(|M|−|M'|)/|M|`.
    pub rejection: f64,
    /// Mean real detour of completed tasks, km.
    pub cost_km: f64,
    /// Assignment-algorithm wall-clock seconds over the day.
    pub runtime_s: f64,
}

/// Shared sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload family.
    pub kind: WorkloadKind,
    /// Sizing.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Offline-stage configuration (loss is overridden per predictor set).
    pub training: TrainingConfig,
    /// Online-stage configuration.
    pub engine: EngineConfig,
}

fn run_point(
    cfg: &SweepConfig,
    param: &str,
    x: f64,
    tweak: impl Fn(&mut WorkloadConfig),
) -> Vec<AssignmentRow> {
    let mut wcfg = WorkloadConfig::new(cfg.kind, cfg.scale, cfg.seed);
    tweak(&mut wcfg);
    let workload = wcfg.build();

    let with_loss = train_predictors(
        &workload,
        &TrainingConfig {
            loss: LossKind::TaskOriented,
            ..cfg.training.clone()
        },
    );
    let with_mse = train_predictors(
        &workload,
        &TrainingConfig {
            loss: LossKind::Mse,
            ..cfg.training.clone()
        },
    );
    run_all_algorithms(&workload, &with_loss, &with_mse, &cfg.engine)
        .into_iter()
        .map(|(algorithm, m)| AssignmentRow {
            algorithm,
            param: param.to_string(),
            x,
            completion: m.completion_ratio(),
            rejection: m.rejection_ratio(),
            cost_km: m.avg_worker_cost_km(),
            runtime_s: m.algo_seconds,
        })
        .collect()
}

/// Fig. 6 / Fig. 9: sweep the worker detour limit `d` (km).
pub fn detour_sweep(cfg: &SweepConfig, detours_km: &[f64]) -> Vec<AssignmentRow> {
    detours_km
        .iter()
        .flat_map(|&d| run_point(cfg, "detour_km", d, |w| w.detour_limit_km = d))
        .collect()
}

/// Fig. 7 / Fig. 10: sweep the number of spatial tasks.
pub fn task_count_sweep(cfg: &SweepConfig, task_counts: &[usize]) -> Vec<AssignmentRow> {
    task_counts
        .iter()
        .flat_map(|&n| {
            run_point(cfg, "n_tasks", n as f64, |w| {
                w.scale.n_tasks = n;
            })
        })
        .collect()
}

/// Fig. 8 / Fig. 11: sweep the task valid-time interval, `[lo, lo+1]`
/// time units.
pub fn valid_time_sweep(cfg: &SweepConfig, valid_los: &[f64]) -> Vec<AssignmentRow> {
    valid_los
        .iter()
        .flat_map(|&lo| {
            run_point(cfg, "valid_time_lo", lo, |w| {
                w.valid_time_units = (lo, lo + 1.0);
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_meta::meta_training::MetaConfig;
    use tamp_sim::Scale;

    fn quick_sweep() -> SweepConfig {
        SweepConfig {
            kind: WorkloadKind::PortoDidi,
            scale: Scale::tiny(),
            seed: 33,
            training: TrainingConfig {
                hidden: 5,
                seq_in: 2,
                meta: MetaConfig {
                    iterations: 1,
                    batch_tasks: 2,
                    ..MetaConfig::default()
                },
                path_steps: 2,
                adapt_steps: 1,
                seed: 33,
                ..TrainingConfig::default()
            },
            engine: EngineConfig {
                seq_in: 2,
                ..EngineConfig::default()
            },
        }
    }

    #[test]
    fn detour_sweep_covers_all_algorithms_and_points() {
        let rows = detour_sweep(&quick_sweep(), &[4.0, 8.0]);
        assert_eq!(rows.len(), 14, "7 algorithms × 2 points");
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.completion), "{r:?}");
            assert!((0.0..=1.0).contains(&r.rejection));
            assert!(r.cost_km >= 0.0 && r.cost_km.is_finite());
            assert_eq!(r.param, "detour_km");
        }
        // UB never rejects.
        for r in rows.iter().filter(|r| r.algorithm == "UB") {
            assert_eq!(r.rejection, 0.0);
        }
    }

    #[test]
    fn valid_time_sweep_sets_param() {
        let rows = valid_time_sweep(&quick_sweep(), &[2.0]);
        assert_eq!(rows.len(), 7);
        assert!(rows
            .iter()
            .all(|r| r.param == "valid_time_lo" && r.x == 2.0));
    }
}

//! Seeded fault injection for the online assignment platform.
//!
//! Real crowdsourcing platforms run on messy inputs: workers' phones drop
//! location reports, deliver them late or noisy, emit corrupt coordinates,
//! and go offline; model servers fail a rollout or return garbage. This
//! module turns those failure modes into a *deterministic, replayable*
//! perturbation layer so the engine's graceful-degradation ladder can be
//! measured (see `exp_robustness` in `tamp-bench` and DESIGN.md, "Fault
//! model & degradation ladder").
//!
//! Determinism discipline: every individual fault decision draws from its
//! own RNG derived as `seed → streams::FAULTS → decision kind → worker →
//! index` via [`tamp_core::rng::derive_seed`]. Decisions are therefore
//! pure functions of `(FaultConfig, worker, index)` — independent of
//! query order, and each fault knob toggles without disturbing the
//! others' streams.
//!
//! [`FaultConfig::none`] injects nothing and draws nothing: a run with it
//! is bit-identical to a run without a fault layer at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tamp_core::rng::{derive_seed, streams};
use tamp_core::{Grid, Minutes, Point, TimedPoint};
use tamp_sim::Workload;

/// Sub-stream labels under [`streams::FAULTS`], one per decision kind, so
/// toggling one fault knob never shifts another knob's random stream.
mod kinds {
    pub const REPORT_DROP: u64 = 1;
    pub const REPORT_CORRUPT: u64 = 2;
    pub const REPORT_DELAY: u64 = 3;
    pub const REPORT_NOISE: u64 = 4;
    pub const OFFLINE: u64 = 5;
    pub const PREDICT: u64 = 6;
    pub const ADAPT: u64 = 7;
    pub const SHARD_CRASH: u64 = 8;
}

/// Probabilities and magnitudes of every injected failure mode.
///
/// All probabilities are per-event (per report, per worker, per rollout,
/// per adaptation round) and must lie in `[0, 1]`; magnitudes are in the
/// unit of their name and must be finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// P(a location report never arrives).
    pub report_loss: f64,
    /// P(a report arrives late).
    pub report_delay: f64,
    /// Maximum lateness of a delayed report, minutes (uniform in
    /// `[0, max)`).
    pub max_delay_min: f64,
    /// Standard deviation of Gaussian GPS error added per delivered
    /// report, km.
    pub gps_noise_km: f64,
    /// P(a report's coordinates are corrupted — non-finite or absurdly
    /// off-grid; the ingest validator rejects these).
    pub corrupt_coord: f64,
    /// P(a worker goes offline for one contiguous window today).
    pub offline_worker: f64,
    /// Length of that offline window, minutes.
    pub offline_window_min: f64,
    /// P(the model rollout for a worker is unavailable in a batch).
    pub prediction_failure: f64,
    /// P(the model rollout returns garbage instead of failing cleanly).
    pub prediction_garbage: f64,
    /// P(an online-adaptation round for a worker trains on poisoned
    /// targets, driving the loss non-finite).
    pub adapt_poison: f64,
    /// P(a serving shard crashes after stepping a window). This is a
    /// *process*-level fault: the serve layer kills the shard and
    /// restores it from its latest snapshot (`tamp-serve`), which must
    /// leave the replay byte-identical. It never perturbs the engine's
    /// inputs, so a crash-only configuration reports
    /// [`Self::has_engine_faults`] `== false` and builds no
    /// [`FaultPlan`].
    pub shard_crash: f64,
    /// Seed of the fault streams (independent of the engine seed, so the
    /// same workload can be replayed under different fault draws).
    pub seed: u64,
}

impl FaultConfig {
    /// The identity configuration: injects nothing, draws no randomness.
    pub fn none() -> Self {
        Self {
            report_loss: 0.0,
            report_delay: 0.0,
            max_delay_min: 0.0,
            gps_noise_km: 0.0,
            corrupt_coord: 0.0,
            offline_worker: 0.0,
            offline_window_min: 0.0,
            prediction_failure: 0.0,
            prediction_garbage: 0.0,
            adapt_poison: 0.0,
            shard_crash: 0.0,
            seed: 0,
        }
    }

    /// True when no fault of any kind can ever fire under this
    /// configuration.
    pub fn is_none(&self) -> bool {
        !self.has_engine_faults() && self.shard_crash == 0.0
    }

    /// True when some *engine-level* fault (report, offline, rollout, or
    /// adaptation) can fire. This — not [`Self::is_none`] — gates
    /// [`FaultPlan`] construction: a plan replaces the engine's
    /// observation source, so building one for a crash-only
    /// configuration would silently change serve semantics even though
    /// the plan injects nothing.
    pub fn has_engine_faults(&self) -> bool {
        self.report_loss != 0.0
            || self.report_delay != 0.0
            || self.gps_noise_km != 0.0
            || self.corrupt_coord != 0.0
            || (self.offline_worker != 0.0 && self.offline_window_min != 0.0)
            || self.prediction_failure != 0.0
            || self.prediction_garbage != 0.0
            || self.adapt_poison != 0.0
    }

    /// Domain check: probabilities in `[0, 1]`, magnitudes finite `≥ 0`.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("report_loss", self.report_loss),
            ("report_delay", self.report_delay),
            ("corrupt_coord", self.corrupt_coord),
            ("offline_worker", self.offline_worker),
            ("prediction_failure", self.prediction_failure),
            ("prediction_garbage", self.prediction_garbage),
            ("adapt_poison", self.adapt_poison),
            ("shard_crash", self.shard_crash),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        let mags = [
            ("max_delay_min", self.max_delay_min),
            ("gps_noise_km", self.gps_noise_km),
            ("offline_window_min", self.offline_window_min),
        ];
        for (name, m) in mags {
            if !m.is_finite() || m < 0.0 {
                return Err(format!("{name} = {m} must be finite and ≥ 0"));
            }
        }
        Ok(())
    }
}

/// What happened to one location report on its way to the platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReportFault {
    /// Never arrives.
    Drop,
    /// Arrives carrying these (garbage) coordinates instead of the
    /// measurement.
    Corrupt(Point),
    /// Arrives `delay_min` late with `(dx, dy)` km of GPS error (all
    /// zero for a clean report).
    Deliver {
        /// Lateness in minutes.
        delay_min: f64,
        /// GPS error offset in km.
        noise_km: (f64, f64),
    },
}

/// What happened to one model rollout request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutFault {
    /// The model answered normally.
    Healthy,
    /// The rollout failed cleanly (e.g. model server timeout).
    Unavailable,
    /// The rollout "succeeded" but returned garbage values.
    Garbage,
}

/// Draws individual fault decisions deterministically from a
/// [`FaultConfig`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

/// One standard-normal sample via Box–Muller.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl FaultInjector {
    /// Wraps a (validated) configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn rng(&self, kind: u64, worker: u64, index: u64) -> StdRng {
        let s = derive_seed(self.cfg.seed, streams::FAULTS);
        StdRng::seed_from_u64(derive_seed(
            derive_seed(s, kind),
            derive_seed(worker, index),
        ))
    }

    /// Fate of report `report_idx` of `worker`. Clean configurations
    /// short-circuit without drawing randomness.
    pub fn report(&self, worker: u64, report_idx: u64) -> ReportFault {
        let c = &self.cfg;
        if c.report_loss > 0.0
            && self
                .rng(kinds::REPORT_DROP, worker, report_idx)
                .gen_bool(c.report_loss)
        {
            return ReportFault::Drop;
        }
        if c.corrupt_coord > 0.0 {
            let mut rng = self.rng(kinds::REPORT_CORRUPT, worker, report_idx);
            if rng.gen_bool(c.corrupt_coord) {
                // Corruption shapes seen in real feeds: NaN payloads and
                // wildly out-of-range fixed-point garbage.
                let p = match rng.gen_range(0u32..3) {
                    0 => Point::new(f64::NAN, f64::NAN),
                    1 => Point::new(f64::INFINITY, 0.0),
                    _ => Point::new(1.0e7, -1.0e7),
                };
                return ReportFault::Corrupt(p);
            }
        }
        let delay_min = if c.report_delay > 0.0 && c.max_delay_min > 0.0 {
            let mut rng = self.rng(kinds::REPORT_DELAY, worker, report_idx);
            if rng.gen_bool(c.report_delay) {
                rng.gen_range(0.0..c.max_delay_min)
            } else {
                0.0
            }
        } else {
            0.0
        };
        let noise_km = if c.gps_noise_km > 0.0 {
            let mut rng = self.rng(kinds::REPORT_NOISE, worker, report_idx);
            (
                c.gps_noise_km * gauss(&mut rng),
                c.gps_noise_km * gauss(&mut rng),
            )
        } else {
            (0.0, 0.0)
        };
        ReportFault::Deliver {
            delay_min,
            noise_km,
        }
    }

    /// The worker's offline window for the day, if any.
    pub fn offline_window(&self, worker: u64, horizon_min: f64) -> Option<(f64, f64)> {
        let c = &self.cfg;
        if c.offline_worker == 0.0 || c.offline_window_min == 0.0 {
            return None;
        }
        let mut rng = self.rng(kinds::OFFLINE, worker, 0);
        if !rng.gen_bool(c.offline_worker) {
            return None;
        }
        let len = c.offline_window_min.min(horizon_min);
        let latest_start = (horizon_min - len).max(0.0);
        let start = if latest_start > 0.0 {
            rng.gen_range(0.0..latest_start)
        } else {
            0.0
        };
        Some((start, start + len))
    }

    /// Fate of the model rollout for `worker` in batch `batch_idx`.
    pub fn rollout(&self, worker: u64, batch_idx: u64) -> RolloutFault {
        let c = &self.cfg;
        if c.prediction_failure == 0.0 && c.prediction_garbage == 0.0 {
            return RolloutFault::Healthy;
        }
        let mut rng = self.rng(kinds::PREDICT, worker, batch_idx);
        // A single draw decides: [0, garbage) → garbage, [garbage,
        // garbage + failure) → unavailable, rest healthy.
        let x: f64 = rng.gen_range(0.0..1.0);
        if x < c.prediction_garbage {
            RolloutFault::Garbage
        } else if x < c.prediction_garbage + c.prediction_failure {
            RolloutFault::Unavailable
        } else {
            RolloutFault::Healthy
        }
    }

    /// A garbage rollout in normalized model-output space: non-finite
    /// and far-out-of-range values that must not survive validation.
    pub fn garbage_rollout(&self, worker: u64, batch_idx: u64, horizon: usize) -> Vec<[f64; 2]> {
        let mut rng = self.rng(kinds::PREDICT, worker, derive_seed(batch_idx, 1));
        (0..horizon)
            .map(|_| match rng.gen_range(0u32..3) {
                0 => [f64::NAN, f64::NAN],
                1 => [f64::NEG_INFINITY, 0.5],
                _ => [rng.gen_range(-1.0e6..1.0e6), f64::NAN],
            })
            .collect()
    }

    /// Whether adaptation round `round_idx` for `worker` trains on
    /// poisoned targets.
    pub fn adapt_poisoned(&self, worker: u64, round_idx: u64) -> bool {
        let c = &self.cfg;
        c.adapt_poison > 0.0
            && self
                .rng(kinds::ADAPT, worker, round_idx)
                .gen_bool(c.adapt_poison)
    }

    /// Whether the serving shard keyed by `shard` (callers use the
    /// shard's engine seed, unique per shard) crashes after stepping
    /// window `window_idx`. Like every other decision this is a pure
    /// function of `(FaultConfig, shard, window_idx)`, so the crash
    /// schedule of a restored run matches the run it resumed.
    pub fn shard_crash(&self, shard: u64, window_idx: u64) -> bool {
        let c = &self.cfg;
        c.shard_crash > 0.0
            && self
                .rng(kinds::SHARD_CRASH, shard, window_idx)
                .gen_bool(c.shard_crash)
    }
}

/// Ingest-side validation of a (possibly faulty) report location: rejects
/// non-finite and absurdly out-of-range coordinates, clamps mild GPS
/// drift back onto the grid, and passes in-grid points through untouched.
pub fn sanitize_report(grid: &Grid, p: Point) -> Option<Point> {
    if !p.is_finite() {
        return None;
    }
    let (w, h) = (grid.width_km(), grid.height_km());
    if p.x < -w || p.x > 2.0 * w || p.y < -h || p.y > 2.0 * h {
        return None;
    }
    if grid.contains(p) {
        Some(p)
    } else {
        Some(grid.clamp(p))
    }
}

/// One delivered location report as the platform sees it.
#[derive(Debug, Clone, Copy)]
pub struct VisibleReport {
    /// When the location was measured (the routine sample time), minutes.
    pub report_min: f64,
    /// When the platform received it (`report_min` + delay), minutes.
    pub visible_min: f64,
    /// The received location (after noise and ingest clamping).
    pub loc: Point,
}

/// The fault schedule of one worker for the whole day.
#[derive(Debug, Clone, Default)]
pub struct WorkerFaultPlan {
    /// Reports that reach the platform, in measurement order.
    pub visible: Vec<VisibleReport>,
    /// Measurement times of reports that never become usable (dropped,
    /// or rejected by ingest validation).
    pub dropped_min: Vec<f64>,
    /// `[start, end)` of the worker's offline window, if any.
    pub offline: Option<(f64, f64)>,
}

impl WorkerFaultPlan {
    /// Whether the worker is offline (unassignable) at minute `t`.
    pub fn is_offline(&self, t: f64) -> bool {
        self.offline.is_some_and(|(s, e)| t >= s && t < e)
    }

    /// Reports received strictly before `now`, as timed points in
    /// measurement order (mirrors `Routine::window(0, now)` semantics).
    pub fn received_before(&self, now: Minutes) -> Vec<TimedPoint> {
        self.visible
            .iter()
            .filter(|r| r.visible_min < now.as_f64())
            .map(|r| TimedPoint {
                loc: r.loc,
                time: Minutes::new(r.report_min),
            })
            .collect()
    }

    /// Whether any report was measured (delivered or not) before `now` —
    /// i.e. the worker *should* have been heard from by now.
    pub fn any_report_before(&self, now: Minutes) -> bool {
        self.visible.iter().any(|r| r.report_min < now.as_f64())
            || self.dropped_min.iter().any(|t| *t < now.as_f64())
    }
}

/// The precomputed fault schedule for a whole run: what every worker's
/// report stream looks like after injection, plus the injector for
/// per-batch (rollout) and per-round (adaptation) decisions.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Per-worker schedules, indexed like `workload.workers`.
    pub workers: Vec<WorkerFaultPlan>,
    /// Decision source for rollout / adaptation faults.
    pub injector: FaultInjector,
}

impl FaultPlan {
    /// Applies `cfg` to every report of every worker in `workload`.
    pub fn build(workload: &Workload, cfg: &FaultConfig) -> Self {
        let injector = FaultInjector::new(*cfg);
        let horizon = workload.horizon.as_f64();
        let workers = workload
            .workers
            .iter()
            .enumerate()
            .map(|(wi, sw)| {
                let mut plan = WorkerFaultPlan {
                    offline: injector.offline_window(wi as u64, horizon),
                    ..Default::default()
                };
                let reports = sw
                    .worker
                    .real_routine
                    .window(Minutes::ZERO, Minutes::new(f64::MAX));
                for (ri, p) in reports.iter().enumerate() {
                    let t = p.time.as_f64();
                    if plan.is_offline(t) {
                        plan.dropped_min.push(t);
                        continue;
                    }
                    match injector.report(wi as u64, ri as u64) {
                        ReportFault::Drop => plan.dropped_min.push(t),
                        ReportFault::Corrupt(garbage) => {
                            match sanitize_report(&workload.grid, garbage) {
                                Some(loc) => plan.visible.push(VisibleReport {
                                    report_min: t,
                                    visible_min: t,
                                    loc,
                                }),
                                None => plan.dropped_min.push(t),
                            }
                        }
                        ReportFault::Deliver {
                            delay_min,
                            noise_km: (dx, dy),
                        } => {
                            if dx == 0.0 && dy == 0.0 {
                                // A clean report is the measurement
                                // itself; it bypasses ingest clamping so
                                // a zero-fault plan reproduces the raw
                                // routine exactly.
                                plan.visible.push(VisibleReport {
                                    report_min: t,
                                    visible_min: t + delay_min,
                                    loc: p.loc,
                                });
                            } else {
                                match sanitize_report(&workload.grid, p.loc.offset(dx, dy)) {
                                    Some(loc) => plan.visible.push(VisibleReport {
                                        report_min: t,
                                        visible_min: t + delay_min,
                                        loc,
                                    }),
                                    None => plan.dropped_min.push(t),
                                }
                            }
                        }
                    }
                }
                plan
            })
            .collect();
        Self { workers, injector }
    }

    /// Reports lost (measured but never usable) with measurement time in
    /// `[start, end)` — the per-batch `dropped_reports` metric.
    pub fn dropped_in_window(&self, start: f64, end: f64) -> usize {
        self.workers
            .iter()
            .flat_map(|w| &w.dropped_min)
            .filter(|t| **t >= start && **t < end)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn tiny() -> Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 21).build()
    }

    #[test]
    fn none_config_is_identity() {
        let cfg = FaultConfig::none();
        assert!(cfg.is_none());
        cfg.validate().unwrap();
        let w = tiny();
        let plan = FaultPlan::build(&w, &cfg);
        for (wp, sw) in plan.workers.iter().zip(&w.workers) {
            assert!(wp.dropped_min.is_empty());
            assert!(wp.offline.is_none());
            let raw = sw
                .worker
                .real_routine
                .window(Minutes::ZERO, Minutes::new(f64::MAX));
            assert_eq!(wp.visible.len(), raw.len());
            for (v, r) in wp.visible.iter().zip(raw) {
                assert_eq!(v.loc, r.loc);
                assert_eq!(v.report_min, r.time.as_f64());
                assert_eq!(v.visible_min, r.time.as_f64());
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let cfg = FaultConfig {
            report_loss: 0.3,
            report_delay: 0.2,
            max_delay_min: 12.0,
            gps_noise_km: 0.1,
            corrupt_coord: 0.05,
            prediction_failure: 0.25,
            prediction_garbage: 0.1,
            adapt_poison: 0.2,
            seed: 7,
            ..FaultConfig::none()
        };
        let inj = FaultInjector::new(cfg);
        // Query in different orders; decisions must not move.
        let forward: Vec<ReportFault> = (0..50).map(|i| inj.report(3, i)).collect();
        let backward: Vec<ReportFault> = (0..50).rev().map(|i| inj.report(3, i)).collect();
        for (i, f) in forward.iter().enumerate() {
            assert_eq!(*f, backward[49 - i]);
        }
        assert_eq!(inj.rollout(5, 17), inj.rollout(5, 17));
        assert_eq!(inj.adapt_poisoned(2, 4), inj.adapt_poisoned(2, 4));
    }

    #[test]
    fn knobs_use_independent_streams() {
        // Turning GPS noise on must not change which reports drop.
        let base = FaultConfig {
            report_loss: 0.4,
            seed: 11,
            ..FaultConfig::none()
        };
        let noisy = FaultConfig {
            gps_noise_km: 0.2,
            ..base
        };
        let a = FaultInjector::new(base);
        let b = FaultInjector::new(noisy);
        for i in 0..100 {
            let dropped_a = matches!(a.report(0, i), ReportFault::Drop);
            let dropped_b = matches!(b.report(0, i), ReportFault::Drop);
            assert_eq!(dropped_a, dropped_b, "report {i}");
        }
    }

    #[test]
    fn sanitizer_rejects_garbage_and_clamps_drift() {
        let g = Grid::PAPER;
        assert_eq!(sanitize_report(&g, Point::new(f64::NAN, 1.0)), None);
        assert_eq!(sanitize_report(&g, Point::new(1.0e7, -1.0e7)), None);
        let inside = Point::new(1.0, 1.0);
        assert_eq!(sanitize_report(&g, inside), Some(inside));
        let drift = Point::new(-0.05, 1.0);
        let fixed = sanitize_report(&g, drift).unwrap();
        assert!(g.contains(fixed));
    }

    #[test]
    fn report_loss_rate_is_roughly_honoured() {
        let cfg = FaultConfig {
            report_loss: 0.3,
            seed: 3,
            ..FaultConfig::none()
        };
        let w = tiny();
        let plan = FaultPlan::build(&w, &cfg);
        let (mut dropped, mut total) = (0usize, 0usize);
        for (wp, sw) in plan.workers.iter().zip(&w.workers) {
            let raw = sw
                .worker
                .real_routine
                .window(Minutes::ZERO, Minutes::new(f64::MAX))
                .len();
            total += raw;
            dropped += wp.dropped_min.len();
            assert_eq!(wp.visible.len() + wp.dropped_min.len(), raw);
        }
        let rate = dropped as f64 / total.max(1) as f64;
        assert!((0.15..=0.45).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn offline_window_lies_inside_horizon() {
        let cfg = FaultConfig {
            offline_worker: 1.0,
            offline_window_min: 60.0,
            seed: 5,
            ..FaultConfig::none()
        };
        let w = tiny();
        let plan = FaultPlan::build(&w, &cfg);
        let horizon = w.horizon.as_f64();
        let mut some = false;
        for wp in &plan.workers {
            let (s, e) = wp.offline.expect("offline_worker = 1.0");
            some = true;
            assert!(s >= 0.0 && e <= horizon + 1e-9 && e > s);
            assert!(wp.is_offline(s) && !wp.is_offline(e));
        }
        assert!(some);
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let mut cfg = FaultConfig::none();
        cfg.report_loss = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::none();
        cfg.gps_noise_km = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::none();
        cfg.shard_crash = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn shard_crash_is_a_process_fault_not_an_engine_fault() {
        let crash_only = FaultConfig {
            shard_crash: 0.25,
            seed: 9,
            ..FaultConfig::none()
        };
        assert!(!crash_only.is_none());
        assert!(!crash_only.has_engine_faults());
        crash_only.validate().unwrap();
        let mixed = FaultConfig {
            report_loss: 0.1,
            ..crash_only
        };
        assert!(mixed.has_engine_faults());
        assert!(FaultConfig::none().is_none());
    }

    #[test]
    fn shard_crash_decisions_are_deterministic_and_independent() {
        let base = FaultConfig {
            report_loss: 0.4,
            seed: 11,
            ..FaultConfig::none()
        };
        let crashy = FaultConfig {
            shard_crash: 0.5,
            ..base
        };
        let a = FaultInjector::new(base);
        let b = FaultInjector::new(crashy);
        // Determinism, and zero probability never fires.
        for w in 0..20 {
            assert!(!a.shard_crash(7, w));
            assert_eq!(b.shard_crash(7, w), b.shard_crash(7, w));
        }
        // Turning the crash knob on must not move the report stream.
        for i in 0..100 {
            assert_eq!(a.report(0, i), b.report(0, i), "report {i}");
        }
        // Some window must crash at p = 0.5 over 120 windows.
        assert!((0..120).any(|w| b.shard_crash(7, w)));
    }
}

//! Regenerates **Fig. 9** of the paper: effect of worker detour d (workload 2).

use tamp_bench::{
    default_engine, default_training, out_dir, print_assignment, scale_from_env, seed_from_env,
};
use tamp_platform::experiments::{detour_sweep, save_json, SweepConfig};
use tamp_sim::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Fig. 9: effect of worker detour d (workload 2, {} workers, seed {seed})",
        scale.n_workers
    );
    let cfg = SweepConfig {
        kind: WorkloadKind::GowallaFoursquare,
        scale,
        seed,
        training: default_training(seed),
        engine: default_engine(seed),
    };
    let rows = detour_sweep(&cfg, &[2.0, 4.0, 6.0, 8.0, 10.0]);
    print_assignment(&rows);
    save_json(
        &out_dir().join("fig9.json"),
        "fig9_detour_sweep_workload2",
        &rows,
    )
    .expect("write rows");
}

//! Regenerates **Fig. 10** of the paper: effect of the number of spatial tasks (workload 2).

use tamp_bench::{
    default_engine, default_training, out_dir, print_assignment, scale_from_env, seed_from_env,
};
use tamp_platform::experiments::{save_json, task_count_sweep, SweepConfig};
use tamp_sim::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Fig. 10: effect of the number of spatial tasks (workload 2, {} workers, seed {seed})",
        scale.n_workers
    );
    let cfg = SweepConfig {
        kind: WorkloadKind::GowallaFoursquare,
        scale,
        seed,
        training: default_training(seed),
        engine: default_engine(seed),
    };
    let rows = task_count_sweep(&cfg, &tamp_bench::task_sweep_points(&scale));
    print_assignment(&rows);
    save_json(
        &out_dir().join("fig10.json"),
        "fig10_task_count_sweep_workload2",
        &rows,
    )
    .expect("write rows");
}

//! Branch-free transcendental approximations for the tolerance-gated
//! [`Batched`](crate::KernelBackend) backend.
//!
//! libm's `exp`/`tanh` are scalar calls of ~40–50 cycles each; an LSTM
//! gate step spends five of them per hidden unit, which caps batched
//! rollout throughput long before the GEMM does. The functions here are
//! straight-line f64 arithmetic (range-reduced degree-11 Taylor `exp`,
//! quotient forms for `sigmoid`/`tanh`), so the compiler can vectorize
//! them across batch lanes. Peak relative error is ~1e-13 against libm —
//! far inside the serving tolerance gate, property-tested in
//! [`crate::batch`].
//!
//! Training and the [`Scalar`](crate::KernelBackend) backend never touch
//! these: bitwise-reproducible paths keep calling libm.

/// `e^x` to ~1e-13 relative error, branch-free.
///
/// Range reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, degree-11 Taylor
/// for `e^r`, and exponent-field scaling for `2^k`. Inputs are clamped to
/// `±708` (the f64 exp range), so extreme gate pre-activations saturate
/// instead of overflowing.
#[inline]
pub fn exp_approx(x: f64) -> f64 {
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    /// `1.5 · 2^52`: adding it forces round-to-even at the units digit,
    /// and the rounded integer sits in the low mantissa bits.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    let x = x.clamp(-708.0, 708.0);
    let shifted = x * LOG2E + SHIFT;
    let kf = shifted - SHIFT;
    // Mantissa field = 2^51 + k (two's complement within the field).
    let ki = (shifted.to_bits() & ((1u64 << 52) - 1)) as i64 - (1i64 << 51);
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // Horner recurrence `p = 1/n! + r·p`, highest coefficient first.
    let mut p = 1.0 / 39_916_800.0;
    p = 1.0 / 3_628_800.0 + r * p;
    p = 1.0 / 362_880.0 + r * p;
    p = 1.0 / 40_320.0 + r * p;
    p = 1.0 / 5_040.0 + r * p;
    p = 1.0 / 720.0 + r * p;
    p = 1.0 / 120.0 + r * p;
    p = 1.0 / 24.0 + r * p;
    p = 1.0 / 6.0 + r * p;
    p = 1.0 / 2.0 + r * p;
    p = 1.0 + r * p;
    p = 1.0 + r * p;
    let scale = f64::from_bits(((ki + 1023) as u64) << 52);
    p * scale
}

/// `1/(1+e^{-x})` via [`exp_approx`], numerically stable on both sides.
#[inline]
pub fn sigmoid_approx(x: f64) -> f64 {
    let e = exp_approx(-x.abs());
    let d = 1.0 + e;
    // Both branches divide directly — `1 - 1/(1+e)` would cancel
    // catastrophically for large negative `x`.
    if x >= 0.0 {
        1.0 / d
    } else {
        e / d
    }
}

/// `tanh x` via [`exp_approx`], numerically stable on both sides.
#[inline]
pub fn tanh_approx(x: f64) -> f64 {
    let e = exp_approx(-2.0 * x.abs());
    let t = (1.0 - e) / (1.0 + e);
    if x >= 0.0 {
        t
    } else {
        -t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-300)
    }

    #[test]
    fn exp_tracks_libm_over_the_gate_range() {
        let mut worst = 0.0f64;
        for i in -40_000..=40_000 {
            let x = i as f64 * 1e-3;
            worst = worst.max(rel_err(exp_approx(x), x.exp()));
        }
        assert!(worst < 1e-12, "exp rel err {worst:.3e}");
        assert_eq!(exp_approx(0.0), 1.0);
        assert!(exp_approx(-1000.0) == 0.0 || exp_approx(-1000.0) < 1e-300);
        assert!(exp_approx(1000.0).is_finite(), "clamped, not inf");
    }

    #[test]
    fn sigmoid_and_tanh_track_libm() {
        let mut ws = 0.0f64;
        let mut wt = 0.0f64;
        for i in -30_000..=30_000 {
            let x = i as f64 * 1e-3;
            ws = ws.max(rel_err(sigmoid_approx(x), 1.0 / (1.0 + (-x).exp())));
            wt = wt.max((tanh_approx(x) - x.tanh()).abs());
        }
        assert!(ws < 1e-12, "sigmoid rel err {ws:.3e}");
        assert!(wt < 1e-13, "tanh abs err {wt:.3e}");
        assert_eq!(tanh_approx(0.0), 0.0);
        assert_eq!(sigmoid_approx(0.0), 0.5);
        // Saturation tails are exact.
        assert_eq!(tanh_approx(50.0), 1.0);
        assert_eq!(tanh_approx(-50.0), -1.0);
        assert_eq!(sigmoid_approx(60.0), 1.0);
        // The ±708 clamp saturates to a denormal-scale value, not 0.
        assert!(sigmoid_approx(-800.0) < 1e-300);
    }
}

//! # tamp-platform
//!
//! The batch-mode spatial-crowdsourcing platform simulator (Figure 1's
//! loop) and the experiment drivers that regenerate the paper's tables
//! and figures.
//!
//! * [`acceptance`] — the worker's accept/reject decision against their
//!   *real* itinerary (detour limit + task deadline), with the real
//!   detour cost `d_c` of accepted pairs.
//! * [`engine`] — the 2-minute batch loop: collect live tasks, snapshot
//!   worker views (observed history → model rollout), run an assignment
//!   algorithm, simulate acceptance, carry rejected/unassigned tasks to
//!   the next batch, track busy workers.
//! * [`training`] — the offline stage: learning-task construction,
//!   MAML / CTML / GTTAML-GT / GTTAML training, per-worker adaptation,
//!   validation matching rates, cold-start handling for new workers.
//! * [`metrics`] — the paper's four assignment metrics (completion
//!   ratio, rejection ratio, worker cost, running time) plus the
//!   robustness counters (dropped reports, fallback views, quarantined
//!   models, invalid pairs).
//! * [`faults`] — seeded, replayable fault injection (report loss /
//!   delay / noise / corruption, offline windows, rollout failures,
//!   training poisoning) used to measure the engine's graceful
//!   degradation.
//! * [`predcache`] — the cross-batch prediction cache: rollouts reused
//!   across consecutive windows while their inputs are unchanged, keyed
//!   by a per-worker model version so adaptation or a predictor
//!   hot-swap evicts only the affected worker (used by the `tamp-serve`
//!   host).
//! * [`experiments`] — one driver per table/figure family, emitting both
//!   human-readable rows and machine-readable JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceptance;
pub mod engine;
pub mod experiments;
pub mod faults;
pub mod metrics;
pub mod predcache;
pub mod training;

pub use engine::{
    run_assignment, run_assignment_observed, run_assignment_traced, run_assignment_with_faults,
    run_assignment_with_faults_traced, try_run_assignment, AssignmentAlgo, EngineConfig,
    EngineSnapshot, EngineState, OnlineAdaptConfig, StepCtx, ENGINE_SNAPSHOT_VERSION,
};
pub use faults::{FaultConfig, FaultInjector, FaultPlan};
pub use metrics::{AssignmentMetrics, BatchRecord, StageTimings};
pub use predcache::{CacheStats, PredictionCache, RolloutKey};
pub use tamp_assign::solver::{SolverKind, SolverStats};
pub use tamp_nn::KernelBackend;
pub use training::{
    train_predictors, train_predictors_observed, LossKind, PredictionAlgo, TrainedPredictors,
    TrainingConfig,
};

//! Behavioural tests of the fault-injection layer and the engine's
//! graceful-degradation ladder: determinism, zero-fault equivalence with
//! the clean engine, metric accounting under random fault configurations,
//! fallback and quarantine activation.

use rand::Rng;
use tamp_core::rng::rng_for;
use tamp_meta::meta_training::MetaConfig;
use tamp_platform::engine::{
    run_assignment_with_faults, run_assignment_with_faults_traced, try_run_assignment,
    OnlineAdaptConfig,
};
use tamp_platform::{
    run_assignment, train_predictors, AssignmentAlgo, AssignmentMetrics, EngineConfig, FaultConfig,
    LossKind, PredictionAlgo, TrainingConfig,
};
use tamp_sim::{Scale, Workload, WorkloadConfig, WorkloadKind};

fn tiny_workload(seed: u64) -> Workload {
    WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), seed).build()
}

fn quick_training(seed: u64) -> TrainingConfig {
    TrainingConfig {
        algo: PredictionAlgo::Maml,
        loss: LossKind::Mse,
        hidden: 6,
        seq_in: 3,
        meta: MetaConfig {
            iterations: 2,
            ..MetaConfig::default()
        },
        adapt_steps: 2,
        seed,
        ..TrainingConfig::default()
    }
}

fn engine() -> EngineConfig {
    EngineConfig {
        seq_in: 3,
        ..EngineConfig::default()
    }
}

fn mixed_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        report_loss: 0.2,
        report_delay: 0.15,
        max_delay_min: 12.0,
        gps_noise_km: 0.05,
        corrupt_coord: 0.05,
        offline_worker: 0.2,
        offline_window_min: 40.0,
        prediction_failure: 0.2,
        prediction_garbage: 0.05,
        adapt_poison: 0.0,
        shard_crash: 0.0,
        seed,
    }
}

/// Everything that should be identical across replays of the same
/// `(workload, faults, engine)` triple — wall-clock time excluded.
fn fingerprint(
    m: &AssignmentMetrics,
) -> (usize, usize, usize, usize, u64, usize, usize, usize, usize) {
    (
        m.tasks_total,
        m.assigned_total,
        m.completed,
        m.rejected,
        m.total_detour_km.to_bits(),
        m.dropped_reports,
        m.fallback_views,
        m.quarantined_models,
        m.invalid_pairs,
    )
}

/// Same workload + same FaultConfig + same seed ⇒ identical metrics.
#[test]
fn fault_runs_are_deterministic() {
    let w = tiny_workload(401);
    let p = train_predictors(&w, &quick_training(401));
    let faults = mixed_faults(17);
    for algo in [AssignmentAlgo::Ppi, AssignmentAlgo::Km, AssignmentAlgo::Lb] {
        let preds = (algo != AssignmentAlgo::Lb).then_some(&p);
        let a = run_assignment_with_faults(&w, preds, algo, &engine(), &faults).unwrap();
        let b = run_assignment_with_faults(&w, preds, algo, &engine(), &faults).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "{algo:?}");
    }
}

/// `FaultConfig::none()` must reproduce today's clean-engine metrics
/// exactly — the fault layer is strictly additive.
#[test]
fn zero_faults_match_clean_engine_exactly() {
    let w = tiny_workload(402);
    let p = train_predictors(&w, &quick_training(402));
    for algo in [
        AssignmentAlgo::Ppi,
        AssignmentAlgo::Km,
        AssignmentAlgo::Ub,
        AssignmentAlgo::Lb,
    ] {
        let preds = (!matches!(algo, AssignmentAlgo::Ub | AssignmentAlgo::Lb)).then_some(&p);
        let clean = run_assignment(&w, preds, algo, &engine());
        let faulted =
            run_assignment_with_faults(&w, preds, algo, &engine(), &FaultConfig::none()).unwrap();
        assert_eq!(fingerprint(&clean), fingerprint(&faulted), "{algo:?}");
        assert_eq!(faulted.dropped_reports, 0);
        assert_eq!(faulted.fallback_views, 0);
        assert_eq!(faulted.quarantined_models, 0);
        assert_eq!(faulted.invalid_pairs, 0);
    }
}

/// Accounting invariant under randomly drawn fault configurations:
/// `completed + rejected + invalid_pairs == assigned_total`, counters
/// stay within their denominators, and no run panics.
#[test]
fn accounting_holds_under_random_fault_configs() {
    let w = tiny_workload(403);
    let p = train_predictors(&w, &quick_training(403));
    let mut rng = rng_for(403, 99);
    for trial in 0..12 {
        let faults = FaultConfig {
            report_loss: rng.gen_range(0.0..0.8),
            report_delay: rng.gen_range(0.0..0.5),
            max_delay_min: rng.gen_range(0.0..30.0),
            gps_noise_km: rng.gen_range(0.0..0.3),
            corrupt_coord: rng.gen_range(0.0..0.2),
            offline_worker: rng.gen_range(0.0..0.5),
            offline_window_min: rng.gen_range(0.0..90.0),
            prediction_failure: rng.gen_range(0.0..0.5),
            prediction_garbage: rng.gen_range(0.0..0.3),
            adapt_poison: rng.gen_range(0.0..0.5),
            shard_crash: 0.0,
            seed: rng.gen(),
        };
        let algo = match trial % 3 {
            0 => AssignmentAlgo::Ppi,
            1 => AssignmentAlgo::Km,
            _ => AssignmentAlgo::Lb,
        };
        let preds = (algo != AssignmentAlgo::Lb).then_some(&p);
        let cfg = EngineConfig {
            online_adapt: (trial % 2 == 0).then(OnlineAdaptConfig::default),
            ..engine()
        };
        let mut trace = Vec::new();
        let m = run_assignment_with_faults_traced(&w, preds, algo, &cfg, &faults, &mut trace)
            .unwrap_or_else(|e| panic!("trial {trial} ({algo:?}): {e}"));
        assert_eq!(
            m.completed + m.rejected + m.invalid_pairs,
            m.assigned_total,
            "trial {trial} ({algo:?}): {faults:?}"
        );
        assert!(m.completed <= m.tasks_total);
        assert!(m.total_detour_km.is_finite());
        assert!(m.quarantined_models <= w.workers.len());
        // The trace tells the same story as the aggregate.
        assert_eq!(
            m.dropped_reports,
            trace.iter().map(|b| b.dropped_reports).sum()
        );
        assert_eq!(
            m.fallback_views,
            trace.iter().map(|b| b.fallback_views).sum()
        );
        assert_eq!(m.invalid_pairs, trace.iter().map(|b| b.invalid_pairs).sum());
        assert_eq!(
            m.quarantined_models,
            trace.iter().map(|b| b.quarantined_models).sum()
        );
    }
}

/// With every rollout failing, every built view must come from the
/// persistence fallback — and the engine still completes tasks.
#[test]
fn total_prediction_failure_degrades_to_persistence() {
    let w = tiny_workload(404);
    let p = train_predictors(&w, &quick_training(404));
    let faults = FaultConfig {
        prediction_failure: 1.0,
        seed: 5,
        ..FaultConfig::none()
    };
    let m =
        run_assignment_with_faults(&w, Some(&p), AssignmentAlgo::Ppi, &engine(), &faults).unwrap();
    assert!(m.fallback_views > 0, "no fallback views recorded");
    assert!(
        m.completed > 0,
        "persistence-only PPI should still complete something"
    );
    assert_eq!(m.dropped_reports, 0, "report stream was clean");
}

/// Poisoned online-adaptation rounds must be caught by the divergence
/// guard: the affected models are quarantined, and the run finishes with
/// finite metrics.
#[test]
fn poisoned_adaptation_triggers_quarantine() {
    let w = tiny_workload(405);
    let p = train_predictors(&w, &quick_training(405));
    let cfg = EngineConfig {
        online_adapt: Some(OnlineAdaptConfig::default()),
        ..engine()
    };
    let faults = FaultConfig {
        adapt_poison: 1.0,
        seed: 6,
        ..FaultConfig::none()
    };
    let m = run_assignment_with_faults(&w, Some(&p), AssignmentAlgo::Ppi, &cfg, &faults).unwrap();
    assert!(m.quarantined_models > 0, "poison never tripped the guard");
    assert!(m.quarantined_models <= w.workers.len());
    assert!(m.total_detour_km.is_finite());
}

/// Report loss hurts but must not cliff: the engine keeps assigning at
/// 50 % loss, and losing reports never *increases* what the platform
/// knows (dropped counts grow with the loss rate).
#[test]
fn report_loss_degrades_without_cliff() {
    let w = tiny_workload(406);
    let p = train_predictors(&w, &quick_training(406));
    let mut dropped_prev = 0usize;
    for (i, loss) in [0.0, 0.25, 0.5].into_iter().enumerate() {
        let faults = FaultConfig {
            report_loss: loss,
            seed: 7,
            ..FaultConfig::none()
        };
        let m = run_assignment_with_faults(&w, Some(&p), AssignmentAlgo::Ppi, &engine(), &faults)
            .unwrap();
        assert!(
            m.completed > 0,
            "engine cliffed at {loss} report loss: {m:?}"
        );
        if i > 0 {
            assert!(m.dropped_reports > dropped_prev, "loss {loss}");
        }
        dropped_prev = m.dropped_reports;
    }
}

/// The fallible entry point reports configuration errors instead of
/// panicking.
#[test]
fn try_run_surfaces_config_errors() {
    let w = tiny_workload(407);
    let err = try_run_assignment(&w, None, AssignmentAlgo::Ppi, &engine()).unwrap_err();
    assert!(err.to_string().contains("needs trained predictors"));

    let bad_faults = FaultConfig {
        report_loss: 2.0,
        ..FaultConfig::none()
    };
    let err = run_assignment_with_faults(&w, None, AssignmentAlgo::Lb, &engine(), &bad_faults)
        .unwrap_err();
    assert!(err.to_string().contains("report_loss"));

    let bad_cfg = EngineConfig {
        batch_window_min: 0.0,
        ..engine()
    };
    let err = try_run_assignment(&w, None, AssignmentAlgo::Lb, &bad_cfg).unwrap_err();
    assert!(err.to_string().contains("batch_window_min"));
}

/// Spatial prefiltering must be invisible end to end: with the index on
/// or off, a full simulated day — clean or under a mixed fault plan —
/// produces bit-identical metrics (including the float detour total) for
/// both index-aware algorithms.
#[test]
fn spatial_index_is_metric_invisible_under_faults() {
    let w = tiny_workload(408);
    let p = train_predictors(&w, &quick_training(408));
    for algo in [AssignmentAlgo::Ppi, AssignmentAlgo::Km] {
        for faults in [FaultConfig::none(), mixed_faults(23)] {
            let indexed = EngineConfig {
                spatial_index: true,
                ..engine()
            };
            let naive = EngineConfig {
                spatial_index: false,
                ..engine()
            };
            let a = run_assignment_with_faults(&w, Some(&p), algo, &indexed, &faults).unwrap();
            let b = run_assignment_with_faults(&w, Some(&p), algo, &naive, &faults).unwrap();
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{algo:?} faults.seed={}",
                faults.seed
            );
        }
    }
}

//! Forward-auction matching backend (Bertsekas' auction algorithm) with
//! ε-scaling, sparse adjacency, and cross-window warm-started prices.
//!
//! The exact Hungarian backend allocates a dense O(n·m) cost matrix per
//! connected component; one giant city-scale component makes that
//! infeasible. The auction backend works directly on the sparse edge
//! list (CSR adjacency) and runs Gauss–Seidel bidding rounds:
//!
//! * **Symmetrisation.** An assignment component is rectangular and its
//!   optimum may leave vertices unmatched — the regime where a plain
//!   forward auction needs fragile price-repair passes. Instead the
//!   component is doubled into a square problem that always has a
//!   perfect matching: real persons and one *dummy person* per object on
//!   one side; real objects and one *dummy object* per person on the
//!   other. Person `i` keeps its real edges plus a zero-weight edge to
//!   its dummy object; dummy person `j` gets a zero-weight edge to its
//!   object `j` plus zero-weight *mirror* edges `(dummy person j, dummy
//!   object i)` for every real edge `(i, j)`. A perfect matching of the
//!   doubled graph restricted to real–real pairs is exactly a matching
//!   of the original component, and since every object ends owned, the
//!   textbook symmetric auction guarantees apply verbatim — prices only
//!   ever rise and no post-hoc repair is needed.
//! * **Cardinality dominance.** Real edge weights are shifted by a bonus
//!   `B = k+1` (in span-normalised units, `k = min(lefts, rights)`) so
//!   any matching with one more real edge beats any smaller matching by
//!   ≥ 1. Running the ε-schedule down to `n·ε < 1` therefore forces the
//!   same cardinality as the exact solver.
//! * **ε-scaling.** Phases start at ε ≈ B/θ and divide by θ until
//!   `ε_final`; prices persist across phases, so each phase re-assigns
//!   quickly. The terminal assignment satisfies ε-complementary
//!   slackness, putting its total shifted value within `n·ε_final` of
//!   the optimum — and its raw weight within `n·ε_final·scale` (scale
//!   ≤ 4·span) of the exact matching weight.
//! * **Warm starts.** Final prices (real and dummy objects) are cached
//!   per component, keyed by an FNV-1a signature of the component's
//!   stable vertex keys (task/worker ids) and stored in stable-key
//!   order, so positional reshuffles between windows still hit. Prices
//!   are only meaningful under the weight transform that produced them,
//!   so the transform is *quantised* (offset and scale snapped to
//!   powers of two of the observed span) — the small window-to-window
//!   weight drift warm starts exist for leaves it bit-identical — and
//!   stored with the prices; a transform change reads as a miss. A warm
//!   hit skips the cold front of the ε-schedule and starts at the drift
//!   scale (`WARM_EPS_START`). Stale seed prices cannot break
//!   optimality — the symmetric auction converges from arbitrary
//!   starting prices — they only cost extra bids; a bid budget plus one
//!   full cold restart bound the worst case.
//!
//! Equivalence against the exact oracle (cardinality equal, weight within
//! the ε-bound) is property-tested in `tests/solver_properties.rs` and
//! re-asserted per repeat by the `diag_scale` workload.

use crate::hungarian::WeightedEdge;
use crate::solver::{MatchingSolver, SolverKind, SolverStats, VertexKeys};
use std::collections::HashMap;

/// ε divisor between scaling phases.
const THETA: f64 = 5.0;
/// First ε of a warm-started schedule, in scaled weight units. Seeded
/// prices already encode the bonus-scale structure, so only phases at ε
/// around and below the window-to-window weight drift do useful work;
/// 2⁻⁸ of the span covers sub-half-percent drift in O(1) bids per
/// conflict. (Jumping straight to the final ε instead is catastrophic:
/// the doubled graph's dummy side is all exact ties, so a drift-sized
/// price correction there costs drift/ε_final bids.)
const WARM_EPS_START: f64 = 1.0 / 256.0;
/// Warm cache entries kept before the cache is dropped wholesale (one
/// price vector per component signature; city batches have few, engine
/// stage-2 mini-batches many tiny ones).
const WARM_CACHE_CAP: usize = 8192;

const UNASSIGNED: u32 = u32::MAX;

/// The forward-auction backend. See the module docs for the algorithm;
/// construct with [`AuctionSolver::new`] (cold every solve) or
/// [`AuctionSolver::with_warm_start`] (cross-window price cache).
#[derive(Debug)]
pub struct AuctionSolver {
    warm: Option<HashMap<u64, Vec<f64>>>,
    stats: SolverStats,
}

impl Default for AuctionSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl AuctionSolver {
    /// A backend that solves every component cold.
    pub fn new() -> Self {
        Self {
            warm: None,
            stats: SolverStats::default(),
        }
    }

    /// A backend that caches final prices per component signature and
    /// seeds the next solve of the same vertex set from them.
    pub fn with_warm_start() -> Self {
        Self {
            warm: Some(HashMap::new()),
            stats: SolverStats::default(),
        }
    }

    /// Whether the warm-start cache is enabled.
    pub fn warm_start_enabled(&self) -> bool {
        self.warm.is_some()
    }

    /// Drops all cached prices (every later component solves cold once).
    pub fn clear_warm_cache(&mut self) {
        if let Some(cache) = &mut self.warm {
            cache.clear();
        }
    }
}

/// FNV-1a over a `u64` stream.
fn fnv1a(acc: u64, x: u64) -> u64 {
    let mut h = acc;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Signature of a component's vertex set: FNV-1a over the sorted stable
/// left keys, a separator, then the sorted stable right keys.
fn component_signature(lkeys_sorted: &[u64], rkeys_sorted: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &k in lkeys_sorted {
        h = fnv1a(h, k);
    }
    h = fnv1a(h, u64::MAX); // separator between the two sides
    for &k in rkeys_sorted {
        h = fnv1a(h, k);
    }
    h
}

/// One Gauss–Seidel bidding run at a fixed ε: pops unassigned persons,
/// lets each bid `v1 − v2 + ε` on its best object, displacing the
/// previous owner. Returns `false` if `budget` bids were exhausted with
/// persons still unassigned.
#[allow(clippy::too_many_arguments)]
fn run_bidding(
    eps: f64,
    offsets: &[u32],
    adj_r: &[u32],
    adj_w: &[f64],
    price: &mut [f64],
    owner: &mut [u32],
    assigned: &mut [u32],
    stack: &mut Vec<u32>,
    bids: &mut u64,
    budget: &mut u64,
) -> bool {
    while let Some(i) = stack.pop() {
        if *budget == 0 {
            stack.push(i);
            return false;
        }
        *budget -= 1;
        *bids += 1;
        let iu = i as usize;
        // Best and second-best margins over the person's options; ties
        // keep the first-scanned object, so bidding is deterministic.
        let mut best_j = UNASSIGNED;
        let mut v1 = f64::NEG_INFINITY;
        let mut v2 = f64::NEG_INFINITY;
        for t in offsets[iu] as usize..offsets[iu + 1] as usize {
            let m = adj_w[t] - price[adj_r[t] as usize];
            if m > v1 {
                v2 = v1;
                v1 = m;
                best_j = adj_r[t];
            } else if m > v2 {
                v2 = m;
            }
        }
        // Every person in the doubled graph has ≥ 2 options (a real or
        // mirror edge plus its private zero edge), so v2 is finite and
        // the bid raises the winning price by at least ε.
        debug_assert!(v2.is_finite(), "doubled graph row with < 2 options");
        let inc = (v1 - v2 + eps).max(eps);
        let j = best_j as usize;
        price[j] += inc;
        let prev = owner[j];
        if prev != UNASSIGNED {
            assigned[prev as usize] = UNASSIGNED;
            stack.push(prev);
        }
        owner[j] = i;
        assigned[iu] = best_j;
    }
    true
}

impl MatchingSolver for AuctionSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::Auction
    }

    fn solve_component(
        &mut self,
        edges: &[&WeightedEdge],
        keys: Option<&VertexKeys<'_>>,
        out: &mut Vec<(usize, usize)>,
    ) {
        // ---- Compact vertex ids and keep the best parallel edge ----
        let mut lefts: Vec<usize> = edges.iter().map(|e| e.left).collect();
        lefts.sort_unstable();
        lefts.dedup();
        let mut rights: Vec<usize> = edges.iter().map(|e| e.right).collect();
        rights.sort_unstable();
        rights.dedup();
        let (ln, rn) = (lefts.len(), rights.len());

        let mut tri: Vec<(u32, u32, f64)> = edges
            .iter()
            .map(|e| {
                let l = lefts.binary_search(&e.left).expect("left id present") as u32;
                let r = rights.binary_search(&e.right).expect("right id present") as u32;
                (l, r, e.weight)
            })
            .collect();
        // Ascending weight within (l, r): the last duplicate kept is the
        // best parallel edge, matching the exact backend's `min(-w)`.
        tri.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        tri.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = next.2; // `next` is removed; keep its (max) weight
                true
            } else {
                false
            }
        });

        let (mut wmin, mut wmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, _, w) in &tri {
            wmin = wmin.min(w);
            wmax = wmax.max(w);
        }
        // Quantised weight transform: `unit` is the next power of two
        // ≥ the observed span and the offset is `wmin` rounded down to a
        // multiple of it, so the small window-to-window weight drift the
        // warm cache exists for leaves the transform *bit-identical* and
        // cached prices stay directly comparable. (Prices carry the
        // cardinality bonus ≈ k, so even a 1% rescale of the transform
        // would throw seed prices off by ~0.01·k — catastrophically far
        // at the final ε.) Normalised weights land in [0, 1): the
        // rounding remainder is < unit and span ≤ unit, scale = 2·unit.
        let span = (wmax - wmin).max(0.0);
        let unit = if span > 0.0 && span.is_finite() {
            span.log2().ceil().exp2()
        } else {
            1.0
        };
        let scale = 2.0 * unit;
        let wmin_q = {
            let q = (wmin / unit).floor() * unit;
            if q.is_finite() {
                q
            } else {
                wmin
            }
        };
        let k = ln.min(rn) as f64;
        let bonus = k + 1.0;

        // ---- Doubled (square) problem: persons = real ∪ one dummy per
        // object; objects = real ∪ one dummy per person (module docs) ----
        let n_ext = ln + rn;
        let e_ext = 2 * tri.len() + n_ext;
        let mut offsets = vec![0u32; n_ext + 1];
        for &(l, r, _) in &tri {
            offsets[l as usize + 1] += 1; // person l → object r
            offsets[ln + r as usize + 1] += 1; // dummy person r → dummy object l
        }
        for v in offsets[1..].iter_mut() {
            *v += 1; // private zero edge of every person row
        }
        for i in 0..n_ext {
            offsets[i + 1] += offsets[i];
        }
        let mut adj_r = vec![0u32; e_ext];
        let mut adj_w = vec![0.0f64; e_ext];
        let mut cursor: Vec<u32> = offsets[..n_ext].to_vec();
        for &(l, r, w) in &tri {
            let c = cursor[l as usize] as usize;
            adj_r[c] = r;
            adj_w[c] = (w - wmin_q) / scale + bonus;
            cursor[l as usize] += 1;
        }
        for i in 0..ln {
            // person i → its dummy object rn+i (unmatched fallback)
            adj_r[cursor[i] as usize] = (rn + i) as u32;
            cursor[i] += 1;
        }
        for j in 0..rn {
            // dummy person ln+j → its object j (object-unmatched fallback)
            adj_r[cursor[ln + j] as usize] = j as u32;
            cursor[ln + j] += 1;
        }
        for &(l, r, _) in &tri {
            // mirror edge: frees both dummies when (l, r) is matched
            let row = ln + r as usize;
            adj_r[cursor[row] as usize] = (rn + l as usize) as u32;
            cursor[row] += 1;
        }

        // ---- ε schedule ----
        // Cardinality needs n_ext·ε_final below the dominance margin (1
        // in span units); the floor keeps bid increments representable
        // at the price scale (~bonus) so bidding can never stall on f64
        // resolution.
        let float_floor = (bonus + 2.0) * 2f64.powi(-40);
        let eps_final = float_floor.max(1e-10).min(0.25 / n_ext as f64);
        let mut full_schedule = Vec::new();
        let mut eps = (bonus + 1.0) / THETA;
        while eps > eps_final * THETA {
            full_schedule.push(eps);
            eps /= THETA;
        }
        full_schedule.push(eps_final);

        // ---- Warm seed (prices stored in stable-key order per side) ----
        let keyed = keys.map(|k| {
            let mut lorder: Vec<u32> = (0..ln as u32).collect();
            lorder.sort_unstable_by_key(|&i| (k.left[lefts[i as usize]], i));
            let lkeys_sorted: Vec<u64> =
                lorder.iter().map(|&i| k.left[lefts[i as usize]]).collect();
            let mut rorder: Vec<u32> = (0..rn as u32).collect();
            rorder.sort_unstable_by_key(|&j| (k.right[rights[j as usize]], j));
            let rkeys_sorted: Vec<u64> = rorder
                .iter()
                .map(|&j| k.right[rights[j as usize]])
                .collect();
            (
                component_signature(&lkeys_sorted, &rkeys_sorted),
                lorder,
                rorder,
            )
        });

        let mut price = vec![0.0f64; n_ext];
        let mut warm_used = false;
        if let (Some(cache), Some((sig, lorder, rorder))) = (&self.warm, &keyed) {
            // A seed is only usable if it was produced under the exact
            // same weight transform (the quantised transform makes that
            // the common case); `[wmin_q, scale]` is stored ahead of the
            // prices, so a transform change reads as a miss.
            match cache.get(sig) {
                Some(seed)
                    if seed.len() == n_ext + 2
                        && seed[0].to_bits() == wmin_q.to_bits()
                        && seed[1].to_bits() == scale.to_bits() =>
                {
                    for (slot, &j) in rorder.iter().enumerate() {
                        let p = seed[2 + slot];
                        price[j as usize] = if p.is_finite() && p > 0.0 { p } else { 0.0 };
                    }
                    for (slot, &i) in lorder.iter().enumerate() {
                        let p = seed[2 + rn + slot];
                        price[rn + i as usize] = if p.is_finite() && p > 0.0 { p } else { 0.0 };
                    }
                    warm_used = true;
                    self.stats.warm_hits += 1;
                }
                _ => self.stats.warm_misses += 1,
            }
        }

        self.stats.peak_sparse_bytes = self.stats.peak_sparse_bytes.max(
            adj_r.len() * 4
                + adj_w.len() * 8
                + offsets.len() * 4
                + n_ext * 8 // prices
                + n_ext * 2 * 4 // owner / assigned
                + n_ext * 4, // stack
        );

        // ---- Solve: ε phases over the doubled graph ----
        let mut owner = vec![UNASSIGNED; n_ext];
        let mut assigned = vec![UNASSIGNED; n_ext];
        let mut stack: Vec<u32> = Vec::with_capacity(n_ext);
        let phase_budget = 64 * (e_ext + 2 * n_ext) as u64 + 4096;
        let final_budget = 256 * (e_ext + 2 * n_ext) as u64 + (1 << 20);
        let mut restarted = false;

        loop {
            let schedule: &[f64] = if warm_used {
                // Skip the cold front of the schedule (see
                // `WARM_EPS_START`); the bids this saves vs a cold run
                // are the warm-start win measured by `diag_scale`.
                let from = full_schedule
                    .iter()
                    .position(|&e| e <= WARM_EPS_START)
                    .unwrap_or(full_schedule.len() - 1);
                &full_schedule[from..]
            } else {
                &full_schedule
            };
            let mut final_complete = true;
            for (pi, &eps) in schedule.iter().enumerate() {
                let is_final = pi + 1 == schedule.len();
                owner.fill(UNASSIGNED);
                assigned.fill(UNASSIGNED);
                stack.clear();
                stack.extend(0..n_ext as u32);
                let mut budget = if is_final { final_budget } else { phase_budget };
                self.stats.phases += 1;
                let complete = run_bidding(
                    eps,
                    &offsets,
                    &adj_r,
                    &adj_w,
                    &mut price,
                    &mut owner,
                    &mut assigned,
                    &mut stack,
                    &mut self.stats.bids,
                    &mut budget,
                );
                // An intermediate phase that overruns its budget only
                // leaves prices less converged; the final phase must
                // finish for the assignment to be complete.
                if is_final && !complete {
                    final_complete = false;
                }
            }
            if final_complete {
                break;
            }
            if !restarted {
                restarted = true;
                warm_used = false;
                price.fill(0.0);
                self.stats.cold_restarts += 1;
                continue;
            }
            self.stats.abandoned += 1;
            break;
        }

        // ---- Collect real–real pairs and refresh the warm cache ----
        for j in 0..rn {
            let o = owner[j];
            if o != UNASSIGNED && (o as usize) < ln {
                out.push((lefts[o as usize], rights[j]));
            }
        }
        if let (Some(cache), Some((sig, lorder, rorder))) = (&mut self.warm, &keyed) {
            if cache.len() >= WARM_CACHE_CAP && !cache.contains_key(sig) {
                cache.clear();
            }
            let mut stored = Vec::with_capacity(n_ext + 2);
            stored.push(wmin_q);
            stored.push(scale);
            stored.extend(rorder.iter().map(|&j| price[j as usize]));
            stored.extend(lorder.iter().map(|&i| price[rn + i as usize]));
            cache.insert(*sig, stored);
        }
    }

    fn stats(&self) -> &SolverStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut SolverStats {
        &mut self.stats
    }

    fn export_warm(&self) -> Vec<(u64, Vec<f64>)> {
        let Some(cache) = &self.warm else {
            return Vec::new();
        };
        let mut entries: Vec<(u64, Vec<f64>)> =
            cache.iter().map(|(&k, v)| (k, v.clone())).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    fn import_warm(&mut self, warm: Vec<(u64, Vec<f64>)>) {
        if let Some(cache) = &mut self.warm {
            cache.clear();
            cache.extend(warm.into_iter().take(WARM_CACHE_CAP));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_matching, solve_matching_keyed};
    use rand::Rng;
    use tamp_core::rng::rng_for;

    #[test]
    fn matches_exact_on_tiny_instances() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(0, 1, 5.0),
            WeightedEdge::new(1, 0, 5.0),
            WeightedEdge::new(1, 1, 1.0),
        ];
        let mut auction = AuctionSolver::new();
        let m = solve_matching(&mut auction, 2, 2, &edges);
        assert_eq!(m, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn cardinality_dominates_weight() {
        // A weight-greedy (0,0) match blocks the second pair; the auction
        // must still find the two-pair matching.
        let edges = [
            WeightedEdge::new(0, 0, 100.0),
            WeightedEdge::new(0, 1, 1.0),
            WeightedEdge::new(1, 0, 1.0),
        ];
        let mut auction = AuctionSolver::new();
        let m = solve_matching(&mut auction, 2, 2, &edges);
        assert_eq!(m.len(), 2, "both lefts must be matched: {m:?}");
    }

    #[test]
    fn equal_weights_still_reach_full_cardinality() {
        // All-tie weights are the auction's worst case (bid increments
        // collapse to ε); the ε-schedule must still converge.
        let mut edges = Vec::new();
        for l in 0..20 {
            for r in 0..15 {
                edges.push(WeightedEdge::new(l, r, 3.0));
            }
        }
        let mut auction = AuctionSolver::new();
        let m = solve_matching(&mut auction, 20, 15, &edges);
        assert_eq!(m.len(), 15);
        assert_eq!(auction.stats().abandoned, 0);
    }

    #[test]
    fn warm_start_hits_on_repeated_vertex_set() {
        let left_keys: Vec<u64> = (100..110).collect();
        let right_keys: Vec<u64> = (200..210).collect();
        let keys = VertexKeys {
            left: &left_keys,
            right: &right_keys,
        };
        // Continuous random weights: no two sub-matchings tie (beware
        // structured weights here — anything of the form `f(l) + g(r)`
        // or with additive index patterns produces exact ties under
        // 2-swaps or 3-cycles), so the optimum is unique and the warm
        // resolve must land on the identical matching.
        let mut wrng = rng_for(42, 7);
        let edges: Vec<WeightedEdge> = (0..10)
            .flat_map(|l| (0..10).map(|r| (l, r)).collect::<Vec<_>>())
            .map(|(l, r)| WeightedEdge::new(l, r, wrng.gen_range(0.0..10.0)))
            .collect();
        let mut auction = AuctionSolver::with_warm_start();
        let cold = solve_matching_keyed(&mut auction, 10, 10, &edges, &keys);
        assert_eq!(auction.stats().warm_hits, 0);
        let warm = solve_matching_keyed(&mut auction, 10, 10, &edges, &keys);
        assert_eq!(cold, warm, "warm resolve must reproduce the matching");
        assert!(auction.stats().warm_hits >= 1);
    }

    #[test]
    fn warm_cache_round_trips_through_export_import() {
        let left_keys: Vec<u64> = (0..4).collect();
        let right_keys: Vec<u64> = (10..14).collect();
        let keys = VertexKeys {
            left: &left_keys,
            right: &right_keys,
        };
        // Diagonal-dominant weights: the optimum is unique, so warm and
        // cold solves must land on the identical matching.
        let w = [
            [9.0, 2.0, 1.0, 0.0],
            [2.0, 9.0, 1.0, 0.0],
            [1.0, 0.0, 9.0, 2.0],
            [0.0, 1.0, 2.0, 9.0],
        ];
        let edges: Vec<WeightedEdge> = (0..4)
            .flat_map(|l| (0..4).map(move |r| WeightedEdge::new(l, r, w[l][r])))
            .collect();
        let mut a = AuctionSolver::with_warm_start();
        let plan = solve_matching_keyed(&mut a, 4, 4, &edges, &keys);
        let exported = a.export_warm();
        assert!(!exported.is_empty());

        let mut b = AuctionSolver::with_warm_start();
        b.import_warm(exported.clone());
        assert_eq!(b.export_warm(), exported);
        let replay = solve_matching_keyed(&mut b, 4, 4, &edges, &keys);
        assert_eq!(plan, replay);
        assert_eq!(b.stats().warm_hits, 1, "imported cache must seed the solve");
    }

    #[test]
    fn signature_separates_sides() {
        // Moving a key across sides must change the signature.
        assert_ne!(
            component_signature(&[1, 2], &[3]),
            component_signature(&[1], &[2, 3])
        );
        assert_ne!(
            component_signature(&[], &[7]),
            component_signature(&[7], &[])
        );
    }
}

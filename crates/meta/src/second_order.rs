//! Second-order MAML via finite-difference Hessian-vector products.
//!
//! The workspace's default meta-trainer ([`crate::meta_training`]) uses
//! the first-order approximation (FOMAML). Full MAML \[15\] needs the
//! gradient of the *adapted* query loss with respect to the *initial*
//! parameters, which for one inner step is
//!
//! ```text
//! ∇_θ L_q(θ − β ∇_θ L_s(θ)) = (I − β ∇²L_s(θ)) · ∇L_q(θ′)
//! ```
//!
//! The Hessian-vector product `∇²L_s(θ) · g` is computed without any
//! second-derivative code via the central finite difference
//!
//! ```text
//! H·g ≈ (∇L_s(θ + r·ĝ) − ∇L_s(θ − r·ĝ)) / (2r) · ‖g‖
//! ```
//!
//! which costs two extra gradient evaluations per inner step — the
//! standard trick (Pearlmutter's exact R-op would need forward-mode
//! plumbing through the LSTM; the FD form is accurate to O(r²) and
//! entirely adequate for the small models here).
//!
//! This module exists as the ablation target for DESIGN.md's
//! "first-order MAML" substitution: `bench`/tests compare FOMAML and
//! second-order MAML on the same clusters.

use crate::learning_task::LearningTask;
use crate::meta_training::MetaConfig;
use rand::Rng;
use tamp_nn::{clip_grad_norm, Loss, Seq2Seq};

/// Finite-difference radius for the HVP, relative to parameter scale.
const FD_RADIUS: f64 = 1e-4;

/// Hessian-vector product `∇²L(θ)·g` of the batch loss at `theta` along
/// `g`, via central differences. Returns a zero vector when `g` is
/// numerically zero.
pub fn hessian_vector_product(
    model: &mut Seq2Seq,
    theta: &[f64],
    g: &[f64],
    task: &LearningTask,
    batch: usize,
    loss: &dyn Loss,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let norm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm < 1e-12 {
        return vec![0.0; g.len()];
    }
    // The same minibatch must be used on both sides of the difference.
    let sb = task.support_batch(batch, rng);
    let r = FD_RADIUS;
    let mut plus = theta.to_vec();
    let mut minus = theta.to_vec();
    for ((p, m), gv) in plus.iter_mut().zip(minus.iter_mut()).zip(g) {
        let dir = gv / norm;
        *p += r * dir;
        *m -= r * dir;
    }
    model.set_params(&plus);
    let (_, gp) = model.loss_and_grad(&sb, loss);
    model.set_params(&minus);
    let (_, gm) = model.loss_and_grad(&sb, loss);
    gp.iter()
        .zip(&gm)
        .map(|(a, b)| (a - b) / (2.0 * r) * norm)
        .collect()
}

/// Second-order MAML (Algorithm 3 with exact meta-gradients through the
/// inner steps, Hessians estimated by finite differences).
///
/// Returns the average query loss, updating `theta` in place. The
/// signature mirrors [`crate::meta_training::meta_train`] so the two are
/// drop-in interchangeable for ablations.
pub fn meta_train_second_order(
    theta: &mut [f64],
    tasks: &[&LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    rng: &mut impl Rng,
) -> f64 {
    let trainable: Vec<&LearningTask> =
        tasks.iter().copied().filter(|t| t.is_trainable()).collect();
    if trainable.is_empty() {
        return 0.0;
    }
    let mut model = template.clone();
    let mut total_query = 0.0;
    let mut count = 0usize;

    for _ in 0..cfg.iterations {
        let m = cfg.batch_tasks.max(1);
        let batch: Vec<&LearningTask> = (0..m)
            .map(|_| trainable[rng.gen_range(0..trainable.len())])
            .collect();

        let mut meta_grad = vec![0.0; theta.len()];
        for task in batch {
            // Inner adaptation, remembering every intermediate θᵢ.
            let mut thetas = Vec::with_capacity(cfg.adapt_steps + 1);
            thetas.push(theta.to_vec());
            for s in 0..cfg.adapt_steps {
                let cur = thetas[s].clone();
                model.set_params(&cur);
                let sb = task.support_batch(cfg.adapt_batch, rng);
                let (_, mut grad) = model.loss_and_grad(&sb, loss);
                clip_grad_norm(&mut grad, cfg.clip_norm);
                let next: Vec<f64> = cur
                    .iter()
                    .zip(&grad)
                    .map(|(p, g)| p - cfg.beta * g)
                    .collect();
                thetas.push(next);
            }
            // Query gradient at the adapted parameters...
            let adapted = thetas.last().expect("at least the init");
            model.set_params(adapted);
            let qb = task.query_batch(cfg.query_batch, rng);
            let (ql, qgrad) = model.loss_and_grad(&qb, loss);
            total_query += ql;
            count += 1;

            // ...pulled back through each inner step:
            // g ← (I − β H(θ_s)) g.
            let mut g = qgrad;
            for s in (0..cfg.adapt_steps).rev() {
                let hv = hessian_vector_product(
                    &mut model,
                    &thetas[s],
                    &g,
                    task,
                    cfg.adapt_batch,
                    loss,
                    rng,
                );
                for (gi, hvi) in g.iter_mut().zip(&hv) {
                    *gi -= cfg.beta * hvi;
                }
            }
            for (mg, gi) in meta_grad.iter_mut().zip(&g) {
                *mg += gi;
            }
        }
        let inv = 1.0 / m as f64;
        for g in meta_grad.iter_mut() {
            *g *= inv;
        }
        clip_grad_norm(&mut meta_grad, cfg.clip_norm);
        for (p, g) in theta.iter_mut().zip(&meta_grad) {
            *p -= cfg.alpha * g;
        }
    }
    if count == 0 {
        0.0
    } else {
        total_query / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta_training::{meta_train, query_loss};
    use tamp_core::rng::rng_for;
    use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
    use tamp_nn::{MseLoss, Seq2SeqConfig};

    fn line_task(id: u64, speed: f64) -> LearningTask {
        let days: Vec<Routine> = (0..3)
            .map(|d| {
                Routine::from_sampled(
                    (0..18).map(|i| Point::new(1.0 + (i as f64 * speed).min(17.0), 5.0)),
                    Minutes::new(d as f64 * 1440.0),
                    Minutes::new(10.0),
                )
            })
            .collect();
        let mut rng = rng_for(id, 14);
        LearningTask::from_history(
            WorkerId(id),
            &days,
            vec![],
            &Grid::PAPER,
            3,
            1,
            0.7,
            false,
            &mut rng,
        )
    }

    #[test]
    fn hvp_matches_quadratic_expectation_direction() {
        // Sanity: HVP along g has positive alignment with the change of
        // gradients, and zero input gives zero output.
        let mut rng = rng_for(1, 14);
        let mut model = Seq2Seq::new(Seq2SeqConfig::lstm(5), &mut rng);
        let task = line_task(1, 0.5);
        let theta = model.params();
        let zero = vec![0.0; theta.len()];
        let hv = hessian_vector_product(&mut model, &theta, &zero, &task, 8, &MseLoss, &mut rng);
        assert!(hv.iter().all(|v| *v == 0.0));

        let g = vec![0.01; theta.len()];
        let hv = hessian_vector_product(&mut model, &theta, &g, &task, 8, &MseLoss, &mut rng);
        assert_eq!(hv.len(), theta.len());
        assert!(hv.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn second_order_reduces_query_loss() {
        let mut rng = rng_for(2, 14);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let tasks = [line_task(1, 0.4), line_task(2, 0.6)];
        let refs: Vec<&LearningTask> = tasks.iter().collect();
        let mut theta = template.params();
        let before = query_loss(&theta, &refs, &template, &MseLoss);
        let cfg = MetaConfig {
            iterations: 15,
            ..MetaConfig::default()
        };
        meta_train_second_order(&mut theta, &refs, &template, &MseLoss, &cfg, &mut rng);
        let after = query_loss(&theta, &refs, &template, &MseLoss);
        assert!(after < before, "{before} → {after}");
    }

    #[test]
    fn second_order_is_competitive_with_first_order() {
        // On the same budget, second-order should land within a factor of
        // first-order's loss (usually at or below it).
        let mut rng = rng_for(3, 14);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let tasks = [line_task(4, 0.3), line_task(5, 0.5), line_task(6, 0.7)];
        let refs: Vec<&LearningTask> = tasks.iter().collect();
        let cfg = MetaConfig {
            iterations: 15,
            ..MetaConfig::default()
        };

        let mut theta_fo = template.params();
        let mut rng_a = rng_for(9, 14);
        meta_train(&mut theta_fo, &refs, &template, &MseLoss, &cfg, &mut rng_a);
        let fo = query_loss(&theta_fo, &refs, &template, &MseLoss);

        let mut theta_so = template.params();
        let mut rng_b = rng_for(9, 14);
        meta_train_second_order(&mut theta_so, &refs, &template, &MseLoss, &cfg, &mut rng_b);
        let so = query_loss(&theta_so, &refs, &template, &MseLoss);

        assert!(
            so < fo * 4.0 && fo < so * 4.0,
            "second-order {so} and first-order {fo} should be in the same regime"
        );
    }

    #[test]
    fn untrainable_tasks_noop() {
        let mut rng = rng_for(4, 14);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(5), &mut rng);
        let empty = LearningTask {
            worker_id: WorkerId(1),
            support: Default::default(),
            query: Default::default(),
            poi_seq: vec![],
            sample_points: vec![],
            is_new: true,
        };
        let mut theta = template.params();
        let before = theta.clone();
        let l = meta_train_second_order(
            &mut theta,
            &[&empty],
            &template,
            &MseLoss,
            &MetaConfig::default(),
            &mut rng,
        );
        assert_eq!(l, 0.0);
        assert_eq!(theta, before);
    }
}

//! Ablation: PPI design choices.
//!
//! Two knobs on one workload/predictor pair:
//!
//! * **ε sensitivity** — the stage-2 mini-batch size trades matching
//!   quality against KM-call count (the paper's Discussion of
//!   Algorithm 4).
//! * **Flat-MR** — replaces every worker's validation matching rate with
//!   its population mean, disabling the "prediction-performance-involved"
//!   part of PPI while keeping everything else. The gap to real PPI is
//!   the measurable value of Theorem 2's probability machinery.

use tamp_bench::{default_engine, default_training, out_dir, seed_from_env};
use tamp_platform::experiments::report::{f4, print_markdown_table, save_json};
use tamp_platform::training::{train_predictors, LossKind, TrainingConfig};
use tamp_platform::{run_assignment, AssignmentAlgo, EngineConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::small(), seed).build();
    let training = TrainingConfig {
        loss: LossKind::TaskOriented,
        ..default_training(seed)
    };
    let predictors = train_predictors(&workload, &training);

    // Flat-MR variant: same models, population-mean matching rate.
    let mut flat = predictors.clone();
    let mean_mr = flat.mrs.iter().sum::<f64>() / flat.mrs.len().max(1) as f64;
    flat.mrs.iter_mut().for_each(|m| *m = mean_mr);

    println!(
        "# Ablation: PPI ε and MR involvement ({} workers, {} tasks, seed {seed})",
        workload.workers.len(),
        workload.tasks.len()
    );
    let mut rows = Vec::new();
    let mut run = |label: &str, eps: usize, preds: &tamp_platform::TrainedPredictors| {
        let engine = EngineConfig {
            epsilon: eps,
            ..default_engine(seed)
        };
        let m = run_assignment(&workload, Some(preds), AssignmentAlgo::Ppi, &engine);
        rows.push(serde_json::json!({
            "variant": label,
            "epsilon": eps,
            "completion": m.completion_ratio(),
            "rejection": m.rejection_ratio(),
            "cost_km": m.avg_worker_cost_km(),
            "runtime_s": m.algo_seconds,
        }));
    };
    for eps in [1usize, 4, 8, 32] {
        run(&format!("PPI ε={eps}"), eps, &predictors);
    }
    run("PPI flat-MR", 8, &flat);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r["variant"].as_str().unwrap().to_string(),
                f4(r["completion"].as_f64().unwrap()),
                f4(r["rejection"].as_f64().unwrap()),
                f4(r["cost_km"].as_f64().unwrap()),
                format!("{:.3}", r["runtime_s"].as_f64().unwrap()),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "variant",
            "completion",
            "rejection",
            "cost (km)",
            "runtime (s)",
        ],
        &table,
    );
    save_json(&out_dir().join("ablation_ppi.json"), "ablation_ppi", &rows).expect("write rows");
}

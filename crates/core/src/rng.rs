//! Deterministic randomness helpers.
//!
//! Every stochastic component in the workspace (data synthesis, weight
//! initialisation, task sampling, the genetic baseline) derives its RNG
//! from a single experiment seed through [`derive_seed`], so an experiment
//! is exactly reproducible from one `u64` while sub-streams stay
//! statistically independent.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes an experiment seed with a stream label into an independent child
/// seed (SplitMix64 finaliser, the standard seed-derivation mixer).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for the given `(seed, stream)` pair.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

/// A snapshot-friendly PRNG (xoshiro256** core) whose entire state is
/// four `u64` words with serde derives, so long-lived engine state can
/// serialize it and a restored run replays bit for bit. [`StdRng`]
/// deliberately hides its state and cannot be persisted, which is the
/// only reason this exists; statistical quality is ample for the
/// sampling done here, but this is not a cryptographic generator.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PortableRng {
    s: [u64; 4],
}

impl PortableRng {
    /// Seeds the generator by expanding `seed` with SplitMix64 (the
    /// reference xoshiro seeding procedure).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the xoshiro
            // transition; SplitMix64 cannot reach it from any seed, but
            // guard anyway so a hand-built state cannot wedge the stream.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// A seeded generator for the given `(seed, stream)` pair — the
    /// portable counterpart of [`rng_for`].
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        Self::new(derive_seed(seed, stream))
    }
}

impl rand::RngCore for PortableRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Well-known stream labels so call sites don't collide by accident.
pub mod streams {
    /// Worker routine synthesis.
    pub const ROUTINES: u64 = 1;
    /// Spatial task synthesis.
    pub const TASKS: u64 = 2;
    /// Model weight initialisation.
    pub const WEIGHTS: u64 = 3;
    /// Meta-training batch sampling.
    pub const META: u64 = 4;
    /// Clustering initialisation (k-medoids / k-means).
    pub const CLUSTER: u64 = 5;
    /// Genetic baseline (GGPSO).
    pub const GENETIC: u64 = 6;
    /// POI synthesis.
    pub const POIS: u64 = 7;
    /// Distribution-similarity subsampling.
    pub const WASSERSTEIN: u64 = 8;
    /// Fault injection (report loss/noise, offline windows, prediction
    /// failures) — see `tamp-platform::faults`.
    pub const FAULTS: u64 = 9;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
    }

    #[test]
    fn streams_are_independent() {
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_reproduces() {
        let mut a = rng_for(7, streams::TASKS);
        let mut b = rng_for(7, streams::TASKS);
        let xa: [u64; 4] = std::array::from_fn(|_| a.gen());
        let xb: [u64; 4] = std::array::from_fn(|_| b.gen());
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = rng_for(7, streams::TASKS);
        let mut b = rng_for(7, streams::ROUTINES);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn portable_rng_reproduces_and_streams_diverge() {
        let mut a = PortableRng::for_stream(7, streams::GENETIC);
        let mut b = PortableRng::for_stream(7, streams::GENETIC);
        let xa: [u64; 4] = std::array::from_fn(|_| a.gen());
        let xb: [u64; 4] = std::array::from_fn(|_| b.gen());
        assert_eq!(xa, xb);
        let mut c = PortableRng::for_stream(7, streams::TASKS);
        let xc: u64 = c.gen();
        assert_ne!(xa[0], xc);
    }

    #[test]
    fn portable_rng_clone_continues_the_same_stream() {
        // The property snapshot/restore relies on: copying the state
        // mid-stream and resuming produces the identical tail.
        let mut a = PortableRng::new(99);
        for _ in 0..10 {
            let _: u64 = a.gen();
        }
        let mut b = a.clone();
        let tail_a: [u64; 8] = std::array::from_fn(|_| a.gen());
        let tail_b: [u64; 8] = std::array::from_fn(|_| b.gen());
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn portable_rng_fill_bytes_matches_word_stream() {
        use rand::RngCore;
        let mut a = PortableRng::new(5);
        let mut b = PortableRng::new(5);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1);
    }

    #[test]
    fn portable_rng_bounded_draws_are_in_range() {
        let mut a = PortableRng::new(1234);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let k = a.gen_range(0usize..17);
            assert!(k < 17);
        }
    }
}

//! Diagnostic: the Table V ordering at reduced scale.
//!
//! Trains all four prediction algorithms on a 40-worker workload and
//! prints RMSE/MAE/MR/TT — a two-minute check that the paper's ordering
//! (GTTAML best, MAML worst) holds before running the full tables.
use tamp_bench::{default_training, seed_from_env};
use tamp_platform::training::{train_predictors, PredictionAlgo, TrainingConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    let mut scale = Scale::small();
    scale.n_workers = 40;
    let w = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    for (algo, name) in [
        (PredictionAlgo::Maml, "MAML"),
        (PredictionAlgo::Ctml, "CTML"),
        (PredictionAlgo::GttamlGt, "GTTAML-GT"),
        (PredictionAlgo::Gttaml, "GTTAML"),
    ] {
        let cfg = TrainingConfig {
            algo,
            ..default_training(seed)
        };
        let p = train_predictors(&w, &cfg);
        println!(
            "{name:<10} rmse {:.3} mae {:.3} mr {:.3} tt {:.1}s clusters {}",
            p.overall.rmse_cells, p.overall.mae_cells, p.overall.mr, p.train_seconds, p.n_clusters
        );
    }
}

//! The offline training stage (Figure 1, "offline training").
//!
//! Builds one learning task per worker, trains the chosen prediction
//! algorithm (MAML / CTML / GTTAML-GT / GTTAML), adapts a personal model
//! per worker, and scores each worker's validation matching rate — the
//! `MR` the PPI algorithm consumes at assignment time.
//!
//! Cold-start workers (one day of history) follow the paper's new-worker
//! path: their model is initialised from the most similar tree node (or
//! cluster centroid for CTML) before adaptation.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tamp_core::rng::{rng_for, streams};
use tamp_meta::cold_start::{best_init_node, dedup_heads};
use tamp_meta::ctml::{ctml_train, task_features, CtmlConfig};
use tamp_meta::eval::{evaluate_model, PredictionMetrics};
use tamp_meta::gtmc::{build_tree, GtmcConfig};
use tamp_meta::maml::{adapt, gradient_paths, maml_train_observed};
use tamp_meta::meta_training::{resolve_threads, MetaConfig};
use tamp_meta::similarity::{build_sim_matrix_threaded, FactorKind};
use tamp_meta::taml::{taml_train_observed, TamlConfig};
use tamp_meta::LearningTask;
use tamp_nn::seq2seq::CellKind;
use tamp_nn::{
    Loss, MseLoss, Seq2Seq, Seq2SeqConfig, TaskDensityMap, TaskOrientedLoss, WeightParams,
};
use tamp_obs::Obs;
use tamp_sim::Workload;

/// Which prediction algorithm trains the worker models (the roster of
/// Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionAlgo {
    /// Plain MAML \[15\]: one shared initialisation.
    Maml,
    /// CTML \[41\]: soft k-means over data features ⊕ learning paths.
    Ctml,
    /// GTTAML-GT: multi-level clustering without the game refinement.
    GttamlGt,
    /// GTTAML: the paper's full method.
    Gttaml,
}

/// Which loss trains the models: plain MSE (`*-loss` variants) or the
/// task-assignment-oriented loss of Eq. 6–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Plain MSE.
    Mse,
    /// Task-assignment-oriented weighted MSE (Eq. 6–7).
    TaskOriented,
}

/// Offline-stage configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Prediction algorithm.
    pub algo: PredictionAlgo,
    /// Training loss.
    pub loss: LossKind,
    /// Input window length (Definition 3).
    pub seq_in: usize,
    /// Output window length.
    pub seq_out: usize,
    /// Recurrent hidden width.
    pub hidden: usize,
    /// Recurrent cell family (LSTM is the paper's instantiation).
    pub cell: CellKind,
    /// Meta-training hyper-parameters.
    pub meta: MetaConfig,
    /// GTMC clustering configuration (GTTAML variants).
    pub gtmc: GtmcConfig,
    /// Ordered similarity factors for GTMC (Table IV's ablation knob).
    pub factors: Vec<FactorKind>,
    /// Gradient-path probe length for `Sim_l` / CTML features.
    pub path_steps: usize,
    /// Per-worker adaptation steps after meta-training.
    pub adapt_steps: usize,
    /// Per-worker adaptation rate.
    pub adapt_beta: f64,
    /// Matching-rate radius `a` in km (Definition 7).
    pub a_km: f64,
    /// Weighted-loss hyper-parameters (Eq. 7).
    pub weight_params: WeightParams,
    /// Number of soft clusters for CTML.
    pub ctml_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            algo: PredictionAlgo::Gttaml,
            loss: LossKind::TaskOriented,
            seq_in: 5,
            seq_out: 1,
            hidden: 16,
            cell: CellKind::Lstm,
            meta: MetaConfig::default(),
            gtmc: GtmcConfig::default(),
            factors: FactorKind::PAPER_ORDER.to_vec(),
            path_steps: 3,
            adapt_steps: 8,
            adapt_beta: 0.15,
            a_km: 0.4,
            weight_params: WeightParams::default(),
            ctml_k: 4,
            seed: 0,
        }
    }
}

/// Per-worker trained models plus validation metrics.
#[derive(Debug, Clone)]
pub struct TrainedPredictors {
    /// One adapted model per worker, indexed like `workload.workers`.
    pub models: Vec<Seq2Seq>,
    /// Validation matching rate per worker.
    pub mrs: Vec<f64>,
    /// Per-worker validation metrics.
    pub per_worker: Vec<PredictionMetrics>,
    /// Point-weighted overall metrics (the paper's RMSE/MAE/MR row).
    pub overall: PredictionMetrics,
    /// Wall-clock seconds of the offline stage (the paper's TT).
    pub train_seconds: f64,
    /// Number of leaf clusters the algorithm produced (diagnostics).
    pub n_clusters: usize,
    /// Output horizon the models were trained with.
    pub seq_out: usize,
    /// Distinct cluster-head initialisation vectors (bitwise-deduped
    /// per-worker `θ` priors). The base models of the batched-rollout
    /// weight store; empty when loaded from a pre-head predictor file.
    pub heads: Vec<Vec<f64>>,
    /// `head_of[i]` indexes into [`TrainedPredictors::heads`] for worker
    /// `i`. Empty exactly when `heads` is empty.
    pub head_of: Vec<usize>,
}

impl TrainedPredictors {
    /// Serialises the trained predictor set (models, matching rates,
    /// metrics) to JSON at `path`, so the offline stage can be trained
    /// once and reused across many online experiments.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let payload = serde_json::json!({
            "models": self.models,
            "mrs": self.mrs,
            "per_worker": self.per_worker,
            "overall": self.overall,
            "train_seconds": self.train_seconds,
            "n_clusters": self.n_clusters,
            "seq_out": self.seq_out,
            "heads": self.heads,
            "head_of": self.head_of,
        });
        std::fs::write(path, serde_json::to_string(&payload)?)
    }

    /// Loads a predictor set saved by [`TrainedPredictors::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let v: serde_json::Value = serde_json::from_str(&text)?;
        let parse = |field: &str| -> std::io::Result<serde_json::Value> {
            v.get(field)
                .cloned()
                .ok_or_else(|| std::io::Error::other(format!("missing field {field}")))
        };
        Ok(Self {
            models: serde_json::from_value(parse("models")?)?,
            mrs: serde_json::from_value(parse("mrs")?)?,
            per_worker: serde_json::from_value(parse("per_worker")?)?,
            overall: serde_json::from_value(parse("overall")?)?,
            train_seconds: serde_json::from_value(parse("train_seconds")?)?,
            n_clusters: serde_json::from_value(parse("n_clusters")?)?,
            seq_out: serde_json::from_value(parse("seq_out")?)?,
            // Absent in pre-head files: empty means "no shared bases
            // known" and the serve-side weight store falls back to
            // per-worker singleton bases.
            heads: match v.get("heads") {
                Some(h) => serde_json::from_value(h.clone())?,
                None => Vec::new(),
            },
            head_of: match v.get("head_of") {
                Some(h) => serde_json::from_value(h.clone())?,
                None => Vec::new(),
            },
        })
    }
}

/// Matching rate assumed for workers without validation data.
const DEFAULT_MR: f64 = 0.2;

/// Builds the per-worker learning tasks of a workload.
pub fn build_learning_tasks(workload: &Workload, cfg: &TrainingConfig) -> Vec<LearningTask> {
    workload
        .workers
        .iter()
        .enumerate()
        .map(|(i, sw)| {
            let mut rng = rng_for(cfg.seed, streams::META + 500 + i as u64);
            LearningTask::from_history(
                sw.worker.id,
                &sw.history_days,
                sw.poi_seq.clone(),
                &workload.grid,
                cfg.seq_in,
                cfg.seq_out,
                0.7,
                sw.worker.is_new,
                &mut rng,
            )
        })
        .collect()
}

fn make_loss(workload: &Workload, cfg: &TrainingConfig) -> Box<dyn Loss> {
    match cfg.loss {
        LossKind::Mse => Box::new(MseLoss),
        LossKind::TaskOriented => {
            let density = TaskDensityMap::build(workload.grid, &workload.historical_task_locs);
            Box::new(TaskOrientedLoss::new(density, cfg.weight_params))
        }
    }
}

/// Runs the offline stage end to end.
pub fn train_predictors(workload: &Workload, cfg: &TrainingConfig) -> TrainedPredictors {
    train_predictors_observed(workload, cfg, &Obs::null())
}

/// [`train_predictors`] with telemetry.
///
/// Emits `train.offline` around the whole stage with nested
/// `train.tasks` (learning-task construction), `train.meta`
/// (meta-training — inside it the per-iteration `meta.iter` spans and
/// `meta.query_loss` gauges of the chosen algorithm), and `train.adapt`
/// (per-worker adaptation + validation). Worker adaptation runs on
/// worker threads; to keep event sequences deterministic, per-worker
/// telemetry (`train.worker.mr` gauges) is emitted from this thread
/// after the shards join, in worker order. Ends with `train.mr.overall`
/// and a `train.clusters` counter.
pub fn train_predictors_observed(
    workload: &Workload,
    cfg: &TrainingConfig,
    obs: &Obs,
) -> TrainedPredictors {
    let _stage_span = obs.span("train.offline");
    let start = Instant::now();
    let task_span = obs.span("train.tasks");
    let tasks = build_learning_tasks(workload, cfg);
    drop(task_span);
    let loss = make_loss(workload, cfg);
    let mut rng = rng_for(cfg.seed, streams::WEIGHTS);
    let template = Seq2Seq::new(
        Seq2SeqConfig {
            hidden: cfg.hidden,
            cell: cfg.cell,
        },
        &mut rng,
    );
    let mut meta_rng = rng_for(cfg.seed, streams::META);

    // Per-worker initialisation θ according to the algorithm.
    let meta_span = obs.span("train.meta");
    let (inits, n_clusters): (Vec<Vec<f64>>, usize) = match cfg.algo {
        PredictionAlgo::Maml => {
            let (theta, _) = maml_train_observed(
                &tasks,
                &template,
                loss.as_ref(),
                &cfg.meta,
                &mut meta_rng,
                obs,
            );
            (vec![theta; tasks.len()], 1)
        }
        PredictionAlgo::Ctml => {
            let paths = gradient_paths(
                &tasks,
                &template,
                loss.as_ref(),
                cfg.path_steps,
                cfg.adapt_beta,
                cfg.meta.adapt_batch,
                &mut meta_rng,
            );
            let ctml_cfg = CtmlConfig {
                k: cfg.ctml_k,
                path_steps: cfg.path_steps,
                path_beta: cfg.adapt_beta,
                meta: cfg.meta,
                ..CtmlConfig::default()
            };
            let model = ctml_train(
                &tasks,
                &paths,
                &template,
                loss.as_ref(),
                &ctml_cfg,
                &mut meta_rng,
            );
            let inits = tasks
                .iter()
                .zip(&paths)
                .map(|(t, p)| {
                    // Features must be normalised like training did; assign
                    // via raw features is an approximation the centroids
                    // tolerate (z-scores are monotone per column).
                    model
                        .theta_for(&normalised_like(&tasks, &paths, task_features(t, p)))
                        .to_vec()
                })
                .collect();
            let k = model.clusters.iter().filter(|c| !c.is_empty()).count();
            (inits, k)
        }
        PredictionAlgo::GttamlGt | PredictionAlgo::Gttaml => {
            let paths_needed = cfg.factors.contains(&FactorKind::LearningPath);
            let paths = if paths_needed {
                Some(gradient_paths(
                    &tasks,
                    &template,
                    loss.as_ref(),
                    cfg.path_steps,
                    cfg.adapt_beta,
                    cfg.meta.adapt_batch,
                    &mut meta_rng,
                ))
            } else {
                None
            };
            let sims: Vec<_> = cfg
                .factors
                .iter()
                .map(|f| build_sim_matrix_threaded(*f, &tasks, paths.as_deref(), cfg.meta.threads))
                .collect();
            let mut gtmc = cfg.gtmc.clone();
            gtmc.use_game = matches!(cfg.algo, PredictionAlgo::Gttaml);
            gtmc.thresholds
                .resize(sims.len(), *gtmc.thresholds.last().unwrap_or(&0.75));
            gtmc.thresholds.truncate(sims.len());
            gtmc.seed = cfg.seed;
            let mut tree = build_tree(tasks.len(), &sims, &gtmc, template.params());
            let tcfg = TamlConfig {
                meta: cfg.meta,
                parent_blend: 0.5,
            };
            taml_train_observed(
                &mut tree,
                &tasks,
                &template,
                loss.as_ref(),
                &tcfg,
                &mut meta_rng,
                obs,
            );

            let inits = tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if t.is_trainable() && !t.is_new {
                        if let Some(leaf) = tree.leaf_of_task(i) {
                            return tree.node(leaf).theta.clone();
                        }
                    }
                    // Cold start: most similar node in the tree.
                    let node = best_init_node(&tree, &tasks, t);
                    tree.node(node).theta.clone()
                })
                .collect();
            (inits, tree.leaves().len())
        }
    };
    drop(meta_span);
    obs.count("train.clusters", n_clusters as u64);
    // The distinct init vectors ARE the cluster heads — export them so
    // the serve-side weight store can hold each worker as head + delta.
    let (heads, head_of) = dedup_heads(&inits);

    // Per-worker adaptation + validation.
    let adapt_span = obs.span("train.adapt");
    let n = tasks.len();
    let mut models: Vec<Seq2Seq> = Vec::with_capacity(n);
    let mut per_worker: Vec<PredictionMetrics> = Vec::with_capacity(n);
    // Worker adaptation is embarrassingly parallel; shard across the
    // configured thread count. Each worker draws from its own
    // index-seeded RNG stream, so models and metrics are bitwise
    // identical for every thread count and shard layout.
    let n_threads = resolve_threads(cfg.meta.threads);
    let chunk = n.div_ceil(n_threads.max(1));
    let mut shards: Vec<Vec<(usize, Seq2Seq, PredictionMetrics)>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for idxs in (0..n).collect::<Vec<_>>().chunks(chunk.max(1)) {
            let idxs = idxs.to_vec();
            let tasks = &tasks;
            let inits = &inits;
            let template = &template;
            let loss = loss.as_ref();
            let grid = workload.grid;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::with_capacity(idxs.len());
                for i in idxs {
                    let mut rng = rng_for(cfg.seed, streams::META + 9000 + i as u64);
                    // Final per-worker adaptation mirrors the inner loop
                    // the meta-init was optimised for: SGD at β with the
                    // meta adapt-batch size (Section III-B: "a few rounds
                    // of adaptive training").
                    let model = adapt(
                        &inits[i],
                        &tasks[i],
                        template,
                        loss,
                        cfg.adapt_steps,
                        cfg.meta.beta,
                        cfg.meta.adapt_batch,
                        &mut rng,
                    );
                    let metrics = evaluate_model(&model, &tasks[i].query, &grid, cfg.a_km);
                    out.push((i, model, metrics));
                }
                out
            }));
        }
        shards = handles
            .into_iter()
            .map(|h| h.join().expect("shard panicked"))
            .collect();
    })
    .expect("crossbeam scope");

    let mut indexed: Vec<(usize, Seq2Seq, PredictionMetrics)> =
        shards.into_iter().flatten().collect();
    indexed.sort_by_key(|(i, _, _)| *i);
    for (_, model, metrics) in indexed {
        models.push(model);
        per_worker.push(metrics);
    }

    drop(adapt_span);

    let mrs: Vec<f64> = per_worker
        .iter()
        .map(|m| if m.n_points == 0 { DEFAULT_MR } else { m.mr })
        .collect();
    let overall = PredictionMetrics::merge(&per_worker);
    // Per-worker telemetry after the shards join, in worker order, so the
    // event sequence is deterministic despite the threaded adaptation.
    for (i, mr) in mrs.iter().enumerate() {
        obs.gauge_idx("train.worker.mr", *mr, Some(i as u64));
    }
    obs.gauge("train.mr.overall", overall.mr);

    TrainedPredictors {
        models,
        mrs,
        per_worker,
        overall,
        train_seconds: start.elapsed().as_secs_f64(),
        n_clusters,
        seq_out: cfg.seq_out,
        heads,
        head_of,
    }
}

/// Re-applies the z-score normalisation CTML used at training time so a
/// raw feature vector can be routed to the right centroid. Falls back to
/// the raw features when the population is degenerate.
fn normalised_like(tasks: &[LearningTask], paths: &[Vec<Vec<f64>>], raw: Vec<f64>) -> Vec<f64> {
    let all: Vec<Vec<f64>> = tasks
        .iter()
        .zip(paths)
        .map(|(t, p)| task_features(t, p))
        .collect();
    if all.is_empty() {
        return raw;
    }
    let dim = raw.len();
    let n = all.len() as f64;
    let mut out = raw;
    for c in 0..dim {
        let mean = all.iter().map(|f| f[c]).sum::<f64>() / n;
        let var = all.iter().map(|f| (f[c] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt().max(1e-9);
        out[c] = (out[c] - mean) / sd;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

    fn quick_cfg(algo: PredictionAlgo) -> TrainingConfig {
        TrainingConfig {
            algo,
            loss: LossKind::Mse,
            hidden: 6,
            seq_in: 3,
            seq_out: 1,
            meta: MetaConfig {
                iterations: 2,
                batch_tasks: 2,
                ..MetaConfig::default()
            },
            path_steps: 2,
            adapt_steps: 2,
            seed: 5,
            ..TrainingConfig::default()
        }
    }

    fn tiny_workload() -> tamp_sim::Workload {
        WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::tiny(), 3).build()
    }

    #[test]
    fn learning_tasks_cover_all_workers() {
        let w = tiny_workload();
        let tasks = build_learning_tasks(&w, &quick_cfg(PredictionAlgo::Maml));
        assert_eq!(tasks.len(), w.workers.len());
        // Most workers with full history must be trainable.
        let trainable = tasks.iter().filter(|t| t.is_trainable()).count();
        assert!(trainable >= w.workers.len() / 2);
    }

    #[test]
    fn all_algorithms_produce_complete_predictors() {
        let w = tiny_workload();
        for algo in [
            PredictionAlgo::Maml,
            PredictionAlgo::Ctml,
            PredictionAlgo::GttamlGt,
            PredictionAlgo::Gttaml,
        ] {
            let p = train_predictors(&w, &quick_cfg(algo));
            assert_eq!(p.models.len(), w.workers.len(), "{algo:?}");
            assert_eq!(p.mrs.len(), w.workers.len());
            assert!(p.mrs.iter().all(|&m| (0.0..=1.0).contains(&m)));
            assert!(p.overall.rmse_cells.is_finite());
            assert!(p.train_seconds >= 0.0);
            assert!(p.n_clusters >= 1, "{algo:?} clusters");
        }
    }

    #[test]
    fn task_oriented_loss_trains_too() {
        let w = tiny_workload();
        let cfg = TrainingConfig {
            loss: LossKind::TaskOriented,
            ..quick_cfg(PredictionAlgo::Gttaml)
        };
        let p = train_predictors(&w, &cfg);
        assert_eq!(p.models.len(), w.workers.len());
        assert!(p.overall.rmse_cells.is_finite());
    }

    #[test]
    fn predictors_json_round_trip() {
        let w = tiny_workload();
        let p = train_predictors(&w, &quick_cfg(PredictionAlgo::Maml));
        let path = std::env::temp_dir().join("tamp_predictors_test/p.json");
        p.save_json(&path).unwrap();
        let back = TrainedPredictors::load_json(&path).unwrap();
        assert_eq!(back.models.len(), p.models.len());
        assert_eq!(back.n_clusters, p.n_clusters);
        // JSON floats can differ in the last ulp; compare with tolerance.
        for (a, b) in back.mrs.iter().zip(&p.mrs) {
            assert!((a - b).abs() < 1e-12);
        }
        // A reloaded model predicts (numerically) identically.
        let input = [[0.3, 0.4], [0.35, 0.45]];
        for (a, b) in back.models[0]
            .predict(&input, 2)
            .iter()
            .zip(p.models[0].predict(&input, 2))
        {
            assert!((a[0] - b[0]).abs() < 1e-9 && (a[1] - b[1]).abs() < 1e-9);
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn deterministic_given_seed() {
        let w = tiny_workload();
        let cfg = quick_cfg(PredictionAlgo::Gttaml);
        let a = train_predictors(&w, &cfg);
        let b = train_predictors(&w, &cfg);
        assert_eq!(a.models[0].params(), b.models[0].params());
        assert_eq!(a.mrs, b.mrs);
    }

    /// End-to-end thread-count invariance: similarity matrices, TAML,
    /// meta-training and worker adaptation all parallelise, and every one
    /// must produce bitwise-identical output at any `meta.threads`.
    #[test]
    fn thread_count_does_not_change_predictors() {
        let w = tiny_workload();
        let base = quick_cfg(PredictionAlgo::Gttaml);
        let serial = train_predictors(&w, &base);
        for threads in [2usize, 4] {
            let mut cfg = base.clone();
            cfg.meta.threads = threads;
            let p = train_predictors(&w, &cfg);
            for (a, b) in serial.models.iter().zip(&p.models) {
                assert_eq!(a.params(), b.params(), "threads {threads}");
            }
            assert_eq!(serial.mrs, p.mrs, "threads {threads}");
        }
    }
}

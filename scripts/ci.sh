#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
#
# Everything runs --offline: the workspace's dependency set is small and
# pinned (see CONTRIBUTING.md), and CI must not depend on a registry
# being reachable. Run `cargo fetch` once on a connected machine first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + test"
cargo build --release --workspace --offline
cargo test --workspace --offline -q

echo "== traced smoke run (telemetry schema + reconciliation)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --release -p tamp-cli --offline -q -- simulate \
    --kind porto --scale tiny --seed 7 --algo ppi \
    --trace "$SMOKE_DIR/trace.jsonl" --metrics "$SMOKE_DIR/telemetry.json" >/dev/null
cargo run --release -p tamp-cli --offline -q -- trace-validate \
    --trace "$SMOKE_DIR/trace.jsonl" --metrics "$SMOKE_DIR/telemetry.json"

echo "== indexed vs naive smoke comparison (must be identical)"
# The spatial index is a pure prefilter: --no-index must reproduce the
# exact same simulation outcome. Compare the deterministic result lines
# of the text report (timings naturally differ).
for algo in ppi km; do
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed 7 --algo "$algo" \
        >"$SMOKE_DIR/$algo.indexed.txt"
    cargo run --release -p tamp-cli --offline -q -- simulate \
        --kind porto --scale tiny --seed 7 --algo "$algo" --no-index \
        >"$SMOKE_DIR/$algo.naive.txt"
    if ! diff <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/$algo.indexed.txt") \
              <(grep -iE '^(tasks|completed|rejected|avg)' "$SMOKE_DIR/$algo.naive.txt"); then
        echo "FAIL: --no-index changed the $algo simulation outcome" >&2
        exit 1
    fi
done

echo "CI gate passed."

//! City grid discretisation.
//!
//! The paper divides the study area into `100 × 50` cells and maps raw
//! coordinates to grid indexes, then reports prediction errors in
//! grid-cell units (its RMSE/MAE tables are in cells). [`Grid`] carries
//! the region extent and cell size and converts between kilometres,
//! fractional cell coordinates and integer cell indexes.

use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// A rectangular grid over the city, anchored at the origin.
///
/// # Examples
///
/// ```
/// use tamp_core::{Grid, Point};
///
/// let g = Grid::PAPER; // 100×50 cells of 0.2 km
/// assert_eq!(g.cell_index(Point::new(1.0, 0.5)), (5, 2));
/// assert_eq!(g.km_to_cells(1.0), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Number of cells along x.
    pub cols: usize,
    /// Number of cells along y.
    pub rows: usize,
    /// Side length of a square cell, in kilometres.
    pub cell_km: f64,
}

impl Grid {
    /// The paper's 100×50 grid; with 0.2 km cells the region is a
    /// 20 km × 10 km city, which matches Porto's metro scale.
    pub const PAPER: Grid = Grid {
        cols: 100,
        rows: 50,
        cell_km: 0.2,
    };

    /// Creates a grid; panics if any dimension is degenerate.
    pub fn new(cols: usize, rows: usize, cell_km: f64) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have cells");
        assert!(cell_km > 0.0, "cell size must be positive");
        Self {
            cols,
            rows,
            cell_km,
        }
    }

    /// Region width in kilometres.
    #[inline]
    pub fn width_km(&self) -> f64 {
        self.cols as f64 * self.cell_km
    }

    /// Region height in kilometres.
    #[inline]
    pub fn height_km(&self) -> f64 {
        self.rows as f64 * self.cell_km
    }

    /// Converts a kilometre point to fractional cell coordinates (not
    /// clamped).
    #[inline]
    pub fn to_cells(&self, p: Point) -> (f64, f64) {
        (p.x / self.cell_km, p.y / self.cell_km)
    }

    /// Converts fractional cell coordinates back to kilometres.
    #[inline]
    pub fn to_km(&self, cx: f64, cy: f64) -> Point {
        Point::new(cx * self.cell_km, cy * self.cell_km)
    }

    /// Integer cell index of a point, clamped to the grid.
    pub fn cell_index(&self, p: Point) -> (usize, usize) {
        let (cx, cy) = self.to_cells(p);
        let ix = (cx.floor().max(0.0) as usize).min(self.cols - 1);
        let iy = (cy.floor().max(0.0) as usize).min(self.rows - 1);
        (ix, iy)
    }

    /// Centre of the cell with index `(ix, iy)`.
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point {
        Point::new(
            (ix as f64 + 0.5) * self.cell_km,
            (iy as f64 + 0.5) * self.cell_km,
        )
    }

    /// Clamps a kilometre point into the region.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(0.0, self.width_km()),
            p.y.clamp(0.0, self.height_km()),
        )
    }

    /// Whether a point lies inside the region (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0.0 && p.x <= self.width_km() && p.y >= 0.0 && p.y <= self.height_km()
    }

    /// Normalises a point to `\[0, 1\]²` for model input.
    #[inline]
    pub fn normalize(&self, p: Point) -> (f64, f64) {
        (p.x / self.width_km(), p.y / self.height_km())
    }

    /// Inverse of [`Grid::normalize`].
    #[inline]
    pub fn denormalize(&self, nx: f64, ny: f64) -> Point {
        Point::new(nx * self.width_km(), ny * self.height_km())
    }

    /// A distance in kilometres expressed in cell units (the unit of the
    /// paper's RMSE/MAE tables).
    #[inline]
    pub fn km_to_cells(&self, km: f64) -> f64 {
        km / self.cell_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_extent() {
        let g = Grid::PAPER;
        assert_eq!(g.width_km(), 20.0);
        assert_eq!(g.height_km(), 10.0);
    }

    #[test]
    fn cell_round_trip() {
        let g = Grid::PAPER;
        let p = Point::new(3.7, 8.1);
        let (cx, cy) = g.to_cells(p);
        let back = g.to_km(cx, cy);
        assert!(p.dist(back) < 1e-12);
    }

    #[test]
    fn cell_index_clamps() {
        let g = Grid::PAPER;
        assert_eq!(g.cell_index(Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(g.cell_index(Point::new(999.0, 999.0)), (99, 49));
        assert_eq!(g.cell_index(Point::new(0.3, 0.5)), (1, 2));
    }

    #[test]
    fn normalize_round_trip() {
        let g = Grid::PAPER;
        let p = Point::new(12.0, 4.0);
        let (nx, ny) = g.normalize(p);
        assert!((0.0..=1.0).contains(&nx) && (0.0..=1.0).contains(&ny));
        assert!(g.denormalize(nx, ny).dist(p) < 1e-12);
    }

    #[test]
    fn km_to_cells_conversion() {
        let g = Grid::PAPER;
        assert_eq!(g.km_to_cells(1.0), 5.0);
    }

    #[test]
    fn clamp_and_contains() {
        let g = Grid::PAPER;
        assert!(g.contains(Point::new(10.0, 5.0)));
        assert!(!g.contains(Point::new(-0.1, 5.0)));
        assert_eq!(g.clamp(Point::new(25.0, -2.0)), Point::new(20.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_panics() {
        Grid::new(10, 10, 0.0);
    }
}

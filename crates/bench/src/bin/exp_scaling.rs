//! Scaling validation (Appendix B's complexity analyses, empirically).
//!
//! Measures the assignment algorithms' per-day runtime as the instance
//! grows toward paper scale, and the offline stage's training time as
//! the worker count grows — the empirical counterpart of the paper's
//! complexity statements for Algorithms 1–4.

use std::time::Instant;
use tamp_bench::{default_engine, default_training, out_dir, seed_from_env};
use tamp_platform::experiments::report::{print_markdown_table, save_json};
use tamp_platform::training::{train_predictors, LossKind, TrainingConfig};
use tamp_platform::{run_assignment, AssignmentAlgo, EngineConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    println!("# Scaling: runtime vs instance size (seed {seed})");
    let mut rows = Vec::new();
    for &(n_workers, n_tasks) in &[(15usize, 1200usize), (30, 2400), (60, 4800), (120, 9600)] {
        let scale = Scale {
            n_workers,
            n_tasks,
            ..Scale::small()
        };
        let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
        let tcfg = TrainingConfig {
            loss: LossKind::Mse,
            ..default_training(seed)
        };
        let t0 = Instant::now();
        let predictors = train_predictors(&workload, &tcfg);
        let train_s = t0.elapsed().as_secs_f64();

        let engine: EngineConfig = default_engine(seed);
        let ppi = run_assignment(&workload, Some(&predictors), AssignmentAlgo::Ppi, &engine);
        let km = run_assignment(&workload, Some(&predictors), AssignmentAlgo::Km, &engine);
        let ub = run_assignment(&workload, None, AssignmentAlgo::Ub, &engine);
        rows.push(serde_json::json!({
            "n_workers": n_workers,
            "n_tasks": n_tasks,
            "train_s": train_s,
            "ppi_s": ppi.algo_seconds,
            "km_s": km.algo_seconds,
            "ub_s": ub.algo_seconds,
            "ppi_completion": ppi.completion_ratio(),
        }));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r["n_workers"].to_string(),
                r["n_tasks"].to_string(),
                format!("{:.1}", r["train_s"].as_f64().unwrap()),
                format!("{:.3}", r["ppi_s"].as_f64().unwrap()),
                format!("{:.3}", r["km_s"].as_f64().unwrap()),
                format!("{:.3}", r["ub_s"].as_f64().unwrap()),
                format!("{:.3}", r["ppi_completion"].as_f64().unwrap()),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "workers",
            "tasks",
            "train (s)",
            "PPI (s)",
            "KM (s)",
            "UB (s)",
            "PPI completion",
        ],
        &table,
    );
    save_json(&out_dir().join("scaling.json"), "scaling_runtime", &rows).expect("write rows");
}

//! One engine shard: a city/workload's worth of assignment state behind
//! a bounded submission queue.
//!
//! A shard is the unit of parallelism in the serve host — shards share
//! nothing, so the host can step any subset of them concurrently. Each
//! shard owns its workload, its trained predictors, an incremental
//! [`EngineState`], and the per-worker report logs that stand in for
//! the ground-truth routines the one-shot engine reads directly: the
//! engine only ever sees reports that made it through the queue.
//!
//! ## Overload policies
//!
//! What happens when a window's event burst exceeds the queue bound is
//! an explicit, per-shard choice ([`OverloadPolicy`]), not an accident
//! of the queue:
//!
//! * [`OverloadPolicy::Shed`] — refuse and count (`shed_*`). Cheapest;
//!   lost reports silently stale the affected workers' views.
//! * [`OverloadPolicy::DegradeToFallback`] — drop overflow like `Shed`
//!   but *admit the fact of overload into the engine*: the next stepped
//!   window runs with persistence-fallback views (the PR 1 degradation
//!   ladder) instead of trusting model rollouts built on incomplete
//!   observations. Overflow tasks additionally evict the newest queued
//!   report to claim its slot — tasks are revenue, reports are
//!   recoverable. Dropped events are counted `degraded_*`.
//! * [`OverloadPolicy::Backpressure`] — park refused events in a retry
//!   buffer and re-offer them *before* the next window's new events
//!   (one-window backoff, FIFO — re-offering later or out of order
//!   would scramble per-worker report order). After `retry_limit`
//!   failed attempts an event is shed; leftovers at end of run are
//!   flushed to shed so accounting always closes.
//!
//! Under every policy the invariant `offered == submitted + shed +
//! degraded` holds exactly (retries count the event once, at its final
//! disposition).
//!
//! ## Crash safety
//!
//! [`Shard::snapshot`] serializes everything the continuation depends
//! on; [`Shard::restore`] resumes mid-replay, byte-identical to an
//! uninterrupted run. The `shard_crash` fault
//! ([`tamp_platform::faults::FaultConfig::shard_crash`]) kills and
//! restores the shard through that exact JSON path after stepping a
//! window, which is how the property tests exercise crash recovery
//! under load. [`Shard::swap_predictors`] hot-swaps a re-adapted
//! predictor set between windows, evicting only changed workers'
//! cache entries (per-worker model versions).

use crate::event::{EventStream, ShardEvent};
use crate::queue::BoundedQueue;
use crate::snapshot::{ShardSnapshot, SHARD_SNAPSHOT_FORMAT, SHARD_SNAPSHOT_VERSION};
use serde::{Deserialize, Serialize};
use tamp_core::{EngineError, SpatialTask, TimedPoint};
use tamp_obs::Obs;
use tamp_platform::engine::{AssignmentAlgo, EngineConfig, EngineState, StepCtx};
use tamp_platform::faults::{FaultConfig, FaultInjector, FaultPlan};
use tamp_platform::metrics::BatchRecord;
use tamp_platform::predcache::CacheStats;
use tamp_platform::training::TrainedPredictors;
use tamp_sim::Workload;

/// What a shard does with submissions its bounded queue refuses (see
/// the module docs for the ladder).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Refuse and count; nothing else changes.
    #[default]
    Shed,
    /// Drop overflow but run the next window on persistence-fallback
    /// views (don't trust rollouts built on incomplete observations);
    /// overflow tasks evict the newest queued report.
    DegradeToFallback,
    /// Park refused events and re-offer them next window, up to
    /// `retry_limit` attempts each, then shed.
    Backpressure {
        /// Failed offer attempts before an event is shed.
        retry_limit: u32,
    },
}

/// A refused event parked by [`OverloadPolicy::Backpressure`], with the
/// offer attempts it has burned so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryEntry {
    /// The parked event.
    pub ev: ShardEvent,
    /// Offer attempts so far (≥ 1; incremented per refusal).
    pub attempts: u32,
}

/// Per-shard serving configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Assignment algorithm the shard runs each window.
    pub algo: AssignmentAlgo,
    /// Engine knobs (batch cadence, PPI parameters, prediction cache…).
    pub engine: EngineConfig,
    /// Optional fault injection (the PR 1 ladder plus `shard_crash`)
    /// for resilience drills.
    pub faults: Option<FaultConfig>,
    /// Submission-queue capacity; bursts beyond it hit the overload
    /// policy (counted, never silent — see [`crate::queue`]).
    pub queue_capacity: usize,
    /// What to do with submissions the queue refuses.
    pub overload: OverloadPolicy,
    /// Artificial per-window sleep inside the timed step section,
    /// milliseconds — a seeded latency regression for SLO-gate drills
    /// (`serve --perturb-sleep-ms`; 0 disables).
    pub perturb_step_sleep_ms: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            algo: AssignmentAlgo::Ppi,
            engine: EngineConfig {
                // Serving is exactly the setting the cross-batch cache
                // exists for; one-shot experiment runs leave it off.
                prediction_cache: true,
                ..EngineConfig::default()
            },
            faults: None,
            queue_capacity: 4096,
            overload: OverloadPolicy::Shed,
            perturb_step_sleep_ms: 0.0,
        }
    }
}

/// Cumulative submission accounting for one shard, split by event kind
/// and disposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmissionCounts {
    /// Task events accepted into the queue.
    pub submitted_tasks: usize,
    /// Report events accepted into the queue.
    pub submitted_reports: usize,
    /// Task events refused by a full queue and dropped outright.
    pub shed_tasks: usize,
    /// Report events refused by a full queue and dropped outright.
    pub shed_reports: usize,
    /// Task events dropped by the `DegradeToFallback` policy (queue
    /// still full after evicting a report).
    #[serde(default)]
    pub degraded_tasks: usize,
    /// Report events dropped by the `DegradeToFallback` policy
    /// (overflow, or evicted from the queue in favor of a task).
    #[serde(default)]
    pub degraded_reports: usize,
    /// Successful re-offers by the `Backpressure` policy (not part of
    /// `offered` — a retried event is already counted there once).
    #[serde(default)]
    pub retried: usize,
}

impl SubmissionCounts {
    /// Every distinct event offered to the queue, whatever its final
    /// disposition. Exactly `submitted + shed + degraded`.
    pub fn offered(&self) -> usize {
        self.submitted_tasks
            + self.submitted_reports
            + self.shed_tasks
            + self.shed_reports
            + self.degraded_tasks
            + self.degraded_reports
    }

    /// Everything dropped outright.
    pub fn shed(&self) -> usize {
        self.shed_tasks + self.shed_reports
    }

    /// Everything dropped by the degrade policy (counted separately
    /// from `shed` because the engine was told about the loss).
    pub fn degraded(&self) -> usize {
        self.degraded_tasks + self.degraded_reports
    }
}

/// The result of a predictor hot-swap ([`Shard::swap_predictors`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapOutcome {
    /// Workers whose model actually changed (version bumped).
    pub changed: usize,
    /// Live cache entries evicted by those bumps (≤ `changed`; workers
    /// without a cached rollout bump without evicting).
    pub evicted: usize,
}

/// One engine shard (see the module docs).
pub struct Shard {
    name: String,
    workload: Workload,
    predictors: Option<TrainedPredictors>,
    cfg: ShardConfig,
    fplan: Option<FaultPlan>,
    /// Draws the deterministic `shard_crash` schedule; present only
    /// when that fault is configured.
    crash_injector: Option<FaultInjector>,
    state: EngineState,
    queue: BoundedQueue<ShardEvent>,
    stream: EventStream,
    /// Per-worker location reports received so far (the engine's
    /// observation source on the serve path).
    logs: Vec<Vec<TimedPoint>>,
    counts: SubmissionCounts,
    /// Backpressure retry buffer, re-offered before next window's new
    /// events.
    retries: Vec<RetryEntry>,
    /// Set by the degrade policy when overflow occurred; consumed by
    /// the next stepped window.
    degrade_pending: bool,
    /// Crash/restore cycles survived.
    crashes: u64,
    trace: Vec<BatchRecord>,
    step_seconds: Vec<f64>,
}

impl Shard {
    /// Builds a shard around `workload`, validating the engine and
    /// fault configuration exactly like the one-shot entry points.
    pub fn new(
        name: impl Into<String>,
        workload: Workload,
        predictors: Option<TrainedPredictors>,
        cfg: ShardConfig,
    ) -> Result<Self, EngineError> {
        if let Some(fc) = &cfg.faults {
            fc.validate().map_err(EngineError::InvalidEngineConfig)?;
        }
        let state = EngineState::new(&workload, predictors.as_ref(), cfg.algo, &cfg.engine)?;
        // A plan replaces the engine's observation source, so build one
        // only for engine-level faults: a crash-only configuration must
        // read the report logs like a clean run.
        let fplan = cfg
            .faults
            .as_ref()
            .filter(|fc| fc.has_engine_faults())
            .map(|fc| FaultPlan::build(&workload, fc));
        let crash_injector = cfg
            .faults
            .filter(|fc| fc.shard_crash > 0.0)
            .map(FaultInjector::new);
        let stream = EventStream::from_workload(&workload);
        let queue = BoundedQueue::new(cfg.queue_capacity);
        let logs = vec![Vec::new(); workload.workers.len()];
        Ok(Self {
            name: name.into(),
            workload,
            predictors,
            cfg,
            fplan,
            crash_injector,
            state,
            queue,
            stream,
            logs,
            counts: SubmissionCounts::default(),
            retries: Vec::new(),
            degrade_pending: false,
            crashes: 0,
            trace: Vec::new(),
            step_seconds: Vec::new(),
        })
    }

    /// Shard name (for telemetry and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the shard's simulated day is over.
    pub fn done(&self) -> bool {
        self.state.now() >= self.workload.horizon.as_f64()
    }

    /// End of the next batch window, minutes.
    pub fn next_window_end(&self) -> f64 {
        self.state.next_window_end(&self.cfg.engine)
    }

    /// Batch window length, minutes (for pacing).
    pub fn window_min(&self) -> f64 {
        self.cfg.engine.batch_window_min
    }

    /// Feeds the next window's worth of events into the submission
    /// queue: first the backpressure retry buffer (in original order),
    /// then the replay stream — so a retried report still precedes that
    /// worker's later reports and per-worker log order is preserved.
    /// Refusals go through the shard's [`OverloadPolicy`].
    pub fn feed_window(&mut self) {
        let end = self.state.next_window_end(&self.cfg.engine);
        let retries = std::mem::take(&mut self.retries);
        for r in retries {
            self.offer(r.ev, r.attempts);
        }
        let evs = self.stream.take_until(end).to_vec();
        for ev in evs {
            self.offer(ev, 0);
        }
    }

    /// Offers one event to the queue; `attempts` is how many prior
    /// offers it has burned (0 for fresh events).
    fn offer(&mut self, ev: ShardEvent, attempts: u32) {
        let is_task = matches!(ev, ShardEvent::Task(_));
        match self.queue.try_push(ev) {
            Ok(()) => {
                if attempts > 0 {
                    self.counts.retried += 1;
                }
                if is_task {
                    self.counts.submitted_tasks += 1;
                } else {
                    self.counts.submitted_reports += 1;
                }
            }
            Err(ev) => self.refuse(ev, is_task, attempts),
        }
    }

    /// Applies the overload policy to one refused event.
    fn refuse(&mut self, ev: ShardEvent, is_task: bool, attempts: u32) {
        match self.cfg.overload {
            OverloadPolicy::Shed => self.shed_one(is_task),
            OverloadPolicy::DegradeToFallback => {
                // Overload observed: don't trust the next window's
                // rollouts, whatever happens to this event.
                self.degrade_pending = true;
                if is_task {
                    // Tasks outrank reports: reclaim the newest queued
                    // report's slot if there is one.
                    let evicted = self
                        .queue
                        .evict_last_matching(|e| matches!(e, ShardEvent::Report { .. }))
                        .is_some();
                    if evicted {
                        self.counts.submitted_reports -= 1;
                        self.counts.degraded_reports += 1;
                    }
                    if evicted && self.queue.try_push(ev).is_ok() {
                        self.counts.submitted_tasks += 1;
                    } else {
                        self.counts.degraded_tasks += 1;
                    }
                } else {
                    self.counts.degraded_reports += 1;
                }
            }
            OverloadPolicy::Backpressure { retry_limit } => {
                let attempts = attempts + 1;
                if attempts > retry_limit {
                    self.shed_one(is_task);
                } else {
                    self.retries.push(RetryEntry { ev, attempts });
                }
            }
        }
    }

    fn shed_one(&mut self, is_task: bool) {
        if is_task {
            self.counts.shed_tasks += 1;
        } else {
            self.counts.shed_reports += 1;
        }
    }

    /// Drains the queued events belonging to the next window and steps
    /// the engine one batch; a degrade-flagged window runs on
    /// persistence-fallback views. If the deterministic `shard_crash`
    /// schedule fires for this window, the shard then kills and
    /// restores itself through the JSON snapshot path. Returns the
    /// batch record (also kept in the shard's trace).
    pub fn step_window(&mut self, obs: &Obs) -> BatchRecord {
        let window_idx = self.state.batches_run();
        let end = self.state.next_window_end(&self.cfg.engine);
        let mut admitted: Vec<SpatialTask> = Vec::new();
        while let Some(ev) = self.queue.pop_if(|ev| ev.time() < end) {
            match ev {
                ShardEvent::Task(task) => admitted.push(task),
                ShardEvent::Report { worker, point } => {
                    if let Some(log) = self.logs.get_mut(worker) {
                        log.push(point);
                    }
                }
            }
        }
        let degrade = std::mem::take(&mut self.degrade_pending);
        let started = std::time::Instant::now();
        if self.cfg.perturb_step_sleep_ms > 0.0 {
            // Inside the timed section on purpose: the regression must
            // show up in `step_seconds` and every latency SLO above it.
            std::thread::sleep(std::time::Duration::from_secs_f64(
                self.cfg.perturb_step_sleep_ms / 1e3,
            ));
        }
        let ctx = StepCtx {
            workload: &self.workload,
            predictors: self.predictors.as_ref(),
            algo: self.cfg.algo,
            cfg: &self.cfg.engine,
            fplan: self.fplan.as_ref(),
            // Under fault injection the received streams are defined by
            // the plan; the report log is the clean-path source.
            reports: Some(&self.logs),
            degrade,
            obs,
        };
        let record = self.state.step_batch(&ctx, &admitted);
        self.step_seconds.push(started.elapsed().as_secs_f64());
        self.trace.push(record);
        if self.crash_due(window_idx) {
            self.crash_restore_in_place()
                .expect("restoring a shard from its own snapshot cannot fail");
        }
        record
    }

    /// Whether the seeded crash schedule kills the shard after window
    /// `window_idx`. A pure function of `(faults, engine seed,
    /// window_idx)`, so a restored shard reproduces the remaining
    /// schedule exactly.
    fn crash_due(&self, window_idx: u64) -> bool {
        self.crash_injector
            .as_ref()
            .is_some_and(|inj| inj.shard_crash(self.cfg.engine.seed, window_idx))
    }

    /// Serializes everything the continuation of this shard depends on
    /// (see [`crate::snapshot`]). Live online-adapted models are stored
    /// delta-compressed against the shard's predictors
    /// ([`EngineState::snapshot_with`]); [`Shard::restore`] must be
    /// given the same predictor set, which every caller here already
    /// guarantees (restore takes the predictors alongside the snapshot).
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            format: SHARD_SNAPSHOT_FORMAT.to_string(),
            version: SHARD_SNAPSHOT_VERSION,
            name: self.name.clone(),
            stream_taken: self.stream.position(),
            queued: self.queue.to_vec(),
            logs: self.logs.clone(),
            counts: self.counts,
            retries: self.retries.clone(),
            degrade_pending: self.degrade_pending,
            crashes: self.crashes,
            step_seconds: self.step_seconds.clone(),
            trace: self.trace.clone(),
            engine: self.state.snapshot_with(self.predictors.as_ref()),
        }
    }

    /// Rebuilds a shard mid-replay from a snapshot taken over the same
    /// workload, predictors, and configuration. The continuation is
    /// byte-identical to the run the snapshot was taken from.
    pub fn restore(
        workload: Workload,
        predictors: Option<TrainedPredictors>,
        cfg: ShardConfig,
        snap: ShardSnapshot,
    ) -> Result<Self, EngineError> {
        if snap.format != SHARD_SNAPSHOT_FORMAT {
            return Err(EngineError::InvalidEngineConfig(format!(
                "snapshot format {:?} (expected {SHARD_SNAPSHOT_FORMAT:?})",
                snap.format
            )));
        }
        if snap.version != SHARD_SNAPSHOT_VERSION {
            return Err(EngineError::InvalidEngineConfig(format!(
                "shard snapshot version {} (expected {SHARD_SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        if let Some(fc) = &cfg.faults {
            fc.validate().map_err(EngineError::InvalidEngineConfig)?;
        }
        if snap.logs.len() != workload.workers.len() {
            return Err(EngineError::InvalidEngineConfig(format!(
                "snapshot logs cover {} workers, workload has {}",
                snap.logs.len(),
                workload.workers.len()
            )));
        }
        let state = EngineState::restore(
            &workload,
            predictors.as_ref(),
            cfg.algo,
            &cfg.engine,
            snap.engine,
        )?;
        let fplan = cfg
            .faults
            .as_ref()
            .filter(|fc| fc.has_engine_faults())
            .map(|fc| FaultPlan::build(&workload, fc));
        let crash_injector = cfg
            .faults
            .filter(|fc| fc.shard_crash > 0.0)
            .map(FaultInjector::new);
        let mut stream = EventStream::from_workload(&workload);
        if !stream.seek(snap.stream_taken) {
            return Err(EngineError::InvalidEngineConfig(format!(
                "snapshot stream cursor {} exceeds the replay stream ({} events)",
                snap.stream_taken,
                stream.total()
            )));
        }
        let queue = BoundedQueue::new(cfg.queue_capacity);
        if snap.queued.len() > queue.capacity() {
            return Err(EngineError::InvalidEngineConfig(format!(
                "snapshot holds {} queued events, queue capacity is {}",
                snap.queued.len(),
                queue.capacity()
            )));
        }
        for ev in snap.queued {
            queue
                .try_push(ev)
                .map_err(|_| EngineError::InvalidEngineConfig("queue refill overflow".into()))?;
        }
        Ok(Self {
            name: snap.name,
            workload,
            predictors,
            cfg,
            fplan,
            crash_injector,
            state,
            queue,
            stream,
            logs: snap.logs,
            counts: snap.counts,
            retries: snap.retries,
            degrade_pending: snap.degrade_pending,
            crashes: snap.crashes,
            trace: snap.trace,
            step_seconds: snap.step_seconds,
        })
    }

    /// Kills this shard and restores it from its own snapshot through
    /// the full JSON serialization path — exactly what a process
    /// kill/restore does, which is what makes the `shard_crash` fault a
    /// real test of the snapshot format.
    pub fn crash_restore_in_place(&mut self) -> Result<(), EngineError> {
        let json = self.snapshot().to_json();
        let snap = ShardSnapshot::from_json(&json).map_err(EngineError::InvalidEngineConfig)?;
        let restored = Self::restore(
            self.workload.clone(),
            self.predictors.clone(),
            self.cfg.clone(),
            snap,
        )?;
        let crashes = self.crashes + 1;
        *self = restored;
        self.crashes = crashes;
        Ok(())
    }

    /// Hot-swaps a re-adapted predictor set between windows. Workers
    /// whose model actually changed get their live model replaced, any
    /// quarantine lifted, and their cache version bumped — everyone
    /// else's cached rollouts stay warm (the point of per-worker
    /// versioning; a blanket invalidation would cold-start the whole
    /// shard). Must be called between windows, not mid-step.
    pub fn swap_predictors(&mut self, new: TrainedPredictors) -> Result<SwapOutcome, EngineError> {
        let Some(old) = self.predictors.as_ref() else {
            return Err(EngineError::InvalidEngineConfig(
                "predictor hot-swap on a shard running without predictors".into(),
            ));
        };
        if new.models.len() != old.models.len() {
            return Err(EngineError::InvalidEngineConfig(format!(
                "hot-swap predictor count {} != shard's {}",
                new.models.len(),
                old.models.len()
            )));
        }
        let mut outcome = SwapOutcome::default();
        for wi in 0..new.models.len() {
            let model_changed = new.models[wi] != old.models[wi];
            let mr_changed = match (new.mrs.get(wi), old.mrs.get(wi)) {
                (Some(a), Some(b)) => a.to_bits() != b.to_bits(),
                (a, b) => a.is_some() != b.is_some(),
            };
            if model_changed || mr_changed {
                outcome.changed += 1;
                if self.state.install_model(wi, &new.models[wi]) {
                    outcome.evicted += 1;
                }
            }
        }
        self.predictors = Some(new);
        Ok(outcome)
    }

    /// Stops the submission queue from accepting events (graceful
    /// shutdown); queued events still drain into windows.
    pub fn close_queue(&self) {
        self.queue.close();
    }

    /// Cumulative submission accounting.
    pub fn counts(&self) -> SubmissionCounts {
        self.counts
    }

    /// Crash/restore cycles this shard has survived.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Backpressure events currently parked for retry.
    pub fn retry_len(&self) -> usize {
        self.retries.len()
    }

    /// Events still queued (not yet drained into a window).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Replay events not yet offered to the queue.
    pub fn unfed(&self) -> usize {
        self.stream.remaining()
    }

    /// Total events in the shard's replay stream.
    pub fn stream_total(&self) -> usize {
        self.stream.total()
    }

    /// Tasks admitted and still live inside the engine.
    pub fn pending_len(&self) -> usize {
        self.state.pending_len()
    }

    /// `(resident payload bytes, workers with a non-empty delta)` of the
    /// engine's batched-rollout weight store — the
    /// `serve.delta.{bytes,workers}` gauge source. `None` until a
    /// batched window (`engine.rollout_batch > 1`) has built the store.
    pub fn rollout_store_stats(&self) -> Option<(usize, usize)> {
        self.state.rollout_store_stats()
    }

    /// Batch windows stepped so far.
    pub fn windows_run(&self) -> u64 {
        self.state.batches_run()
    }

    /// Prediction-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache_stats()
    }

    /// The engine metrics accumulated so far (in-progress view).
    pub fn metrics(&self) -> &tamp_platform::metrics::AssignmentMetrics {
        self.state.metrics()
    }

    /// Per-window wall-clock step latencies, seconds.
    pub fn step_seconds(&self) -> &[f64] {
        &self.step_seconds
    }

    /// Per-window batch records collected so far.
    pub fn trace(&self) -> &[BatchRecord] {
        &self.trace
    }

    /// Consumes the shard, finishing the engine run (flushes `obs`) and
    /// returning the final metrics plus the collected trace. Events
    /// still parked for retry are flushed to shed first so the
    /// accounting invariant closes.
    pub fn finish(
        mut self,
        obs: &Obs,
    ) -> (
        tamp_platform::metrics::AssignmentMetrics,
        Vec<BatchRecord>,
        SubmissionCounts,
    ) {
        for r in std::mem::take(&mut self.retries) {
            self.shed_one(matches!(r.ev, ShardEvent::Task(_)));
        }
        (self.state.finish(obs), self.trace, self.counts)
    }
}

//! Regenerates **Fig. 11** of the paper: effect of task valid time (workload 2).

use tamp_bench::{
    default_engine, default_training, out_dir, print_assignment, scale_from_env, seed_from_env,
};
use tamp_platform::experiments::{save_json, valid_time_sweep, SweepConfig};
use tamp_sim::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "# Fig. 11: effect of task valid time (workload 2, {} workers, seed {seed})",
        scale.n_workers
    );
    let cfg = SweepConfig {
        kind: WorkloadKind::GowallaFoursquare,
        scale,
        seed,
        training: default_training(seed),
        engine: default_engine(seed),
    };
    let rows = valid_time_sweep(&cfg, &[1.0, 2.0, 3.0, 4.0, 5.0]);
    print_assignment(&rows);
    save_json(
        &out_dir().join("fig11.json"),
        "fig11_valid_time_sweep_workload2",
        &rows,
    )
    .expect("write rows");
}

//! Minimal SVG line charts for the figure experiments.
//!
//! The workspace has no plotting dependency, so this module hand-writes
//! the small subset of SVG needed to turn `results/figN.json` into the
//! paper's four-panel figures (completion / rejection / cost / runtime
//! vs the swept parameter). See the `render_charts` binary.

use std::fmt::Write as _;

/// One line of a chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, assumed sorted by `x`.
    pub points: Vec<(f64, f64)>,
}

/// Ten-class colour palette (Okabe–Ito-ish, readable on white).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000", "#999999",
];

const W: f64 = 560.0;
const H: f64 = 360.0;
const ML: f64 = 64.0; // margins
const MR: f64 = 150.0;
const MT: f64 = 40.0;
const MB: f64 = 48.0;

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo || !hi.is_finite() || !lo.is_finite() {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| span / s <= n as f64)
        .unwrap_or(mag * 10.0);
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Renders a single line chart as an SVG document.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let (x_lo, x_hi) = bounds(&xs);
    let (mut y_lo, mut y_hi) = bounds(&ys);
    if (y_hi - y_lo).abs() < 1e-12 {
        y_lo -= 0.5;
        y_hi += 0.5;
    } else {
        let pad = 0.06 * (y_hi - y_lo);
        y_lo -= pad;
        y_hi += pad;
    }
    let plot_w = W - ML - MR;
    let plot_h = H - MT - MB;
    let px = |x: f64| ML + (x - x_lo) / (x_hi - x_lo).max(1e-12) * plot_w;
    let py = |y: f64| MT + plot_h - (y - y_lo) / (y_hi - y_lo).max(1e-12) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    );
    let _ = write!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
        ML + plot_w / 2.0,
        escape(title)
    );

    // Axes and grid.
    for t in nice_ticks(y_lo, y_hi, 5) {
        let y = py(t);
        let _ = write!(
            svg,
            r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#e0e0e0"/>"##,
            ML + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            ML - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for t in nice_ticks(x_lo, x_hi, 6) {
        let x = px(t);
        let _ = write!(
            svg,
            r##"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="#f0f0f0"/>"##,
            MT + plot_h
        );
        let _ = write!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MT + plot_h + 16.0,
            fmt_tick(t)
        );
    }
    let _ = write!(
        svg,
        r##"<rect x="{ML}" y="{MT}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#606060"/>"##
    );
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
        ML + plot_w / 2.0,
        H - 10.0,
        escape(x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MT + plot_h / 2.0,
        MT + plot_h / 2.0,
        escape(y_label)
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        // Legend entry.
        let ly = MT + 14.0 + i as f64 * 18.0;
        let lx = ML + plot_w + 10.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            escape(&s.name)
        );
    }
    svg.push_str("</svg>");
    svg
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() && hi.is_finite() {
        (lo, hi)
    } else {
        (0.0, 1.0)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                name: "PPI".into(),
                points: vec![(2.0, 0.4), (4.0, 0.5), (6.0, 0.55)],
            },
            Series {
                name: "KM".into(),
                points: vec![(2.0, 0.38), (4.0, 0.47), (6.0, 0.52)],
            },
        ]
    }

    #[test]
    fn chart_contains_all_structural_elements() {
        let svg = line_chart("Completion vs d", "detour (km)", "completion", &sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("Completion vs d"));
        assert!(svg.contains("PPI"));
        assert!(svg.contains("KM"));
        assert!(svg.contains("detour (km)"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = line_chart("a<b & c>d", "x", "y", &sample());
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn degenerate_series_do_not_panic() {
        let flat = vec![Series {
            name: "flat".into(),
            points: vec![(1.0, 0.5), (2.0, 0.5)],
        }];
        let svg = line_chart("flat", "x", "y", &flat);
        assert!(svg.contains("<polyline"));
        let single = vec![Series {
            name: "one".into(),
            points: vec![(1.0, 1.0)],
        }];
        let svg = line_chart("one", "x", "y", &single);
        assert!(svg.contains("<circle"));
        let empty: Vec<Series> = vec![];
        let svg = line_chart("none", "x", "y", &empty);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn nice_ticks_cover_the_range() {
        let t = nice_ticks(0.0, 1.0, 5);
        assert!(t.first().copied().unwrap() >= 0.0);
        assert!(t.last().copied().unwrap() <= 1.0 + 1e-9);
        assert!(t.len() >= 3);
        assert_eq!(nice_ticks(2.0, 2.0, 5), vec![2.0]);
    }
}

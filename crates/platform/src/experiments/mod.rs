//! Experiment drivers regenerating the paper's tables and figures.
//!
//! Each driver is a pure function from a configuration to typed rows, so
//! the `tamp-bench` binaries stay thin and integration tests can exercise
//! the full pipelines at tiny scale.
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Table IV / VI (clustering ablation) | [`prediction::clustering_ablation`] |
//! | Table V / VII (`seq_in`/`seq_out` sweep) | [`prediction::seq_sweep`] |
//! | Fig. 6 / 9 (worker detour `d`) | [`assignment::detour_sweep`] |
//! | Fig. 7 / 10 (number of tasks) | [`assignment::task_count_sweep`] |
//! | Fig. 8 / 11 (task valid time) | [`assignment::valid_time_sweep`] |
//! | Robustness (fault injection, ours) | [`robustness::robustness_sweep`] |

pub mod assignment;
pub mod prediction;
pub mod report;
pub mod robustness;

pub use assignment::{
    detour_sweep, task_count_sweep, valid_time_sweep, AssignmentRow, SweepConfig,
};
pub use prediction::{clustering_ablation, seq_sweep, AblationRow, SeqRow};
pub use report::{print_markdown_table, save_json};
pub use robustness::{robustness_sweep, RobustnessRow};

//! Kernel backend selection for the forward/rollout GEMMs.
//!
//! The crate's default arithmetic contract is *bitwise determinism*: every
//! fused or batched kernel accumulates each output element in exactly the
//! order of the straightforward per-row loop, so training, tests, and the
//! serve equivalence gates can compare runs with `==` on the bits. The
//! [`KernelBackend::Batched`] backend relaxes that contract on the
//! *forward/rollout path only*: it re-associates the reduction into
//! FMA-friendly column blocks (see
//! [`matmul_colmajor_relaxed_into`](crate::matrix::matmul_colmajor_relaxed_into)),
//! trading bit-identity for throughput. Its outputs agree with the scalar
//! backend to within a small relative tolerance (property-tested in
//! [`crate::batch`]), which is why it is opt-in and serving-only:
//! training and every tier-1 test stay on [`KernelBackend::Scalar`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which arithmetic the batched rollout kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum KernelBackend {
    /// Bit-identical to the serial per-worker kernels (the default, and
    /// the only backend training ever uses).
    #[default]
    Scalar,
    /// Re-associated column-blocked loops: faster, tolerance-gated, for
    /// serving only.
    Batched,
}

impl KernelBackend {
    /// Whether this backend guarantees bitwise equality with the serial
    /// per-worker rollout.
    pub fn is_bitwise(self) -> bool {
        matches!(self, KernelBackend::Scalar)
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelBackend::Scalar => f.write_str("scalar"),
            KernelBackend::Batched => f.write_str("batched"),
        }
    }
}

impl FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelBackend::Scalar),
            "batched" | "batch" | "vectorized" | "vec" => Ok(KernelBackend::Batched),
            other => Err(format!(
                "unknown kernel backend {other:?} (expected scalar|batched)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for b in [KernelBackend::Scalar, KernelBackend::Batched] {
            assert_eq!(b.to_string().parse::<KernelBackend>().unwrap(), b);
        }
        for alias in ["batch", "vec", "vectorized"] {
            assert_eq!(
                alias.parse::<KernelBackend>().unwrap(),
                KernelBackend::Batched
            );
        }
        assert!("simd".parse::<KernelBackend>().is_err());
    }

    #[test]
    fn default_is_scalar_and_bitwise() {
        assert_eq!(KernelBackend::default(), KernelBackend::Scalar);
        assert!(KernelBackend::Scalar.is_bitwise());
        assert!(!KernelBackend::Batched.is_bitwise());
    }
}

//! Behavioural contract between the matching backends: the sparse
//! forward-auction solver must match the exact Hungarian oracle on
//! cardinality exactly and on weight within the ε-bound, on
//! component-structured random graphs up to ~5k vertices — and its
//! warm-started solves must be byte-identical to cold ones across
//! consecutive perturbed windows (while doing measurably less bidding
//! work).

use rand::Rng;
use tamp_assign::auction::AuctionSolver;
use tamp_assign::hungarian::{matching_weight, WeightedEdge};
use tamp_assign::solver::{
    solve_matching, solve_matching_keyed, ExactKmSolver, MatchingSolver, VertexKeys,
};
use tamp_core::rng::rng_for;

/// A random bipartite graph made of disjoint blocks (each block a dense-ish
/// random sub-graph), so the instance decomposes into many components the
/// way real assignment batches do. Returns `(n_left, n_right, edges)`.
fn component_structured(
    rng: &mut impl Rng,
    blocks: usize,
    min_block: usize,
    max_block_left: usize,
    max_block_right: usize,
    edge_prob: f64,
) -> (usize, usize, Vec<WeightedEdge>) {
    let mut edges = Vec::new();
    let (mut l0, mut r0) = (0usize, 0usize);
    for _ in 0..blocks {
        let ln = rng.gen_range(min_block..=max_block_left);
        let rn = rng.gen_range(min_block..=max_block_right);
        for l in 0..ln {
            for r in 0..rn {
                if rng.gen_bool(edge_prob) {
                    edges.push(WeightedEdge::new(l0 + l, r0 + r, rng.gen_range(0.0..10.0)));
                }
            }
        }
        l0 += ln;
        r0 += rn;
    }
    (l0.max(1), r0.max(1), edges)
}

fn exact(n_left: usize, n_right: usize, edges: &[WeightedEdge]) -> Vec<(usize, usize)> {
    let mut solver = ExactKmSolver::default();
    solve_matching(&mut solver, n_left, n_right, edges)
}

fn auction(n_left: usize, n_right: usize, edges: &[WeightedEdge]) -> Vec<(usize, usize)> {
    let mut solver = AuctionSolver::new();
    let m = solve_matching(&mut solver, n_left, n_right, edges);
    assert_eq!(
        solver.stats().abandoned,
        0,
        "auction must never abandon a solve"
    );
    m
}

/// Cardinality equal to the oracle, weight within the ε-bound. The bound
/// is `n·ε_final·span` with `ε_final ≤ 1e-9`·span-units, so a flat 1e-3
/// absolute tolerance is generous; the auction also can never exceed the
/// optimum (beyond fp noise).
fn assert_equivalent(n_left: usize, n_right: usize, edges: &[WeightedEdge], ctx: &str) {
    let ex = exact(n_left, n_right, edges);
    let au = auction(n_left, n_right, edges);
    assert_eq!(
        au.len(),
        ex.len(),
        "{ctx}: cardinality must match the oracle"
    );
    if ex.is_empty() {
        return;
    }
    let wex = matching_weight(edges, &ex);
    let wau = matching_weight(edges, &au);
    assert!(
        wau >= wex - 1e-3,
        "{ctx}: auction weight {wau} below ε-bound of exact {wex}"
    );
    assert!(
        wau <= wex + 1e-6,
        "{ctx}: auction weight {wau} exceeds exact optimum {wex}"
    );
}

#[test]
fn auction_matches_exact_on_small_random_graphs() {
    let mut rng = rng_for(113, 0);
    for round in 0..40 {
        let blocks = rng.gen_range(1..=6);
        let (nl, nr, edges) = component_structured(&mut rng, blocks, 1, 12, 12, 0.5);
        assert_equivalent(nl, nr, &edges, &format!("round {round}"));
    }
}

#[test]
fn auction_matches_exact_on_medium_component_graphs() {
    let mut rng = rng_for(114, 0);
    for round in 0..6 {
        let (nl, nr, edges) = component_structured(&mut rng, 8, 1, 60, 70, 0.2);
        assert_equivalent(nl, nr, &edges, &format!("round {round}"));
    }
}

#[test]
fn auction_matches_exact_at_five_thousand_vertices() {
    // ~30 blocks of ≤ 90+90 vertices ≈ 5k vertices total; exact still
    // runs per component, the auction must agree block for block.
    let mut rng = rng_for(115, 0);
    let (nl, nr, edges) = component_structured(&mut rng, 30, 60, 90, 90, 0.12);
    assert!(nl + nr > 3_000, "instance too small: {}", nl + nr);
    assert_equivalent(nl, nr, &edges, "5k-vertex instance");
}

#[test]
fn auction_handles_skew_and_parallel_edges() {
    let mut rng = rng_for(116, 0);
    for round in 0..10 {
        // Strong left/right skew plus duplicated (l, r) pairs with
        // different weights (the solver must keep the best parallel edge).
        let (nl, nr, mut edges) = component_structured(&mut rng, 3, 1, 25, 4, 0.6);
        let mut extra: Vec<WeightedEdge> = Vec::new();
        for e in &edges {
            if rng.gen_bool(0.3) {
                extra.push(WeightedEdge::new(e.left, e.right, rng.gen_range(0.0..10.0)));
            }
        }
        edges.extend(extra);
        assert_equivalent(nl, nr, &edges, &format!("skew round {round}"));
    }
}

#[test]
fn warm_start_is_byte_identical_to_cold_across_perturbed_windows() {
    // A fixed fleet (stable vertex keys) re-solved over consecutive
    // windows whose weights drift slightly — the serving pattern the
    // warm cache exists for. For every window the warm solver must
    // produce the byte-identical matching a cold solver produces, while
    // spending measurably fewer bids once the cache is hot.
    let mut rng = rng_for(117, 0);
    let (nl, nr) = (60, 60);
    let left_keys: Vec<u64> = (0..nl as u64).map(|i| 1_000 + i).collect();
    let right_keys: Vec<u64> = (0..nr as u64).map(|j| 9_000 + j).collect();
    let keys = VertexKeys {
        left: &left_keys,
        right: &right_keys,
    };
    let mut weights: Vec<Vec<f64>> = (0..nl)
        .map(|_| (0..nr).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect();

    let mut warm = AuctionSolver::with_warm_start();
    let mut warm_bids_after_first = 0u64;
    let mut cold_bids_after_first = 0u64;
    for window in 0..6 {
        // Perturb ~all weights a little (assignments barely change
        // window to window — the warm-start premise).
        for row in weights.iter_mut() {
            for w in row.iter_mut() {
                *w = (*w + rng.gen_range(-0.05..0.05)).clamp(0.0, 10.0);
            }
        }
        let edges: Vec<WeightedEdge> = (0..nl)
            .flat_map(|l| {
                let row = &weights[l];
                (0..nr).map(move |r| WeightedEdge::new(l, r, row[r]))
            })
            .collect();

        let mut cold = AuctionSolver::new();
        let cold_m = solve_matching_keyed(&mut cold, nl, nr, &edges, &keys);
        let warm_m = solve_matching_keyed(&mut warm, nl, nr, &edges, &keys);
        assert_eq!(
            warm_m, cold_m,
            "window {window}: warm and cold matchings must be byte-identical"
        );
        // And both agree with the oracle.
        let ex = exact(nl, nr, &edges);
        assert_eq!(warm_m.len(), ex.len(), "window {window}: cardinality");
        let wex = matching_weight(&edges, &ex);
        let wau = matching_weight(&edges, &warm_m);
        assert!((wex - wau).abs() <= 1e-3, "window {window}: weight");

        let warm_stats = warm.take_stats();
        let cold_stats = cold.take_stats();
        if window == 0 {
            assert_eq!(warm_stats.warm_misses, 1, "first window solves cold");
        } else {
            assert_eq!(
                warm_stats.warm_hits, 1,
                "window {window}: repeated fleet must hit the price cache"
            );
            warm_bids_after_first += warm_stats.bids;
            cold_bids_after_first += cold_stats.bids;
        }
    }
    assert!(
        warm_bids_after_first < cold_bids_after_first,
        "warm starts must save bidding work: warm {warm_bids_after_first} vs cold {cold_bids_after_first}"
    );
}

#[test]
fn warm_cache_survives_positional_reshuffles() {
    // Same fleet, same weights per (stable key) pair, but the positional
    // indices are rotated between windows — the signature and the cached
    // price layout key on stable ids, so the cache must still hit and
    // the matchings (mapped back to stable keys) must be identical.
    let n = 24usize;
    let mut rng = rng_for(118, 0);
    let w: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect();
    let mut warm = AuctionSolver::with_warm_start();
    let mut matched_keys_prev: Option<Vec<(u64, u64)>> = None;
    for rot in 0..3 {
        // Positional index i maps to stable entity (i + rot) % n.
        let left_keys: Vec<u64> = (0..n).map(|i| 500 + ((i + rot) % n) as u64).collect();
        let right_keys: Vec<u64> = (0..n).map(|j| 700 + ((j + rot) % n) as u64).collect();
        let keys = VertexKeys {
            left: &left_keys,
            right: &right_keys,
        };
        // Weight depends on the stable pair, not the position.
        let edges: Vec<WeightedEdge> = (0..n)
            .flat_map(|l| {
                let row = &w[(l + rot) % n];
                (0..n).map(move |r| WeightedEdge::new(l, r, row[(r + rot) % n]))
            })
            .collect();
        let m = solve_matching_keyed(&mut warm, n, n, &edges, &keys);
        let mut matched_keys: Vec<(u64, u64)> = m
            .iter()
            .map(|&(l, r)| (left_keys[l], right_keys[r]))
            .collect();
        matched_keys.sort_unstable();
        if let Some(prev) = &matched_keys_prev {
            assert_eq!(&matched_keys, prev, "rotation {rot}: same fleet, same plan");
            assert!(warm.stats().warm_hits >= 1, "rotation {rot}: cache hit");
        }
        matched_keys_prev = Some(matched_keys);
    }
}

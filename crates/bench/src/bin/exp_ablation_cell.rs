//! Ablation: recurrent cell family (LSTM vs GRU).
//!
//! The paper instantiates its encoder–decoder with LSTMs \[28\] while
//! citing the GRU encoder–decoder paper \[27\]. Both cells are available in
//! `tamp-nn`; this ablation trains GTTAML with each on the same workload
//! and reports prediction quality and training time (GRUs have 3/4 the
//! parameters per unit of hidden width).

use tamp_bench::{default_training, out_dir, seed_from_env};
use tamp_nn::seq2seq::CellKind;
use tamp_platform::experiments::report::{f1, f4, print_markdown_table, save_json};
use tamp_platform::training::{train_predictors, TrainingConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    let mut scale = Scale::small();
    scale.n_workers = 24;
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, scale, seed).build();
    println!(
        "# Ablation: recurrent cell family ({} workers, seed {seed})",
        workload.workers.len()
    );
    let mut rows = Vec::new();
    for (cell, name) in [(CellKind::Lstm, "LSTM"), (CellKind::Gru, "GRU")] {
        let cfg = TrainingConfig {
            cell,
            ..default_training(seed)
        };
        let p = train_predictors(&workload, &cfg);
        rows.push(serde_json::json!({
            "cell": name,
            "rmse": p.overall.rmse_cells,
            "mae": p.overall.mae_cells,
            "mr": p.overall.mr,
            "tt_seconds": p.train_seconds,
        }));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r["cell"].as_str().unwrap().to_string(),
                f4(r["rmse"].as_f64().unwrap()),
                f4(r["mae"].as_f64().unwrap()),
                f4(r["mr"].as_f64().unwrap()),
                f1(r["tt_seconds"].as_f64().unwrap()),
            ]
        })
        .collect();
    print_markdown_table(&["cell", "RMSE", "MAE", "MR", "TT (s)"], &table);
    save_json(
        &out_dir().join("ablation_cell.json"),
        "ablation_cell_family",
        &rows,
    )
    .expect("write rows");
}

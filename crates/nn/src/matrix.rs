//! A minimal row-major `f64` matrix.
//!
//! The models here are tiny (hidden sizes of a few dozen), so a simple
//! contiguous `Vec<f64>` with naive loops is both fast enough and easy to
//! verify. Shapes are checked with assertions — a shape bug is a
//! programming error, not a runtime condition.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from a flat row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation, the usual choice for
    /// tanh/sigmoid recurrent nets.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat view of the entries (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the entries (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `y = A·x` for a column vector `x` (`len == cols`).
    #[allow(clippy::needless_range_loop)] // row-slice indexing is the hot path
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] = acc;
        }
        y
    }

    /// `y = Aᵀ·x` for a column vector `x` (`len == rows`) without
    /// materialising the transpose.
    #[allow(clippy::needless_range_loop)] // row-slice indexing is the hot path
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t shape mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += a * xr;
            }
        }
        y
    }

    /// Rank-1 update `A += α · u vᵀ` (`u.len == rows`, `v.len == cols`).
    /// This is the workhorse of every backward pass.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "outer-product row mismatch");
        assert_eq!(v.len(), self.cols, "outer-product col mismatch");
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let a = alpha * ur;
            for (cell, &vc) in row.iter_mut().zip(v) {
                *cell += a * vc;
            }
        }
    }

    /// In-place `A += α · B`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scaling `A *= α`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fills the matrix with zeros, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Vector helpers used alongside [`Matrix`]; kept free so call sites read
/// like math.
pub mod vecops {
    /// Dot product. Panics on length mismatch.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `a += α·b` in place.
    pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
        assert_eq!(a.len(), b.len(), "axpy length mismatch");
        for (x, y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    }

    /// Euclidean norm.
    pub fn norm(a: &[f64]) -> f64 {
        dot(a, a).sqrt()
    }

    /// Cosine similarity; zero when either vector is (numerically) zero.
    pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let na = norm(a);
        let nb = norm(b);
        if na < 1e-12 || nb < 1e-12 {
            return 0.0;
        }
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = a.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = a.matvec_t(&[1.0, 2.0]);
        assert_eq!(y, vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(a.get(0, 0), 8.0);
        assert_eq!(a.get(1, 1), 30.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_rows(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
        a.clear();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = tamp_core::rng::rng_for(1, 3);
        let m = Matrix::xavier(8, 8, &mut rng);
        let limit = (6.0 / 16.0f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(m.frob_norm() > 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_checks_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}

//! Fleet-scale batched rollout diagnostics: what does cross-worker GEMM
//! buy over the serial per-worker predict loop, and what does the
//! base+delta weight store save over a dense per-worker fleet?
//!
//! A synthetic fleet mixes the three worker populations the serving
//! engine sees: workers sharing one of a handful of cluster heads
//! (cold-start — empty delta), and a fraction carrying a sparse
//! [`DeltaWeights`] override from online adaptation. Fleet sizes sweep
//! 1k–100k workers; each size runs the serial baseline (dense resident
//! model per worker, exactly the legacy engine layout) against
//! [`predict_batch_into`] at batch 1/8/64/512 on both kernel backends.
//!
//! Every scalar-batched repeat is asserted *bitwise identical* to the
//! serial rollouts; every batched-backend repeat is asserted within
//! `VEC_RTOL` relative error. Memory is recorded as resident weight
//! bytes per worker: dense fleet vs heads + deltas, showing the
//! superlinear per-worker drop as heads amortize across the fleet.
//!
//! Full sweep writes `results/infer_batch.json` (read by
//! `bench_trajectory`); `--smoke` runs the smallest size at batch 64
//! only, keeps all equivalence and memory asserts, and writes nothing
//! (CI-friendly).

use rand::Rng;
use std::time::Instant;
use tamp_bench::{out_dir, seed_from_env};
use tamp_core::rng::rng_for;
use tamp_nn::loss::Pt2;
use tamp_nn::{predict_batch_into, BatchTape, DeltaWeights, KernelBackend, Seq2Seq, Seq2SeqConfig};
use tamp_platform::experiments::report::{print_markdown_table, save_json};

const HIDDEN: usize = 64;
const HEADS: usize = 8;
const OBS_LEN: usize = 12;
const HORIZON: usize = 6;
/// Every Nth worker carries a sparse adaptation delta; the rest ride
/// their cluster head unchanged (the cold-start population).
const DELTA_EVERY: usize = 10;
/// Parameters overridden per adapted worker — sparse against `n_params`.
const DELTA_TOUCH: usize = 64;
/// Batched-backend-vs-serial relative error bound asserted per repeat.
const VEC_RTOL: f64 = 1e-6;

struct Fleet {
    heads: Vec<Seq2Seq>,
    head_of: Vec<usize>,
    deltas: Vec<DeltaWeights>,
    inputs: Vec<Vec<Pt2>>,
    n_params: usize,
}

fn build_fleet(n: usize, seed: u64) -> Fleet {
    let mut rng = rng_for(seed, 1);
    let heads: Vec<Seq2Seq> = (0..HEADS)
        .map(|_| Seq2Seq::new(Seq2SeqConfig::lstm(HIDDEN), &mut rng))
        .collect();
    let n_params = heads[0].n_params();
    let mut head_of = Vec::with_capacity(n);
    let mut deltas = Vec::with_capacity(n);
    let mut inputs = Vec::with_capacity(n);
    for w in 0..n {
        let mut wrng = rng_for(seed ^ 0xF1EE7, w as u64);
        let h = w % HEADS;
        head_of.push(h);
        if w % DELTA_EVERY == 0 {
            let base = heads[h].params();
            let mut dense = base.clone();
            for _ in 0..DELTA_TOUCH {
                let i = wrng.gen_range(0..n_params);
                dense[i] += wrng.gen_range(-0.05..0.05);
            }
            deltas.push(DeltaWeights::fit(&base, &dense, 0.0));
        } else {
            deltas.push(DeltaWeights::empty(n_params));
        }
        let mut p = [wrng.gen_range(-1.0..1.0), wrng.gen_range(-1.0..1.0)];
        inputs.push(
            (0..OBS_LEN)
                .map(|_| {
                    p = [
                        p[0] + wrng.gen_range(-0.1..0.1),
                        p[1] + wrng.gen_range(-0.1..0.1),
                    ];
                    p
                })
                .collect(),
        );
    }
    Fleet {
        heads,
        head_of,
        deltas,
        inputs,
        n_params,
    }
}

/// The legacy engine layout: one resident dense model per worker.
fn materialize_dense(fleet: &Fleet) -> Vec<Seq2Seq> {
    fleet
        .head_of
        .iter()
        .zip(&fleet.deltas)
        .map(|(&h, d)| {
            let mut m = fleet.heads[h].clone();
            if !d.is_empty() {
                let mut p = m.params();
                d.patch(&mut p);
                m.set_params(&p);
            }
            m
        })
        .collect()
}

/// One batched pass over the whole fleet: group by head (input lengths
/// are uniform here), chunk by `batch`, GEMM each chunk. Returns
/// per-worker rollouts in worker order.
fn run_batched(
    fleet: &Fleet,
    by_head: &[Vec<usize>],
    batch: usize,
    backend: KernelBackend,
    tape: &mut BatchTape,
) -> Vec<Vec<Pt2>> {
    let mut result = vec![Vec::new(); fleet.head_of.len()];
    let mut outs: Vec<Vec<Pt2>> = Vec::new();
    for (h, lanes) in by_head.iter().enumerate() {
        for chunk in lanes.chunks(batch) {
            let inputs: Vec<&[Pt2]> = chunk.iter().map(|&w| fleet.inputs[w].as_slice()).collect();
            let deltas: Vec<Option<&DeltaWeights>> = chunk
                .iter()
                .map(|&w| (!fleet.deltas[w].is_empty()).then_some(&fleet.deltas[w]))
                .collect();
            predict_batch_into(
                &fleet.heads[h],
                &deltas,
                &inputs,
                HORIZON,
                backend,
                tape,
                &mut outs,
            );
            for (k, &w) in chunk.iter().enumerate() {
                result[w] = std::mem::take(&mut outs[k]);
            }
        }
    }
    result
}

fn max_rel_err(a: &[Vec<Pt2>], b: &[Vec<Pt2>]) -> f64 {
    let mut worst = 0.0f64;
    for (xa, xb) in a.iter().zip(b) {
        for (pa, pb) in xa.iter().zip(xb) {
            for k in 0..2 {
                let denom = pa[k].abs().max(1e-12);
                worst = worst.max((pa[k] - pb[k]).abs() / denom);
            }
        }
    }
    worst
}

fn assert_bitwise(serial: &[Vec<Pt2>], batched: &[Vec<Pt2>], n_workers: usize, batch: usize) {
    for (w, (s, b)) in serial.iter().zip(batched).enumerate() {
        assert_eq!(
            s.len(),
            b.len(),
            "{n_workers} workers, batch {batch}: lane {w} length"
        );
        for (ps, pb) in s.iter().zip(b) {
            assert!(
                ps[0].to_bits() == pb[0].to_bits() && ps[1].to_bits() == pb[1].to_bits(),
                "{n_workers} workers, batch {batch}: worker {w} diverged ({ps:?} vs {pb:?})"
            );
        }
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_env();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let batches: &[usize] = if smoke { &[64] } else { &[1, 8, 64, 512] };
    let repeats = if smoke { 2 } else { 3 };
    println!(
        "# Batched rollout throughput and weight-store residency (seed {seed}, {repeats} repeats{})\n",
        if smoke { ", --smoke" } else { "" }
    );

    let mut table = Vec::new();
    let mut rows = Vec::new();
    let mut tape = BatchTape::new();
    let mut store_per_worker_trend: Vec<f64> = Vec::new();
    for &n in sizes {
        let fleet = build_fleet(n, seed ^ n as u64);
        let dense = materialize_dense(&fleet);
        let mut by_head: Vec<Vec<usize>> = vec![Vec::new(); HEADS];
        for (w, &h) in fleet.head_of.iter().enumerate() {
            by_head[h].push(w);
        }

        // Serial baseline: the per-worker predict loop over resident
        // dense models — also the bitwise reference for every backend.
        let mut serial_s = Vec::new();
        let mut reference: Vec<Vec<Pt2>> = Vec::new();
        for _ in 0..repeats {
            let t0 = Instant::now();
            let outs: Vec<Vec<Pt2>> = dense
                .iter()
                .zip(&fleet.inputs)
                .map(|(m, input)| m.predict(input, HORIZON))
                .collect();
            serial_s.push(t0.elapsed().as_secs_f64());
            reference = outs;
        }
        let serial_med = median(&mut serial_s);

        // Resident weight bytes: the dense fleet vs heads + deltas.
        let dense_bytes = n * fleet.n_params * std::mem::size_of::<f64>();
        let delta_bytes: usize = fleet.deltas.iter().map(DeltaWeights::resident_bytes).sum();
        let store_bytes = HEADS * fleet.n_params * std::mem::size_of::<f64>() + delta_bytes;
        let delta_workers = fleet.deltas.iter().filter(|d| !d.is_empty()).count();
        store_per_worker_trend.push(store_bytes as f64 / n as f64);

        let mut batch_rows = Vec::new();
        for &b in batches {
            let mut scalar_s = Vec::new();
            for _ in 0..repeats {
                let t0 = Instant::now();
                let outs = run_batched(&fleet, &by_head, b, KernelBackend::Scalar, &mut tape);
                scalar_s.push(t0.elapsed().as_secs_f64());
                assert_bitwise(&reference, &outs, n, b);
            }
            let mut vec_s = Vec::new();
            let mut vec_err = 0.0f64;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let outs = run_batched(&fleet, &by_head, b, KernelBackend::Batched, &mut tape);
                vec_s.push(t0.elapsed().as_secs_f64());
                let err = max_rel_err(&reference, &outs);
                assert!(
                    err <= VEC_RTOL,
                    "{n} workers, batch {b}: batched-backend rel err {err:.3e} > {VEC_RTOL:.0e}"
                );
                vec_err = vec_err.max(err);
            }
            let scalar_med = median(&mut scalar_s);
            let vec_med = median(&mut vec_s);
            table.push(vec![
                n.to_string(),
                b.to_string(),
                format!("{:.1}", serial_med * 1e3),
                format!("{:.1}", scalar_med * 1e3),
                format!("{:.2}", serial_med / scalar_med),
                format!("{:.1}", vec_med * 1e3),
                format!("{:.2}", serial_med / vec_med),
                format!("{vec_err:.1e}"),
            ]);
            batch_rows.push(serde_json::json!({
                "batch": b,
                "scalar_median_s": scalar_med,
                "scalar_speedup": serial_med / scalar_med,
                "batched_median_s": vec_med,
                "batched_speedup": serial_med / vec_med,
                "batched_max_rel_err": vec_err,
            }));
            println!(
                "  {n} workers, batch {b}: serial {:.0} ms, scalar {:.0} ms ({:.2}x), batched {:.0} ms ({:.2}x)",
                serial_med * 1e3,
                scalar_med * 1e3,
                serial_med / scalar_med,
                vec_med * 1e3,
                serial_med / vec_med,
            );
        }

        if smoke {
            assert!(
                store_bytes < dense_bytes,
                "weight store {store_bytes} bytes must undercut the dense fleet {dense_bytes}"
            );
        }
        rows.push(serde_json::json!({
            "n_workers": n,
            "n_params": fleet.n_params,
            "heads": HEADS,
            "delta_workers": delta_workers,
            "obs_len": OBS_LEN,
            "horizon": HORIZON,
            "serial_median_s": serial_med,
            "dense_resident_bytes": dense_bytes,
            "store_resident_bytes": store_bytes,
            "dense_bytes_per_worker": dense_bytes as f64 / n as f64,
            "store_bytes_per_worker": store_bytes as f64 / n as f64,
            "mem_ratio_dense_over_store": dense_bytes as f64 / store_bytes as f64,
            "batches": batch_rows,
            "repeats": repeats,
            "seed": seed,
        }));
    }

    // Heads amortize: resident store bytes per worker must fall as the
    // fleet grows (the dense fleet stays flat at n_params * 8).
    for pair in store_per_worker_trend.windows(2) {
        assert!(
            pair[1] < pair[0],
            "store bytes/worker must drop with fleet size ({pair:?})"
        );
    }

    println!();
    print_markdown_table(
        &[
            "workers",
            "batch",
            "serial (ms)",
            "scalar (ms)",
            "scalar speedup",
            "batched (ms)",
            "batched speedup",
            "batched rel err",
        ],
        &table,
    );

    if smoke {
        println!("\n--smoke: scalar byte-identity, batched tolerance and store residency all hold");
    } else {
        save_json(&out_dir().join("infer_batch.json"), "infer_batch", &rows).expect("write rows");
    }
}

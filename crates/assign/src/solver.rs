//! Pluggable matching backends behind the [`MatchingSolver`] trait.
//!
//! [`max_weight_matching`](crate::hungarian::max_weight_matching) is exact
//! but dense: each connected component allocates an O(n·m) cost matrix and
//! runs the O(n³) potentials method. At city scale (100k+ workers) a giant
//! component makes that allocation alone infeasible. This module splits
//! the problem into
//!
//! * a **driver** ([`solve_matching`] / [`solve_matching_keyed`]) that
//!   validates the edge list, compacts vertex ids, and decomposes the
//!   graph into connected components (union-by-size `Dsu` with path
//!   compression), and
//! * **backends** that solve one component each: [`ExactKmSolver`] (the
//!   oracle — the existing dense Hungarian solve) and
//!   [`AuctionSolver`](crate::auction::AuctionSolver) (sparse forward
//!   auction with ε-scaling and cross-window warm-started prices).
//!
//! Both backends return matchings of **equal cardinality** (the auction's
//! ε-schedule is run until `n·ε` is below the cardinality margin); the
//! auction's total weight is within `n·ε·span` of the exact optimum
//! (property-tested in `tests/solver_properties.rs`).

use crate::hungarian::{self, KmWorkspace, WeightedEdge, FORBIDDEN};
use serde::{Deserialize, Serialize};

/// Which backend solves each connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SolverKind {
    /// Dense O(n³) Hungarian method — exact, the test oracle.
    #[default]
    Exact,
    /// Sparse forward auction with ε-scaling — same cardinality, weight
    /// within the ε-bound, no dense matrix.
    Auction,
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Self::Exact),
            "auction" => Ok(Self::Auction),
            other => Err(format!("unknown solver '{other}' (try exact|auction)")),
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Exact => "exact",
            Self::Auction => "auction",
        })
    }
}

/// Cumulative work counters for a backend, taken (and reset) per batch by
/// the engine and surfaced as `solver.*` telemetry.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SolverStats {
    /// Driver invocations (one per matching call).
    pub solves: u64,
    /// Connected components solved.
    pub components: u64,
    /// Largest dense cost matrix allocated (bytes) — exact backend only.
    pub peak_dense_bytes: usize,
    /// Largest sparse working set (bytes) — auction backend only.
    pub peak_sparse_bytes: usize,
    /// Rows augmented by the exact backend (its unit of matching work).
    pub augmented_rows: u64,
    /// Bids placed by the auction backend (its unit of matching work).
    pub bids: u64,
    /// ε-scaling phases run by the auction backend.
    pub phases: u64,
    /// Components whose prices were seeded from the warm cache.
    pub warm_hits: u64,
    /// Components solved cold (warm cache enabled but no entry matched).
    pub warm_misses: u64,
    /// Full cold restarts forced by a bid budget overrun.
    pub cold_restarts: u64,
    /// Solves abandoned after the cold restart also overran its budget
    /// (never observed in practice; a non-zero value flags a
    /// pathological instance).
    pub abandoned: u64,
}

/// Stable per-vertex identities for warm-starting: `left[i]` / `right[j]`
/// must identify vertex `i`/`j` across windows (task / worker ids), while
/// the positional indices of the edge list may be reshuffled freely.
#[derive(Debug, Clone, Copy)]
pub struct VertexKeys<'a> {
    /// `left[i]` is the stable key of left vertex `i`.
    pub left: &'a [u64],
    /// `right[j]` is the stable key of right vertex `j`.
    pub right: &'a [u64],
}

/// A per-component matching backend.
///
/// Implementations solve one connected component at a time (the driver
/// owns validation and decomposition) and account their work in
/// [`SolverStats`]. Backends with cross-window state expose it through
/// `export_warm` / `import_warm` so the engine can persist it in
/// snapshots; the default implementations are stateless.
pub trait MatchingSolver: Send {
    /// The backend's kind tag.
    fn kind(&self) -> SolverKind;

    /// Solves one connected component, pushing matched `(left, right)`
    /// pairs (original vertex ids) into `out`. `keys` carries stable
    /// vertex identities when the caller wants warm-starting.
    fn solve_component(
        &mut self,
        edges: &[&WeightedEdge],
        keys: Option<&VertexKeys<'_>>,
        out: &mut Vec<(usize, usize)>,
    );

    /// Work counters accumulated since the last [`take_stats`](Self::take_stats).
    fn stats(&self) -> &SolverStats;

    /// Mutable access to the counters (used by the driver).
    fn stats_mut(&mut self) -> &mut SolverStats;

    /// Returns and resets the accumulated counters.
    fn take_stats(&mut self) -> SolverStats {
        std::mem::take(self.stats_mut())
    }

    /// Serializable warm-start state: `(component signature, price
    /// vector)` pairs, sorted by signature. Empty for stateless backends.
    fn export_warm(&self) -> Vec<(u64, Vec<f64>)> {
        Vec::new()
    }

    /// Restores warm-start state exported by [`export_warm`](Self::export_warm).
    /// A no-op for stateless backends; any seed is safe (warm prices only
    /// accelerate the solve, they never change its guarantees).
    fn import_warm(&mut self, _warm: Vec<(u64, Vec<f64>)>) {}
}

/// Builds a boxed backend for `kind`. `warm_start` enables the auction's
/// cross-window price cache (ignored by the exact backend, which is
/// always deterministic-cold).
pub fn solver_for(kind: SolverKind, warm_start: bool) -> Box<dyn MatchingSolver> {
    match kind {
        SolverKind::Exact => Box::new(ExactKmSolver::default()),
        SolverKind::Auction => Box::new(if warm_start {
            crate::auction::AuctionSolver::with_warm_start()
        } else {
            crate::auction::AuctionSolver::new()
        }),
    }
}

/// The exact oracle backend: the dense Hungarian per-component solve that
/// [`max_weight_matching`](crate::hungarian::max_weight_matching) has
/// always used, with shared scratch buffers across components.
#[derive(Debug, Default)]
pub struct ExactKmSolver {
    ws: KmWorkspace,
    stats: SolverStats,
}

impl MatchingSolver for ExactKmSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::Exact
    }

    fn solve_component(
        &mut self,
        edges: &[&WeightedEdge],
        _keys: Option<&VertexKeys<'_>>,
        out: &mut Vec<(usize, usize)>,
    ) {
        let (dense_bytes, rows) = hungarian::solve_component(edges, &mut self.ws, out);
        self.stats.peak_dense_bytes = self.stats.peak_dense_bytes.max(dense_bytes);
        self.stats.augmented_rows += rows;
    }

    fn stats(&self) -> &SolverStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut SolverStats {
        &mut self.stats
    }
}

/// Maximum-cardinality, maximum-weight matching through a pluggable
/// backend. Semantics match
/// [`max_weight_matching`](crate::hungarian::max_weight_matching); with
/// [`ExactKmSolver`] the output is byte-identical to it.
pub fn solve_matching(
    solver: &mut dyn MatchingSolver,
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
) -> Vec<(usize, usize)> {
    solve_matching_inner(solver, n_left, n_right, edges, None)
}

/// [`solve_matching`] with stable vertex keys, enabling the backend's
/// cross-window warm start. `keys.left` / `keys.right` must cover
/// `n_left` / `n_right` vertices.
pub fn solve_matching_keyed(
    solver: &mut dyn MatchingSolver,
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
    keys: &VertexKeys<'_>,
) -> Vec<(usize, usize)> {
    assert!(keys.left.len() >= n_left, "left keys shorter than n_left");
    assert!(
        keys.right.len() >= n_right,
        "right keys shorter than n_right"
    );
    solve_matching_inner(solver, n_left, n_right, edges, Some(keys))
}

fn solve_matching_inner(
    solver: &mut dyn MatchingSolver,
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
    keys: Option<&VertexKeys<'_>>,
) -> Vec<(usize, usize)> {
    if n_left == 0 || n_right == 0 || edges.is_empty() {
        return Vec::new();
    }
    for e in edges {
        assert!(e.left < n_left, "edge.left out of range");
        assert!(e.right < n_right, "edge.right out of range");
        assert!(e.weight.is_finite(), "edge weight must be finite");
        debug_assert!(
            e.weight.abs() < FORBIDDEN / 1e3,
            "edge weight too large vs FORBIDDEN sentinel"
        );
    }

    let comp_edges = components(edges);
    solver.stats_mut().solves += 1;
    solver.stats_mut().components += comp_edges.len() as u64;
    let mut result = Vec::new();
    for comp in &comp_edges {
        solver.solve_component(comp, keys, &mut result);
    }
    result.sort_unstable();
    result
}

/// Buckets edges per connected component, in order of first appearance
/// (stable for identical inputs; the driver's final sort makes the output
/// canonical). Only vertices that actually carry edges participate.
fn components(edges: &[WeightedEdge]) -> Vec<Vec<&WeightedEdge>> {
    // Only vertices that actually carry edges need to participate — this
    // keeps the per-component instances small when the graph is sparse.
    let mut left_ids: Vec<usize> = edges.iter().map(|e| e.left).collect();
    left_ids.sort_unstable();
    left_ids.dedup();
    let mut right_ids: Vec<usize> = edges.iter().map(|e| e.right).collect();
    right_ids.sort_unstable();
    right_ids.dedup();

    let ln = left_ids.len();
    let left_pos = |v: usize| left_ids.binary_search(&v).expect("left id present");
    let right_pos = |v: usize| right_ids.binary_search(&v).expect("right id present");

    // Connected components over compact indices: lefts are 0..ln, rights
    // are ln..ln+rn.
    let mut dsu = Dsu::new(ln + right_ids.len());
    for e in edges {
        dsu.union(left_pos(e.left), ln + right_pos(e.right));
    }
    let mut slot_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut comp_edges: Vec<Vec<&WeightedEdge>> = Vec::new();
    for e in edges {
        let root = dsu.find(left_pos(e.left));
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            comp_edges.push(Vec::new());
            comp_edges.len() - 1
        });
        comp_edges[slot].push(e);
    }
    comp_edges
}

/// Per-component `(lefts, rights, edges)` sizes for a sparse edge list —
/// the component-size distribution `diag_scale` records before deciding
/// whether the exact dense path is feasible.
pub fn component_sizes(edges: &[WeightedEdge]) -> Vec<(usize, usize, usize)> {
    components(edges)
        .iter()
        .map(|comp| {
            let mut lefts: Vec<usize> = comp.iter().map(|e| e.left).collect();
            lefts.sort_unstable();
            lefts.dedup();
            let mut rights: Vec<usize> = comp.iter().map(|e| e.right).collect();
            rights.sort_unstable();
            rights.dedup();
            (lefts.len(), rights.len(), comp.len())
        })
        .collect()
}

/// Disjoint-set union over compact vertex indices with union by size and
/// two-pass path compression: adversarial union order (e.g. a long chain
/// fed root-to-leaf) keeps `find` near-O(α) instead of degrading to O(n)
/// walks before compression catches up.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Attach the smaller tree under the larger root.
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Depth of `x`'s raw parent chain, without compressing.
    fn chain_depth(dsu: &Dsu, x: usize) -> usize {
        let mut depth = 0;
        let mut cur = x;
        while dsu.parent[cur] as usize != cur {
            cur = dsu.parent[cur] as usize;
            depth += 1;
        }
        depth
    }

    #[test]
    fn dsu_union_by_size_bounds_chain_depth() {
        // Worst-case chain order: union(0,1), union(1,2), … built strictly
        // head-to-tail. Arbitrary-root unions (`parent[ra] = rb`) make
        // every `parent` pointer hop one step down the chain, so the raw
        // depth of vertex 0 grows to n before any find() compresses it.
        // Union by size must keep every raw chain logarithmic.
        let n = 1 << 14;
        let mut dsu = Dsu::new(n);
        for i in 0..n - 1 {
            dsu.union(i, i + 1);
        }
        let bound = (n as f64).log2() as usize + 1;
        let worst = (0..n).map(|x| chain_depth(&dsu, x)).max().unwrap();
        assert!(
            worst <= bound,
            "raw parent chain depth {worst} exceeds log bound {bound}"
        );
        // And the structure is still one component.
        let root = dsu.find(0);
        for x in 1..n {
            assert_eq!(dsu.find(x), root);
        }
    }

    #[test]
    fn dsu_size_accounting_survives_mixed_order() {
        let mut dsu = Dsu::new(8);
        dsu.union(0, 1);
        dsu.union(2, 3);
        dsu.union(0, 2); // merge two pairs
        dsu.union(5, 4);
        dsu.union(4, 0); // pair joins quad
        let root = dsu.find(0);
        assert_eq!(dsu.size[root], 6);
        assert_ne!(dsu.find(6), root);
        assert_ne!(dsu.find(7), root);
    }

    #[test]
    fn solver_kind_parses_and_displays() {
        assert_eq!("exact".parse::<SolverKind>().unwrap(), SolverKind::Exact);
        assert_eq!(
            "auction".parse::<SolverKind>().unwrap(),
            SolverKind::Auction
        );
        assert!("simplex".parse::<SolverKind>().is_err());
        assert_eq!(SolverKind::Exact.to_string(), "exact");
        assert_eq!(SolverKind::Auction.to_string(), "auction");
    }

    #[test]
    fn component_sizes_reports_each_block() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(0, 1, 1.0),
            WeightedEdge::new(5, 7, 1.0),
        ];
        let mut sizes = component_sizes(&edges);
        sizes.sort_unstable();
        assert_eq!(sizes, vec![(1, 1, 1), (1, 2, 2)]);
    }

    #[test]
    fn exact_solver_records_dense_bytes_and_rows() {
        let edges = [
            WeightedEdge::new(0, 0, 1.0),
            WeightedEdge::new(0, 1, 5.0),
            WeightedEdge::new(1, 0, 5.0),
            WeightedEdge::new(1, 1, 1.0),
        ];
        let mut solver = ExactKmSolver::default();
        let m = solve_matching(&mut solver, 2, 2, &edges);
        assert_eq!(m, vec![(0, 1), (1, 0)]);
        let stats = solver.take_stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.components, 1);
        assert_eq!(stats.peak_dense_bytes, 2 * 2 * 8);
        assert_eq!(stats.augmented_rows, 2);
        assert_eq!(solver.stats().solves, 0, "take_stats resets");
    }
}

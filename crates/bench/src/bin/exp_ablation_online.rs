//! Extension ablation: intraday online adaptation.
//!
//! The paper trains mobility models offline and freezes them for the
//! day. `tamp` additionally supports continual fine-tuning on the
//! movements the platform observes during the day
//! (`EngineConfig::online_adapt`). This ablation measures whether
//! tracking intraday drift pays off for PPI.

use tamp_bench::{default_engine, default_training, out_dir, seed_from_env};
use tamp_platform::engine::OnlineAdaptConfig;
use tamp_platform::experiments::report::{f4, print_markdown_table, save_json};
use tamp_platform::training::{train_predictors, LossKind, TrainingConfig};
use tamp_platform::{run_assignment, AssignmentAlgo, EngineConfig};
use tamp_sim::{Scale, WorkloadConfig, WorkloadKind};

fn main() {
    let seed = seed_from_env();
    let workload = WorkloadConfig::new(WorkloadKind::PortoDidi, Scale::small(), seed).build();
    let predictors = train_predictors(
        &workload,
        &TrainingConfig {
            loss: LossKind::TaskOriented,
            ..default_training(seed)
        },
    );
    println!(
        "# Ablation: online intraday adaptation ({} workers, {} tasks, seed {seed})",
        workload.workers.len(),
        workload.tasks.len()
    );

    let mut rows = Vec::new();
    let mut run = |label: &str, online: Option<OnlineAdaptConfig>| {
        let engine = EngineConfig {
            online_adapt: online,
            ..default_engine(seed)
        };
        let m = run_assignment(&workload, Some(&predictors), AssignmentAlgo::Ppi, &engine);
        rows.push(serde_json::json!({
            "variant": label,
            "completion": m.completion_ratio(),
            "rejection": m.rejection_ratio(),
            "cost_km": m.avg_worker_cost_km(),
            "runtime_s": m.algo_seconds,
        }));
    };
    run("frozen (paper)", None);
    run(
        "online every 120 min",
        Some(OnlineAdaptConfig {
            every_min: 120.0,
            ..OnlineAdaptConfig::default()
        }),
    );
    run("online every 60 min", Some(OnlineAdaptConfig::default()));
    run(
        "online every 30 min",
        Some(OnlineAdaptConfig {
            every_min: 30.0,
            ..OnlineAdaptConfig::default()
        }),
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r["variant"].as_str().unwrap().to_string(),
                f4(r["completion"].as_f64().unwrap()),
                f4(r["rejection"].as_f64().unwrap()),
                f4(r["cost_km"].as_f64().unwrap()),
            ]
        })
        .collect();
    print_markdown_table(&["variant", "completion", "rejection", "cost (km)"], &table);
    save_json(
        &out_dir().join("ablation_online.json"),
        "ablation_online_adaptation",
        &rows,
    )
    .expect("write rows");
}

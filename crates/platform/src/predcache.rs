//! Cross-batch prediction caching.
//!
//! A worker's predicted trajectory is a pure function of (a) the model
//! parameters and (b) the observed report prefix the rollout starts
//! from. Between consecutive 2-minute batch windows both usually stay
//! unchanged — location reports arrive once per 10-minute time unit and
//! models only change on online-adaptation rounds — so an engine driver
//! (notably the long-running `tamp-serve` host) can reuse the previous
//! window's rollout verbatim instead of re-running the network. At the
//! paper's cadence that is up to ⌈10 / 2⌉ − 1 = 4 reuses per report.
//!
//! The cache key captures *exactly* the inputs of the rollout, which is
//! what makes cached and uncached runs byte-identical (property-tested
//! in `tests/cache_behaviour.rs` and the `tamp-serve` suite):
//!
//! * the **length of the observed prefix** — the received report stream
//!   is append-only within a run (even under delay faults, a report can
//!   arrive late but never un-arrive), so an equal length implies equal
//!   contents;
//! * the exact **bit pattern of the current anchor location** — it
//!   feeds the reachability clamp and the empty-history input, and it
//!   can change while the prefix length does not (the start-of-day
//!   registered-position fallback interpolates with `now`);
//! * the **rollout horizon** requested from the model.
//!
//! Three things invalidate entries instead of keying them:
//!
//! * **online adaptation** — after every adaptation round the whole
//!   cache is cleared ([`PredictionCache::invalidate_all`]), because any
//!   non-quarantined model may have taken gradient steps;
//! * **quarantine / rollback** (the PR 1 degradation ladder) — these
//!   happen inside adaptation rounds, so the same blanket invalidation
//!   covers them;
//! * **fault-injected rollouts** (`RolloutFault::{Unavailable,Garbage}`)
//!   and persistence fallbacks bypass the cache entirely: they depend on
//!   the batch index, not on the key, so caching them would change
//!   behaviour across windows.

use serde::{Deserialize, Serialize};
use tamp_core::Point;

/// Cumulative cache counters, mirrored into
/// [`crate::AssignmentMetrics`] at the end of a run and emitted by the
/// serve layer as `serve.cache.{hit,miss,invalidate}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Rollouts served from the cache.
    pub hits: u64,
    /// Cacheable rollouts that had to be computed.
    pub misses: u64,
    /// Entries discarded by [`PredictionCache::invalidate_all`].
    pub invalidations: u64,
}

/// The exact inputs of one worker's rollout (see the module docs for
/// why these fields determine the output bit for bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutKey {
    /// Number of observed reports feeding the input window.
    pub obs_len: usize,
    /// Bit pattern of the anchor location's easting.
    pub cur_x_bits: u64,
    /// Bit pattern of the anchor location's northing.
    pub cur_y_bits: u64,
    /// Requested rollout horizon (time units).
    pub horizon: usize,
}

impl RolloutKey {
    /// Builds the key for a worker whose input window is the last
    /// `seq_in` of `obs_len` observed reports anchored at `current`.
    pub fn new(obs_len: usize, current: Point, horizon: usize) -> Self {
        Self {
            obs_len,
            cur_x_bits: current.x.to_bits(),
            cur_y_bits: current.y.to_bits(),
            horizon,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: RolloutKey,
    predicted: Vec<Point>,
}

/// Per-worker cache of clamped model rollouts, valid across batch
/// windows until the key changes or the models do.
#[derive(Debug, Clone)]
pub struct PredictionCache {
    entries: Vec<Option<Entry>>,
    stats: CacheStats,
}

impl PredictionCache {
    /// An empty cache with one slot per worker.
    pub fn new(n_workers: usize) -> Self {
        Self {
            entries: vec![None; n_workers],
            stats: CacheStats::default(),
        }
    }

    /// Returns the cached rollout for worker `wi` if its key matches,
    /// counting a hit or a miss. Callers must only consult the cache for
    /// healthy (non-fault-injected) rollouts.
    pub fn lookup(&mut self, wi: usize, key: &RolloutKey) -> Option<Vec<Point>> {
        match self.entries.get(wi).and_then(Option::as_ref) {
            Some(e) if e.key == *key => {
                self.stats.hits += 1;
                Some(e.predicted.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly computed rollout for worker `wi`, replacing any
    /// stale entry.
    pub fn store(&mut self, wi: usize, key: RolloutKey, predicted: Vec<Point>) {
        if let Some(slot) = self.entries.get_mut(wi) {
            *slot = Some(Entry { key, predicted });
        }
    }

    /// Discards every entry (models may have changed: an online
    /// adaptation round ran, possibly including quarantine rollbacks).
    /// Returns how many live entries were dropped.
    pub fn invalidate_all(&mut self) -> usize {
        let mut dropped = 0;
        for slot in &mut self.entries {
            if slot.take().is_some() {
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(obs_len: usize) -> RolloutKey {
        RolloutKey::new(obs_len, Point::new(1.0, 2.0), 4)
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let mut c = PredictionCache::new(2);
        assert_eq!(c.lookup(0, &key(3)), None);
        c.store(0, key(3), vec![Point::new(0.5, 0.5)]);
        assert_eq!(c.lookup(0, &key(3)), Some(vec![Point::new(0.5, 0.5)]));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0
            }
        );
    }

    #[test]
    fn key_change_is_a_miss_and_store_replaces() {
        let mut c = PredictionCache::new(1);
        c.store(0, key(3), vec![Point::new(0.0, 0.0)]);
        assert_eq!(c.lookup(0, &key(4)), None, "longer prefix must miss");
        c.store(0, key(4), vec![Point::new(9.0, 9.0)]);
        assert_eq!(c.lookup(0, &key(4)), Some(vec![Point::new(9.0, 9.0)]));
        assert_eq!(c.lookup(0, &key(3)), None, "stale key was replaced");
    }

    #[test]
    fn anchor_bits_are_part_of_the_key() {
        let mut c = PredictionCache::new(1);
        let a = RolloutKey::new(0, Point::new(1.0, 1.0), 4);
        let b = RolloutKey::new(0, Point::new(1.0 + f64::EPSILON, 1.0), 4);
        c.store(0, a, vec![]);
        assert!(c.lookup(0, &b).is_none(), "different anchor bits must miss");
    }

    #[test]
    fn invalidate_all_counts_live_entries_only() {
        let mut c = PredictionCache::new(3);
        c.store(0, key(1), vec![]);
        c.store(2, key(2), vec![]);
        assert_eq!(c.invalidate_all(), 2);
        assert_eq!(c.invalidate_all(), 0, "second pass finds nothing");
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.lookup(0, &key(1)), None);
    }

    #[test]
    fn out_of_range_worker_is_harmless() {
        let mut c = PredictionCache::new(1);
        c.store(7, key(1), vec![]);
        assert_eq!(c.lookup(7, &key(1)), None);
    }
}

//! The plain MAML baseline \[15\], per-worker adaptation, and the k-step
//! gradient paths that feed `Sim_l`.
//!
//! MAML "does not cluster tasks but performs meta-training on all
//! learning tasks" (Section IV-A) — i.e. Algorithm 3 applied once to the
//! whole task set with a single shared initialisation.

use crate::learning_task::LearningTask;
use crate::meta_training::{meta_train_observed, MetaConfig};
use rand::Rng;
use tamp_nn::{clip_grad_norm, sub_scaled, Adam, Loss, Optimizer, Seq2Seq};
use tamp_obs::Obs;

/// Trains one shared initialisation over all learning tasks (the MAML
/// baseline). Returns `(θ, average query loss)`.
pub fn maml_train(
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    rng: &mut impl Rng,
) -> (Vec<f64>, f64) {
    maml_train_observed(tasks, template, loss, cfg, rng, &Obs::null())
}

/// [`maml_train`] with telemetry: a `meta.maml` span around the whole
/// run, per-iteration `meta.iter` spans / `meta.query_loss` gauges from
/// the underlying Meta-Training, and a final `meta.maml.query_loss`
/// gauge.
pub fn maml_train_observed(
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    cfg: &MetaConfig,
    rng: &mut impl Rng,
    obs: &Obs,
) -> (Vec<f64>, f64) {
    let _span = obs.span("meta.maml");
    let refs: Vec<&LearningTask> = tasks.iter().collect();
    let mut theta = template.params();
    let avg = meta_train_observed(&mut theta, &refs, template, loss, cfg, rng, obs);
    obs.gauge("meta.maml.query_loss", avg);
    (theta, avg)
}

/// Adapts an initialisation to one worker: `steps` SGD steps at rate
/// `beta` on the task's support set. Returns the adapted model.
#[allow(clippy::too_many_arguments)]
pub fn adapt(
    theta: &[f64],
    task: &LearningTask,
    template: &Seq2Seq,
    loss: &dyn Loss,
    steps: usize,
    beta: f64,
    batch: usize,
    rng: &mut impl Rng,
) -> Seq2Seq {
    let mut model = template.clone();
    let mut t = theta.to_vec();
    if task.support.is_empty() {
        model.set_params(&t);
        return model;
    }
    let mut tape = template.make_tape();
    for _ in 0..steps {
        model.set_params(&t);
        let sb = task.support_batch(batch, rng);
        model.loss_and_grad_ws(&sb, loss, &mut tape);
        clip_grad_norm(tape.grad_mut(), 1.0);
        sub_scaled(&mut t, beta, tape.grad());
    }
    model.set_params(&t);
    model
}

/// Adapts an initialisation to one worker with Adam instead of raw SGD —
/// the production fine-tuning used after meta-training ("conduct model
/// training based on this initialization", Section III-B). Adam's
/// per-parameter scaling converges far faster than SGD on the small
/// per-worker support sets.
#[allow(clippy::too_many_arguments)]
pub fn adapt_adam(
    theta: &[f64],
    task: &LearningTask,
    template: &Seq2Seq,
    loss: &dyn Loss,
    steps: usize,
    lr: f64,
    batch: usize,
    rng: &mut impl Rng,
) -> Seq2Seq {
    let mut model = template.clone();
    let mut t = theta.to_vec();
    if task.support.is_empty() {
        model.set_params(&t);
        return model;
    }
    let mut opt = Adam::new(lr, t.len());
    let mut tape = template.make_tape();
    for _ in 0..steps {
        model.set_params(&t);
        let sb = task.support_batch(batch, rng);
        model.loss_and_grad_ws(&sb, loss, &mut tape);
        clip_grad_norm(tape.grad_mut(), 1.0);
        opt.step(&mut t, tape.grad());
    }
    model.set_params(&t);
    model
}

/// Records each task's k-step gradient path `𝔾ᵢ = {z₁, …, z_k}` from a
/// common initialisation (the representation behind `Sim_l`, Eq. 2).
///
/// Tasks without support data get an empty path (their `Sim_l` to anyone
/// is 0, which keeps them neutral in clustering).
pub fn gradient_paths(
    tasks: &[LearningTask],
    template: &Seq2Seq,
    loss: &dyn Loss,
    k: usize,
    beta: f64,
    batch: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<Vec<f64>>> {
    let init = template.params();
    let mut model = template.clone();
    let mut tape = template.make_tape();
    let mut theta: Vec<f64> = Vec::with_capacity(init.len());
    tasks
        .iter()
        .map(|task| {
            if task.support.is_empty() {
                return Vec::new();
            }
            theta.clear();
            theta.extend_from_slice(&init);
            let mut path = Vec::with_capacity(k);
            for _ in 0..k {
                model.set_params(&theta);
                let sb = task.support_batch(batch, rng);
                model.loss_and_grad_ws(&sb, loss, &mut tape);
                clip_grad_norm(tape.grad_mut(), 1.0);
                sub_scaled(&mut theta, beta, tape.grad());
                path.push(tape.grad().to_vec());
            }
            path
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_core::rng::rng_for;
    use tamp_core::{Grid, Minutes, Point, Routine, WorkerId};
    use tamp_nn::{MseLoss, Seq2SeqConfig};

    fn task_moving(id: u64, dx: f64, dy: f64) -> LearningTask {
        let days: Vec<Routine> = (0..2)
            .map(|d| {
                Routine::from_sampled(
                    (0..16).map(|i| {
                        Point::new(
                            (1.0 + i as f64 * dx).rem_euclid(19.0),
                            (1.0 + i as f64 * dy).rem_euclid(9.0),
                        )
                    }),
                    Minutes::new(d as f64 * 1440.0),
                    Minutes::new(10.0),
                )
            })
            .collect();
        let mut rng = rng_for(id, 1);
        LearningTask::from_history(
            WorkerId(id),
            &days,
            vec![],
            &Grid::PAPER,
            2,
            1,
            0.7,
            false,
            &mut rng,
        )
    }

    #[test]
    fn maml_returns_matching_shapes() {
        let mut rng = rng_for(1, 2);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let tasks = vec![task_moving(1, 0.4, 0.0), task_moving(2, 0.0, 0.3)];
        let (theta, avg) = maml_train(
            &tasks,
            &template,
            &MseLoss,
            &MetaConfig::default(),
            &mut rng,
        );
        assert_eq!(theta.len(), template.n_params());
        assert!(avg.is_finite());
    }

    #[test]
    fn adapt_changes_parameters_toward_task() {
        let mut rng = rng_for(2, 2);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let task = task_moving(3, 0.5, 0.0);
        let theta = template.params();
        let adapted = adapt(&theta, &task, &template, &MseLoss, 5, 0.1, 8, &mut rng);
        assert_ne!(adapted.params(), theta);
        // Adapted model must beat the raw init on the task's query set.
        let mut raw = template.clone();
        raw.set_params(&theta);
        let raw_loss = raw.loss_only(&task.query, &MseLoss);
        let adapted_loss = adapted.loss_only(&task.query, &MseLoss);
        assert!(adapted_loss < raw_loss, "{adapted_loss} !< {raw_loss}");
    }

    #[test]
    fn adapt_on_empty_support_is_identity() {
        let mut rng = rng_for(3, 2);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let empty = LearningTask {
            worker_id: WorkerId(5),
            support: Default::default(),
            query: Default::default(),
            poi_seq: vec![],
            sample_points: vec![],
            is_new: true,
        };
        let theta = template.params();
        let adapted = adapt(&theta, &empty, &template, &MseLoss, 5, 0.1, 8, &mut rng);
        assert_eq!(adapted.params(), theta);
    }

    #[test]
    fn gradient_paths_have_k_steps_of_param_size() {
        let mut rng = rng_for(4, 2);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        let tasks = vec![task_moving(1, 0.4, 0.0), task_moving(2, 0.0, 0.3)];
        let paths = gradient_paths(&tasks, &template, &MseLoss, 4, 0.1, 8, &mut rng);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 4);
            for g in p {
                assert_eq!(g.len(), template.n_params());
            }
        }
    }

    #[test]
    fn similar_tasks_have_more_similar_paths() {
        let mut rng = rng_for(5, 2);
        let template = Seq2Seq::new(Seq2SeqConfig::lstm(6), &mut rng);
        // Two eastbound movers vs one northbound mover.
        let tasks = vec![
            task_moving(1, 0.5, 0.0),
            task_moving(2, 0.45, 0.0),
            task_moving(3, 0.0, 0.5),
        ];
        let paths = gradient_paths(&tasks, &template, &MseLoss, 3, 0.1, 16, &mut rng);
        let s_same = crate::similarity::sim_learning_path(&paths[0], &paths[1]);
        let s_diff = crate::similarity::sim_learning_path(&paths[0], &paths[2]);
        assert!(
            s_same > s_diff,
            "east/east {s_same} should beat east/north {s_diff}"
        );
    }
}

//! # tamp-assign
//!
//! Task-assignment algorithms for TAMP (Section III-D of the paper).
//!
//! * [`hungarian`] — the KM algorithm \[35, 36\]: maximum-weight bipartite
//!   matching via the O(n³) potentials method, with support for forbidden
//!   edges and rectangular instances. Every assignment algorithm in the
//!   paper bottoms out in this solver.
//! * [`mod@matching_rate`] — the matching-rate metric `MR(r, r̂)`
//!   (Definition 7), the bridge between prediction quality and completion
//!   probability (Theorem 2).
//! * [`feasibility`] — the geometric feasibility predicates of
//!   Lemmas 1–2 / Theorem 2: `dis(l̂, τ.l) + a ≤ min(d/2, dᵗ)`.
//! * [`ppi`] — the three-stage Prediction-Performance-Involved assignment
//!   algorithm (Algorithm 4).
//! * [`baselines`] — UB (real-trajectory oracle), LB (current-location
//!   only), KM (predicted trajectory, single matching), and GGPSO (the
//!   genetic baseline of \[11\]).
//! * [`spatial`] — a uniform-grid bucket index that prefilters candidate
//!   pairs at large scale without changing any algorithm's output.
//! * [`solver`] — the pluggable [`MatchingSolver`]
//!   backend seam: exact KM stays the oracle, [`auction`] supplies a
//!   sparse sub-cubic backend with ε-scaling and cross-window warm starts
//!   for city-scale batches.
//!
//! All algorithms consume [`WorkerView`]s — the per-worker information the
//! platform holds at assignment time (current location, predicted routine,
//! matching rate) plus, for the oracle, the hidden real routine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod auction;
pub mod baselines;
pub mod feasibility;
pub mod hungarian;
pub mod matching_rate;
pub mod ppi;
pub mod solver;
pub mod spatial;
pub mod view;

pub use feasibility::FeasibilityParams;
pub use hungarian::{max_weight_matching, WeightedEdge};
pub use matching_rate::matching_rate;
pub use ppi::{ppi_assign, PpiParams};
pub use solver::{solver_for, MatchingSolver, SolverKind, SolverStats};
pub use view::WorkerView;
